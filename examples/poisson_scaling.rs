//! 2D Poisson solve with the windowed boundary mode, across rank counts.
//!
//! The 5-point-stencil Poisson problem on an `M x N` grid is the classic
//! block tridiagonal benchmark — but its transfer products have a wide
//! spectral spread, which puts large `N` outside the exact-scan prefix
//! method's accuracy envelope (DESIGN.md §7, Table III). This example
//! uses the windowed boundary extension to solve a 12 x 768 grid
//! accurately, sweeps the rank count, and prints a strong-scaling table
//! with both wall-clock and modeled times.
//!
//! ```text
//! cargo run --release --example poisson_scaling
//! ```

use block_tridiag_suite::ard::driver::{ard_solve_cfg, DriverConfig};
use block_tridiag_suite::ard::state::BoundaryMode;
use block_tridiag_suite::blocktri::gen::{materialize, random_rhs, Poisson2D};
use block_tridiag_suite::mpsim::CostModel;

fn main() {
    let (n, m, r) = (768, 12, 16);
    let grid = Poisson2D::new(n, m);
    let t = materialize(&grid);
    let batches: Vec<_> = (0..4).map(|s| random_rhs(n, m, r, s)).collect();

    println!(
        "2D Poisson, {m} x {n} grid ({} unknowns), {r} RHS x {} batches",
        n * m,
        batches.len()
    );
    println!(
        "{:>4}  {:>12}  {:>12}  {:>10}  {:>12}",
        "P", "wall", "modeled", "speedup", "residual"
    );

    let mut base_modeled = f64::NAN;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let cfg = DriverConfig::new(p)
            .with_model(CostModel::cluster())
            .with_boundary(BoundaryMode::Windowed(64));
        let out = ard_solve_cfg(&cfg, &grid, &batches).expect("dominant system");
        let worst = batches
            .iter()
            .zip(&out.x)
            .map(|(y, x)| t.rel_residual(x, y))
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-10, "residual {worst} out of range");
        let modeled = out.timings.total_modeled();
        if base_modeled.is_nan() {
            base_modeled = modeled;
        }
        println!(
            "{p:>4}  {:>12?}  {:>10.3}ms  {:>9.2}x  {worst:>12.2e}",
            out.timings.total_wall(),
            modeled * 1e3,
            base_modeled / modeled,
        );
    }
    println!("\nModeled speedup follows N/P until the log P scan term dominates.");
}
