//! Solver showdown: every parallel strategy in the suite on one hard
//! problem, with calibrated modeled times.
//!
//! The system is a large nonsymmetric convection-diffusion strip — wide
//! transfer-matrix spectrum, so the paper's exact-scan boundary recovery
//! is outside its accuracy envelope (DESIGN.md §7) and reports a
//! breakdown instead of silently returning garbage. The windowed
//! extension and the SPIKE baseline both solve it to machine precision;
//! the table contrasts their costs.
//!
//! ```text
//! cargo run --release --example solver_showdown
//! ```

use block_tridiag_suite::ard::driver::{
    ard_solve_cfg, rd_solve_cfg, spike_solve_cfg, DriverConfig,
};
use block_tridiag_suite::ard::BoundaryMode;
use block_tridiag_suite::blocktri::gen::{materialize, random_rhs, ConvectionDiffusion};
use block_tridiag_suite::mpsim::calibrate;

fn main() {
    let (n, m, p, r) = (768, 8, 8, 8);
    let src = ConvectionDiffusion::new(n, m, 0.6);
    let t = materialize(&src);
    let batches: Vec<_> = (0..8).map(|s| random_rhs(n, m, r, s)).collect();

    println!("calibrating the cost model to this host...");
    let model = calibrate();
    println!(
        "  latency {:.2} us | bandwidth {:.2} GB/s | {:.2} Gflop/s\n",
        model.latency_s * 1e6,
        1e-9 / model.per_byte_s.max(1e-18),
        model.flop_rate / 1e9
    );
    println!(
        "convection-diffusion strip: N={n} x M={m} ({} unknowns), {} batches x {r} RHS, P={p}\n",
        n * m,
        batches.len()
    );
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "strategy", "total wall", "modeled", "worst resid"
    );

    let base = DriverConfig::new(p).with_model(model);
    let report = |name: &str,
                  out: Result<
        block_tridiag_suite::ard::DistOutcome,
        block_tridiag_suite::blocktri::FactorError,
    >| match out {
        Ok(out) => {
            let worst = batches
                .iter()
                .zip(&out.x)
                .map(|(y, x)| t.rel_residual(x, y))
                .fold(0.0f64, f64::max);
            println!(
                "{name:<26} {:>12?} {:>10.2}ms {worst:>12.1e}",
                out.timings.total_wall(),
                out.timings.total_modeled() * 1e3
            );
        }
        Err(e) => println!(
            "{name:<26} {:>12} {:>12} breakdown at row {}",
            "-", "-", e.row
        ),
    };

    report(
        "classic RD (exact scan)",
        rd_solve_cfg(&base, &src, &batches),
    );
    report("ARD (exact scan)", ard_solve_cfg(&base, &src, &batches));
    report(
        "ARD (windowed-64)",
        ard_solve_cfg(
            &base.with_boundary(BoundaryMode::Windowed(64)),
            &src,
            &batches,
        ),
    );
    report(
        "ARD (windowed, lean)",
        ard_solve_cfg(
            &base.with_boundary(BoundaryMode::Windowed(64)).with_lean(),
            &src,
            &batches,
        ),
    );
    report("SPIKE partitioned", spike_solve_cfg(&base, &src, &batches));

    println!(
        "\nExpected: the exact-scan rows report a breakdown (N far beyond the\n\
         prefix conditioning envelope for this spectrum); windowed ARD and\n\
         SPIKE solve to ~1e-15, with ARD cheaper per batch."
    );
}
