//! Batch Kalman smoothing as a block tridiagonal solve.
//!
//! For a linear-Gaussian state-space model
//!
//! ```text
//! x_{t+1} = F x_t + w_t,   w ~ N(0, Q)
//! z_t     = H x_t + v_t,   v ~ N(0, S)
//! ```
//!
//! the posterior mean of the whole trajectory `x_0..x_{T-1}` given all
//! measurements solves `Omega x = b`, where the posterior *precision*
//! `Omega` is **symmetric block tridiagonal**:
//!
//! ```text
//! diag_t  = Q^{-1} + F^T Q^{-1} F + H^T S^{-1} H   (interior t)
//! off_t   = -F^T Q^{-1}                            (super-diagonal)
//! b_t     = H^T S^{-1} z_t
//! ```
//!
//! Smoothing `R` independent measurement sequences against the same model
//! is exactly the paper's workload: one matrix, many right-hand sides.
//! This example smooths 64 noisy tracks of a damped oscillator, checks
//! the result against the sequential SPD Thomas solver, reports the
//! model log-likelihood normalizer (`log det` via Cholesky), and shows
//! the smoother actually denoises.
//!
//! ```text
//! cargo run --release --example kalman_smoother
//! ```

use block_tridiag_suite::ard::ArdSession;
use block_tridiag_suite::blocktri::thomas_spd::SpdThomasFactors;
use block_tridiag_suite::blocktri::{BlockRow, BlockRowSource, BlockTridiag, BlockVec};
use block_tridiag_suite::dense::random::{rng, uniform_vec};
use block_tridiag_suite::dense::{gemm, invert, matmul, matvec, Mat, Trans};
use block_tridiag_suite::mpsim::CostModel;
use rand::Rng;

/// State dimension 2 (position, velocity); a lightly damped oscillator.
const DT: f64 = 0.1;

fn model_matrices() -> (Mat, Mat, Mat, Mat) {
    // F: rotation + damping; Q: process noise; H: observe position only
    // (padded to square for block algebra); S: measurement noise.
    let f = Mat::from_rows(&[&[1.0, DT], &[-0.4 * DT, 1.0 - 0.1 * DT]]);
    let q = Mat::from_rows(&[&[1e-4, 0.0], &[0.0, 1e-3]]);
    let h = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
    let s = Mat::from_rows(&[&[4e-2, 0.0], &[0.0, 1.0]]); // dummy 2nd channel
    (f, q, h, s)
}

/// The posterior precision as a block row source (deterministic per row).
struct Precision {
    t_steps: usize,
    diag_first: Mat,
    diag_mid: Mat,
    diag_last: Mat,
    off: Mat, // super-diagonal block; sub-diagonal is its transpose
}

impl Precision {
    fn build(t_steps: usize) -> Self {
        let (f, q, h, s) = model_matrices();
        let qi = invert(&q).unwrap();
        let si = invert(&s).unwrap();
        // H^T S^{-1} H
        let mut hsh = Mat::zeros(2, 2);
        let hs = matmul(&h.transpose(), &si);
        gemm(1.0, &hs, Trans::No, &h, Trans::No, 0.0, &mut hsh);
        // F^T Q^{-1} F
        let fq = matmul(&f.transpose(), &qi);
        let mut fqf = Mat::zeros(2, 2);
        gemm(1.0, &fq, Trans::No, &f, Trans::No, 0.0, &mut fqf);
        // Prior on x_0: weak.
        let p0i = Mat::from_diag(&[1e-2, 1e-2]);

        let mut diag_first = p0i;
        diag_first.add_assign(&fqf);
        diag_first.add_assign(&hsh);
        let mut diag_mid = qi.clone();
        diag_mid.add_assign(&fqf);
        diag_mid.add_assign(&hsh);
        let mut diag_last = qi;
        diag_last.add_assign(&hsh);
        let off = fq.scaled(-1.0); // -F^T Q^{-1}

        Self {
            t_steps,
            diag_first,
            diag_mid,
            diag_last,
            off,
        }
    }
}

impl BlockRowSource for Precision {
    fn n(&self) -> usize {
        self.t_steps
    }
    fn m(&self) -> usize {
        2
    }
    fn row(&self, i: usize) -> BlockRow {
        let z = Mat::zeros(2, 2);
        let b = if i == 0 {
            self.diag_first.clone()
        } else if i + 1 == self.t_steps {
            self.diag_last.clone()
        } else {
            self.diag_mid.clone()
        };
        let a = if i == 0 {
            z.clone()
        } else {
            self.off.transpose()
        };
        let c = if i + 1 == self.t_steps {
            z
        } else {
            self.off.clone()
        };
        BlockRow::new(a, b, c)
    }
}

/// Simulates one noisy track; returns (true positions, information vector b).
fn simulate(t_steps: usize, seed: u64) -> (Vec<f64>, Vec<Mat>) {
    let (f, _, h, s) = model_matrices();
    let si = invert(&s).unwrap();
    let hs = matmul(&h.transpose(), &si);
    let mut rg = rng(seed);
    let mut x = vec![1.0, 0.0];
    let mut truth = Vec::with_capacity(t_steps);
    let mut b = Vec::with_capacity(t_steps);
    for _ in 0..t_steps {
        truth.push(x[0]);
        // Measurement: position + noise (2nd channel unused).
        let z = vec![x[0] + 0.2 * rg.gen_range(-1.0..1.0f64), 0.0];
        let bt = matvec(&hs, &z);
        b.push(Mat::from_col_major(2, 1, bt));
        // Advance truth with small process noise.
        let noise = uniform_vec(2, &mut rg);
        x = matvec(&f, &x);
        x[0] += 0.01 * noise[0];
        x[1] += 0.03 * noise[1];
    }
    (truth, b)
}

fn main() {
    let t_steps = 400;
    let tracks = 64;
    let p = 4;
    let precision = Precision::build(t_steps);
    let omega = BlockTridiag::from_source(&precision);

    // Simulate the tracks and stack their information vectors as one
    // multi-RHS panel.
    let mut truths = Vec::with_capacity(tracks);
    let mut rhs = BlockVec::zeros(t_steps, 2, tracks);
    for j in 0..tracks {
        let (truth, b) = simulate(t_steps, 1000 + j as u64);
        for (i, bt) in b.into_iter().enumerate() {
            rhs.blocks[i].set_block(0, j, &bt);
        }
        truths.push(truth);
    }

    // SPD sequential reference (Cholesky Thomas) + log-likelihood term.
    let spd = SpdThomasFactors::factor(&omega).expect("posterior precision is SPD");
    let x_ref = spd.solve(&rhs);
    println!(
        "posterior precision: {} x {} blocks of 2x2, log det = {:.2}",
        t_steps,
        t_steps,
        spd.log_det()
    );

    // Distributed accelerated session (the same matrix serves all tracks).
    let session = ArdSession::create(p, CostModel::cluster(), &precision)
        .expect("SPD systems cannot break down");
    let x = session.solve(&rhs).expect("solve");
    println!(
        "smoothed {tracks} tracks of {t_steps} steps on {p} ranks: vs SPD Thomas diff {:.1e}, residual {:.1e}",
        x.rel_diff(&x_ref),
        omega.rel_residual(&x, &rhs)
    );
    assert!(x.rel_diff(&x_ref) < 1e-9);

    // Does smoothing actually help? Compare RMS error of raw measurements
    // vs smoothed positions on track 0.
    let (truth0, _) = simulate(t_steps, 1000);
    let mut raw_se = 0.0;
    let mut smooth_se = 0.0;
    let mut rg = rng(1000);
    let mut xsim = vec![1.0, 0.0];
    let (f, ..) = model_matrices();
    for (i, truth_pos) in truth0.iter().enumerate() {
        let meas = xsim[0] + 0.2 * rg.gen_range(-1.0..1.0f64);
        raw_se += (meas - truth_pos).powi(2);
        smooth_se += (x.blocks[i][(0, 0)] - truth_pos).powi(2);
        let noise = uniform_vec(2, &mut rg);
        xsim = matvec(&f, &xsim);
        xsim[0] += 0.01 * noise[0];
        xsim[1] += 0.03 * noise[1];
    }
    let raw_rmse = (raw_se / t_steps as f64).sqrt();
    let smooth_rmse = (smooth_se / t_steps as f64).sqrt();
    println!("track 0 position RMSE: raw measurements {raw_rmse:.4}, smoothed {smooth_rmse:.4}");
    assert!(
        smooth_rmse < raw_rmse * 0.6,
        "smoother should clearly beat raw measurements"
    );
    println!("smoothing reduced the error {:.1}x", raw_rmse / smooth_rmse);
}
