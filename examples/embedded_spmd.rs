//! Embedding the rank-level API in your own SPMD program.
//!
//! The drivers (`ard_solve_dist` & co.) are conveniences; real
//! applications usually already run inside an SPMD world and own their
//! slice of the matrix. This example runs a custom SPMD program on the
//! `bt-mpsim` runtime that:
//!
//! 1. builds each rank's [`RankSystem`] from a shared generator,
//! 2. calls [`ArdRankFactors::setup`] once (collective),
//! 3. generates right-hand sides *locally* per rank (no distribution
//!    step — per-row-deterministic sources make this free),
//! 4. replays solves and combines a reduction over the solution without
//!    ever gathering it.
//!
//! ```text
//! cargo run --release --example embedded_spmd
//! ```

use block_tridiag_suite::ard::{ArdRankFactors, RankSystem};
use block_tridiag_suite::blocktri::gen::{rhs_panel, ClusteredToeplitz};
use block_tridiag_suite::mpsim::{run_spmd, CommBackend, CostModel};

fn main() {
    let (n, m, p, r, nbatches) = (512, 8, 6, 4, 10);
    let src = ClusteredToeplitz::standard(n, m, 99);

    let out = run_spmd(p, CostModel::cluster(), |comm| {
        // 1. Materialize only this rank's rows.
        let sys = RankSystem::from_source(&src, comm.size(), comm.rank());

        // 2. One collective setup; errors are agreed on by all ranks.
        let factors = ArdRankFactors::setup(comm, &sys, true).expect("dominant system");

        // 3+4. Solve batches generated in place; accumulate a local
        // checksum and reduce it at the end.
        let mut local_sum = 0.0f64;
        for batch in 0..nbatches {
            let y_local: Vec<_> = (sys.lo..sys.hi)
                .map(|i| rhs_panel(m, r, 1000 + batch, i))
                .collect();
            let x_local = factors.solve_replay(comm, &y_local);
            local_sum += x_local
                .iter()
                .map(|panel| panel.as_slice().iter().sum::<f64>())
                .sum::<f64>();
        }
        // Global checksum without gathering the solution.
        let global = comm.allreduce(local_sum, |a, b| a + b);
        (global, factors.storage_bytes())
    });

    // Every rank agrees on the reduction.
    let checksum = out.results[0].0;
    for (rank, (sum, _)) in out.results.iter().enumerate() {
        assert!(
            (sum - checksum).abs() <= checksum.abs() * 1e-12,
            "rank {rank} diverged"
        );
    }
    println!("{nbatches} batches of {r} RHS solved on {p} ranks; global checksum {checksum:.6}");
    println!(
        "per-rank factor storage: {} KiB; total traffic {} KiB in {} messages",
        out.results[0].1 / 1024,
        out.stats.total().bytes_sent / 1024,
        out.stats.total().msgs_sent,
    );
    println!("modeled parallel time: {:.3} ms", out.modeled_seconds * 1e3);
}
