//! Implicit time stepping: the canonical "same matrix, thousands of
//! right-hand sides" workload from the paper's introduction.
//!
//! An implicit discretization of a coupled 1D transport problem
//! (`M` coupled field components on an `N`-cell mesh) advances
//! `(I + dt*L) u^{k+1} = u^k` — every time step solves the *same* block
//! tridiagonal matrix with a new right-hand side. Classic recursive
//! doubling re-factors per step; the accelerated algorithm factors once
//! and replays.
//!
//! The example integrates a Gaussian pulse for `steps` steps, checks
//! conservation and the per-step residual, and reports the amortized
//! speedup.
//!
//! ```text
//! cargo run --release --example implicit_timestepping -- [steps]
//! ```

use block_tridiag_suite::ard::driver::{ard_solve_dist, rd_solve_dist};
use block_tridiag_suite::blocktri::gen::ClusteredToeplitz;
use block_tridiag_suite::blocktri::{BlockRow, BlockRowSource, BlockTridiag, BlockVec};
use block_tridiag_suite::mpsim::CostModel;

/// `I + dt * L` for a coupled diffusion operator: block tridiagonal with
/// `B = (1 + 2 dt) I + dt K`, `A = C = -dt I + small coupling`, where `K`
/// couples the `M` field components within a cell.
struct ImplicitOperator {
    n: usize,
    inner: ClusteredToeplitz,
}

impl BlockRowSource for ImplicitOperator {
    fn n(&self) -> usize {
        self.n
    }
    fn m(&self) -> usize {
        self.inner.m()
    }
    fn row(&self, i: usize) -> BlockRow {
        // Rescale the clustered template into I + dt*L form: divide by the
        // diagonal weight so the diagonal is ~(1 + 2dt).
        let raw = self.inner.row(i);
        let dt = 0.25;
        let scale = dt / 4.0;
        let m = self.m();
        let mut b = raw.b.scaled(scale);
        for k in 0..m {
            b[(k, k)] += 1.0 - scale * 8.0 + 2.0 * dt;
        }
        BlockRow::new(
            raw.a.scaled(scale * dt * 4.0),
            b,
            raw.c.scaled(scale * dt * 4.0),
        )
    }
}

fn gaussian_initial(n: usize, m: usize) -> BlockVec {
    let mut u = BlockVec::zeros(n, m, 1);
    for (i, blk) in u.blocks.iter_mut().enumerate() {
        let x = (i as f64 - n as f64 / 2.0) / (n as f64 / 10.0);
        let amp = (-x * x).exp();
        for k in 0..m {
            blk[(k, 0)] = amp * (1.0 + 0.1 * k as f64);
        }
    }
    u
}

fn total_mass(u: &BlockVec) -> f64 {
    u.blocks
        .iter()
        .map(|b| b.as_slice().iter().sum::<f64>())
        .sum()
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let (n, m, p) = (192, 12, 4);
    let op = ImplicitOperator {
        n,
        inner: ClusteredToeplitz::standard(n, m, 7),
    };
    let t = BlockTridiag::from_source(&op);

    // Pre-generate the whole trajectory's right-hand sides by running the
    // recurrence once with a sequential solve (so both timed runs below
    // solve identical batch sequences).
    let u0 = gaussian_initial(n, m);
    let mut trajectory = vec![u0.clone()];
    {
        let f = block_tridiag_suite::blocktri::ThomasFactors::factor(&t).unwrap();
        let mut u = u0.clone();
        for _ in 0..steps {
            u = f.solve(&u);
            trajectory.push(u.clone());
        }
    }
    let batches: Vec<BlockVec> = trajectory[..steps].to_vec();

    println!("implicit time stepping: N={n} cells, M={m} coupled fields, {steps} steps, P={p}");

    let ard = ard_solve_dist(p, CostModel::cluster(), &op, &batches).unwrap();
    let rd = rd_solve_dist(p, CostModel::cluster(), &op, &batches).unwrap();

    // Check the distributed trajectory matches the sequential one.
    let mut worst = 0.0f64;
    for (k, x) in ard.x.iter().enumerate() {
        worst = worst.max(x.rel_diff(&trajectory[k + 1]));
    }
    println!("trajectory agreement with sequential Thomas: {worst:.2e}");
    assert!(worst < 1e-9);

    // Physics sanity: the implicit diffusion step must not blow up mass.
    let m0 = total_mass(&trajectory[0]);
    let m_end = total_mass(trajectory.last().unwrap());
    println!("mass: initial {m0:.4}, final {m_end:.4} (implicit smoothing contracts)");
    assert!(m_end.abs() <= m0.abs() * 1.01);

    println!(
        "accelerated: {:?} total ({:?} setup)   classic: {:?} total   speedup {:.1}x",
        ard.timings.total_wall(),
        ard.timings.setup_wall,
        rd.timings.total_wall(),
        rd.timings.total_wall().as_secs_f64() / ard.timings.total_wall().as_secs_f64(),
    );
}
