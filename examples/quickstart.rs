//! Quickstart: solve a block tridiagonal system with many right-hand
//! sides using accelerated recursive doubling.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use block_tridiag_suite::ard::driver::{ard_solve_dist, rd_solve_dist};
use block_tridiag_suite::blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
use block_tridiag_suite::mpsim::CostModel;

fn main() {
    // A block tridiagonal system: N = 256 block rows, 16x16 blocks.
    let (n, m, p) = (256, 16, 4);
    let system = ClusteredToeplitz::standard(n, m, 42);

    // Sixteen batches of 8 right-hand sides sharing the same matrix —
    // the workload the accelerated algorithm is built for.
    let batches: Vec<_> = (0..16).map(|seed| random_rhs(n, m, 8, seed)).collect();

    // Accelerated recursive doubling: one matrix-dependent setup, then a
    // cheap O(M^2 R (N/P + log P)) replay per batch.
    let ard = ard_solve_dist(p, CostModel::cluster(), &system, &batches)
        .expect("system is diagonally dominant; setup cannot break down");

    // Classic recursive doubling re-pays the O(M^3 ...) matrix work on
    // every batch.
    let rd = rd_solve_dist(p, CostModel::cluster(), &system, &batches)
        .expect("same system, same guarantee");

    // Verify every solution.
    let t = materialize(&system);
    let worst = batches
        .iter()
        .zip(&ard.x)
        .map(|(y, x)| t.rel_residual(x, y))
        .fold(0.0f64, f64::max);
    println!(
        "solved {} batches on {p} ranks, worst relative residual {worst:.2e}",
        batches.len()
    );

    println!(
        "accelerated: setup {:?} + {:?}/batch   (total {:?})",
        ard.timings.setup_wall,
        ard.timings.solve_wall.iter().sum::<std::time::Duration>() / batches.len() as u32,
        ard.timings.total_wall(),
    );
    println!(
        "classic    : {:?}/batch               (total {:?})",
        rd.timings.solve_wall.iter().sum::<std::time::Duration>() / batches.len() as u32,
        rd.timings.total_wall(),
    );
    println!(
        "wall speedup {:.1}x | modeled speedup {:.1}x | extra memory {} KiB/rank",
        rd.timings.total_wall().as_secs_f64() / ard.timings.total_wall().as_secs_f64(),
        rd.timings.total_modeled() / ard.timings.total_modeled(),
        ard.factor_bytes / 1024,
    );
    assert!(worst < 1e-10, "residual check failed");
}
