//! Criterion benchmarks for the whole-solver paths: sequential baselines
//! (Thomas, block cyclic reduction) and the distributed RD/ARD solvers,
//! including the headline comparison — one RD solve vs one ARD replay on
//! the same system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bt_ard::driver::{ard_solve_dist, rd_solve_dist, spike_solve_cfg, DriverConfig};
use bt_blocktri::cyclic_reduction::cyclic_reduction_solve;
use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
use bt_blocktri::thomas::ThomasFactors;
use bt_mpsim::CostModel;

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential");
    group.sample_size(20);
    for &(n, m) in &[(128usize, 8usize), (128, 16)] {
        let id = format!("n{n}_m{m}");
        let t = materialize(&ClusteredToeplitz::standard(n, m, 1));
        let y = random_rhs(n, m, 4, 2);
        group.bench_with_input(BenchmarkId::new("thomas_factor", &id), &n, |b, _| {
            b.iter(|| ThomasFactors::factor(black_box(&t)).unwrap())
        });
        let f = ThomasFactors::factor(&t).unwrap();
        group.bench_with_input(BenchmarkId::new("thomas_solve_r4", &id), &n, |b, _| {
            b.iter(|| f.solve(black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("cyclic_reduction", &id), &n, |b, _| {
            b.iter(|| cyclic_reduction_solve(black_box(&t), black_box(&y)).unwrap())
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_p4");
    group.sample_size(10);
    let (n, m, p, r) = (256usize, 16usize, 4usize, 4usize);
    let src = ClusteredToeplitz::standard(n, m, 3);
    let one_batch = vec![random_rhs(n, m, r, 5)];
    let eight: Vec<_> = (0..8).map(|s| random_rhs(n, m, r, s)).collect();

    group.bench_function("rd_one_batch", |b| {
        b.iter(|| rd_solve_dist(p, ZERO, black_box(&src), black_box(&one_batch)).unwrap())
    });
    group.bench_function("ard_setup_plus_one", |b| {
        b.iter(|| ard_solve_dist(p, ZERO, black_box(&src), black_box(&one_batch)).unwrap())
    });
    // The paper's workload: 8 batches with the same matrix.
    group.bench_function("rd_eight_batches", |b| {
        b.iter(|| rd_solve_dist(p, ZERO, black_box(&src), black_box(&eight)).unwrap())
    });
    group.bench_function("ard_eight_batches", |b| {
        b.iter(|| ard_solve_dist(p, ZERO, black_box(&src), black_box(&eight)).unwrap())
    });
    let spike_cfg = DriverConfig::new(p).with_model(ZERO);
    group.bench_function("spike_eight_batches", |b| {
        b.iter(|| spike_solve_cfg(&spike_cfg, black_box(&src), black_box(&eight)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sequential, bench_distributed);
criterion_main!(benches);
