//! Criterion microbenchmarks for the dense and scan kernels.
//!
//! Includes the **structured-multiply ablation** (Figure A3): advancing a
//! companion product with the `[P, Q; I, 0]` structure exploited
//! (`apply_left`, `8 M^3` flops) versus the dense `2M x 2M` product
//! (`compose_after`, `16 M^3` flops) — the 2x flop saving DESIGN.md §2.5
//! calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bt_ard::companion::{CompanionProduct, CompanionW};
use bt_ard::pairs::AffinePair;
use bt_blocktri::gen::ClusteredToeplitz;
use bt_blocktri::BlockRowSource;
use bt_dense::random::{rng, uniform};
use bt_dense::{gemm, LuFactors, Mat, Trans};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &m in &[16usize, 32, 64, 128] {
        let a = uniform(m, m, &mut rng(1));
        let b = uniform(m, m, &mut rng(2));
        let mut out = Mat::zeros(m, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, _| {
            bench.iter(|| {
                gemm(
                    1.0,
                    black_box(&a),
                    Trans::No,
                    black_box(&b),
                    Trans::No,
                    0.0,
                    &mut out,
                );
            })
        });
    }
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu");
    for &m in &[16usize, 32, 64] {
        let a = {
            let mut a = uniform(m, m, &mut rng(3));
            for k in 0..m {
                let v = a.get(k, k);
                a.set(k, k, v + 2.0 * m as f64);
            }
            a
        };
        group.bench_with_input(BenchmarkId::new("factor", m), &m, |bench, _| {
            bench.iter(|| LuFactors::factor(black_box(&a)).unwrap())
        });
        let lu = LuFactors::factor(&a).unwrap();
        let rhs = uniform(m, 8, &mut rng(4));
        group.bench_with_input(BenchmarkId::new("solve_r8", m), &m, |bench, _| {
            bench.iter(|| lu.solve(black_box(&rhs)))
        });
    }
    group.finish();
}

/// Figure A3: structured vs dense companion product update.
fn bench_companion_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("companion_update");
    for &m in &[8usize, 16, 32, 64] {
        let src = ClusteredToeplitz::standard(4, m, 5);
        let w = CompanionW::from_row(&src.row(1)).unwrap();
        // A dense product representing W as a full CompanionProduct.
        let w_dense = {
            let mut p = CompanionProduct::identity(m);
            p.apply_left(&w);
            p
        };
        let base = {
            let mut p = CompanionProduct::identity(m);
            p.apply_left(&w);
            p.apply_left(&w);
            p
        };
        group.bench_with_input(BenchmarkId::new("structured_8m3", m), &m, |bench, _| {
            bench.iter(|| {
                let mut p = base.clone();
                p.apply_left(black_box(&w));
                p
            })
        });
        group.bench_with_input(BenchmarkId::new("dense_16m3", m), &m, |bench, _| {
            bench.iter(|| base.compose_after(black_box(&w_dense)))
        });
    }
    group.finish();
}

/// The fresh-vs-replay combine: the per-round work the acceleration removes.
fn bench_affine_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("affine_combine");
    for &m in &[16usize, 32, 64] {
        let r = 4;
        let outer = AffinePair {
            mat: uniform(m, m, &mut rng(7)),
            vec: uniform(m, r, &mut rng(8)),
        };
        let inner = AffinePair {
            mat: uniform(m, m, &mut rng(9)),
            vec: uniform(m, r, &mut rng(10)),
        };
        group.bench_with_input(BenchmarkId::new("fresh_m3", m), &m, |bench, _| {
            bench.iter(|| AffinePair::compose(black_box(&outer), black_box(&inner)))
        });
        group.bench_with_input(BenchmarkId::new("replay_m2r", m), &m, |bench, _| {
            bench.iter(|| outer.apply_to_vec(black_box(&inner.vec)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_lu, bench_companion_ablation, bench_affine_combine
}
criterion_main!(benches);
