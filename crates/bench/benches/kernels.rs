//! Criterion microbenchmarks for the dense and scan kernels.
//!
//! Includes the **structured-multiply ablation** (Figure A3): advancing a
//! companion product with the `[P, Q; I, 0]` structure exploited
//! (`apply_left`, `8 M^3` flops) versus the dense `2M x 2M` product
//! (`compose_after`, `16 M^3` flops) — the 2x flop saving DESIGN.md §2.5
//! calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bt_ard::companion::{CompanionProduct, CompanionW};
use bt_ard::pairs::AffinePair;
use bt_blocktri::gen::ClusteredToeplitz;
use bt_blocktri::BlockRowSource;
use bt_dense::random::{rng, uniform};
use bt_dense::threading::with_thread_budget;
use bt_dense::{gemm, gemm_axpy, gemm_packed, gemm_small, LuFactors, Mat, Trans};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &m in &[16usize, 32, 64, 128] {
        let a = uniform(m, m, &mut rng(1));
        let b = uniform(m, m, &mut rng(2));
        let mut out = Mat::zeros(m, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, _| {
            bench.iter(|| {
                gemm(
                    1.0,
                    black_box(&a),
                    Trans::No,
                    black_box(&b),
                    Trans::No,
                    0.0,
                    &mut out,
                );
            })
        });
    }
    group.finish();
}

/// Best-of-N wall-clock seconds for one invocation of `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    // One warmup pass (page-in, pack-buffer allocation).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

const SWEEP_SIZES: [usize; 15] = [
    4, 8, 16, 17, 32, 48, 63, 64, 65, 96, 127, 128, 129, 192, 256,
];
const SWEEP_THREADS: [usize; 3] = [1, 2, 4];

/// One `m x m x m` sweep cell at one element type: times every kernel
/// the dispatcher can pick (AXPY, packed at each thread budget,
/// small-block) plus the dispatcher itself, prints the per-size line,
/// and returns the JSON record row.
fn sweep_cell<E: bt_dense::Element>(m: usize) -> String {
    let a = uniform(m, m, &mut rng(11)).convert::<E>();
    let b = uniform(m, m, &mut rng(12)).convert::<E>();
    let mut out = Mat::<E>::zeros(m, m);
    let flops = 2 * m * m * m;
    // Batch tiny products so one timed sample is ~0.5 Mflop; the
    // kernels accumulate into C, which costs the same per call as a
    // fresh product and keeps fill_zero out of the timed region.
    let inner = (500_000 / flops).max(1);
    let reps = (100_000_000 / (flops * inner)).clamp(3, 60);
    let timed = |f: &mut dyn FnMut()| {
        time_best(reps, || {
            for _ in 0..inner {
                f();
            }
        }) / inner as f64
    };
    let axpy_s = timed(&mut || gemm_axpy(E::ONE, black_box(&a), black_box(&b), &mut out));
    let mut packed_s = [0.0f64; SWEEP_THREADS.len()];
    for (ti, &t) in SWEEP_THREADS.iter().enumerate() {
        packed_s[ti] = with_thread_budget(t, || {
            timed(&mut || gemm_packed(E::ONE, black_box(&a), black_box(&b), &mut out))
        });
    }
    let small_s = matches!(m, 4 | 8 | 16).then(|| {
        timed(&mut || assert!(gemm_small(E::ONE, black_box(&a), black_box(&b), &mut out)))
    });
    let dispatched_s = timed(&mut || {
        gemm(
            E::ONE,
            black_box(&a),
            Trans::No,
            black_box(&b),
            Trans::No,
            E::ONE,
            &mut out,
        );
    });
    let gflops = |s: f64| flops as f64 / s / 1e9;
    // Winner among the kernels the dispatcher chooses between.
    let mut winner = ("axpy", axpy_s);
    if packed_s[0] < winner.1 {
        winner = ("packed", packed_s[0]);
    }
    if let Some(s) = small_s {
        if s < winner.1 {
            winner = ("small", s);
        }
    }
    println!(
        "bench: gemm/{}/{m:<4} axpy {:>9.4} ms  packed(t1) {:>9.4} ms  small {}  \
         dispatched {:>9.4} ms -> {} ({:.2} Gflop/s best)",
        E::NAME,
        axpy_s * 1e3,
        packed_s[0] * 1e3,
        small_s.map_or("      n/a".to_string(), |s| format!("{:>9.4} ms", s * 1e3)),
        dispatched_s * 1e3,
        winner.0,
        gflops(winner.1),
    );
    format!(
        "    {{\"m\": {m}, \"elem\": \"{}\", \"axpy_s\": {axpy_s:.6e}, \"packed_t1_s\": {:.6e}, \
         \"packed_t2_s\": {:.6e}, \"packed_t4_s\": {:.6e}, \"small_s\": {}, \
         \"dispatched_s\": {dispatched_s:.6e}, \
         \"speedup_packed_vs_axpy\": {:.3}, \"gflops_packed_t1\": {:.3}, \
         \"gflops_best\": {:.3}, \"dispatch_winner\": \"{}\"}}",
        E::NAME,
        packed_s[0],
        packed_s[1],
        packed_s[2],
        small_s.map_or("null".to_string(), |s| format!("{s:.6e}")),
        axpy_s / packed_s[0],
        gflops(packed_s[0]),
        gflops(winner.1),
        winner.0,
    )
}

/// Kernel sweep over block orders from the small-block specializations
/// (m = 4, 8, 16, plus 17 and 32 to pin the crossover region) up through
/// sizes straddling the NB = 64 and KC = 128 blocking boundaries, at
/// thread budgets 1, 2 and 4, at **both element types** (the mixed
/// -precision replay path runs these same kernels at `f32`). Prints
/// per-size lines through the criterion harness and emits the raw
/// numbers as `bt-bench-gemm-v3` JSON to `BENCH_gemm.json` at the
/// workspace root — the data the `PACKED_MIN_FLOPS_*` crossover
/// constants in `bt_dense` are derived from, and the measured side of
/// the "f32 GEMM ~ doubles the SIMD throughput" claim.
fn bench_gemm_packed_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_packed");
    group.sample_size(10);
    let mut records = Vec::new();
    for &m in &SWEEP_SIZES {
        records.push(sweep_cell::<f64>(m));
        records.push(sweep_cell::<f32>(m));
        // Keep a criterion-visible entry for the packed kernel too.
        let a = uniform(m, m, &mut rng(11));
        let b = uniform(m, m, &mut rng(12));
        let mut out = Mat::zeros(m, m);
        group.bench_with_input(BenchmarkId::new("packed_t1", m), &m, |bench, _| {
            bench.iter(|| {
                gemm_packed(1.0, black_box(&a), black_box(&b), &mut out);
            })
        });
    }
    group.finish();

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Run metadata: when/where the numbers were taken, the detected SIMD
    // path, the thread budget the environment would hand the kernels
    // (BT_DENSE_THREADS), and the sweep bounds, so stale or cross-host
    // JSON is recognizable.
    let generated_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let env_threads = bt_dense::threading::default_threads();
    let simd = bt_dense::simd::active().name();
    let sizes_json = SWEEP_SIZES.map(|m| m.to_string()).join(", ");
    let json = format!(
        "{{\n  \"bench\": \"gemm_packed_vs_axpy\",\n  \"schema\": \"bt-bench-gemm-v3\",\n  \
         \"generated_unix_s\": {generated_unix_s},\n  \
         \"host_cores\": {host_cores},\n  \"bt_dense_threads\": {env_threads},\n  \
         \"simd\": \"{simd}\",\n  \"elems\": [\"f64\", \"f32\"],\n  \
         \"thread_budgets\": [1, 2, 4],\n  \"sizes\": [{sizes_json}],\n  \
         \"size_bounds\": {{\"min\": {}, \"max\": {}}},\n  \
         \"note\": \"best-of-N wall clock; m=4/8/16 hit the small-block kernels, \
         17/32 pin the crossover, larger sizes straddle NB=64 and KC=128 blocking \
         boundaries; every size is swept at f64 and f32 (elem field) — the f32 rows \
         are the measured side of the mixed-precision path's doubled-SIMD-width \
         claim\",\n  \"results\": [\n{}\n  ]\n}}\n",
        SWEEP_SIZES[0],
        SWEEP_SIZES[SWEEP_SIZES.len() - 1],
        records.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("bench: wrote {path}"),
        Err(e) => eprintln!("bench: could not write {path}: {e}"),
    }
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu");
    for &m in &[16usize, 32, 64] {
        let a = {
            let mut a = uniform(m, m, &mut rng(3));
            for k in 0..m {
                let v = a.get(k, k);
                a.set(k, k, v + 2.0 * m as f64);
            }
            a
        };
        group.bench_with_input(BenchmarkId::new("factor", m), &m, |bench, _| {
            bench.iter(|| LuFactors::factor(black_box(&a)).unwrap())
        });
        let lu = LuFactors::factor(&a).unwrap();
        let rhs = uniform(m, 8, &mut rng(4));
        group.bench_with_input(BenchmarkId::new("solve_r8", m), &m, |bench, _| {
            bench.iter(|| lu.solve(black_box(&rhs)))
        });
    }
    group.finish();
}

/// Figure A3: structured vs dense companion product update.
fn bench_companion_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("companion_update");
    for &m in &[8usize, 16, 32, 64] {
        let src = ClusteredToeplitz::standard(4, m, 5);
        let w = CompanionW::from_row(&src.row(1)).unwrap();
        // A dense product representing W as a full CompanionProduct.
        let w_dense = {
            let mut p = CompanionProduct::identity(m);
            p.apply_left(&w);
            p
        };
        let base = {
            let mut p = CompanionProduct::identity(m);
            p.apply_left(&w);
            p.apply_left(&w);
            p
        };
        group.bench_with_input(BenchmarkId::new("structured_8m3", m), &m, |bench, _| {
            bench.iter(|| {
                let mut p = base.clone();
                p.apply_left(black_box(&w));
                p
            })
        });
        group.bench_with_input(BenchmarkId::new("dense_16m3", m), &m, |bench, _| {
            bench.iter(|| base.compose_after(black_box(&w_dense)))
        });
    }
    group.finish();
}

/// The fresh-vs-replay combine: the per-round work the acceleration removes.
fn bench_affine_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("affine_combine");
    for &m in &[16usize, 32, 64] {
        let r = 4;
        let outer = AffinePair {
            mat: uniform(m, m, &mut rng(7)),
            vec: uniform(m, r, &mut rng(8)),
        };
        let inner = AffinePair {
            mat: uniform(m, m, &mut rng(9)),
            vec: uniform(m, r, &mut rng(10)),
        };
        group.bench_with_input(BenchmarkId::new("fresh_m3", m), &m, |bench, _| {
            bench.iter(|| AffinePair::compose(black_box(&outer), black_box(&inner)))
        });
        group.bench_with_input(BenchmarkId::new("replay_m2r", m), &m, |bench, _| {
            bench.iter(|| outer.apply_to_vec(black_box(&inner.vec)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_gemm_packed_sweep, bench_lu, bench_companion_ablation, bench_affine_combine
}
criterion_main!(benches);
