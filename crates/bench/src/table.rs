//! Aligned console tables and CSV output for the experiment binaries.
//!
//! Every experiment prints a human-readable table (the "paper row"
//! format) and, when `--csv <path>` is given, writes the same data as
//! CSV for plotting.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table with a title and header row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = *w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV (header + rows).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a duration in seconds with sensible units.
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".to_string()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b < K {
        format!("{b:.0}B")
    } else if b < K * K {
        format!("{:.1}KiB", b / K)
    } else if b < K * K * K {
        format!("{:.1}MiB", b / K / K)
    } else {
        format!("{:.2}GiB", b / K / K / K)
    }
}

/// Formats a flop count with SI units.
pub fn fmt_flops(f: u64) -> String {
    let f = f as f64;
    if f < 1e6 {
        format!("{f:.0}")
    } else if f < 1e9 {
        format!("{:.1}M", f / 1e6)
    } else {
        format!("{:.2}G", f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bb", "ccc"]);
        t.row(&["1".into(), "22".into(), "333".into()]);
        t.row(&["4444".into(), "5".into(), "6".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("333"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("x", &["n", "time"]);
        t.row(&["1".into(), "2.5".into()]);
        let path = std::env::temp_dir().join("bt_bench_table_test.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "n,time\n1,2.5\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.0), "0");
        assert_eq!(fmt_secs(5e-6), "5.0us");
        assert_eq!(fmt_secs(0.25), "250.00ms");
        assert_eq!(fmt_secs(2.0), "2.000s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_flops(500), "500");
        assert_eq!(fmt_flops(2_500_000), "2.5M");
    }
}
