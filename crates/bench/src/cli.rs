//! Minimal `--key value` argument parsing for the experiment binaries.
//!
//! Every experiment accepts overrides for its sweep parameters
//! (`--n`, `--m`, `--p`, `--r`, ...) plus `--csv <path>` for machine
//! readable output. No external CLI crate is used (DESIGN.md §6 keeps the
//! dependency set minimal).

use std::collections::BTreeMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses the process arguments. As a side effect, requesting
    /// `--metrics-out` or `--trace-out` switches observability on for
    /// the process (see [`Args::apply_obs`]), so every experiment
    /// binary honors the flags without individual wiring.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed input (a `--key` without
    /// a value, or a bare token).
    pub fn from_env() -> Self {
        let args = Self::parse(std::env::args().skip(1));
        args.apply_obs();
        args
    }

    /// Parses an explicit token stream (used by tests).
    pub fn parse(tokens: impl Iterator<Item = String>) -> Self {
        let mut values = BTreeMap::new();
        let mut tokens = tokens.peekable();
        while let Some(tok) = tokens.next() {
            let key = tok
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got '{tok}'"))
                .to_string();
            let val = tokens
                .next()
                .unwrap_or_else(|| panic!("missing value for --{key}"));
            values.insert(key, val);
        }
        Self { values }
    }

    /// Returns the raw string value of `key`, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parses `key` as a `usize`, with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but unparsable.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        match self.values.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// Parses `key` as an `f64`, with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but unparsable.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        match self.values.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{key} expects a number, got '{v}'")),
        }
    }

    /// Parses `key` as a comma-separated list of `usize`, with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but unparsable.
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects integers, got '{tok}'"))
                })
                .collect(),
        }
    }

    /// The `--csv` output path, if requested.
    pub fn csv_path(&self) -> Option<std::path::PathBuf> {
        self.get_str("csv").map(std::path::PathBuf::from)
    }

    /// The `--metrics-out` path for the bt-obs metrics registry JSON.
    pub fn metrics_out(&self) -> Option<std::path::PathBuf> {
        self.get_str("metrics-out").map(std::path::PathBuf::from)
    }

    /// The `--trace-out` path for the bt-obs wall-clock Chrome trace.
    pub fn trace_out(&self) -> Option<std::path::PathBuf> {
        self.get_str("trace-out").map(std::path::PathBuf::from)
    }

    /// Turns observability on when `--metrics-out` or `--trace-out` was
    /// given, overriding an unset `BT_OBS`. Call once, before the
    /// measured work.
    pub fn apply_obs(&self) {
        if self.metrics_out().is_some() || self.trace_out().is_some() {
            bt_obs::set_enabled(true);
        }
    }
}

/// Prints the table and also writes CSV when `--csv` was given.
pub fn emit(args: &Args, table: &crate::table::Table) {
    table.print();
    if let Some(path) = args.csv_path() {
        table
            .write_csv(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("(csv written to {})", path.display());
    }
    emit_obs(args);
}

/// Writes the observability artifacts (`--metrics-out`, `--trace-out`)
/// if requested. [`emit`] calls this; binaries without a table call it
/// directly.
pub fn emit_obs(args: &Args) {
    if let Some(path) = args.metrics_out() {
        bt_obs::write_metrics_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("(metrics written to {})", path.display());
    }
    if let Some(path) = args.trace_out() {
        bt_obs::write_trace_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("(trace written to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_keys_and_defaults() {
        let a = args("--n 512 --m 32 --rho 1.5 --ps 1,2,4");
        assert_eq!(a.get_usize("n", 0), 512);
        assert_eq!(a.get_usize("m", 0), 32);
        assert_eq!(a.get_usize("p", 8), 8);
        assert!((a.get_f64("rho", 0.0) - 1.5).abs() < 1e-15);
        assert_eq!(a.get_usize_list("ps", &[9]), vec![1, 2, 4]);
        assert_eq!(a.get_usize_list("qs", &[9]), vec![9]);
        assert_eq!(a.get_str("missing"), None);
    }

    #[test]
    fn obs_paths_parsed() {
        let a = args("--metrics-out out/m.json --trace-out out/t.json");
        assert_eq!(a.metrics_out().unwrap().to_str().unwrap(), "out/m.json");
        assert_eq!(a.trace_out().unwrap().to_str().unwrap(), "out/t.json");
        let none = args("--n 1");
        assert!(none.metrics_out().is_none());
        assert!(none.trace_out().is_none());
    }

    #[test]
    fn csv_path_parsed() {
        let a = args("--csv out/fig1.csv");
        assert_eq!(a.csv_path().unwrap().to_str().unwrap(), "out/fig1.csv");
        assert!(args("--n 1").csv_path().is_none());
    }

    #[test]
    #[should_panic(expected = "expected --key")]
    fn bare_token_rejected() {
        let _ = args("n 512");
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn missing_value_rejected() {
        let _ = args("--n");
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_rejected() {
        let a = args("--n abc");
        let _ = a.get_usize("n", 0);
    }
}
