//! **Figure 2** — ARD-over-RD speedup vs `R`, for several block orders.
//!
//! Claim (paper abstract): solving `R` distinct right-hand sides with the
//! accelerated algorithm is `O(R)` faster than classic recursive
//! doubling. The speedup is linear in `R` until it saturates near the
//! flop-constant ratio (~`2.3 M`): `speedup ≈ R / (1 + R c2 / (c3 M))`.
//!
//! ```text
//! cargo run --release -p bt-bench --bin fig2_speedup_vs_r -- \
//!     --n 256 --p 4 --ms 8,16,32 --rs 1,4,16,64,256 [--csv out.csv]
//! ```

use bt_ard::complexity::{predicted_speedup, Config};
use bt_bench::{emit, make_batches, run_ard, run_rd, Args, ExpConfig, GenKind, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 256);
    cfg.p = args.get_usize("p", 4);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let ms = args.get_usize_list("ms", &[8, 16, 32]);
    let rs = args.get_usize_list("rs", &[1, 4, 16, 64, 256]);

    let mut table = Table::new(
        &format!(
            "Figure 2: ARD speedup over RD vs R (N={}, P={})",
            cfg.n, cfg.p
        ),
        &[
            "M",
            "R",
            "speedup_wall",
            "speedup_model",
            "predicted",
            "linear_R",
        ],
    );

    for &m in &ms {
        cfg.m = m;
        for &r_total in &rs {
            cfg.r = 1;
            let batches = make_batches(&cfg, r_total);
            let rd = run_rd(&cfg, &batches, false);
            let ard = run_ard(&cfg, &batches, false);
            let c = Config {
                n: cfg.n,
                m,
                p: cfg.p,
                r: 1,
            };
            table.row(&[
                m.to_string(),
                r_total.to_string(),
                format!("{:.2}", rd.wall / ard.wall),
                format!("{:.2}", rd.modeled / ard.modeled),
                format!("{:.2}", predicted_speedup(&c, r_total, 1)),
                r_total.to_string(),
            ]);
        }
    }
    emit(&args, &table);
    println!(
        "Expected shape: for R << M the measured speedup tracks the linear_R\n\
         column (the O(R) improvement); for R >> M it saturates at an O(M)\n\
         plateau — larger M saturates later and higher."
    );
}
