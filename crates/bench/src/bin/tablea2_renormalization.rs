//! **Table A2 (ablation)** — why the companion scan renormalizes.
//!
//! The homogeneous companion states grow geometrically (`|U_i| ~ |Z|^i`
//! for block iterates `Z` of norm > 1). This ablation advances the state
//! with and without the scalar renormalization and reports the row at
//! which the raw recurrence overflows `f64` — versus the renormalized
//! recurrence, which stays in `[0, 1]` forever (the ratio `U V^{-1}` is
//! scale-invariant, so accuracy is unaffected).
//!
//! ```text
//! cargo run --release -p bt-bench --bin tablea2_renormalization -- \
//!     --m 4 --n 4096 [--csv out.csv]
//! ```

use bt_ard::companion::{CompanionState, CompanionW};
use bt_bench::{emit, Args, Table};
use bt_blocktri::gen::ClusteredToeplitz;
use bt_blocktri::BlockTridiag;
use bt_dense::{gemm, Mat, Trans};

/// Raw (non-renormalized) state advance; returns the first row at which
/// an entry stops being finite, if any.
fn raw_overflow_row(t: &BlockTridiag) -> Option<usize> {
    let row0 = t.row(0);
    let c_lu = bt_dense::LuFactors::factor(&row0.c).unwrap();
    let mut u = c_lu.solve(&row0.b);
    let mut v = Mat::identity(t.m());
    for i in 1..t.n() - 1 {
        let w = CompanionW::from_row(t.row(i)).unwrap();
        let mut new_u = Mat::zeros(t.m(), t.m());
        gemm(1.0, &w.p, Trans::No, &u, Trans::No, 0.0, &mut new_u);
        gemm(1.0, &w.q, Trans::No, &v, Trans::No, 1.0, &mut new_u);
        v = u;
        u = new_u;
        if !u.all_finite() {
            return Some(i);
        }
    }
    None
}

/// Renormalized advance: returns (max entry magnitude seen, diag of the
/// final extracted block) to show it stays healthy.
fn renormalized_health(t: &BlockTridiag) -> (f64, f64) {
    let mut state = CompanionState::initial(t.row(0)).unwrap();
    let mut max_seen = 0.0f64;
    for i in 1..t.n() - 1 {
        let w = CompanionW::from_row(t.row(i)).unwrap();
        state.advance(&w);
        max_seen = max_seen.max(state.u.max_abs()).max(state.v.max_abs());
    }
    let d = state.extract_diag(&t.row(t.n() - 2).c).unwrap();
    (max_seen, d[(0, 0)])
}

fn main() {
    let args = Args::from_env();
    let m = args.get_usize("m", 4);
    let n = args.get_usize("n", 4096);
    let ds = [4.0, 8.0, 16.0, 64.0];

    let mut table = Table::new(
        &format!("Table A2: renormalization ablation (N={n}, M={m}, clustered)"),
        &[
            "diag_weight",
            "raw_overflow_row",
            "renorm_max_entry",
            "renorm_final_d00",
        ],
    );

    for &d in &ds {
        let src = ClusteredToeplitz::new(n, m, d, 1e-4, 1);
        let t = BlockTridiag::from_source(&src);
        let overflow =
            raw_overflow_row(&t).map_or("never (N too small)".to_string(), |r| r.to_string());
        let (max_seen, d00) = renormalized_health(&t);
        table.row(&[
            format!("{d}"),
            overflow,
            format!("{max_seen:.3}"),
            format!("{d00:.3}"),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: raw recurrence overflows around row ~710/log10(d)\n\
         (|U| ~ d^i exceeding 1e308); the renormalized state never exceeds\n\
         1.0 and still extracts the correct diagonal (d00 ~ diag weight)."
    );
}
