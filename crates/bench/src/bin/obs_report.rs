//! Modeled-vs-measured report: runs one accelerated (ARD) solve with
//! observability on and compares the cost model's virtual-time
//! predictions against real wall-clock measurements, phase by phase.
//!
//! Alongside the table it reports the kernel counters the solve
//! incremented (GEMM dispatch counts, flops, pack time, panel solves)
//! and, with `--trace-out` / `--metrics-out`, writes the wall-clock
//! Chrome trace and the metrics registry JSON for offline inspection
//! (validate with `cargo run -p bt-obs --bin obs_validate`).
//!
//! ```text
//! cargo run --release -p bt-bench --bin obs_report -- \
//!     --n 256 --m 16 --p 8 --r 8 \
//!     --trace-out results/obs_trace.json --metrics-out results/obs_metrics.json
//! ```

use bt_bench::{emit, fmt_secs, Args, ExpConfig, Table};
use bt_blocktri::gen::random_rhs;

fn main() {
    let args = Args::from_env();
    // This binary exists to observe: on regardless of BT_OBS / flags.
    bt_obs::set_enabled(true);

    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 256);
    cfg.m = args.get_usize("m", 16);
    cfg.p = args.get_usize("p", 8);
    cfg.r = args.get_usize("r", 8);
    cfg.seed = args.get_usize("seed", 2014) as u64;
    let batches: Vec<_> = (0..args.get_usize("batches", 2))
        .map(|b| random_rhs(cfg.n, cfg.m, cfg.r, cfg.seed ^ (b as u64 + 1)))
        .collect();

    let src = cfg.source();
    let out =
        bt_ard::driver::ard_solve_cfg(&cfg.driver(), &src, &batches).expect("ard solve failed");

    let title = format!(
        "ARD modeled vs measured (N={}, M={}, P={}, R={}, {} batches)",
        cfg.n,
        cfg.m,
        cfg.p,
        cfg.r,
        batches.len()
    );
    let mut table = Table::new(&title, &["phase", "modeled", "wall", "wall/modeled"]);
    let mut push = |phase: String, modeled: f64, wall: f64| {
        let ratio = if modeled > 0.0 {
            format!("{:.2}", wall / modeled)
        } else {
            "-".to_string()
        };
        table.row(&[phase, fmt_secs(modeled), fmt_secs(wall), ratio]);
    };
    push(
        "setup".to_string(),
        out.timings.setup_modeled,
        out.timings.setup_wall.as_secs_f64(),
    );
    for (bi, (modeled, wall)) in out
        .timings
        .solve_modeled
        .iter()
        .zip(&out.timings.solve_wall)
        .enumerate()
    {
        push(format!("solve[{bi}]"), *modeled, wall.as_secs_f64());
    }
    push(
        "total".to_string(),
        out.timings.total_modeled(),
        out.timings.total_wall().as_secs_f64(),
    );
    emit(&args, &table);

    // The modeled column is virtual time under the configured CostModel
    // (cluster defaults), so the ratio is a calibration factor, not an
    // error: a flat ratio across phases means the model captures the
    // *shape* of the run even when its constants differ from this host.
    println!("\nkernel counters incremented by this run:");
    match &out.obs_counters {
        Some(counters) if !counters.is_empty() => {
            for (name, delta) in counters {
                println!("  {name:<40} {delta}");
            }
        }
        _ => println!("  (none recorded)"),
    }
}
