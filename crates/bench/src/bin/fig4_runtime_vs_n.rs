//! **Figure 4** — runtime vs block-row count `N` at fixed `P`.
//!
//! Claim: with `P` fixed, the `N/P` local term dominates and both
//! algorithms are linear in `N`; the gap between them (the amortized
//! matrix work) also grows linearly in `N`.
//!
//! ```text
//! cargo run --release -p bt-bench --bin fig4_runtime_vs_n -- \
//!     --m 16 --p 8 --r 8 --ns 128,256,512,1024,2048 [--csv out.csv]
//! ```

use bt_bench::{emit, fmt_secs, make_batches, run_ard, run_rd, Args, ExpConfig, GenKind, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.m = args.get_usize("m", 16);
    cfg.p = args.get_usize("p", 8);
    cfg.r = args.get_usize("r", 8);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let nbatches = args.get_usize("batches", 4);
    let ns = args.get_usize_list("ns", &[128, 256, 512, 1024, 2048]);

    let mut table = Table::new(
        &format!(
            "Figure 4: runtime vs N (M={}, P={}, R={} x {} batches)",
            cfg.m, cfg.p, cfg.r, nbatches
        ),
        &[
            "N",
            "rd_wall",
            "ard_wall",
            "rd_model",
            "ard_model",
            "rd_per_row_ns",
            "ard_per_row_ns",
        ],
    );

    for &n in &ns {
        cfg.n = n;
        let batches = make_batches(&cfg, nbatches);
        let rd = run_rd(&cfg, &batches, false);
        let ard = run_ard(&cfg, &batches, false);
        table.row(&[
            n.to_string(),
            fmt_secs(rd.wall),
            fmt_secs(ard.wall),
            fmt_secs(rd.modeled),
            fmt_secs(ard.modeled),
            format!("{:.0}", rd.modeled / n as f64 * 1e9),
            format!("{:.0}", ard.modeled / n as f64 * 1e9),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: both modeled times linear in N (per-row columns\n\
         flat once N/P dominates the log P term); ARD stays below RD by the\n\
         amortization factor."
    );
}
