//! **Figure 7** — crossover point: how many right-hand sides before the
//! accelerated algorithm's setup pays for itself?
//!
//! Claim: because one classic-RD solve costs at least as much as the
//! accelerated setup, the crossover `R*` is 1-2 — acceleration wins
//! essentially immediately, and everything beyond `R*` is pure gain.
//!
//! `R*` is derived from measured modeled times
//! (`R* = ceil(setup / (rd_batch - ard_batch))`) and cross-checked
//! against the flop model.
//!
//! ```text
//! cargo run --release -p bt-bench --bin fig7_crossover -- \
//!     --n 512 --p 8 --ms 4,8,16,32,64 [--csv out.csv]
//! ```

use bt_ard::complexity::{ard_solve_flops, rd_solve_flops, setup_flops};
use bt_bench::{emit, fmt_secs, make_batches, run_ard, run_rd, Args, ExpConfig, GenKind, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 512);
    cfg.p = args.get_usize("p", 8);
    cfg.r = args.get_usize("r", 1);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let ms = args.get_usize_list("ms", &[4, 8, 16, 32, 64]);

    let mut table = Table::new(
        &format!(
            "Figure 7: crossover R* vs M (N={}, P={}, R={}/batch)",
            cfg.n, cfg.p, cfg.r
        ),
        &[
            "M",
            "ard_setup",
            "ard_batch",
            "rd_batch",
            "Rstar_measured",
            "Rstar_flop_model",
        ],
    );

    for &m in &ms {
        cfg.m = m;
        let batches = make_batches(&cfg, 4);
        let rd = run_rd(&cfg, &batches, false);
        let ard = run_ard(&cfg, &batches, false);
        let gain = rd.solve_modeled_mean - ard.solve_modeled_mean;
        let rstar = if gain > 0.0 {
            (ard.setup_modeled / gain).ceil()
        } else {
            f64::INFINITY
        };
        let c = cfg.complexity();
        let model_gain = rd_solve_flops(&c) - ard_solve_flops(&c);
        let rstar_model = (setup_flops(&c) / model_gain).ceil();
        table.row(&[
            m.to_string(),
            fmt_secs(ard.setup_modeled),
            fmt_secs(ard.solve_modeled_mean),
            fmt_secs(rd.solve_modeled_mean),
            format!("{rstar:.0}"),
            format!("{rstar_model:.0}"),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: R* = 1-2 for every M (one RD solve already contains\n\
         the whole setup's work), so acceleration pays off from the second\n\
         right-hand side at the latest."
    );
}
