//! **Figure A2 (ablation, extension)** — memory-lean replay.
//!
//! The standard accelerated solve fixes each row up against a stored
//! local prefix matrix; the lean variant (DESIGN.md §8) exploits the fact
//! that the scan's exclusive vector *is* the boundary value and re-runs
//! the plain recurrence instead, so the two per-row prefix matrices
//! (2 of 5 stored `M x M` matrices per row) can be freed. Flop count and
//! message pattern are identical; this ablation confirms the memory
//! saving and the unchanged solve time.
//!
//! ```text
//! cargo run --release -p bt-bench --bin figa2_lean_ablation -- \
//!     --n 512 --p 8 --r 8 --ms 8,16,32,64 [--csv out.csv]
//! ```

use bt_ard::driver::{ard_solve_cfg, DriverConfig};
use bt_bench::{emit, fmt_bytes, fmt_secs, make_batches, Args, ExpConfig, GenKind, Table};
use bt_mpsim::CostModel;

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 512);
    cfg.p = args.get_usize("p", 8);
    cfg.r = args.get_usize("r", 8);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let ms = args.get_usize_list("ms", &[8, 16, 32, 64]);
    let nbatches = args.get_usize("batches", 4);

    let mut table = Table::new(
        &format!(
            "Figure A2: full vs lean replay (N={}, P={}, R={})",
            cfg.n, cfg.p, cfg.r
        ),
        &[
            "M",
            "full_bytes",
            "lean_bytes",
            "saving",
            "full_solve",
            "lean_solve",
            "flops_equal",
        ],
    );

    for &m in &ms {
        cfg.m = m;
        let batches = make_batches(&cfg, nbatches);
        let src = cfg.source();
        let full_cfg = DriverConfig::new(cfg.p).with_model(CostModel::cluster());
        let lean_cfg = full_cfg.with_lean();
        let full = ard_solve_cfg(&full_cfg, &src, &batches).expect("solve");
        let lean = ard_solve_cfg(&lean_cfg, &src, &batches).expect("solve");
        let nb = nbatches as f64;
        table.row(&[
            m.to_string(),
            fmt_bytes(full.factor_bytes),
            fmt_bytes(lean.factor_bytes),
            format!(
                "{:.0}%",
                100.0 * (1.0 - lean.factor_bytes as f64 / full.factor_bytes as f64)
            ),
            fmt_secs(full.timings.solve_modeled.iter().sum::<f64>() / nb),
            fmt_secs(lean.timings.solve_modeled.iter().sum::<f64>() / nb),
            (full.stats.total().flops == lean.stats.total().flops).to_string(),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: ~40% factor-memory saving at identical flop counts\n\
         and solve times (the recurrence and the fixup cost the same)."
    );
}
