//! Runs the entire evaluation suite — every table and figure, core and
//! extension — writing console output and a CSV per experiment under
//! `results/`.
//!
//! ```text
//! cargo run --release -p bt-bench --bin run_all [-- --out results]
//! ```

use std::path::PathBuf;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1_complexity",
    "fig1_runtime_vs_r",
    "fig2_speedup_vs_r",
    "fig3_strong_scaling",
    "fig4_runtime_vs_n",
    "fig5_runtime_vs_m",
    "table2_breakdown",
    "table3_accuracy",
    "table4_auto_strategy",
    "fig6_comm_volume",
    "fig7_crossover",
    "figa1_windowed_ablation",
    "figa2_lean_ablation",
    "figa4_spike_comparison",
    "figa5_refinement",
    "figa6_pcr_comparison",
    "figa7_batch_width",
    "tablea2_renormalization",
];

fn main() {
    let args = bt_bench::Args::from_env();
    let out_dir = args.get_str("out").unwrap_or("results").to_string();
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let started = std::time::Instant::now();
    let mut failures = Vec::new();
    for (i, exp) in EXPERIMENTS.iter().enumerate() {
        println!("\n[{}/{}] {exp}", i + 1, EXPERIMENTS.len());
        let bin: PathBuf = exe_dir.join(exp);
        let status = Command::new(&bin)
            .arg("--csv")
            .arg(format!("{out_dir}/{exp}.csv"))
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!(
                    "could not launch {exp}: {e}\n(hint: build all bins first with \
                     `cargo build --release -p bt-bench`)"
                );
                failures.push(*exp);
            }
        }
    }
    println!(
        "\nfinished {} experiments in {:.1?}; CSVs in {out_dir}/",
        EXPERIMENTS.len() - failures.len(),
        started.elapsed()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
