//! **Figure 1** — total runtime vs number of right-hand sides `R`.
//!
//! Claim (paper abstract): classic recursive doubling re-pays the
//! `O(M^3 (N/P + log P))` matrix work for every right-hand side, so its
//! total time grows with slope ~`M^3`; the accelerated algorithm pays it
//! once and each additional RHS costs only `O(M^2 (N/P + log P))`.
//!
//! Three curves: RD (one solve per RHS), ARD (setup + one replay per
//! RHS), and ARD-batched (setup + a single `M x R` panel solve — the
//! GEMM-friendly mode real applications use).
//!
//! ```text
//! cargo run --release -p bt-bench --bin fig1_runtime_vs_r -- \
//!     --n 512 --m 16 --p 8 --rs 1,2,4,8,16,32,64,128 [--csv out.csv]
//! ```

use bt_bench::{emit, fmt_secs, make_batches, run_ard, run_rd, Args, ExpConfig, GenKind, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 512);
    cfg.m = args.get_usize("m", 16);
    cfg.p = args.get_usize("p", 8);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let rs = args.get_usize_list("rs", &[1, 2, 4, 8, 16, 32, 64, 128]);

    let mut table = Table::new(
        &format!(
            "Figure 1: total time vs R (N={}, M={}, P={}, gen={})",
            cfg.n,
            cfg.m,
            cfg.p,
            cfg.gen.name()
        ),
        &[
            "R",
            "rd_wall",
            "ard_wall",
            "ardbatch_wall",
            "rd_model",
            "ard_model",
            "ardbatch_model",
            "speedup_model",
        ],
    );

    for &r_total in &rs {
        // RD and ARD process R single-column right-hand sides.
        cfg.r = 1;
        let batches = make_batches(&cfg, r_total);
        let rd = run_rd(&cfg, &batches, false);
        let ard = run_ard(&cfg, &batches, false);
        // ARD-batched: all R columns as one panel.
        let mut bcfg = cfg;
        bcfg.r = r_total;
        let batched = make_batches(&bcfg, 1);
        let ard_b = run_ard(&bcfg, &batched, false);

        table.row(&[
            r_total.to_string(),
            fmt_secs(rd.wall),
            fmt_secs(ard.wall),
            fmt_secs(ard_b.wall),
            fmt_secs(rd.modeled),
            fmt_secs(ard.modeled),
            fmt_secs(ard_b.modeled),
            format!("{:.2}", rd.modeled / ard.modeled),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: rd_* grows linearly with slope ~M^3 work per RHS;\n\
         ard_* has a one-time setup then slope ~M^2 per RHS; speedup_model\n\
         approaches R/(1 + R/M) (abstract's O(R) improvement)."
    );
}
