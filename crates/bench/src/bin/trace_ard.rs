//! Produces a Chrome-tracing timeline of one accelerated setup + solves.
//!
//! Load the output JSON in `chrome://tracing` or <https://ui.perfetto.dev>
//! to see the parallel schedule on the virtual clock: the local scan
//! work, the `log P` recursive-doubling rounds, and each rank's receive
//! waits. Also prints per-rank wait fractions (a load-balance summary).
//!
//! ```text
//! cargo run --release -p bt-bench --bin trace_ard -- \
//!     --n 256 --m 16 --p 8 --r 8 --out results/ard_trace.json
//! ```

use bt_ard::state::{ArdRankFactors, RankSystem};
use bt_bench::Args;
use bt_blocktri::gen::rhs_panel;
use bt_blocktri::gen::ClusteredToeplitz;
use bt_dense::Mat;
use bt_mpsim::{run_spmd_traced, CostModel};

fn main() {
    let args = Args::from_env();
    let n = args.get_usize("n", 256);
    let m = args.get_usize("m", 16);
    let p = args.get_usize("p", 8);
    let r = args.get_usize("r", 8);
    let out_path = args
        .get_str("out")
        .unwrap_or("results/ard_trace.json")
        .to_string();
    let src = ClusteredToeplitz::standard(n, m, 1);

    let (out, trace) = run_spmd_traced(p, CostModel::cluster(), |comm| {
        let sys = RankSystem::from_source(&src, p, comm.rank());
        let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");
        for batch in 0..2u64 {
            let y_local: Vec<Mat> = (sys.lo..sys.hi)
                .map(|i| rhs_panel(m, r, batch, i))
                .collect();
            let _ = factors.solve_replay(comm, &y_local);
        }
    });

    let path = std::path::PathBuf::from(&out_path);
    trace.write_chrome_json(&path).expect("write trace");
    println!(
        "traced ARD setup + 2 solves: N={n}, M={m}, P={p}, R={r} -> {} events, modeled {:.3} ms",
        trace.len(),
        out.modeled_seconds * 1e3
    );
    println!("trace written to {out_path} (open in chrome://tracing or Perfetto)");
    println!("\nper-rank virtual-time wait fractions (blocked in recv):");
    for rank in 0..p {
        println!("  rank {rank}: {:5.1}%", trace.wait_fraction(rank) * 100.0);
    }
    bt_bench::emit_obs(&args);
}
