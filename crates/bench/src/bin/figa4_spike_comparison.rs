//! **Figure A4 (extension)** — accelerated recursive doubling vs the
//! SPIKE-style partitioned solver.
//!
//! Both amortize matrix work across right-hand sides; they differ in the
//! cross-rank stage: ARD's scans cost `O(M^3 log P)` (setup) /
//! `O(M^2 R log P)` (solve) on the critical path, while SPIKE's reduced
//! system is `O(P M^3)` / `O(P M^2 R)` *serialized on rank 0*. SPIKE is
//! unconditionally stable; ARD's exact scan has the Table III envelope.
//! This sweep shows the modeled-time crossover in `P` and the accuracy
//! contrast on a wide-spectrum system.
//!
//! ```text
//! cargo run --release -p bt-bench --bin figa4_spike_comparison -- \
//!     --n 2048 --m 16 --r 8 --ps 2,4,8,16,32,64,128 [--csv out.csv]
//! ```

use bt_ard::driver::{ard_solve_cfg, spike_solve_cfg, DriverConfig};
use bt_bench::{emit, fmt_secs, make_batches, Args, ExpConfig, GenKind, Table};
use bt_mpsim::CostModel;

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 2048);
    cfg.m = args.get_usize("m", 16);
    cfg.r = args.get_usize("r", 8);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    cfg.model = CostModel::cluster();
    let ps = args.get_usize_list("ps", &[2, 4, 8, 16, 32, 64, 128]);
    let nbatches = args.get_usize("batches", 4);

    let mut table = Table::new(
        &format!(
            "Figure A4: ARD vs SPIKE (N={}, M={}, R={} x {} batches)",
            cfg.n, cfg.m, cfg.r, nbatches
        ),
        &[
            "P",
            "ard_setup",
            "spike_setup",
            "ard_solve",
            "spike_solve",
            "ard_total",
            "spike_total",
        ],
    );

    for &p in &ps {
        if p > cfg.n {
            continue;
        }
        cfg.p = p;
        let batches = make_batches(&cfg, nbatches);
        let src = cfg.source();
        let driver = DriverConfig::new(p).with_model(cfg.model);
        let ard = ard_solve_cfg(&driver, &src, &batches).expect("ard");
        let spk = spike_solve_cfg(&driver, &src, &batches).expect("spike");
        let nb = nbatches as f64;
        table.row(&[
            p.to_string(),
            fmt_secs(ard.timings.setup_modeled),
            fmt_secs(spk.timings.setup_modeled),
            fmt_secs(ard.timings.solve_modeled.iter().sum::<f64>() / nb),
            fmt_secs(spk.timings.solve_modeled.iter().sum::<f64>() / nb),
            fmt_secs(ard.timings.total_modeled()),
            fmt_secs(spk.timings.total_modeled()),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: at small P SPIKE competes (its local stage is a\n\
         plain Thomas sweep, cheaper per row than the companion scan); as P\n\
         grows, ARD keeps improving (log P critical path) while SPIKE's\n\
         O(P) reduced stage on rank 0 flattens and then inverts its curve."
    );
}
