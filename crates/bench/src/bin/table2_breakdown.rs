//! **Table II** — accelerated algorithm phase breakdown and memory price.
//!
//! Claim: the one-time setup dominates a single solve by a factor ~`M`
//! (so it is amortized after the first one or two right-hand-side
//! batches), at a storage cost of ~`5 M^2` doubles per local row.
//!
//! ```text
//! cargo run --release -p bt-bench --bin table2_breakdown -- \
//!     --n 512 --m 32 --p 8 --r 8 --batches 8 [--csv out.csv]
//! ```

use bt_bench::{
    emit, fmt_bytes, fmt_secs, make_batches, run_ard, run_rd, Args, ExpConfig, GenKind, Table,
};

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 512);
    cfg.m = args.get_usize("m", 32);
    cfg.p = args.get_usize("p", 8);
    cfg.r = args.get_usize("r", 8);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let nbatches = args.get_usize("batches", 8);

    let batches = make_batches(&cfg, nbatches);
    let ard = run_ard(&cfg, &batches, true);
    let rd = run_rd(&cfg, &batches, true);

    let mut table = Table::new(
        &format!(
            "Table II: ARD breakdown (N={}, M={}, P={}, R={}, {} batches)",
            cfg.n, cfg.m, cfg.p, cfg.r, nbatches
        ),
        &["quantity", "value"],
    );
    table.row(&["ard setup wall".into(), fmt_secs(ard.setup_wall)]);
    table.row(&["ard setup modeled".into(), fmt_secs(ard.setup_modeled)]);
    table.row(&[
        "ard per-batch solve wall".into(),
        fmt_secs(ard.solve_wall_mean),
    ]);
    table.row(&[
        "ard per-batch solve modeled".into(),
        fmt_secs(ard.solve_modeled_mean),
    ]);
    table.row(&[
        "setup / solve ratio (modeled)".into(),
        format!("{:.1}", ard.setup_modeled / ard.solve_modeled_mean),
    ]);
    table.row(&["rd per-batch wall".into(), fmt_secs(rd.solve_wall_mean)]);
    table.row(&[
        "rd per-batch modeled".into(),
        fmt_secs(rd.solve_modeled_mean),
    ]);
    let gain = rd.solve_modeled_mean - ard.solve_modeled_mean;
    let amortize = (ard.setup_modeled / gain).ceil();
    table.row(&["batches to amortize setup".into(), format!("{amortize:.0}")]);
    table.row(&[
        "stored factors (peak/rank)".into(),
        fmt_bytes(ard.factor_bytes),
    ]);
    table.row(&[
        "worst residual (ard)".into(),
        format!("{:.2e}", ard.residual),
    ]);
    table.row(&["worst residual (rd)".into(), format!("{:.2e}", rd.residual)]);
    emit(&args, &table);
    println!(
        "Expected shape: setup/solve ratio ~O(M/R); amortization after 1-2\n\
         batches; storage ~5 M^2 doubles per local row; residuals equal for\n\
         both algorithms (identical arithmetic)."
    );
}
