//! Solver-level allocation benchmark: warm (workspace-pooled) replay vs
//! the cold allocate-per-call baseline, swept over batch width `R`.
//!
//! The cold baseline re-runs each solve after draining the rank
//! workspace and the message-panel pool, which reproduces the
//! pre-workspace behaviour (every temporary and every message payload
//! heap-allocated per call). The warm path reuses caller-held output
//! panels via [`ArdRankFactors::solve_replay_into`] with the pools left
//! warm — the allocation-free hot path `tests/workspace.rs` pins.
//!
//! Emits `BENCH_solve.json` at the workspace root (override with
//! `--out`): per-`R` setup time, cold/warm best-of-N solve wall times,
//! per-RHS replay times and the workspace high-water mark.
//!
//! ```text
//! cargo run --release -p bt-bench --bin bench_solve -- \
//!     --n 256 --m 16 --p 4 --rs 1,16,256 --reps 5
//! cargo run --release -p bt-bench --bin bench_solve -- --smoke 1
//! ```

use std::time::Instant;

use bt_ard::state::{ArdRankFactors, RankSystem};
use bt_bench::Args;
use bt_blocktri::gen::{rhs_panel, ClusteredToeplitz};
use bt_dense::Mat;
use bt_mpsim::{panel_pool_drain, run_spmd, Comm, CommBackend, CostModel};

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

/// Rank-synchronized best-of-`reps` wall time of one collective call.
fn time_collective(comm: &mut Comm, reps: usize, mut f: impl FnMut(&mut Comm)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        // Barrier so no rank starts the timed region early.
        let _ = comm.allreduce(0u64, |a, b| (*a).max(*b));
        let t0 = Instant::now();
        f(comm);
        let dt = t0.elapsed().as_secs_f64();
        // The collective's cost is the slowest rank's.
        best = best.min(comm.allreduce(dt, |a, b| a.max(*b)));
    }
    best
}

struct Record {
    r: usize,
    setup_s: f64,
    cold_solve_s: f64,
    warm_solve_s: f64,
    ws_bytes_high_water: u64,
}

fn main() {
    let args = Args::from_env();
    let smoke = args.get_usize("smoke", 0) != 0;
    let (dn, dm, dreps) = if smoke { (64, 8, 2) } else { (256, 16, 5) };
    let n = args.get_usize("n", dn);
    let m = args.get_usize("m", dm);
    let p = args.get_usize("p", 4);
    let default_rs: &[usize] = if smoke { &[1, 4] } else { &[1, 16, 256] };
    let rs = args.get_usize_list("rs", default_rs);
    let reps = args.get_usize("reps", dreps);
    let src = ClusteredToeplitz::standard(n, m, 1);

    let mut records = Vec::new();
    for &r in &rs {
        let out = run_spmd(p, ZERO, |comm| {
            let sys = RankSystem::from_source(&src, p, comm.rank());
            let t0 = Instant::now();
            let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");
            let setup_s = comm.allreduce(t0.elapsed().as_secs_f64(), |a, b| a.max(*b));

            let y_local: Vec<Mat> = (sys.lo..sys.hi).map(|i| rhs_panel(m, r, 0, i)).collect();

            // Cold baseline: drain both pools before every call so each
            // solve re-allocates everything, as the pre-workspace code
            // did (outputs included — `solve_replay` allocates them).
            let cold_solve_s = time_collective(comm, reps, |comm| {
                factors.reset_workspace();
                panel_pool_drain();
                let x = factors.solve_replay(comm, &y_local);
                assert_eq!(x.len(), y_local.len());
            });

            // Warm path: pools stay warm, outputs are reused.
            let mut x: Vec<Mat> = y_local
                .iter()
                .map(|p| Mat::zeros(p.rows(), p.cols()))
                .collect();
            factors.solve_replay_into(comm, &y_local, &mut x); // warm-up
            let warm_solve_s = time_collective(comm, reps, |comm| {
                factors.solve_replay_into(comm, &y_local, &mut x);
            });

            (
                setup_s,
                cold_solve_s,
                warm_solve_s,
                factors.workspace_stats().bytes_high_water,
            )
        });
        let (setup_s, cold_solve_s, warm_solve_s, _) = out.results[0];
        let ws_bytes_high_water = out
            .results
            .iter()
            .map(|&(_, _, _, hw)| hw)
            .max()
            .unwrap_or(0);
        println!(
            "bench_solve: R={r:<4} setup {:>9.3} ms  cold {:>9.3} ms  warm {:>9.3} ms  \
             ({:.2}x, per-RHS warm {:.1} us, ws high-water {} B)",
            setup_s * 1e3,
            cold_solve_s * 1e3,
            warm_solve_s * 1e3,
            cold_solve_s / warm_solve_s,
            warm_solve_s / r as f64 * 1e6,
            ws_bytes_high_water,
        );
        records.push(Record {
            r,
            setup_s,
            cold_solve_s,
            warm_solve_s,
            ws_bytes_high_water,
        });
    }

    let rows: Vec<String> = records
        .iter()
        .map(|rec| {
            format!(
                "    {{\"r\": {}, \"setup_ns\": {:.0}, \"cold_solve_ns\": {:.0}, \
                 \"warm_solve_ns\": {:.0}, \"per_rhs_cold_ns\": {:.0}, \
                 \"per_rhs_warm_ns\": {:.0}, \"warm_speedup_vs_cold\": {:.3}, \
                 \"ws_bytes_high_water\": {}}}",
                rec.r,
                rec.setup_s * 1e9,
                rec.cold_solve_s * 1e9,
                rec.warm_solve_s * 1e9,
                rec.cold_solve_s / rec.r as f64 * 1e9,
                rec.warm_solve_s / rec.r as f64 * 1e9,
                rec.cold_solve_s / rec.warm_solve_s,
                rec.ws_bytes_high_water,
            )
        })
        .collect();
    let generated_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    // Run metadata following the bt-bench-gemm-v2 convention: detected
    // SIMD path and the environment's kernel thread budget, so stale or
    // cross-host JSON is recognizable.
    let simd = bt_dense::simd::active().name();
    let bt_dense_threads = bt_dense::threading::default_threads();
    let json = format!(
        "{{\n  \"bench\": \"ard_solve_replay_workspace\",\n  \"schema\": \"bt-bench-solve-v2\",\n  \
         \"generated_unix_s\": {generated_unix_s},\n  \
         \"simd\": \"{simd}\",\n  \"bt_dense_threads\": {bt_dense_threads},\n  \
         \"n\": {n},\n  \"m\": {m},\n  \"p\": {p},\n  \
         \"reps\": {reps},\n  \"smoke\": {smoke},\n  \
         \"note\": \"best-of-N wall clock, slowest-rank times; 'cold' drains the \
         workspace and panel pools per call (pre-workspace allocate-per-call \
         baseline), 'warm' reuses pooled buffers and caller-held outputs\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solve.json");
    let path = args.get_str("out").unwrap_or(default_path).to_string();
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench_solve: wrote {path}"),
        Err(e) => eprintln!("bench_solve: could not write {path}: {e}"),
    }
    bt_bench::emit_obs(&args);
}
