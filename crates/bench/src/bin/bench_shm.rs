//! Measured-vs-modeled benchmark of the shared-memory backend: the full
//! ARD replay pipeline (setup + RHS-tiled pipelined solves) runs on real
//! rank threads (`bt-shm`) for wall-clock time, and on the virtual-clock
//! simulator (`bt-mpsim`) under a [`bt_comm::CostModel`] calibrated against the
//! same SPSC transport ([`bt_shm::calibrate_shm`]) for the predicted
//! time. The sweep covers world sizes and batch widths; each cell
//! reports:
//!
//! * `wall_ns` — best-of-N rank-synchronized wall clock of one solve on
//!   the shm backend (real threads, real channels, real overlap).
//! * `modeled_ns` — the slowest rank's virtual-clock delta for the same
//!   solve on the simulator under the calibrated model.
//! * `ratio` — `wall / modeled`: how far reality lands from the model.
//!   Oversubscription (P rank threads > cores) legitimately pushes this
//!   above 1; the calibration fit error bounds how much of the gap is
//!   the alpha-beta line itself.
//!
//! Solutions from the two backends are compared bitwise per cell — the
//! sweep doubles as a cross-backend agreement check at benchmark scale.
//!
//! Emits `BENCH_shm.json` (schema `bt-bench-shm-v1`, validated by
//! `obs_validate`) at the workspace root (override with `--out`):
//!
//! ```text
//! cargo run --release -p bt-bench --bin bench_shm
//! cargo run --release -p bt-bench --bin bench_shm -- --smoke 1
//! ```

use std::time::Instant;

use bt_ard::scans::auto_rhs_tile;
use bt_ard::state::{ArdRankFactors, RankSystem};
use bt_bench::Args;
use bt_blocktri::gen::{rhs_panel, ClusteredToeplitz};
use bt_blocktri::BlockRowSource;
use bt_comm::CommBackend;
use bt_dense::Mat;
use bt_mpsim::run_spmd;
use bt_shm::{calibrate_shm, run_shm};

struct Record {
    p: usize,
    r: usize,
    tile: usize,
    wall_ns: f64,
    modeled_ns: f64,
}

impl Record {
    fn ratio(&self) -> f64 {
        if self.modeled_ns > 0.0 {
            self.wall_ns / self.modeled_ns
        } else {
            f64::NAN
        }
    }
}

/// One rank's share of a (p, r) cell, backend-generic: setup once, warm
/// up, then take the best-of-`reps` rank-synchronized clock of a single
/// pipelined replay solve. On shm the per-rank clock is wall time; on
/// the simulator it is the (deterministic) virtual delta.
fn solve_cell<C: CommBackend>(
    comm: &mut C,
    src: &ClusteredToeplitz,
    p: usize,
    r: usize,
    tile: usize,
    reps: usize,
) -> (f64, Vec<Mat>) {
    let m = src.m();
    let sys = RankSystem::from_source(src, p, comm.rank());
    let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");
    let y: Vec<Mat> = (sys.lo..sys.hi).map(|i| rhs_panel(m, r, 0, i)).collect();
    let mut x: Vec<Mat> = y
        .iter()
        .map(|yp| Mat::zeros(yp.rows(), yp.cols()))
        .collect();
    factors.solve_replay_into_tiled(comm, &y, &mut x, tile); // warm-up

    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let _ = comm.allreduce(0u64, |a, b| (*a).max(*b)); // sync ranks
        let v0 = comm.virtual_time();
        let t0 = Instant::now();
        factors.solve_replay_into_tiled(comm, &y, &mut x, tile);
        let dv = comm.virtual_time() - v0;
        let dt = t0.elapsed().as_secs_f64();
        let d = if dv > 0.0 { dv } else { dt };
        best = best.min(comm.allreduce(d, |a, b| a.max(*b)));
    }
    (best, x)
}

/// Splits a cell's per-rank outputs into the shared clock and the
/// per-rank solution panels.
fn split(results: Vec<(f64, Vec<Mat>)>) -> (f64, Vec<Vec<Mat>>) {
    let secs = results[0].0;
    (secs, results.into_iter().map(|(_, x)| x).collect())
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = Args::from_env();
    let smoke = args.get_usize("smoke", 0) != 0;
    let (dn, dreps) = if smoke { (32, 1) } else { (512, 3) };
    let n = args.get_usize("n", dn);
    let m = args.get_usize("m", 8);
    let default_ps: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8, 16] };
    let default_rs: &[usize] = if smoke { &[16, 64] } else { &[16, 256, 4096] };
    let ps = args.get_usize_list("ps", default_ps);
    let rs = args.get_usize_list("rs", default_rs);
    let reps = args.get_usize("reps", dreps);

    println!("bench_shm: calibrating the SPSC transport + GEMM rate...");
    let cal = calibrate_shm();
    let model = cal.model;
    println!(
        "bench_shm: alpha {:.1} ns, beta {:.3} ns/B, flop_rate {:.2} GF/s, fit error {:.1}%",
        model.latency_s * 1e9,
        model.per_byte_s * 1e9,
        model.flop_rate / 1e9,
        cal.fit_error * 1e2,
    );

    let src = ClusteredToeplitz::standard(n, m, 1);
    let mut records: Vec<Record> = Vec::new();
    for &p in &ps {
        if p > n {
            println!("bench_shm: skipping P={p} (more ranks than block rows)");
            continue;
        }
        for &r in &rs {
            let tile = auto_rhs_tile(&model, m, r);
            let (wall_s, x_shm) =
                split(run_shm(p, model, |comm| solve_cell(comm, &src, p, r, tile, reps)).results);
            let (modeled_s, x_sim) =
                split(run_spmd(p, model, |comm| solve_cell(comm, &src, p, r, tile, reps)).results);
            assert_eq!(x_shm, x_sim, "P={p} R={r}: shm and sim solutions diverged");
            let rec = Record {
                p,
                r,
                tile,
                wall_ns: wall_s * 1e9,
                modeled_ns: modeled_s * 1e9,
            };
            println!(
                "bench_shm: P={p:<3} R={r:<5} tile={tile:<4} wall {:>9.3} ms  \
                 modeled {:>9.3} ms  ratio {:.2}x",
                wall_s * 1e3,
                modeled_s * 1e3,
                rec.ratio(),
            );
            records.push(rec);
        }
    }
    assert!(!records.is_empty(), "empty sweep");

    // Headline: RHS columns solved per wall second at the biggest cell —
    // the figure the baseline gate tracks across commits.
    let biggest = records
        .iter()
        .max_by_key(|rec| (rec.p, rec.r))
        .expect("nonempty");
    let headline = biggest.r as f64 / (biggest.wall_ns * 1e-9);
    println!(
        "bench_shm: headline {headline:.0} RHS columns/s (P={}, R={}, wall {:.3} ms)",
        biggest.p,
        biggest.r,
        biggest.wall_ns * 1e-6
    );

    let rows: Vec<String> = records
        .iter()
        .map(|rec| {
            format!(
                "    {{\"p\": {}, \"r\": {}, \"tile\": {}, \"wall_ns\": {:.0}, \
                 \"modeled_ns\": {:.0}, \"ratio\": {:.4}}}",
                rec.p,
                rec.r,
                rec.tile,
                rec.wall_ns,
                rec.modeled_ns,
                rec.ratio(),
            )
        })
        .collect();
    let generated_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let simd = bt_dense::simd::active().name();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"shm_replay_pipeline\",\n  \"schema\": \"bt-bench-shm-v1\",\n  \
         \"generated_unix_s\": {generated_unix_s},\n  \
         \"simd\": \"{simd}\",\n  \"cores\": {cores},\n  \
         \"n\": {n},\n  \"m\": {m},\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n  \
         \"calib\": {{\"alpha_s\": {:e}, \"beta_s_per_byte\": {:e}, \
         \"flop_rate\": {:e}, \"fit_error\": {:.6}}},\n  \
         \"headline_rhs_cols_per_s\": {headline:.1},\n  \
         \"note\": \"wall_ns is best-of-{reps} rank-synchronized wall clock of one \
         pipelined replay solve on the shm backend; modeled_ns is the simulator's \
         virtual-clock prediction under the calibrated model; ratio = wall/modeled \
         (> 1 under thread oversubscription: {cores} core(s) here); solutions \
         verified bitwise-identical across backends per cell\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        model.latency_s,
        model.per_byte_s,
        model.flop_rate,
        cal.fit_error,
        rows.join(",\n")
    );
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shm.json");
    let path = args.get_str("out").unwrap_or(default_path).to_string();
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench_shm: wrote {path}"),
        Err(e) => eprintln!("bench_shm: could not write {path}: {e}"),
    }
    bt_bench::emit_obs(&args);
}
