//! Replay-solve pipelining benchmark: RHS-tiled nonblocking scans vs the
//! single-panel (unpiped) path, under the modeled cluster interconnect.
//!
//! For each batch width `R` the replay solve runs three ways — `tile = R`
//! (unpiped: one panel per scan round), a fixed `tile = 64`, and the
//! cost-model auto-tuned tile ([`bt_ard::scans::auto_rhs_tile`]) — and
//! reports:
//!
//! * `modeled_s` — the slowest rank's virtual-clock delta across one
//!   solve, per the run's [`CostModel`]. This is where pipelining shows:
//!   overlapped rounds charge `max(compute, comm)` instead of their sum.
//! * `wall_s` — best-of-N real wall clock of the collective call
//!   (thread-scheduler noise dominates at simulated scale; modeled time
//!   is the headline figure, wall time the sanity check).
//! * `overlap_s` / `inflight_s` — hidden vs total in-flight seconds
//!   summed over ranks, from the nonblocking-receive accounting; their
//!   ratio is how much of the wire time the pipeline actually hid.
//!
//! Every variant's solution panels are compared bitwise against the
//! unpiped run — the pipeline reorders communication, never arithmetic.
//!
//! Emits `BENCH_pipeline.json` at the workspace root (override with
//! `--out`):
//!
//! ```text
//! cargo run --release -p bt-bench --bin bench_pipeline
//! cargo run --release -p bt-bench --bin bench_pipeline -- --smoke 1
//! ```

use std::time::Instant;

use bt_ard::scans::auto_rhs_tile;
use bt_ard::state::{ArdRankFactors, RankSystem};
use bt_bench::Args;
use bt_blocktri::gen::{rhs_panel, ClusteredToeplitz};
use bt_dense::Mat;
use bt_mpsim::{run_spmd, CommBackend, CostModel};

struct Record {
    r: usize,
    variant: &'static str,
    tile: usize,
    n_tiles: usize,
    modeled_s: f64,
    wall_s: f64,
    overlap_s: f64,
    inflight_s: f64,
}

impl Record {
    fn overlap_ratio(&self) -> f64 {
        if self.inflight_s > 0.0 {
            self.overlap_s / self.inflight_s
        } else {
            0.0
        }
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.get_usize("smoke", 0) != 0;
    // One block row per rank puts the scan rounds (the communication) on
    // the critical path — the regime the pipeline targets.
    let (dn, dp, dreps) = if smoke { (8, 8, 2) } else { (64, 64, 3) };
    let n = args.get_usize("n", dn);
    let m = args.get_usize("m", 8);
    let p = args.get_usize("p", dp);
    let default_rs: &[usize] = if smoke { &[16, 64] } else { &[16, 256, 4096] };
    let rs = args.get_usize_list("rs", default_rs);
    let reps = args.get_usize("reps", dreps);
    let model = CostModel::cluster();
    let src = ClusteredToeplitz::standard(n, m, 1);

    let mut records: Vec<Record> = Vec::new();
    for &r in &rs {
        let variants: [(&'static str, usize); 3] = [
            ("unpiped", r.max(1)),
            ("fixed64", 64),
            ("auto", auto_rhs_tile(&model, m, r)),
        ];
        let mut baseline: Option<(f64, Vec<Vec<Mat>>)> = None;
        for (variant, tile) in variants {
            let out = run_spmd(p, model, |comm| {
                let sys = RankSystem::from_source(&src, p, comm.rank());
                let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");
                let y_local: Vec<Mat> = (sys.lo..sys.hi).map(|i| rhs_panel(m, r, 0, i)).collect();
                let mut x: Vec<Mat> = y_local
                    .iter()
                    .map(|p| Mat::zeros(p.rows(), p.cols()))
                    .collect();
                factors.solve_replay_into_tiled(comm, &y_local, &mut x, tile); // warm-up

                // Modeled time: the slowest rank's virtual-clock delta
                // across exactly one solve (deterministic — no reps).
                let v0 = comm.virtual_time();
                let ov0 = comm.overlap_seconds();
                let if0 = comm.inflight_seconds();
                factors.solve_replay_into_tiled(comm, &y_local, &mut x, tile);
                let dv = comm.virtual_time() - v0;
                let d_ov = comm.overlap_seconds() - ov0;
                let d_if = comm.inflight_seconds() - if0;
                let modeled_s = comm.allreduce(dv, |a, b| a.max(*b));
                let overlap_s = comm.allreduce(d_ov, |a, b| a + b);
                let inflight_s = comm.allreduce(d_if, |a, b| a + b);

                // Wall clock: rank-synchronized best-of-N.
                let mut wall_s = f64::INFINITY;
                for _ in 0..reps {
                    let _ = comm.allreduce(0u64, |a, b| (*a).max(*b));
                    let t0 = Instant::now();
                    factors.solve_replay_into_tiled(comm, &y_local, &mut x, tile);
                    let dt = t0.elapsed().as_secs_f64();
                    wall_s = wall_s.min(comm.allreduce(dt, |a, b| a.max(*b)));
                }
                (modeled_s, overlap_s, inflight_s, wall_s, x)
            });
            let (modeled_s, overlap_s, inflight_s, wall_s, ..) = out.results[0];
            let x_all: Vec<Vec<Mat>> = out.results.into_iter().map(|(.., x)| x).collect();
            match &baseline {
                // The pipeline must be a pure communication reordering:
                // every tiling reproduces the unpiped panels bitwise.
                Some((_, x_base)) => assert_eq!(
                    &x_all, x_base,
                    "R={r} tile={tile}: pipelined solution differs from unpiped"
                ),
                None => baseline = Some((modeled_s, x_all)),
            }
            let speedup = baseline.as_ref().map_or(1.0, |(base, _)| base / modeled_s);
            let n_tiles = if r == 0 { 1 } else { r.div_ceil(tile) };
            let rec = Record {
                r,
                variant,
                tile,
                n_tiles,
                modeled_s,
                wall_s,
                overlap_s,
                inflight_s,
            };
            println!(
                "bench_pipeline: R={r:<4} {variant:<8} tile={tile:<4} ({n_tiles:>3} tiles)  \
                 modeled {:>9.3} ms ({speedup:.2}x vs unpiped)  wall {:>8.3} ms  \
                 overlap {:.0}%",
                modeled_s * 1e3,
                wall_s * 1e3,
                rec.overlap_ratio() * 1e2,
            );
            records.push(rec);
        }
    }

    // Headline acceptance figure: the widest batch's best pipelined
    // modeled time against its unpiped baseline.
    if let Some(&r_max) = rs.iter().max() {
        let unpiped = records
            .iter()
            .find(|rec| rec.r == r_max && rec.variant == "unpiped")
            .map(|rec| rec.modeled_s);
        let best = records
            .iter()
            .filter(|rec| rec.r == r_max && rec.variant != "unpiped")
            .map(|rec| rec.modeled_s)
            .fold(f64::INFINITY, f64::min);
        if let Some(unpiped) = unpiped {
            println!(
                "bench_pipeline: R={r_max} pipelined speedup {:.2}x (modeled, P={p})",
                unpiped / best
            );
        }
    }

    let unpiped_for = |r: usize| {
        records
            .iter()
            .find(|rec| rec.r == r && rec.variant == "unpiped")
            .map_or(f64::NAN, |rec| rec.modeled_s)
    };
    let rows: Vec<String> = records
        .iter()
        .map(|rec| {
            format!(
                "    {{\"r\": {}, \"variant\": \"{}\", \"tile\": {}, \"n_tiles\": {}, \
                 \"modeled_ns\": {:.0}, \"wall_ns\": {:.0}, \"overlap_ns\": {:.0}, \
                 \"inflight_ns\": {:.0}, \"overlap_ratio\": {:.4}, \
                 \"modeled_speedup_vs_unpiped\": {:.4}}}",
                rec.r,
                rec.variant,
                rec.tile,
                rec.n_tiles,
                rec.modeled_s * 1e9,
                rec.wall_s * 1e9,
                rec.overlap_s * 1e9,
                rec.inflight_s * 1e9,
                rec.overlap_ratio(),
                unpiped_for(rec.r) / rec.modeled_s,
            )
        })
        .collect();
    let generated_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    // Run metadata following the bt-bench-gemm-v2 convention.
    let simd = bt_dense::simd::active().name();
    let bt_dense_threads = bt_dense::threading::default_threads();
    let json = format!(
        "{{\n  \"bench\": \"ard_replay_pipeline\",\n  \"schema\": \"bt-bench-pipeline-v1\",\n  \
         \"generated_unix_s\": {generated_unix_s},\n  \
         \"simd\": \"{simd}\",\n  \"bt_dense_threads\": {bt_dense_threads},\n  \
         \"n\": {n},\n  \"m\": {m},\n  \"p\": {p},\n  \
         \"reps\": {reps},\n  \"smoke\": {smoke},\n  \
         \"model\": {{\"latency_s\": {:e}, \"per_byte_s\": {:e}, \"flop_rate\": {:e}}},\n  \
         \"note\": \"modeled_ns is the slowest rank's virtual-clock delta for one \
         replay solve; overlap_ratio = hidden / in-flight seconds from the \
         nonblocking-receive accounting; all variants verified bitwise-identical \
         to unpiped\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        model.latency_s,
        model.per_byte_s,
        model.flop_rate,
        rows.join(",\n")
    );
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let path = args.get_str("out").unwrap_or(default_path).to_string();
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench_pipeline: wrote {path}"),
        Err(e) => eprintln!("bench_pipeline: could not write {path}: {e}"),
    }
    bt_bench::emit_obs(&args);
}
