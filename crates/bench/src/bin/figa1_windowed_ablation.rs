//! **Figure A1 (ablation, extension)** — exact-scan vs windowed boundary
//! recovery.
//!
//! The windowed mode (not in the paper; DESIGN.md §8) replaces the
//! Phase 1 cross-rank companion scan with a local warm-started recurrence
//! over the `w` rows preceding each rank. This ablation sweeps `N` on a
//! wide-spectrum system (Poisson) and reports, for both modes: setup
//! time, setup communication, and accuracy — showing (a) where the exact
//! scan's conditioning envelope ends and (b) what the window costs.
//!
//! ```text
//! cargo run --release -p bt-bench --bin figa1_windowed_ablation -- \
//!     --m 6 --p 8 --w 64 --ns 16,32,64,128,256,512 [--csv out.csv]
//! ```

use bt_ard::driver::{ard_solve_cfg, DriverConfig};
use bt_ard::state::BoundaryMode;
use bt_bench::{emit, fmt_bytes, fmt_secs, make_batches, Args, ExpConfig, GenKind, Table};
use bt_blocktri::BlockTridiag;
use bt_mpsim::CostModel;

struct ModeResult {
    setup_modeled: String,
    setup_bytes: String,
    residual: String,
}

fn run_mode(cfg: &ExpConfig, boundary: BoundaryMode) -> ModeResult {
    let src = cfg.source();
    let t = BlockTridiag::from_source(&src);
    let batches = make_batches(cfg, 1);
    let driver = DriverConfig::new(cfg.p)
        .with_model(cfg.model)
        .with_boundary(boundary);
    match ard_solve_cfg(&driver, &src, &batches) {
        Ok(out) => ModeResult {
            setup_modeled: fmt_secs(out.timings.setup_modeled),
            setup_bytes: fmt_bytes(out.stats.max_bytes_sent()),
            residual: format!("{:.1e}", t.rel_residual(&out.x[0], &batches[0])),
        },
        Err(e) => ModeResult {
            setup_modeled: "-".into(),
            setup_bytes: "-".into(),
            residual: format!("breakdown({})", e.row),
        },
    }
}

fn main() {
    let args = Args::from_env();
    let m = args.get_usize("m", 6);
    let p = args.get_usize("p", 8);
    let w = args.get_usize("w", 64);
    let gen = GenKind::parse(args.get_str("gen").unwrap_or("poisson"));
    let ns = args.get_usize_list("ns", &[16, 32, 64, 128, 256, 512]);

    let mut table = Table::new(
        &format!(
            "Figure A1: exact-scan vs windowed({w}) boundary (gen={}, M={m}, P={p})",
            gen.name()
        ),
        &[
            "N",
            "scan_setup",
            "scan_bytes",
            "scan_residual",
            "win_setup",
            "win_bytes",
            "win_residual",
        ],
    );

    for &n in &ns {
        let mut cfg = ExpConfig::default_point();
        cfg.n = n;
        cfg.m = m;
        cfg.p = p.min(n);
        cfg.r = 2;
        cfg.gen = gen;
        cfg.model = CostModel::cluster();
        let scan = run_mode(&cfg, BoundaryMode::ExactScan);
        let win = run_mode(&cfg, BoundaryMode::Windowed(w));
        table.row(&[
            n.to_string(),
            scan.setup_modeled,
            scan.setup_bytes,
            scan.residual,
            win.setup_modeled,
            win.setup_bytes,
            win.residual,
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: scan_residual degrades geometrically with N and\n\
         eventually breaks down (prefix-product conditioning); win_residual\n\
         stays ~1e-13 at every N, with strictly less setup communication\n\
         (no Phase 1 scan) at the cost of O(w M^3) extra local work."
    );
}
