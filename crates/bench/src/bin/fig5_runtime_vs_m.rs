//! **Figure 5** — runtime vs block order `M` (log-log slopes).
//!
//! Claim: classic recursive doubling's per-solve time scales as `M^3`
//! (matrix-matrix work), while the accelerated per-solve time scales as
//! `M^2` (matrix-panel work). On a log-log plot the two curves have
//! slopes ~3 and ~2; the printed `slope` columns estimate them from
//! consecutive sweep points.
//!
//! ```text
//! cargo run --release -p bt-bench --bin fig5_runtime_vs_m -- \
//!     --n 256 --p 4 --r 4 --ms 4,8,16,32,64 [--csv out.csv]
//! ```

use bt_bench::{emit, fmt_secs, make_batches, run_ard, run_rd, Args, ExpConfig, GenKind, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 256);
    cfg.p = args.get_usize("p", 4);
    cfg.r = args.get_usize("r", 4);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let nbatches = args.get_usize("batches", 3);
    let ms = args.get_usize_list("ms", &[4, 8, 16, 32, 64]);

    let mut table = Table::new(
        &format!(
            "Figure 5: per-solve time vs M (N={}, P={}, R={} x {} batches)",
            cfg.n, cfg.p, cfg.r, nbatches
        ),
        &[
            "M",
            "rd_solve_model",
            "ard_solve_model",
            "rd_slope",
            "ard_slope",
            "rd_solve_wall",
            "ard_solve_wall",
        ],
    );

    let mut prev: Option<(usize, f64, f64)> = None;
    for &m in &ms {
        cfg.m = m;
        let batches = make_batches(&cfg, nbatches);
        let rd = run_rd(&cfg, &batches, false);
        let ard = run_ard(&cfg, &batches, false);
        // Per-batch solve time: for RD this includes the matrix work (it
        // has no setup phase); for ARD it is the replay only.
        let rd_solve = rd.solve_modeled_mean;
        let ard_solve = ard.solve_modeled_mean;
        let (rd_slope, ard_slope) = match prev {
            None => ("-".to_string(), "-".to_string()),
            Some((pm, prd, pard)) => {
                let dm = (m as f64 / pm as f64).ln();
                (
                    format!("{:.2}", (rd_solve / prd).ln() / dm),
                    format!("{:.2}", (ard_solve / pard).ln() / dm),
                )
            }
        };
        table.row(&[
            m.to_string(),
            fmt_secs(rd_solve),
            fmt_secs(ard_solve),
            rd_slope,
            ard_slope,
            fmt_secs(rd.solve_wall_mean),
            fmt_secs(ard.solve_wall_mean),
        ]);
        prev = Some((m, rd_solve, ard_solve));
    }
    emit(&args, &table);
    println!(
        "Expected shape: rd_slope -> ~3 (M^3 matrix work each solve),\n\
         ard_slope -> ~2 (M^2 R panel work each solve) as M grows."
    );
}
