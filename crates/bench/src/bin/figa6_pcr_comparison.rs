//! **Figure A6 (extension)** — accelerated recursive doubling vs
//! amortized parallel cyclic reduction (the BCYCLIC-style comparator).
//!
//! Both split matrix-dependent setup from per-RHS solves. PCR carries no
//! prefix products (unconditionally stable) but pays a `log2 N`
//! multiplier on every cost: setup flops, per-solve flops, and per-solve
//! words. This sweep shows the factor directly, plus the accuracy
//! contrast on Poisson where ARD's exact scan breaks down.
//!
//! ```text
//! cargo run --release -p bt-bench --bin figa6_pcr_comparison -- \
//!     --m 8 --p 8 --r 8 --ns 128,256,512,1024,2048 [--csv out.csv]
//! ```

use bt_ard::driver::{ard_solve_cfg, pcr_solve_cfg, DriverConfig};
use bt_ard::state::BoundaryMode;
use bt_bench::{emit, fmt_secs, make_batches, Args, ExpConfig, GenKind, Table};
use bt_blocktri::BlockTridiag;
use bt_mpsim::CostModel;

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.m = args.get_usize("m", 8);
    cfg.p = args.get_usize("p", 8);
    cfg.r = args.get_usize("r", 8);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("poisson"));
    cfg.model = CostModel::cluster();
    let ns = args.get_usize_list("ns", &[128, 256, 512, 1024, 2048]);

    let mut table = Table::new(
        &format!(
            "Figure A6: windowed-ARD vs amortized PCR (gen={}, M={}, P={}, R={})",
            cfg.gen.name(),
            cfg.m,
            cfg.p,
            cfg.r
        ),
        &[
            "N",
            "ard_setup",
            "pcr_setup",
            "ard_solve",
            "pcr_solve",
            "solve_ratio",
            "ard_resid",
            "pcr_resid",
        ],
    );

    for &n in &ns {
        cfg.n = n;
        let src = cfg.source();
        let t = BlockTridiag::from_source(&src);
        let batches = make_batches(&cfg, 2);
        // ARD in windowed mode so it is accurate on Poisson at any N
        // (Figure A1); PCR needs no such help.
        let ard_cfg = DriverConfig::new(cfg.p)
            .with_model(cfg.model)
            .with_boundary(BoundaryMode::Windowed(64));
        let pcr_cfg = DriverConfig::new(cfg.p).with_model(cfg.model);
        let ard = ard_solve_cfg(&ard_cfg, &src, &batches).expect("ard");
        let pcr = pcr_solve_cfg(&pcr_cfg, &src, &batches).expect("pcr");
        let ard_solve = ard.timings.solve_modeled.iter().sum::<f64>() / 2.0;
        let pcr_solve = pcr.timings.solve_modeled.iter().sum::<f64>() / 2.0;
        table.row(&[
            n.to_string(),
            fmt_secs(ard.timings.setup_modeled),
            fmt_secs(pcr.timings.setup_modeled),
            fmt_secs(ard_solve),
            fmt_secs(pcr_solve),
            format!("{:.1}", pcr_solve / ard_solve),
            format!("{:.1e}", t.rel_residual(&ard.x[0], &batches[0])),
            format!("{:.1e}", t.rel_residual(&pcr.x[0], &batches[0])),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: both residual columns at machine precision; PCR's\n\
         per-solve cost exceeds ARD's by ~0.4 * log2(N) (its 4 M^2 R flops\n\
         per row PER LEVEL vs ARD's 10 M^2 R per row once), growing from\n\
         ~1.9 at N=128 to ~4.2 at N=2048; PCR setup pays the full log2(N)\n\
         multiplier (~11x at N=2048) — the work/robustness trade-off\n\
         between cyclic-reduction and prefix-computation methods."
    );
}
