//! **Figure 3** — strong scaling: time vs rank count `P` at fixed
//! problem size.
//!
//! Claim: both algorithms scale as `N/P + log P` (the recursive-doubling
//! cost form in the abstract); the accelerated algorithm keeps its
//! per-solve advantage at every `P`, and both flatten once the `log P`
//! scan term dominates the shrinking `N/P` local term.
//!
//! Wall-clock speedup saturates at the host's physical cores; the
//! modeled columns (alpha-beta/flop-rate virtual time) carry the curve to
//! Cray-scale rank counts — see DESIGN.md §3.
//!
//! ```text
//! cargo run --release -p bt-bench --bin fig3_strong_scaling -- \
//!     --n 1024 --m 16 --r 16 --ps 1,2,4,8,16,32,64,128,256 [--csv out.csv]
//! ```

use bt_bench::{emit, fmt_secs, make_batches, run_ard, run_rd, Args, ExpConfig, GenKind, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 1024);
    cfg.m = args.get_usize("m", 16);
    cfg.r = args.get_usize("r", 16);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let nbatches = args.get_usize("batches", 4);
    let ps = args.get_usize_list("ps", &[1, 2, 4, 8, 16, 32, 64, 128, 256]);

    let mut table = Table::new(
        &format!(
            "Figure 3: strong scaling (N={}, M={}, R={} x {} batches)",
            cfg.n, cfg.m, cfg.r, nbatches
        ),
        &[
            "P",
            "rd_wall",
            "ard_wall",
            "rd_model",
            "ard_model",
            "rd_model_speedup",
            "ard_model_speedup",
        ],
    );

    let mut rd_base = f64::NAN;
    let mut ard_base = f64::NAN;
    for &p in &ps {
        if p > cfg.n {
            continue; // need one block row per rank
        }
        cfg.p = p;
        let batches = make_batches(&cfg, nbatches);
        let rd = run_rd(&cfg, &batches, false);
        let ard = run_ard(&cfg, &batches, false);
        if rd_base.is_nan() {
            rd_base = rd.modeled;
            ard_base = ard.modeled;
        }
        table.row(&[
            p.to_string(),
            fmt_secs(rd.wall),
            fmt_secs(ard.wall),
            fmt_secs(rd.modeled),
            fmt_secs(ard.modeled),
            format!("{:.2}", rd_base / rd.modeled),
            format!("{:.2}", ard_base / ard.modeled),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: modeled speedups climb ~linearly while N/P dominates,\n\
         then flatten as the log P scan rounds take over; ARD flattens earlier\n\
         (its per-solve local term is M^2 R, so the scan latency matters\n\
         sooner) but remains strictly faster per solve."
    );
}
