//! Solver-service load generator: batched dispatch vs one-solve-per-request
//! under an open-loop arrival process.
//!
//! The [`bt_ard::SolverService`] coalesces concurrently-arriving
//! single-RHS solve requests into wide panels before dispatching one
//! replay — the serving-layer form of the paper's `O(R)` amortization
//! (one `O(M^2 k)` batched replay for `k` requests instead of `k`
//! serialized `O(M^2)` solves, each paying its own `O(log P)` scan
//! latency). This bench quantifies that: requests arrive Poisson-style
//! at a configured multiple of the measured single-solve capacity, and
//! each multiple runs twice —
//!
//! * `unbatched` — `max_batch = 1`: every request dispatches alone, the
//!   one-session-per-solve baseline a naive server would implement;
//! * `batched`  — `max_batch = 32` (default): the coalescer flushes on
//!   width or deadline, whichever comes first.
//!
//! Reported per leg: end-to-end request latency percentiles (p50 / p95 /
//! p99 / max, measured submit → response), completed throughput, and the
//! mean dispatched batch width (`dispatched RHS columns / dispatches`).
//! The open-loop generator never slows down when the service queues, so
//! saturation shows up honestly as latency growth rather than as a
//! reduced offered rate.
//!
//! Emits `BENCH_service.json` (`bt-bench-service-v1`) at the workspace
//! root (override with `--out`):
//!
//! ```text
//! cargo run --release -p bt-bench --bin bench_service
//! cargo run --release -p bt-bench --bin bench_service -- --smoke 1
//! ```

use std::time::{Duration, Instant};

use bt_ard::{ArdSession, MatrixKey, ServiceConfig, SolverService};
use bt_bench::Args;
use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
use bt_blocktri::BlockVec;
use bt_mpsim::CostModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct LegResult {
    leg: &'static str,
    rate_mult: f64,
    rate_rps: f64,
    requests: usize,
    throughput_rps: f64,
    mean_batch_width: f64,
    max_batch_width: u64,
    dispatches: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    max_us: f64,
    mean_queue_wait_us: f64,
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Best-of-5 wall time of a single-RHS solve on a warm persistent
/// world: the capacity unit the offered rates are multiples of.
fn calibrate_solve_s(p: usize, model: CostModel, src: &ClusteredToeplitz, y: &BlockVec) -> f64 {
    let session = ArdSession::create(p, model, src).expect("calibration factor");
    session.set_world_reuse(true);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let _ = session.solve(y).expect("calibration solve");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn run_leg(
    leg: &'static str,
    cfg: ServiceConfig,
    srcs: &[ClusteredToeplitz],
    rhss: &[BlockVec],
    requests: usize,
    rate_mult: f64,
    rate_rps: f64,
    seed: u64,
) -> LegResult {
    let svc = SolverService::start(cfg);
    let keys: Vec<MatrixKey> = srcs
        .iter()
        .map(|s| svc.register(s).expect("register"))
        .collect();
    // A recurring matrix re-registers as a cache hit; do one so the hit
    // path (and its counter) is exercised under load too.
    assert_eq!(svc.register(&srcs[0]).expect("re-register"), keys[0]);

    // Warm each matrix's persistent world and workspace pools before
    // the clock starts, and spot-check correctness through the service.
    for (src, &key) in srcs.iter().zip(&keys) {
        let resp = svc.solve(key, &rhss[0]).expect("warm-up solve");
        let res = materialize(src).rel_residual(&resp.x, &rhss[0]);
        assert!(res < 1e-8, "service solve residual {res} too large");
    }
    let warmed = svc.stats();

    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut t_next = 0.0f64;
    let mut tickets = Vec::with_capacity(requests);
    for i in 0..requests {
        // Exponential inter-arrival: an open-loop Poisson process.
        let u: f64 = rng.gen_range(1e-12..1.0);
        t_next += -u.ln() / rate_rps;
        let target = Duration::from_secs_f64(t_next);
        loop {
            let elapsed = start.elapsed();
            if elapsed >= target {
                break;
            }
            let rem = target - elapsed;
            if rem > Duration::from_micros(100) {
                std::thread::sleep(rem - Duration::from_micros(50));
            } else {
                std::hint::spin_loop();
            }
        }
        let key = keys[i % keys.len()];
        tickets.push(svc.submit(key, &rhss[i % rhss.len()]).expect("submit"));
    }

    let mut lat_us: Vec<f64> = Vec::with_capacity(requests);
    let mut queue_wait_us_sum = 0.0;
    for t in tickets {
        let resp = t.wait().expect("service solve");
        // queue_wait + solve_time spans submit -> batch completion.
        let lat = resp.queue_wait + resp.solve_time;
        lat_us.push(lat.as_secs_f64() * 1e6);
        queue_wait_us_sum += resp.queue_wait.as_secs_f64() * 1e6;
    }
    let makespan_s = start.elapsed().as_secs_f64();
    let stats = svc.stats();
    drop(svc);

    let dispatches = stats.dispatches - warmed.dispatches;
    let columns = stats.dispatched_columns - warmed.dispatched_columns;
    lat_us.sort_by(f64::total_cmp);
    LegResult {
        leg,
        rate_mult,
        rate_rps,
        requests,
        throughput_rps: requests as f64 / makespan_s,
        mean_batch_width: if dispatches > 0 {
            columns as f64 / dispatches as f64
        } else {
            0.0
        },
        max_batch_width: stats.max_batch_width,
        dispatches,
        p50_us: percentile(&lat_us, 0.50),
        p95_us: percentile(&lat_us, 0.95),
        p99_us: percentile(&lat_us, 0.99),
        max_us: *lat_us.last().expect("non-empty latencies"),
        mean_queue_wait_us: queue_wait_us_sum / requests as f64,
    }
}

fn main() {
    let args = Args::from_env();
    // Live telemetry: with BT_OBS_ADDR set, serve Prometheus text and a
    // JSON snapshot for the duration of the run (the handle's Drop stops
    // the listener at exit).
    let exporter = bt_obs::exporter::serve_from_env();
    if let Some(e) = &exporter {
        println!(
            "bench_service: live telemetry on http://{}/metrics",
            e.local_addr()
        );
    }
    let smoke = args.get_usize("smoke", 0) != 0;
    let (dreq, dmults): (usize, &[f64]) = if smoke {
        (192, &[16.0])
    } else {
        (768, &[1.0, 16.0])
    };
    let n = args.get_usize("n", 32);
    let m = args.get_usize("m", 6);
    let p = args.get_usize("p", 4);
    let n_matrices = args.get_usize("matrices", 2);
    let requests = args.get_usize("requests", dreq);
    let max_batch = args.get_usize("max-batch", 32);
    let max_delay_us = args.get_usize("max-delay-us", 1_000);
    let model = CostModel::default();

    let srcs: Vec<ClusteredToeplitz> = (0..n_matrices as u64)
        .map(|s| ClusteredToeplitz::standard(n, m, 10 + s))
        .collect();
    let rhss: Vec<BlockVec> = (0..16u64).map(|s| random_rhs(n, m, 1, 1_000 + s)).collect();

    let solve_s = calibrate_solve_s(p, model, &srcs[0], &rhss[0]);
    let capacity_rps = 1.0 / solve_s;
    println!(
        "bench_service: N={n} M={m} P={p}, single solve {:.1} us => capacity {:.0} req/s",
        solve_s * 1e6,
        capacity_rps
    );

    let mults: Vec<f64> = if args.get_str("rate-mults").is_some() {
        args.get_usize_list("rate-mults", &[])
            .into_iter()
            .map(|v| v as f64)
            .collect()
    } else {
        dmults.to_vec()
    };

    let mut results: Vec<LegResult> = Vec::new();
    for &mult in &mults {
        let rate_rps = mult * capacity_rps;
        for (leg, batch) in [("unbatched", 1), ("batched", max_batch)] {
            let cfg = ServiceConfig {
                max_batch: batch,
                max_delay: Duration::from_micros(max_delay_us as u64),
                ..ServiceConfig::new(p, model)
            };
            let rec = run_leg(leg, cfg, &srcs, &rhss, requests, mult, rate_rps, 42);
            println!(
                "bench_service: x{mult:<4} {leg:<9} tput {:>8.0} req/s  width {:>5.1} (max {:>3})  \
                 p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us",
                rec.throughput_rps,
                rec.mean_batch_width,
                rec.max_batch_width,
                rec.p50_us,
                rec.p95_us,
                rec.p99_us,
            );
            results.push(rec);
        }
        let batched = results.last().expect("just pushed");
        let unbatched = &results[results.len() - 2];
        println!(
            "bench_service: x{mult} batched vs unbatched: {:.2}x throughput, p99 {:.2}x",
            batched.throughput_rps / unbatched.throughput_rps,
            batched.p99_us / unbatched.p99_us,
        );
    }

    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"leg\": \"{}\", \"rate_mult\": {:.2}, \"rate_rps\": {:.1}, \
                 \"requests\": {}, \"throughput_rps\": {:.1}, \"mean_batch_width\": {:.2}, \
                 \"max_batch_width\": {}, \"dispatches\": {}, \"p50_us\": {:.1}, \
                 \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}, \
                 \"mean_queue_wait_us\": {:.1}}}",
                r.leg,
                r.rate_mult,
                r.rate_rps,
                r.requests,
                r.throughput_rps,
                r.mean_batch_width,
                r.max_batch_width,
                r.dispatches,
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.max_us,
                r.mean_queue_wait_us,
            )
        })
        .collect();
    let generated_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let simd = bt_dense::simd::active().name();
    let bt_dense_threads = bt_dense::threading::default_threads();
    let json = format!(
        "{{\n  \"bench\": \"solver_service\",\n  \"schema\": \"bt-bench-service-v1\",\n  \
         \"generated_unix_s\": {generated_unix_s},\n  \
         \"simd\": \"{simd}\",\n  \"bt_dense_threads\": {bt_dense_threads},\n  \
         \"n\": {n},\n  \"m\": {m},\n  \"p\": {p},\n  \"matrices\": {n_matrices},\n  \
         \"requests\": {requests},\n  \"max_batch\": {max_batch},\n  \
         \"max_delay_us\": {max_delay_us},\n  \"single_solve_us\": {:.1},\n  \
         \"smoke\": {smoke},\n  \
         \"note\": \"open-loop Poisson arrivals at rate_mult x measured single-solve \
         capacity; latency is submit -> batched-response wall time; unbatched leg \
         pins max_batch=1 (one dispatch per request)\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        solve_s * 1e6,
        rows.join(",\n")
    );
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    let path = args.get_str("out").unwrap_or(default_path).to_string();
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench_service: wrote {path}"),
        Err(e) => eprintln!("bench_service: could not write {path}: {e}"),
    }
    bt_bench::emit_obs(&args);
}
