//! Mixed-precision replay benchmark: warm `f32` replay vs warm `f64`
//! replay at equal final residual, swept over conditioning and batch
//! width on the shared-memory backend (real threads, wall clocks).
//!
//! Each cell factors the same system three ways on a live shm world:
//! the pure-`f64` baseline (`ArdRankFactors<f64>`), the raw half-width
//! factors (`ArdRankFactors<f32>`), and the precision-adaptive
//! [`MixedRankFactors`] (which is one of the other two plus the
//! gray-zone gate). It then times, best-of-N and rank-synchronized:
//!
//! * `f64_replay_ns` — one warm `f64` replay solve (the baseline every
//!   prior benchmark reports).
//! * `f32_replay_ns` — one warm end-to-end half-width replay: convert
//!   the `f64` right-hand panels down, replay at `f32` (half the wire
//!   bytes, double the SIMD lanes), convert the solution back up.
//!   `replay_speedup = f64 / f32` is the headline.
//! * `refined_ns` — the full mixed solve ([`MixedRankFactors::solve_refined`]):
//!   the `f32` replay plus the `f64` refinement sweeps that restore
//!   full accuracy. `mixed_residual` (its final relative residual) is
//!   asserted to match the `f64` replay's `f64_residual`, which is what
//!   makes the headline an equal-quality comparison.
//!
//! The conditioning sweep walks [`ClusteredToeplitz`] diagonal weights
//! from the paper's well-conditioned standard down toward the dominance
//! boundary, then adds the pinned gray-zone Poisson cell, which must
//! *fall back* (`precision = "f64"`, `fell_back = true`) — exercising
//! the gate end to end in the same artifact that claims the speedup.
//!
//! Emits `BENCH_MIXED.json` (schema `bt-bench-mixed-v1`, validated by
//! `obs_validate`, baseline-gated like the other bench artifacts):
//!
//! ```text
//! cargo run --release -p bt-bench --bin bench_mixed
//! cargo run --release -p bt-bench --bin bench_mixed -- --smoke 1
//! ```

use std::time::Instant;

use bt_ard::mixed::MixedRankFactors;
use bt_ard::refine::{halo_exchange, local_residual};
use bt_ard::state::{ArdRankFactors, RankSystem};
use bt_ard::Precision;
use bt_bench::Args;
use bt_blocktri::gen::{rhs_panel, ClusteredToeplitz, Poisson2D};
use bt_blocktri::{BlockRowSource, FactorError};
use bt_comm::CommBackend;
use bt_dense::Mat;
use bt_shm::run_shm;

struct Record {
    label: &'static str,
    n: usize,
    m: usize,
    p: usize,
    r: usize,
    boundary_cond: f64,
    precision: Precision,
    fell_back: bool,
    f64_replay_ns: f64,
    /// `None` on fallback cells (no half-width factors exist).
    f32_replay_ns: Option<f64>,
    refined_ns: f64,
    sweeps: usize,
    f64_residual: f64,
    mixed_residual: f64,
}

impl Record {
    fn replay_speedup(&self) -> f64 {
        self.f32_replay_ns
            .map_or(1.0, |f32_ns| self.f64_replay_ns / f32_ns)
    }

    fn refined_speedup(&self) -> f64 {
        self.f64_replay_ns / self.refined_ns
    }
}

/// Rank-synchronized best-of-`reps` wall seconds for one call of `f`.
fn time_best<C: CommBackend>(comm: &mut C, reps: usize, mut f: impl FnMut(&mut C)) -> f64 {
    f(comm); // warm-up: pool buffers, page-in
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let _ = comm.allreduce(0u64, |a, b| (*a).max(*b)); // sync ranks
        let t0 = Instant::now();
        f(comm);
        best = best.min(comm.allreduce(t0.elapsed().as_secs_f64(), |a, b| a.max(*b)));
    }
    best
}

/// Global relative residual `||y - T x|| / ||y||` of a rank-local
/// solution, via one halo exchange. Collective.
fn rel_residual<C: CommBackend>(
    comm: &mut C,
    sys: &RankSystem,
    x_local: &[Mat],
    y_local: &[Mat],
) -> f64 {
    let nl = x_local.len();
    let halo = halo_exchange(comm, &x_local[0], &x_local[nl - 1]);
    let res = local_residual(comm, sys, x_local, (&halo.0, &halo.1), y_local);
    let sq = |panels: &[Mat]| -> f64 {
        panels
            .iter()
            .flat_map(|p| p.as_slice().iter())
            .map(|v| v * v)
            .sum()
    };
    let num = comm.allreduce(sq(&res), |a, b| a + b);
    let den = comm
        .allreduce(sq(y_local), |a, b| a + b)
        .max(f64::MIN_POSITIVE);
    (num / den).sqrt()
}

/// One rank's share of a cell: factor all three ways, time the three
/// warm legs, measure both final residuals.
#[allow(clippy::type_complexity)]
fn cell<C: CommBackend>(
    comm: &mut C,
    src: &(dyn BlockRowSource + Sync),
    p: usize,
    r: usize,
    reps: usize,
) -> Result<(f64, Precision, bool, f64, Option<f64>, f64, usize, f64, f64), FactorError> {
    let m = src.m();
    let sys = RankSystem::from_source(src, p, comm.rank());
    let base = ArdRankFactors::<f64>::setup(comm, &sys, true)?;
    let mixed = MixedRankFactors::setup(comm, &sys)?;
    let y: Vec<Mat> = (sys.lo..sys.hi).map(|i| rhs_panel(m, r, 0, i)).collect();
    let mut x64: Vec<Mat> = y.iter().map(|p| Mat::zeros(p.rows(), p.cols())).collect();

    let t64 = time_best(comm, reps, |comm| {
        base.solve_replay_into(comm, &y, &mut x64)
    });
    let f64_residual = rel_residual(comm, &sys, &x64, &y);

    // Raw half-width replay: only meaningful when the gate kept f32
    // factors. Conversion of the panels at both ends is part of the
    // timed region — it is part of the end-to-end path.
    let t32 = if mixed.precision() == Precision::F32 {
        let f32s = ArdRankFactors::<f32>::setup(comm, &sys, true)?;
        let mut y32: Vec<Mat<f32>> = y.iter().map(|p| Mat::zeros(p.rows(), p.cols())).collect();
        let mut lo32: Vec<Mat<f32>> = y32.clone();
        let mut x: Vec<Mat> = x64.clone();
        Some(time_best(comm, reps, |comm| {
            for (dst, src) in y32.iter_mut().zip(&y) {
                src.convert_into(dst);
            }
            f32s.solve_replay_into(comm, &y32, &mut lo32);
            for (dst, src) in x.iter_mut().zip(&lo32) {
                src.convert_into(dst);
            }
        }))
    } else {
        None
    };

    let mut sweeps = 0;
    let mut mixed_residual = 0.0;
    let t_ref = time_best(comm, reps, |comm| {
        let refined = mixed.solve_refined(comm, &sys, &y, 4, 1e-12);
        sweeps = refined.history.len() - 1;
        mixed_residual = *refined.history.last().expect("nonempty history");
    });

    Ok((
        mixed.boundary_condition(),
        mixed.precision(),
        mixed.fell_back(),
        t64,
        t32,
        t_ref,
        sweeps,
        f64_residual,
        mixed_residual,
    ))
}

fn run_cell(
    label: &'static str,
    src: &(dyn BlockRowSource + Sync),
    p: usize,
    r: usize,
    reps: usize,
) -> Record {
    let out = run_shm(p, bt_comm::CostModel::zero(), |comm| {
        cell(comm, src, p, r, reps)
    });
    let mut rows = out.results.into_iter().map(|res| res.expect("setup"));
    let (boundary_cond, precision, fell_back, t64, t32, t_ref, sweeps, f64_res, mixed_res) =
        rows.next().expect("at least one rank");
    let rec = Record {
        label,
        n: src.n(),
        m: src.m(),
        p,
        r,
        boundary_cond,
        precision,
        fell_back,
        f64_replay_ns: t64 * 1e9,
        f32_replay_ns: t32.map(|t| t * 1e9),
        refined_ns: t_ref * 1e9,
        sweeps,
        f64_residual: f64_res,
        mixed_residual: mixed_res,
    };
    println!(
        "bench_mixed: {label:<14} N={:<4} R={r:<5} cond {:>8.1e} -> {:<4} \
         f64 {:>8.3} ms  f32 {:>8} ms  replay {:.2}x  refined({} sweeps) {:.2}x  \
         residual {:.1e} vs {:.1e}",
        rec.n,
        rec.boundary_cond,
        rec.precision.as_str(),
        rec.f64_replay_ns * 1e-6,
        rec.f32_replay_ns
            .map_or("     n/a".to_string(), |ns| format!("{:>8.3}", ns * 1e-6)),
        rec.replay_speedup(),
        rec.sweeps,
        rec.refined_speedup(),
        rec.mixed_residual,
        rec.f64_residual,
    );
    rec
}

fn main() {
    let args = Args::from_env();
    let smoke = args.get_usize("smoke", 0) != 0;
    let (n, p, reps) = if smoke { (64, 2, 2) } else { (256, 4, 5) };
    let n = args.get_usize("n", n);
    let m = args.get_usize("m", 8);
    let p = args.get_usize("p", p);
    let reps = args.get_usize("reps", reps);
    let default_rs: &[usize] = if smoke { &[32] } else { &[16, 64, 256] };
    let rs = args.get_usize_list("rs", default_rs);

    // Dominance ladder: the standard clustered instance, then diagonal
    // weights walked toward the dominance boundary d = 2. The boundary
    // condition stays ~ 1 across the ladder (well inside the 1e6 gate);
    // what the ladder actually sweeps is the decay rate of the scan
    // factors, which is what the f32 leg is sensitive to. At d = 8 the
    // factors decay ~ 8^-i and underflow into the f32 subnormal range
    // within ~ 40 rows, and subnormal operands cost dozens of cycles
    // each on x86 — so the strongly-dominant cell is where the
    // half-width replay can *lose* its advantage (f64 stays normal down
    // to 1e-308 and never pays this tax). The slower decays at d = 4
    // and d = 2.5 keep more of the scan in normal f32 range and show
    // the full SIMD-width win.
    let gens: Vec<(&'static str, Box<dyn BlockRowSource + Sync>)> = vec![
        (
            "clustered-d8",
            Box::new(ClusteredToeplitz::standard(n, m, 1)),
        ),
        (
            "clustered-d4",
            Box::new(ClusteredToeplitz::new(n, m, 4.0, 1.0e-3 / m as f64, 1)),
        ),
        (
            "clustered-d2.5",
            Box::new(ClusteredToeplitz::new(n, m, 2.5, 1.0e-3 / m as f64, 1)),
        ),
    ];

    let mut records: Vec<Record> = Vec::new();
    for (label, src) in &gens {
        for &r in &rs {
            records.push(run_cell(label, src.as_ref(), p, r, reps));
        }
    }
    for rec in &records {
        assert_eq!(
            rec.precision,
            Precision::F32,
            "{} should be inside the gray-zone gate (cond {:.1e})",
            rec.label,
            rec.boundary_cond
        );
        assert!(!rec.fell_back, "{} unexpectedly fell back", rec.label);
    }

    // The pinned gray-zone cell: N=32 Poisson silently degrades at f32
    // (Table III), so the gate must reject the half-width factors here.
    let poisson = Poisson2D::new(32, 6);
    let fb = run_cell("poisson-32", &poisson, p.min(4), rs[0], reps);
    assert_eq!(fb.precision, Precision::F64, "gray zone must fall back");
    assert!(fb.fell_back, "fallback flag must be set");
    assert!(fb.f32_replay_ns.is_none());
    records.push(fb);

    // Equal final residual: the refined mixed answer must land at the
    // refinement tolerance (1e-12, where the sweeps stop on purpose) or
    // at the f64 replay's own level, whichever is looser — i.e. the
    // mixed path never returns a worse-quality answer than the caller
    // asked for.
    for rec in &records {
        assert!(
            rec.mixed_residual <= 1e-12f64.max(rec.f64_residual * 4.0),
            "{} R={}: mixed residual {:.2e} vs f64's {:.2e} breaks the \
             equal-quality claim",
            rec.label,
            rec.r,
            rec.mixed_residual,
            rec.f64_residual
        );
    }

    // Headline: warm-replay speedup at the widest batch of the
    // best-behaved cell — the figure the baseline gate tracks.
    let headline = records
        .iter()
        .filter(|rec| rec.f32_replay_ns.is_some())
        .map(Record::replay_speedup)
        .fold(0.0f64, f64::max);
    println!("bench_mixed: headline warm-replay speedup {headline:.2}x (f64 over f32+convert)");

    let rows: Vec<String> = records
        .iter()
        .map(|rec| {
            format!(
                "    {{\"label\": \"{}\", \"n\": {}, \"m\": {}, \"p\": {}, \"r\": {}, \
                 \"boundary_cond\": {:e}, \"precision\": \"{}\", \"fell_back\": {}, \
                 \"f64_replay_ns\": {:.0}, \"f32_replay_ns\": {}, \"replay_speedup\": {:.4}, \
                 \"refined_ns\": {:.0}, \"sweeps\": {}, \"refined_speedup\": {:.4}, \
                 \"f64_residual\": {:e}, \"mixed_residual\": {:e}}}",
                rec.label,
                rec.n,
                rec.m,
                rec.p,
                rec.r,
                rec.boundary_cond,
                rec.precision.as_str(),
                rec.fell_back,
                rec.f64_replay_ns,
                rec.f32_replay_ns
                    .map_or("null".to_string(), |ns| format!("{ns:.0}")),
                rec.replay_speedup(),
                rec.refined_ns,
                rec.sweeps,
                rec.refined_speedup(),
                rec.f64_residual,
                rec.mixed_residual,
            )
        })
        .collect();
    let generated_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let simd = bt_dense::simd::active().name();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"mixed_precision_replay\",\n  \"schema\": \"bt-bench-mixed-v1\",\n  \
         \"generated_unix_s\": {generated_unix_s},\n  \
         \"simd\": \"{simd}\",\n  \"cores\": {cores},\n  \
         \"m\": {m},\n  \"p\": {p},\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n  \
         \"headline_replay_speedup\": {headline:.4},\n  \
         \"note\": \"f64_replay_ns / f32_replay_ns are best-of-{reps} rank-synchronized \
         warm replay solves on the shm backend (f32 leg includes panel conversion both \
         ways); refined_ns is the full mixed solve whose final mixed_residual is asserted \
         at the 1e-12 refinement tolerance or the f64 replay's own level (equal-quality \
         claim); fallback cells carry f32_replay_ns = null and fell_back = true; \
         clustered-d8 replays are data-dependently slower at f32 because the strongly \
         dominant diagonal drives the scan factors into the f32 subnormal range\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_MIXED.json");
    let path = args.get_str("out").unwrap_or(default_path).to_string();
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench_mixed: wrote {path}"),
        Err(e) => eprintln!("bench_mixed: could not write {path}: {e}"),
    }
    bt_bench::emit_obs(&args);
}
