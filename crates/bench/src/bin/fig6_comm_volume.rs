//! **Figure 6** — communication volume per rank vs `P`.
//!
//! Claim: every scan round of classic recursive doubling ships matrices
//! (`O(M^2)` words for the affine scans plus `O(M^2)` for the companion
//! scan), while an accelerated solve ships only `M x R` panels — the
//! per-solve volume drops by a factor `~M/R` and both grow as `log P`.
//!
//! ```text
//! cargo run --release -p bt-bench --bin fig6_comm_volume -- \
//!     --n 1024 --m 32 --r 4 --ps 2,4,8,16,32,64 [--csv out.csv]
//! ```

use bt_ard::complexity::{ard_solve_bytes_per_rank, rd_solve_bytes_per_rank};
use bt_bench::{emit, fmt_bytes, make_batches, run_ard, run_rd, Args, ExpConfig, GenKind, Table};
use bt_mpsim::CostModel;

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 1024);
    cfg.m = args.get_usize("m", 32);
    cfg.r = args.get_usize("r", 4);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    cfg.model = CostModel::zero();
    let ps = args.get_usize_list("ps", &[2, 4, 8, 16, 32, 64]);

    let mut table = Table::new(
        &format!(
            "Figure 6: bytes sent per rank (max) vs P (N={}, M={}, R={})",
            cfg.n, cfg.m, cfg.r
        ),
        &[
            "P",
            "rd_per_solve",
            "ard_setup",
            "ard_per_solve",
            "rd_model",
            "ard_model",
            "ratio",
        ],
    );

    for &p in &ps {
        if p > cfg.n {
            continue;
        }
        cfg.p = p;
        // Two batches let us difference per-solve traffic out of totals.
        let b1 = make_batches(&cfg, 1);
        let b2 = make_batches(&cfg, 2);
        let rd1 = run_rd(&cfg, &b1, false);
        let rd2 = run_rd(&cfg, &b2, false);
        let ard1 = run_ard(&cfg, &b1, false);
        let ard2 = run_ard(&cfg, &b2, false);
        let per = p as u64;
        // Average per rank (totals are across ranks).
        let rd_solve = (rd2.bytes - rd1.bytes) / per;
        let ard_solve = (ard2.bytes - ard1.bytes) / per;
        let ard_setup = ard1.bytes / per - ard_solve;
        let c = cfg.complexity();
        table.row(&[
            p.to_string(),
            fmt_bytes(rd_solve),
            fmt_bytes(ard_setup),
            fmt_bytes(ard_solve),
            fmt_bytes(rd_solve_bytes_per_rank(&c) as u64),
            fmt_bytes(ard_solve_bytes_per_rank(&c) as u64),
            format!("{:.1}", rd_solve as f64 / ard_solve as f64),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: all columns grow ~log P; ratio ~ (6 M^2 + 2 M R)/(2 M R)\n\
         — i.e. ~3M/R for R << M (here ~{:.0}).",
        (6.0 * (cfg.m * cfg.m) as f64 + 2.0 * (cfg.m * cfg.r) as f64)
            / (2.0 * (cfg.m * cfg.r) as f64)
    );
}
