//! **Table I** — measured cost vs the analytic complexity model.
//!
//! Claim: recursive doubling costs `O(M^3 (N/P + log P))` per solve; the
//! accelerated setup costs the same once and each solve then costs
//! `O(M^2 R (N/P + log P))`. The `bt_ard::complexity` module spells out
//! the constants of this implementation; this table validates them
//! against the runtime's *measured* flop and byte counters over an
//! (N, M, P, R) grid. Ratios near 1.0 mean the model captures the
//! implementation (small excess comes from boundary work the leading
//! terms ignore).
//!
//! ```text
//! cargo run --release -p bt-bench --bin table1_complexity [--csv out.csv]
//! ```

use bt_ard::complexity::{
    ard_solve_bytes_per_rank, ard_solve_flops, setup_bytes_per_rank, setup_flops,
};
use bt_ard::driver::{ard_solve_cfg, DriverConfig};
use bt_bench::{emit, make_batches, Args, ExpConfig, GenKind, Table};
use bt_mpsim::CostModel;

fn main() {
    let args = Args::from_env();
    let grid: Vec<(usize, usize, usize, usize)> = vec![
        (256, 8, 4, 4),
        (256, 16, 4, 4),
        (512, 16, 8, 8),
        (512, 32, 8, 8),
        (1024, 16, 16, 16),
        (1024, 32, 16, 4),
    ];

    let mut table = Table::new(
        "Table I: measured vs modeled cost (per most-loaded rank)",
        &[
            "N",
            "M",
            "P",
            "R",
            "setup_flops_ratio",
            "solve_flops_ratio",
            "setup_bytes_ratio",
            "solve_bytes_ratio",
        ],
    );

    for (n, m, p, r) in grid {
        let mut cfg = ExpConfig::default_point();
        cfg.n = n;
        cfg.m = m;
        cfg.p = p;
        cfg.r = r;
        cfg.gen = GenKind::Clustered;
        cfg.model = CostModel::zero();
        let src = cfg.source();
        let driver = DriverConfig::new(p).with_model(CostModel::zero());

        // One batch isolates setup counters from solve counters: run with
        // one batch and with two, and difference the totals.
        let b1 = make_batches(&cfg, 1);
        let b2 = make_batches(&cfg, 2);
        let out1 = ard_solve_cfg(&driver, &src, &b1).expect("solve failed");
        let out2 = ard_solve_cfg(&driver, &src, &b2).expect("solve failed");

        let max_flops_1 = out1.stats.max_flops() as f64;
        let max_flops_2 = out2.stats.max_flops() as f64;
        let solve_flops_meas = max_flops_2 - max_flops_1;
        let setup_flops_meas = max_flops_1 - solve_flops_meas;

        let max_bytes_1 = out1.stats.max_bytes_sent() as f64;
        let max_bytes_2 = out2.stats.max_bytes_sent() as f64;
        let solve_bytes_meas = max_bytes_2 - max_bytes_1;
        let setup_bytes_meas = max_bytes_1 - solve_bytes_meas;

        let c = cfg.complexity();
        table.row(&[
            n.to_string(),
            m.to_string(),
            p.to_string(),
            r.to_string(),
            format!("{:.2}", setup_flops_meas / setup_flops(&c)),
            format!("{:.2}", solve_flops_meas / ard_solve_flops(&c)),
            format!("{:.2}", setup_bytes_meas / setup_bytes_per_rank(&c)),
            format!("{:.2}", solve_bytes_meas / ard_solve_bytes_per_rank(&c)),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: flop ratios ~1.0 (the model's constants match the\n\
         implementation); byte ratios slightly below 1.0 because the model\n\
         counts a maximal sender participating in every round of every scan,\n\
         while no single rank sends maximally in both scan directions."
    );
}
