//! **Table III** — numerical accuracy across generators, sizes and
//! solvers.
//!
//! Two claims are checked:
//!
//! 1. RD and ARD produce *identical* answers (same arithmetic), and on
//!    systems with clustered block spectra they match Thomas and block
//!    cyclic reduction to near machine precision at any `N`.
//! 2. The prefix formulation's exact-scan boundary recovery degrades
//!    geometrically with the per-row spectral spread of the transfer
//!    products (DESIGN.md §7) — the known stability envelope of
//!    prefix-computation solvers. Outside it, the windowed extension
//!    (`BoundaryMode::Windowed`) restores full accuracy.
//!
//! Cells show worst relative residuals; `breakdown(i)` marks a singular
//! boundary extraction at block row `i`.
//!
//! ```text
//! cargo run --release -p bt-bench --bin table3_accuracy [--csv out.csv]
//! ```

use bt_ard::driver::{ard_solve_cfg, spike_solve_cfg, DriverConfig};
use bt_ard::state::BoundaryMode;
use bt_bench::{emit, make_batches, Args, ExpConfig, GenKind, Table};
use bt_blocktri::cyclic_reduction::cyclic_reduction_solve;
use bt_blocktri::thomas::thomas_solve;
use bt_blocktri::BlockTridiag;
use bt_mpsim::CostModel;

fn residual_or_breakdown(
    cfg: &ExpConfig,
    boundary: BoundaryMode,
    t: &BlockTridiag,
    batches: &[bt_blocktri::BlockVec],
) -> String {
    let src = cfg.source();
    let driver = DriverConfig::new(cfg.p)
        .with_model(CostModel::zero())
        .with_boundary(boundary);
    match ard_solve_cfg(&driver, &src, batches) {
        Ok(out) => {
            let worst = batches
                .iter()
                .zip(&out.x)
                .map(|(y, x)| t.rel_residual(x, y))
                .fold(0.0f64, f64::max);
            format!("{worst:.1e}")
        }
        Err(e) => format!("breakdown({})", e.row),
    }
}

fn main() {
    let args = Args::from_env();
    let p = args.get_usize("p", 8);
    let m = args.get_usize("m", 6);
    let ns = args.get_usize_list("ns", &[16, 32, 64, 128, 512, 2048]);
    let gens = [
        GenKind::Clustered,
        GenKind::Poisson,
        GenKind::ConvDiff,
        GenKind::RandomDominant,
    ];

    let mut table = Table::new(
        &format!("Table III: worst relative residuals (M={m}, P={p}, R=4)"),
        &[
            "gen",
            "N",
            "thomas",
            "bcr",
            "spike",
            "ard_scan",
            "ard_windowed",
        ],
    );

    for gen in gens {
        for &n in &ns {
            let mut cfg = ExpConfig::default_point();
            cfg.n = n;
            cfg.m = m;
            cfg.p = p.min(n);
            cfg.r = 4;
            cfg.gen = gen;
            cfg.model = CostModel::zero();
            let src = cfg.source();
            let t = BlockTridiag::from_source(&src);
            let batches = make_batches(&cfg, 1);

            let th = match thomas_solve(&t, &batches[0]) {
                Ok(x) => format!("{:.1e}", t.rel_residual(&x, &batches[0])),
                Err(e) => format!("breakdown({})", e.row),
            };
            let bcr = match cyclic_reduction_solve(&t, &batches[0]) {
                Ok(x) => format!("{:.1e}", t.rel_residual(&x, &batches[0])),
                Err(e) => format!("breakdown({})", e.row),
            };
            let scan = residual_or_breakdown(&cfg, BoundaryMode::ExactScan, &t, &batches);
            let windowed = residual_or_breakdown(&cfg, BoundaryMode::Windowed(64), &t, &batches);
            let spike = {
                let src = cfg.source();
                let driver = DriverConfig::new(cfg.p).with_model(CostModel::zero());
                match spike_solve_cfg(&driver, &src, &batches) {
                    Ok(out) => format!("{:.1e}", t.rel_residual(&out.x[0], &batches[0])),
                    Err(e) => format!("breakdown({})", e.row),
                }
            };

            table.row(&[
                gen.name().into(),
                n.to_string(),
                th,
                bcr,
                spike,
                scan,
                windowed,
            ]);
        }
    }
    emit(&args, &table);
    println!(
        "Expected shape: thomas/bcr/spike ~1e-14 everywhere (no prefix\n\
         products); ard_scan ~1e-12 on clustered spectra at every N,\n\
         degrading (then breaking down) with N on poisson/convdiff/random —\n\
         the documented envelope of prefix methods; ard_windowed ~1e-12\n\
         everywhere (the extension)."
    );
}
