//! **Table IV (extension)** — the self-diagnosing strategy ladder.
//!
//! During every exact-scan setup the solver measures the conditioning of
//! its boundary extraction (`ArdRankFactors::boundary_condition`), which
//! predicts the accuracy envelope *before any right-hand side is
//! solved*. `auto_solve` uses it to escalate: exact scan → windowed
//! (verified) → parallel cyclic reduction. This table shows the
//! diagnostic value and the chosen strategy across generators and sizes,
//! with the achieved residual.
//!
//! ```text
//! cargo run --release -p bt-bench --bin table4_auto_strategy [--csv out.csv]
//! ```

use bt_ard::auto::{auto_solve, Chosen};
use bt_bench::{emit, make_batches, Args, ExpConfig, GenKind, Table};
use bt_blocktri::BlockTridiag;
use bt_mpsim::CostModel;

fn main() {
    let args = Args::from_env();
    let m = args.get_usize("m", 6);
    let p = args.get_usize("p", 8);
    let ns = args.get_usize_list("ns", &[16, 64, 256, 1024]);
    let gens = [
        GenKind::Clustered,
        GenKind::Poisson,
        GenKind::ConvDiff,
        GenKind::RandomDominant,
    ];

    let mut table = Table::new(
        &format!("Table IV: automatic strategy selection (M={m}, P={p}, R=4)"),
        &["gen", "N", "chosen", "evidence", "residual"],
    );

    for gen in gens {
        for &n in &ns {
            let mut cfg = ExpConfig::default_point();
            cfg.n = n;
            cfg.m = m;
            cfg.p = p.min(n);
            cfg.r = 4;
            cfg.gen = gen;
            let src = cfg.source();
            let t = BlockTridiag::from_source(&src);
            let batches = make_batches(&cfg, 1);
            match auto_solve(cfg.p, CostModel::zero(), &src, &batches) {
                Ok(auto) => {
                    let (chosen, evidence) = match &auto.chosen {
                        Chosen::ExactScan {
                            boundary_condition,
                            precision,
                        } => (
                            format!("exact-scan/{precision}"),
                            format!("cond {boundary_condition:.1e}"),
                        ),
                        Chosen::Windowed { reason, residual } => (
                            "windowed".to_string(),
                            format!("{} (verified {residual:.0e})", truncate(reason, 34)),
                        ),
                        Chosen::Pcr { reason } => ("pcr".to_string(), truncate(reason, 42)),
                    };
                    let res = t.rel_residual(&auto.outcome.x[0], &batches[0]);
                    table.row(&[
                        gen.name().into(),
                        n.to_string(),
                        chosen,
                        evidence,
                        format!("{res:.1e}"),
                    ]);
                }
                Err(e) => {
                    table.row(&[
                        gen.name().into(),
                        n.to_string(),
                        "none".into(),
                        format!("breakdown({})", e.row),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    emit(&args, &table);
    println!(
        "Expected shape: clustered systems stay on the exact scan (cond ~1);\n\
         wide-spectrum systems trip the conditioning diagnostic and land on\n\
         windowed; every row's final residual is at machine precision —\n\
         including the 'gray zone' sizes where the raw exact scan would have\n\
         silently returned 1e-3-quality answers."
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}...", &s[..n])
    }
}
