//! **Figure A7 (extension)** — how to batch a fixed pool of right-hand
//! sides.
//!
//! The abstract's workload is `R ~ 10^2..10^4` right-hand sides. Given a
//! fixed pool (default 256), should they be solved one at a time, in
//! panels of 16, or all at once? Modeled time is nearly flat (flops are
//! linear in width), but *wall-clock* favors wide panels: every
//! `M x width` GEMM amortizes the `M x M` coefficient reads across
//! `width` columns, and the scan latency is paid `pool/width` times.
//!
//! ```text
//! cargo run --release -p bt-bench --bin figa7_batch_width -- \
//!     --n 512 --m 16 --p 4 --pool 256 --widths 1,4,16,64,256 [--csv out.csv]
//! ```

use bt_bench::{emit, fmt_secs, make_batches, run_ard, Args, ExpConfig, GenKind, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = ExpConfig::default_point();
    cfg.n = args.get_usize("n", 512);
    cfg.m = args.get_usize("m", 16);
    cfg.p = args.get_usize("p", 4);
    cfg.gen = GenKind::parse(args.get_str("gen").unwrap_or("clustered"));
    let pool = args.get_usize("pool", 256);
    let widths = args.get_usize_list("widths", &[1, 4, 16, 64, 256]);

    let mut table = Table::new(
        &format!(
            "Figure A7: batching {pool} right-hand sides (N={}, M={}, P={})",
            cfg.n, cfg.m, cfg.p
        ),
        &[
            "width",
            "batches",
            "total_wall",
            "total_model",
            "wall_per_rhs",
            "model_per_rhs",
        ],
    );

    for &w in &widths {
        if w > pool {
            continue;
        }
        let nbatches = pool / w;
        cfg.r = w;
        let batches = make_batches(&cfg, nbatches);
        let m = run_ard(&cfg, &batches, false);
        table.row(&[
            w.to_string(),
            nbatches.to_string(),
            fmt_secs(m.wall),
            fmt_secs(m.modeled),
            fmt_secs(m.wall / pool as f64),
            fmt_secs(m.modeled / pool as f64),
        ]);
    }
    emit(&args, &table);
    println!(
        "Expected shape: modeled per-RHS time shrinks mildly with width (the\n\
         scan latency amortizes). Wall-clock per-RHS improves sharply from\n\
         width 1 to moderate widths (panel GEMMs amortize coefficient-matrix\n\
         traffic), then flattens — and can regress slightly — once panels\n\
         outgrow cache: pick a moderate panel width (~4-32), not 1 and not\n\
         necessarily the maximum."
    );
}
