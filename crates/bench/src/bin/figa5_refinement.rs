//! **Figure A5 (extension)** — iterative refinement extends the exact
//! scan's accuracy envelope.
//!
//! Inside the "gray zone" — where the prefix products' conditioning has
//! degraded the boundary recovery but not yet broken it down — the
//! factors remain a contraction, so a few `O(M^2 R)` refinement sweeps
//! (distributed residual + replay) recover machine precision. Beyond the
//! breakdown point nothing helps except the windowed mode (Figure A1).
//!
//! ```text
//! cargo run --release -p bt-bench --bin figa5_refinement -- \
//!     --m 6 --p 8 --ns 8,16,24,32,40,48,64 [--csv out.csv]
//! ```

use bt_ard::refine::ard_solve_refined;
use bt_ard::state::BoundaryMode;
use bt_bench::{emit, Args, ExpConfig, GenKind, Table};
use bt_blocktri::gen::random_rhs;
use bt_blocktri::BlockTridiag;
use bt_mpsim::CostModel;

fn main() {
    let args = Args::from_env();
    let m = args.get_usize("m", 6);
    let p = args.get_usize("p", 8);
    let gen = GenKind::parse(args.get_str("gen").unwrap_or("poisson"));
    let ns = args.get_usize_list("ns", &[8, 16, 24, 32, 40, 48, 64]);
    let max_sweeps = args.get_usize("sweeps", 10);

    let mut table = Table::new(
        &format!(
            "Figure A5: refinement vs N (gen={}, M={m}, P={p}, exact scan)",
            gen.name()
        ),
        &["N", "unrefined_residual", "sweeps_used", "refined_residual"],
    );

    for &n in &ns {
        let mut cfg = ExpConfig::default_point();
        cfg.n = n;
        cfg.m = m;
        cfg.p = p.min(n);
        cfg.r = 2;
        cfg.gen = gen;
        let src = cfg.source();
        let t = BlockTridiag::from_source(&src);
        let y = random_rhs(n, m, 2, 3);
        match ard_solve_refined(
            cfg.p,
            CostModel::zero(),
            BoundaryMode::ExactScan,
            &src,
            &y,
            max_sweeps,
            1e-14,
        ) {
            Ok((x, history)) => {
                table.row(&[
                    n.to_string(),
                    format!("{:.1e}", history[0]),
                    (history.len() - 1).to_string(),
                    format!("{:.1e}", t.rel_residual(&x, &y)),
                ]);
            }
            Err(e) => {
                table.row(&[
                    n.to_string(),
                    format!("breakdown({})", e.row),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    emit(&args, &table);
    println!(
        "Expected shape: unrefined residuals degrade geometrically with N;\n\
         as long as they stay below ~1 (a contraction), refinement recovers\n\
         ~1e-15 in a handful of sweeps — extending the usable N range of the\n\
         paper's exact-scan algorithm several-fold. Past the breakdown row\n\
         only the windowed mode (Figure A1) helps."
    );
}
