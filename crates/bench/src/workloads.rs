//! Shared experiment machinery: generator selection, batch construction,
//! and a uniform measurement wrapper around the RD/ARD drivers.
//!
//! Every experiment binary builds an [`ExpConfig`] (with CLI overrides),
//! obtains batches via [`make_batches`], and runs [`run_rd`] /
//! [`run_ard`] / [`run_thomas`], all of which produce a [`Measured`] with
//! wall time, modeled time, counters and residuals — the columns the
//! tables and figures report.

use std::time::Instant;

use bt_ard::driver::{ard_solve_cfg, rd_solve_cfg, DistOutcome, DriverConfig};
use bt_ard::state::BoundaryMode;
use bt_blocktri::gen::{
    random_rhs, ClusteredToeplitz, ConvectionDiffusion, Poisson2D, RandomDominant,
};
use bt_blocktri::thomas::ThomasFactors;
use bt_blocktri::{BlockRowSource, BlockTridiag, BlockVec};
use bt_mpsim::CostModel;

/// Which system generator an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    /// [`ClusteredToeplitz::standard`] — the default: clustered block
    /// spectra, accurate for any `N` (the paper's application regime).
    Clustered,
    /// [`Poisson2D`] — the classic SPD model problem.
    Poisson,
    /// [`ConvectionDiffusion`] with Péclet 0.5 — nonsymmetric.
    ConvDiff,
    /// [`RandomDominant`] with margin 1.5 — random dense blocks.
    RandomDominant,
}

impl GenKind {
    /// Parses a generator name from the CLI.
    ///
    /// # Panics
    ///
    /// Panics on unknown names.
    pub fn parse(name: &str) -> Self {
        match name {
            "clustered" => Self::Clustered,
            "poisson" => Self::Poisson,
            "convdiff" => Self::ConvDiff,
            "random" => Self::RandomDominant,
            other => panic!("unknown generator '{other}' (clustered|poisson|convdiff|random)"),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Clustered => "clustered",
            Self::Poisson => "poisson",
            Self::ConvDiff => "convdiff",
            Self::RandomDominant => "random",
        }
    }

    /// Builds the generator.
    pub fn build(&self, n: usize, m: usize, seed: u64) -> Box<dyn BlockRowSource + Sync> {
        match self {
            Self::Clustered => Box::new(ClusteredToeplitz::standard(n, m, seed)),
            Self::Poisson => Box::new(Poisson2D::new(n, m)),
            Self::ConvDiff => Box::new(ConvectionDiffusion::new(n, m, 0.5)),
            Self::RandomDominant => Box::new(RandomDominant::new(n, m, 1.5, seed)),
        }
    }
}

/// One experiment configuration point.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Block rows.
    pub n: usize,
    /// Block order.
    pub m: usize,
    /// Ranks.
    pub p: usize,
    /// Columns per right-hand-side batch.
    pub r: usize,
    /// System seed.
    pub seed: u64,
    /// Generator.
    pub gen: GenKind,
    /// Virtual-time cost model.
    pub model: CostModel,
    /// Phase 1 boundary mode.
    pub boundary: BoundaryMode,
}

impl ExpConfig {
    /// A sensible default configuration (overridden per experiment).
    pub fn default_point() -> Self {
        Self {
            n: 512,
            m: 16,
            p: 8,
            r: 1,
            seed: 2014,
            gen: GenKind::Clustered,
            model: CostModel::cluster(),
            boundary: BoundaryMode::ExactScan,
        }
    }

    /// Builds the generator for this configuration.
    pub fn source(&self) -> Box<dyn BlockRowSource + Sync> {
        self.gen.build(self.n, self.m, self.seed)
    }

    /// The driver configuration for this point.
    pub fn driver(&self) -> DriverConfig {
        DriverConfig::new(self.p)
            .with_model(self.model)
            .with_boundary(self.boundary)
    }

    /// An `bt_ard::complexity::Config` mirror of this point.
    pub fn complexity(&self) -> bt_ard::complexity::Config {
        bt_ard::complexity::Config {
            n: self.n,
            m: self.m,
            p: self.p,
            r: self.r,
        }
    }
}

/// `count` independent right-hand-side batches of width `cfg.r` each.
pub fn make_batches(cfg: &ExpConfig, count: usize) -> Vec<BlockVec> {
    (0..count)
        .map(|b| random_rhs(cfg.n, cfg.m, cfg.r, cfg.seed ^ (b as u64 + 1)))
        .collect()
}

/// Uniform measurement record for one solver run.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Which solver produced this record.
    pub solver: &'static str,
    /// Total wall-clock seconds (setup + all solves, max over ranks).
    pub wall: f64,
    /// Total modeled seconds.
    pub modeled: f64,
    /// Setup-only wall seconds.
    pub setup_wall: f64,
    /// Setup-only modeled seconds.
    pub setup_modeled: f64,
    /// Mean per-batch solve wall seconds.
    pub solve_wall_mean: f64,
    /// Mean per-batch solve modeled seconds.
    pub solve_modeled_mean: f64,
    /// Total flops across ranks.
    pub flops: u64,
    /// Total payload bytes sent across ranks.
    pub bytes: u64,
    /// Worst relative residual across batches (NaN if not checked).
    pub residual: f64,
    /// Peak per-rank stored factor bytes.
    pub factor_bytes: u64,
}

fn summarize(
    solver: &'static str,
    out: &DistOutcome,
    t: Option<&BlockTridiag>,
    batches: &[BlockVec],
) -> Measured {
    let residual = match t {
        None => f64::NAN,
        Some(t) => batches
            .iter()
            .zip(&out.x)
            .map(|(y, x)| t.rel_residual(x, y))
            .fold(0.0, f64::max),
    };
    let nb = batches.len() as f64;
    Measured {
        solver,
        wall: out.timings.total_wall().as_secs_f64(),
        modeled: out.timings.total_modeled(),
        setup_wall: out.timings.setup_wall.as_secs_f64(),
        setup_modeled: out.timings.setup_modeled,
        solve_wall_mean: out
            .timings
            .solve_wall
            .iter()
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
            / nb,
        solve_modeled_mean: out.timings.solve_modeled.iter().sum::<f64>() / nb,
        flops: out.stats.total().flops,
        bytes: out.stats.total().bytes_sent,
        residual,
        factor_bytes: out.factor_bytes,
    }
}

/// Runs classic recursive doubling over `batches`.
///
/// `check` materializes the matrix and computes residuals (skip for large
/// timing-only sweeps).
pub fn run_rd(cfg: &ExpConfig, batches: &[BlockVec], check: bool) -> Measured {
    let src = cfg.source();
    let out = rd_solve_cfg(&cfg.driver(), &src, batches).expect("rd solve failed");
    let t = check.then(|| BlockTridiag::from_source(&src));
    summarize("rd", &out, t.as_ref(), batches)
}

/// Runs accelerated recursive doubling over `batches`.
pub fn run_ard(cfg: &ExpConfig, batches: &[BlockVec], check: bool) -> Measured {
    let src = cfg.source();
    let out = ard_solve_cfg(&cfg.driver(), &src, batches).expect("ard solve failed");
    let t = check.then(|| BlockTridiag::from_source(&src));
    summarize("ard", &out, t.as_ref(), batches)
}

/// Runs the sequential block Thomas baseline (factor once, solve each
/// batch) and reports wall time; modeled time and counters are zero
/// (it does not run on the message-passing runtime).
pub fn run_thomas(cfg: &ExpConfig, batches: &[BlockVec], check: bool) -> Measured {
    let src = cfg.source();
    let t = BlockTridiag::from_source(&src);
    let t0 = Instant::now();
    let factors = ThomasFactors::factor(&t).expect("thomas factor failed");
    let setup_wall = t0.elapsed().as_secs_f64();
    let mut xs = Vec::with_capacity(batches.len());
    let mut solve_walls = Vec::with_capacity(batches.len());
    for y in batches {
        let s0 = Instant::now();
        xs.push(factors.solve(y));
        solve_walls.push(s0.elapsed().as_secs_f64());
    }
    let residual = if check {
        batches
            .iter()
            .zip(&xs)
            .map(|(y, x)| t.rel_residual(x, y))
            .fold(0.0, f64::max)
    } else {
        f64::NAN
    };
    let nb = batches.len() as f64;
    Measured {
        solver: "thomas",
        wall: setup_wall + solve_walls.iter().sum::<f64>(),
        modeled: 0.0,
        setup_wall,
        setup_modeled: 0.0,
        solve_wall_mean: solve_walls.iter().sum::<f64>() / nb,
        solve_modeled_mean: 0.0,
        flops: 0,
        bytes: 0,
        residual,
        factor_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genkind_parse_roundtrip() {
        for k in [
            GenKind::Clustered,
            GenKind::Poisson,
            GenKind::ConvDiff,
            GenKind::RandomDominant,
        ] {
            assert_eq!(GenKind::parse(k.name()), k);
        }
    }

    #[test]
    #[should_panic(expected = "unknown generator")]
    fn genkind_rejects_unknown() {
        let _ = GenKind::parse("nope");
    }

    #[test]
    fn batches_have_requested_shape() {
        let mut cfg = ExpConfig::default_point();
        cfg.n = 16;
        cfg.m = 3;
        cfg.r = 5;
        let b = make_batches(&cfg, 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].n(), 16);
        assert_eq!(b[0].r(), 5);
        assert_ne!(b[0], b[1]);
    }

    #[test]
    fn measurement_smoke() {
        let mut cfg = ExpConfig::default_point();
        cfg.n = 32;
        cfg.m = 3;
        cfg.p = 2;
        cfg.r = 2;
        cfg.model = CostModel::zero();
        let batches = make_batches(&cfg, 2);
        let rd = run_rd(&cfg, &batches, true);
        let ard = run_ard(&cfg, &batches, true);
        let th = run_thomas(&cfg, &batches, true);
        assert!(rd.residual < 1e-8 && ard.residual < 1e-8 && th.residual < 1e-12);
        assert!(ard.flops < rd.flops);
        assert!(rd.factor_bytes == 0 && ard.factor_bytes > 0);
    }
}
