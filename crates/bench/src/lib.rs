//! # bt-bench: the experiment harness
//!
//! Regenerates every table and figure of the reconstructed evaluation
//! (DESIGN.md §5). Each experiment is a binary under `src/bin/`:
//!
//! | binary | claim checked |
//! |---|---|
//! | `table1_complexity` | measured flops/bytes match the analytic model |
//! | `fig1_runtime_vs_r` | RD grows ~M^3 per RHS, ARD ~M^2 per RHS |
//! | `fig2_speedup_vs_r` | speedup ≈ R/(1 + R/M): the "O(R) improvement" |
//! | `fig3_strong_scaling` | both scale as N/P + log P; ARD keeps its edge |
//! | `fig4_runtime_vs_n` | linear in N at fixed P |
//! | `fig5_runtime_vs_m` | RD ~ M^3, ARD solve ~ M^2 |
//! | `table2_breakdown` | setup amortized after ~1-2 batches |
//! | `table3_accuracy` | residual envelope across generators and N |
//! | `fig6_comm_volume` | ARD per-solve traffic O(M R) vs RD O(M^2 + M R) |
//! | `fig7_crossover` | total-time crossover R* is 1-2 |
//! | `figa1_windowed_ablation` | windowed vs exact-scan boundary (extension) |
//!
//! Run any of them with `cargo run --release -p bt-bench --bin <name>`;
//! all sweep parameters can be overridden (`--n`, `--m`, `--p`, ...) and
//! `--csv <path>` writes machine-readable output. Criterion
//! microbenchmarks for the kernels live under `benches/`.

pub mod cli;
pub mod table;
pub mod workloads;

pub use cli::{emit, emit_obs, Args};
pub use table::{fmt_bytes, fmt_flops, fmt_secs, Table};
pub use workloads::{make_batches, run_ard, run_rd, run_thomas, ExpConfig, GenKind, Measured};
