//! Always-on HDR-style latency recorders: log-linear buckets, sharded
//! atomic counters, merged on read.
//!
//! Unlike the [`crate::registry`] metrics, latency recorders ignore the
//! `BT_OBS` gate: they are the substrate for the serving layer's
//! p50/p95/p99-by-stage numbers and for the live exporter, so they must
//! be recording *before* anyone decides to look. The design keeps the
//! hot path cheap enough to leave on unconditionally:
//!
//! * **log-linear buckets** — [`SUB_BUCKETS`] (32) linear sub-buckets
//!   per power-of-two octave, giving a worst-case relative quantization
//!   error of `1/32` (~3.1%) across the whole `u64` range in
//!   [`N_BUCKETS`] (1920) buckets. [`bucket_index`] is a `leading_zeros`
//!   plus a shift — no floating point, no search.
//! * **per-thread shards** — each recorder holds [`N_SHARDS`] bucket
//!   arrays; a thread picks its shard once (round-robin at first use)
//!   and then records with plain relaxed `fetch_add`s, so concurrent
//!   recorders on different threads touch disjoint cache lines in the
//!   common case. There are no locks anywhere on the record path.
//! * **merge on read** — [`Latency::snapshot`] sums the shards into a
//!   dense [`LatencySnapshot`] whose [`LatencySnapshot::quantile`] does
//!   a nearest-rank walk. The estimate lands in the exact bucket that
//!   holds the true nearest-rank sample, so it is within one bucket
//!   width of the exact sorted-sample quantile (pinned by proptest).
//!
//! Handles follow the [`crate::Counter`] pattern: a `static` declared at
//! the instrumentation site, registered under its name on first touch so
//! the exporter can enumerate every recorder in the process.
//!
//! ```
//! static STAGE: bt_obs::Latency = bt_obs::Latency::new("doc.hdr.stage_ns");
//! STAGE.record(1_250);
//! STAGE.record(90_000);
//! let snap = STAGE.snapshot();
//! assert_eq!(snap.count, 2);
//! assert!(snap.quantile(0.5) >= 1_200);
//! ```

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// log2 of the linear sub-buckets per octave.
pub const SUB_BITS: u32 = 5;

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total buckets: one linear region for `v < 32` (exact) plus 32
/// sub-buckets for each of the 59 remaining octaves of `u64` — 60
/// blocks of [`SUB_BUCKETS`].
pub const N_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// Shards per recorder; threads are assigned round-robin at first use.
pub const N_SHARDS: usize = 8;

/// Bucket index for a sample. Values below [`SUB_BUCKETS`] map to their
/// own bucket (exact); above, the octave is the exponent of the leading
/// bit and the low [`SUB_BITS`] bits under it pick the sub-bucket.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let block = (exp - SUB_BITS + 1) as usize;
    block * SUB_BUCKETS + ((v >> (exp - SUB_BITS)) as usize & (SUB_BUCKETS - 1))
}

/// Inclusive lower bound and width of bucket `idx` (so the bucket covers
/// `[lower, lower + width)`); the linear region has width 1.
#[must_use]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    debug_assert!(idx < N_BUCKETS);
    let block = idx / SUB_BUCKETS;
    if block == 0 {
        return (idx as u64, 1);
    }
    let off = (idx % SUB_BUCKETS) as u64;
    let width = 1u64 << (block - 1);
    ((SUB_BUCKETS as u64 + off) << (block - 1), width)
}

struct Shard {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Backing storage for one recorder: [`N_SHARDS`] independent bucket
/// arrays. Usable directly in tests; production sites go through the
/// named [`Latency`] handle.
pub struct LatencyData {
    shards: Vec<Shard>,
}

impl Default for LatencyData {
    fn default() -> Self {
        Self::new()
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

fn shard_id() -> usize {
    MY_SHARD.with(|s| match s.get() {
        Some(id) => id,
        None => {
            let id = NEXT_SHARD.fetch_add(1, Relaxed) % N_SHARDS;
            s.set(Some(id));
            id
        }
    })
}

impl LatencyData {
    /// Fresh, unregistered recorder storage (test/bench helper).
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..N_SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one sample into the calling thread's shard: four relaxed
    /// atomic RMWs, no locks, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_id()];
        shard.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        shard.count.fetch_add(1, Relaxed);
        shard.sum.fetch_add(v, Relaxed);
        shard.min.fetch_min(v, Relaxed);
        shard.max.fetch_max(v, Relaxed);
    }

    /// Merges every shard into one dense snapshot.
    #[must_use]
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut buckets = vec![0u64; N_BUCKETS];
        let (mut count, mut sum, mut min, mut max) = (0u64, 0u64, u64::MAX, 0u64);
        for shard in &self.shards {
            for (acc, b) in buckets.iter_mut().zip(&shard.buckets) {
                *acc += b.load(Relaxed);
            }
            count += shard.count.load(Relaxed);
            sum = sum.wrapping_add(shard.sum.load(Relaxed));
            min = min.min(shard.min.load(Relaxed));
            max = max.max(shard.max.load(Relaxed));
        }
        if count == 0 {
            min = 0;
        }
        LatencySnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    fn reset(&self) {
        for shard in &self.shards {
            for b in &shard.buckets {
                b.store(0, Relaxed);
            }
            shard.count.store(0, Relaxed);
            shard.sum.store(0, Relaxed);
            shard.min.store(u64::MAX, Relaxed);
            shard.max.store(0, Relaxed);
        }
    }
}

/// Shard-merged view of a recorder at one instant.
pub struct LatencySnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of samples (wrapping).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    buckets: Vec<u64>,
}

impl LatencySnapshot {
    /// Nearest-rank quantile estimate, `q` in `[0, 1]`. The returned
    /// value is the midpoint of the bucket holding the rank-`ceil(q*n)`
    /// sample, clamped to the observed `[min, max]`; it differs from the
    /// exact sorted-sample quantile by less than that bucket's width.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (lower, width) = bucket_bounds(idx);
                return (lower + width / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded samples (exact, from the running sum).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }
}

struct LatencyRegistry {
    recorders: Mutex<BTreeMap<&'static str, Arc<LatencyData>>>,
}

fn latency_registry() -> &'static LatencyRegistry {
    static REGISTRY: OnceLock<LatencyRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| LatencyRegistry {
        recorders: Mutex::new(BTreeMap::new()),
    })
}

/// A named, always-on latency recorder. Declare as a `static` at the
/// instrumentation site; the first touch registers it for the exporter.
pub struct Latency {
    name: &'static str,
    cell: OnceLock<Arc<LatencyData>>,
}

impl Latency {
    /// Declares a recorder; nothing is registered until the first use.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn slot(&self) -> &LatencyData {
        self.cell.get_or_init(|| {
            Arc::clone(
                latency_registry()
                    .recorders
                    .lock()
                    .expect("latency registry poisoned")
                    .entry(self.name)
                    .or_insert_with(|| Arc::new(LatencyData::new())),
            )
        })
    }

    /// Records one sample. NOT gated on [`crate::enabled`]: latency
    /// recorders are always on.
    #[inline]
    pub fn record(&self, v: u64) {
        self.slot().record(v);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Shard-merged snapshot of this recorder.
    #[must_use]
    pub fn snapshot(&self) -> LatencySnapshot {
        self.slot().snapshot()
    }
}

/// Snapshot of every registered recorder, by name.
#[must_use]
pub fn latencies_snapshot() -> Vec<(String, LatencySnapshot)> {
    latency_registry()
        .recorders
        .lock()
        .expect("latency registry poisoned")
        .iter()
        .map(|(name, d)| ((*name).to_string(), d.snapshot()))
        .collect()
}

/// Zeroes every registered recorder (names stay registered). Test/bench
/// helper.
pub fn reset_latencies() {
    for d in latency_registry()
        .recorders
        .lock()
        .expect("latency registry poisoned")
        .values()
    {
        d.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the linear region and octave seams.
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "v={v}: index went backwards");
            assert!(idx - prev <= 1, "v={v}: index skipped a bucket");
            prev = idx;
            let (lower, width) = bucket_bounds(idx);
            assert!(
                lower <= v && v < lower + width,
                "v={v} outside bucket {idx}"
            );
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        let (lower, width) = bucket_bounds(N_BUCKETS - 1);
        assert!(u64::MAX - lower < width);
    }

    #[test]
    fn quantiles_on_known_data() {
        let d = LatencyData::new();
        for v in 1..=1000u64 {
            d.record(v);
        }
        let snap = d.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        for (q, exact) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let est = snap.quantile(q);
            let (_, width) = bucket_bounds(bucket_index(exact));
            assert!(
                est.abs_diff(exact) <= width,
                "q={q}: est {est} vs exact {exact} (width {width})"
            );
        }
        assert_eq!(snap.quantile(1.0), 1000);
        assert_eq!(snap.quantile(0.0), 1);
    }

    #[test]
    fn empty_and_single_sample() {
        let d = LatencyData::new();
        assert_eq!(d.snapshot().quantile(0.5), 0);
        assert_eq!(d.snapshot().min, 0);
        d.record(77);
        let snap = d.snapshot();
        assert_eq!(snap.quantile(0.5), 77);
        assert_eq!(snap.quantile(0.99), 77);
        assert_eq!((snap.min, snap.max), (77, 77));
    }

    #[test]
    fn named_recorder_registers_once() {
        static L: Latency = Latency::new("test.hdr.named");
        L.record(5);
        L.record(5);
        let all = latencies_snapshot();
        let (_, snap) = all
            .iter()
            .find(|(n, _)| n == "test.hdr.named")
            .expect("registered");
        assert!(snap.count >= 2);
    }
}
