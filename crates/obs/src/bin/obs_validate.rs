//! Validates emitted observability artifacts (CI gate).
//!
//! ```text
//! # Schema-dispatch validation of one or more JSON artifacts:
//! cargo run -p bt-obs --bin obs_validate -- results/obs_trace.json results/obs_metrics.json
//!
//! # Perf-regression gate: fresh bench JSON vs the committed baseline,
//! # passing when fresh_headline >= tol * committed_headline:
//! cargo run -p bt-obs --bin obs_validate -- --baseline BENCH_service.json /tmp/fresh.json --tol 0.25
//!
//! # Prometheus text exposition (the live exporter's /metrics output):
//! cargo run -p bt-obs --bin obs_validate -- --prom /tmp/scrape.txt
//! ```
//!
//! In file mode, each file is parsed with the in-tree JSON parser and
//! checked against the schema it self-identifies as: `bt-obs-metrics-v1`
//! via [`bt_obs::json::validate_metrics`], `bt-bench-service-v1` via
//! [`bt_obs::json::validate_bench_service`], `bt-bench-shm-v1` via
//! [`bt_obs::json::validate_bench_shm`], `bt-bench-mixed-v1` via
//! [`bt_obs::json::validate_bench_mixed`], `bt-bench-pipeline-v1` via
//! [`bt_obs::json::bench_headline`], `bt-obs-flight-v1` via
//! [`bt_obs::json::validate_flight`], `bt-obs-snapshot-v1` via
//! [`bt_obs::json::validate_snapshot`], anything shaped like Chrome
//! trace-event JSON (bare array or `{"traceEvents": [...]}`) via
//! [`bt_obs::json::validate_chrome_trace`]. Exits non-zero on the first
//! unreadable, unparsable or invalid file.

use bt_obs::json::{self, Json};

fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = json::parse(&text)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema.starts_with("bt-bench-service") {
        let s = json::validate_bench_service(&doc)?;
        return Ok(format!(
            "service bench ok: {} legs, batched speedup {:.2}x at top rate",
            s.legs, s.batched_speedup
        ));
    }
    if schema.starts_with("bt-bench-shm") {
        let s = json::validate_bench_shm(&doc)?;
        return Ok(format!(
            "shm bench ok: {} cells, headline {:.0} RHS columns/s, calib fit error {:.1}%",
            s.cells,
            s.headline,
            s.fit_error * 1e2
        ));
    }
    if schema.starts_with("bt-bench-mixed") {
        let s = json::validate_bench_mixed(&doc)?;
        return Ok(format!(
            "mixed bench ok: {} cells ({} fell back), headline warm-replay speedup {:.2}x",
            s.cells, s.fallback_cells, s.headline
        ));
    }
    if schema.starts_with("bt-bench-pipeline") {
        let (_, headline) = json::bench_headline(&doc)?;
        return Ok(format!(
            "pipeline bench ok: best modeled speedup {headline:.2}x vs unpiped"
        ));
    }
    if schema.starts_with("bt-obs-flight") {
        let s = json::validate_flight(&doc)?;
        return Ok(format!(
            "flight dump ok: {} events ({} recorded in total)",
            s.events, s.recorded
        ));
    }
    if schema.starts_with("bt-obs-snapshot") {
        let s = json::validate_snapshot(&doc)?;
        return Ok(format!(
            "snapshot ok: {} counters, {} gauges, {} histograms in embedded metrics",
            s.counters, s.gauges, s.histograms
        ));
    }
    let is_metrics = schema.starts_with("bt-obs-metrics");
    if is_metrics {
        let s = json::validate_metrics(&doc)?;
        Ok(format!(
            "metrics ok: {} counters, {} gauges, {} histograms",
            s.counters, s.gauges, s.histograms
        ))
    } else {
        let s = json::validate_chrome_trace(&doc)?;
        Ok(format!(
            "trace ok: {} events ({} complete, {} flow starts, {} flow finishes) on {} threads",
            s.events, s.complete_events, s.flow_starts, s.flow_finishes, s.threads
        ))
    }
}

fn read_doc(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run_baseline(committed: &str, fresh: &str, tol: f64) -> Result<(), String> {
    let summary = json::validate_baseline(&read_doc(committed)?, &read_doc(fresh)?, tol)?;
    println!(
        "baseline ok ({}): fresh headline {:.3} vs committed {:.3} ({:.2}x, tolerance {:.2}x)",
        summary.schema, summary.fresh, summary.committed, summary.ratio, tol
    );
    Ok(())
}

fn run_prom(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let s = bt_obs::exporter::validate_prometheus_text(&text)?;
    println!(
        "{path}: prometheus text ok: {} samples, {} type headers",
        s.samples, s.types
    );
    Ok(())
}

const USAGE: &str = "usage: obs_validate <artifact.json>...\n       \
                     obs_validate --baseline <committed.json> <fresh.json> [--tol <ratio>]\n       \
                     obs_validate --prom <scrape.txt>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        Some("--baseline") => {
            let (Some(committed), Some(fresh)) = (args.get(1), args.get(2)) else {
                eprintln!("{USAGE}");
                std::process::exit(2);
            };
            let tol = match args.get(3).map(String::as_str) {
                Some("--tol") => match args.get(4).and_then(|v| v.parse::<f64>().ok()) {
                    Some(t) if t > 0.0 => t,
                    _ => {
                        eprintln!("--tol requires a positive ratio");
                        std::process::exit(2);
                    }
                },
                Some(other) => {
                    eprintln!("unknown baseline flag '{other}'\n{USAGE}");
                    std::process::exit(2);
                }
                None => 0.5,
            };
            if let Err(e) = run_baseline(committed, fresh, tol) {
                eprintln!("baseline: FAILED: {e}");
                std::process::exit(1);
            }
        }
        Some("--prom") => {
            let Some(path) = args.get(1) else {
                eprintln!("{USAGE}");
                std::process::exit(2);
            };
            if let Err(e) = run_prom(path) {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
        Some(_) => {
            let mut failed = false;
            for path in &args {
                match validate_file(path) {
                    Ok(summary) => println!("{path}: {summary}"),
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        failed = true;
                    }
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
    }
}
