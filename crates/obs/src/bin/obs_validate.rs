//! Validates emitted observability artifacts (CI gate).
//!
//! ```text
//! cargo run -p bt-obs --bin obs_validate -- results/obs_trace.json results/obs_metrics.json
//! ```
//!
//! Each file is parsed with the in-tree JSON parser and checked against
//! the schema it self-identifies as: a `bt-obs-metrics-v1` object goes
//! through [`bt_obs::json::validate_metrics`], a `bt-bench-service-v1`
//! object through [`bt_obs::json::validate_bench_service`], anything
//! shaped like Chrome trace-event JSON (bare array or
//! `{"traceEvents": [...]}`) through
//! [`bt_obs::json::validate_chrome_trace`]. Exits non-zero on the first
//! unreadable, unparsable or invalid file.

use bt_obs::json::{self, Json};

fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = json::parse(&text)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema.starts_with("bt-bench-service") {
        let s = json::validate_bench_service(&doc)?;
        return Ok(format!(
            "service bench ok: {} legs, batched speedup {:.2}x at top rate",
            s.legs, s.batched_speedup
        ));
    }
    let is_metrics = schema.starts_with("bt-obs-metrics");
    if is_metrics {
        let s = json::validate_metrics(&doc)?;
        Ok(format!(
            "metrics ok: {} counters, {} gauges, {} histograms",
            s.counters, s.gauges, s.histograms
        ))
    } else {
        let s = json::validate_chrome_trace(&doc)?;
        Ok(format!(
            "trace ok: {} events ({} complete, {} flow starts, {} flow finishes) on {} threads",
            s.events, s.complete_events, s.flow_starts, s.flow_finishes, s.threads
        ))
    }
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: obs_validate <trace-or-metrics.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match validate_file(path) {
            Ok(summary) => println!("{path}: {summary}"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
