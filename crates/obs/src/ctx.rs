//! Request-scoped trace context: cheap u64 ids threaded from
//! `SolverService::submit` down into per-rank SPMD spans.
//!
//! A [`TraceCtx`] names the work a thread is currently doing on behalf
//! of the serving layer — a batch id plus the request ids coalesced into
//! it. [`enter`] installs one in a thread-local slot (RAII, restores the
//! previous context on drop); while installed, every span the tracer
//! records on that thread carries the context's pre-rendered JSON
//! fragment in its `args`, so one Chrome trace shows a request's whole
//! life: queue wait on the dispatcher, batch assembly, the replay solve,
//! and each rank's scan rounds, all greppable by `"req"`/`"reqs"`.
//!
//! The context does NOT cross thread spawns by itself. Code that fans
//! out (e.g. `ArdSession` handing a job closure to rank threads) calls
//! [`current`] on the submitting thread, moves the clone into the
//! closure, and [`enter`]s it on the worker — two `Arc` bumps per hop.
//!
//! Id minting ([`next_request_id`], [`next_batch_id`]) is a process-wide
//! relaxed `fetch_add` starting at 1, so 0 is free to mean "none".
//!
//! ```
//! let ctx = bt_obs::ctx::TraceCtx::batch(bt_obs::ctx::next_batch_id(), &[7, 8]);
//! let _guard = bt_obs::ctx::enter(ctx);
//! assert!(bt_obs::ctx::current().is_some_and(|c| c.contains(7)));
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// The identity of the serving-layer work a thread is doing: a batch id
/// and the request ids it serves. Clones are two `Arc` bumps.
#[derive(Clone)]
pub struct TraceCtx {
    batch_id: u64,
    request_ids: Arc<[u64]>,
    /// Brace-less JSON fragment (`"req":5` / `"batch":3,"reqs":[5,6]`)
    /// rendered once at construction; the tracer splices it into span
    /// `args` without re-serializing per event.
    fragment: Arc<str>,
}

impl TraceCtx {
    /// Context for a single request outside any batch (batch id 0).
    #[must_use]
    pub fn request(request_id: u64) -> Self {
        Self {
            batch_id: 0,
            request_ids: Arc::from([request_id]),
            fragment: Arc::from(format!("\"req\":{request_id}")),
        }
    }

    /// Context for a dispatched batch and the requests coalesced in it.
    #[must_use]
    pub fn batch(batch_id: u64, request_ids: &[u64]) -> Self {
        let mut reqs = String::new();
        for (i, id) in request_ids.iter().enumerate() {
            if i > 0 {
                reqs.push(',');
            }
            reqs.push_str(&id.to_string());
        }
        Self {
            batch_id,
            request_ids: Arc::from(request_ids),
            fragment: Arc::from(format!("\"batch\":{batch_id},\"reqs\":[{reqs}]")),
        }
    }

    /// Batch id (0 for a single-request context).
    #[must_use]
    pub fn batch_id(&self) -> u64 {
        self.batch_id
    }

    /// Request ids this context serves.
    #[must_use]
    pub fn request_ids(&self) -> &[u64] {
        &self.request_ids
    }

    /// True when `request_id` is served by this context.
    #[must_use]
    pub fn contains(&self, request_id: u64) -> bool {
        self.request_ids.contains(&request_id)
    }

    /// The pre-rendered args fragment (no surrounding braces).
    #[must_use]
    pub fn fragment(&self) -> &Arc<str> {
        &self.fragment
    }
}

static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);
static NEXT_BATCH: AtomicU64 = AtomicU64::new(1);

/// Mints a process-unique request id (starts at 1; 0 means "none").
#[must_use = "an unused request id leaves a hole in the trace"]
pub fn next_request_id() -> u64 {
    NEXT_REQUEST.fetch_add(1, Relaxed)
}

/// Mints a process-unique batch id (starts at 1; 0 means "none").
#[must_use = "an unused batch id leaves a hole in the trace"]
pub fn next_batch_id() -> u64 {
    NEXT_BATCH.fetch_add(1, Relaxed)
}

thread_local! {
    static CURRENT: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
}

/// The calling thread's installed context, if any.
#[must_use]
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs `ctx` on the calling thread until the guard drops (the
/// previous context, if any, is restored — contexts nest).
#[must_use = "the context is uninstalled when the guard drops"]
pub fn enter(ctx: TraceCtx) -> CtxGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    CtxGuard { prev }
}

/// RAII guard from [`enter`]; restores the previous context on drop.
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(a >= 1 && b > a);
        assert!(next_batch_id() >= 1);
    }

    #[test]
    fn enter_nests_and_restores() {
        assert!(current().is_none());
        let outer = TraceCtx::request(10);
        let g1 = enter(outer);
        assert_eq!(current().unwrap().request_ids(), &[10]);
        {
            let inner = TraceCtx::batch(3, &[10, 11]);
            let _g2 = enter(inner);
            let cur = current().unwrap();
            assert_eq!(cur.batch_id(), 3);
            assert!(cur.contains(11));
            assert_eq!(&**cur.fragment(), "\"batch\":3,\"reqs\":[10,11]");
        }
        assert_eq!(current().unwrap().batch_id(), 0);
        assert_eq!(&**current().unwrap().fragment(), "\"req\":10");
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn context_crosses_threads_by_hand() {
        let ctx = TraceCtx::batch(9, &[1, 2, 3]);
        let carried = ctx.clone();
        std::thread::spawn(move || {
            let _g = enter(carried);
            assert!(current().unwrap().contains(2));
        })
        .join()
        .unwrap();
    }
}
