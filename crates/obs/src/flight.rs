//! Crash/anomaly flight recorder: a fixed-size ring of recent structured
//! events, dumped to disk on solve panic and on demand.
//!
//! The serving layer records every submit, dispatch, eviction, solve
//! failure and panic here unconditionally (like [`crate::hdr`], the
//! flight recorder ignores the `BT_OBS` gate — a black box that only
//! records during the flights that land safely is useless). When a
//! `SolveFailed` ticket surfaces, [`dump_json`] / [`dump_to_file`]
//! reconstruct the last [`CAPACITY`] events leading up to it: which
//! requests were queued, what batch they joined, which cache entries
//! were evicted under them.
//!
//! The ring is claim-free on the hot path: a writer reserves its slot
//! with one `fetch_add` on the head cursor, then fills the slot under a
//! per-slot mutex that is only ever contended when the ring wraps a full
//! lap while the slot is mid-write — with 4096 slots that means 4096
//! intervening events during one store, i.e. effectively never. Readers
//! ([`snapshot`]) lock slots one at a time and sort by sequence number.
//!
//! Dump schema (`bt-obs-flight-v1`):
//!
//! ```json
//! {
//!   "schema": "bt-obs-flight-v1",
//!   "capacity": 4096,
//!   "recorded": 17,
//!   "events": [
//!     {"seq": 0, "t_ns": 1200, "kind": "submit", "req": 1, "batch": 0,
//!      "key": 81985529216486895, "detail": ""}
//!   ]
//! }
//! ```

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

use crate::json::escape;

/// Ring capacity: the dump holds at most this many trailing events.
pub const CAPACITY: usize = 4096;

/// One structured flight event. `request_id`/`batch_id`/`key` are 0 when
/// not applicable; `detail` is free-form (kept short by convention).
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Process-wide sequence number (records ever written, 0-based).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch.
    pub t_ns: u64,
    /// Event kind (`"submit"`, `"dispatch"`, `"evict"`, `"solve_panic"`, ...).
    pub kind: &'static str,
    /// Serving-layer request id (0 = none).
    pub request_id: u64,
    /// Serving-layer batch id (0 = none).
    pub batch_id: u64,
    /// Matrix fingerprint involved (0 = none).
    pub key: u64,
    /// Free-form context (panic message, eviction size, ...).
    pub detail: String,
}

struct Slot {
    /// `seq + 1` of the event stored in `data` (0 = empty), written
    /// after the payload so readers can discard torn laps.
    stamp: AtomicU64,
    data: Mutex<Option<FlightEvent>>,
}

struct Ring {
    head: AtomicU64,
    slots: Vec<Slot>,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        head: AtomicU64::new(0),
        slots: (0..CAPACITY)
            .map(|_| Slot {
                stamp: AtomicU64::new(0),
                data: Mutex::new(None),
            })
            .collect(),
    })
}

/// Records one event. Always on (not `BT_OBS`-gated); the hot path is
/// one `fetch_add` plus an uncontended per-slot lock.
pub fn record(
    kind: &'static str,
    request_id: u64,
    batch_id: u64,
    key: u64,
    detail: impl Into<String>,
) {
    let r = ring();
    let seq = r.head.fetch_add(1, Relaxed);
    let slot = &r.slots[(seq % CAPACITY as u64) as usize];
    let ev = FlightEvent {
        seq,
        t_ns: crate::tracer::now_ns(),
        kind,
        request_id,
        batch_id,
        key,
        detail: detail.into(),
    };
    let mut data = slot.data.lock().expect("flight slot poisoned");
    *data = Some(ev);
    slot.stamp.store(seq + 1, Relaxed);
}

/// The buffered events in sequence order (oldest first). Events from a
/// lap the cursor has already left behind are dropped.
#[must_use]
pub fn snapshot() -> Vec<FlightEvent> {
    let r = ring();
    let head = r.head.load(Relaxed);
    let floor = head.saturating_sub(CAPACITY as u64);
    let mut out: Vec<FlightEvent> = Vec::new();
    for slot in &r.slots {
        let stamp = slot.stamp.load(Relaxed);
        if stamp == 0 || stamp - 1 < floor {
            continue;
        }
        if let Some(ev) = slot.data.lock().expect("flight slot poisoned").clone() {
            if ev.seq >= floor && ev.seq < head {
                out.push(ev);
            }
        }
    }
    out.sort_by_key(|ev| ev.seq);
    out
}

/// Total events ever recorded (including ones the ring has overwritten).
#[must_use]
pub fn recorded() -> u64 {
    ring().head.load(Relaxed)
}

/// Serializes the ring to the `bt-obs-flight-v1` JSON schema.
#[must_use]
pub fn dump_json() -> String {
    let events = snapshot();
    let mut out = format!(
        "{{\n  \"schema\": \"bt-obs-flight-v1\",\n  \"capacity\": {CAPACITY},\n  \
         \"recorded\": {},\n  \"events\": [",
        recorded()
    );
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"seq\": {}, \"t_ns\": {}, \"kind\": \"{}\", \"req\": {}, \
             \"batch\": {}, \"key\": {}, \"detail\": \"{}\"}}",
            ev.seq,
            ev.t_ns,
            escape(ev.kind),
            ev.request_id,
            ev.batch_id,
            ev.key,
            escape(&ev.detail),
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes [`dump_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn dump_to_file(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, dump_json())
}

/// Empties the ring (the sequence counter keeps advancing). Test helper.
pub fn clear() {
    let r = ring();
    for slot in &r.slots {
        slot.stamp.store(0, Relaxed);
        *slot.data.lock().expect("flight slot poisoned") = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_in_order() {
        let _g = crate::test_guard();
        clear();
        record("submit", 1, 0, 42, "");
        record("dispatch", 1, 7, 42, "width=2");
        record("solve_panic", 0, 7, 42, "boom");
        let events = snapshot();
        assert!(events.len() >= 3);
        let tail = &events[events.len() - 3..];
        assert_eq!(tail[0].kind, "submit");
        assert_eq!(tail[1].detail, "width=2");
        assert_eq!(tail[2].kind, "solve_panic");
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
        let dump = dump_json();
        let doc = crate::json::parse(&dump).expect("flight dump parses");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Json::as_str),
            Some("bt-obs-flight-v1")
        );
    }

    #[test]
    fn concurrent_writers_keep_unique_seqs() {
        let _g = crate::test_guard();
        clear();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..200 {
                        record("stress", t * 1000 + i, 0, 0, "");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = snapshot();
        let stress: Vec<_> = events.iter().filter(|e| e.kind == "stress").collect();
        assert_eq!(stress.len(), 800);
        let mut seqs: Vec<u64> = stress.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 800, "duplicate sequence numbers");
    }

    #[test]
    fn ring_keeps_only_last_capacity_events() {
        let _g = crate::test_guard();
        clear();
        let total = CAPACITY + 100;
        for i in 0..total {
            record("wrap", i as u64, 0, 0, "");
        }
        let events: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.kind == "wrap")
            .collect();
        assert_eq!(events.len(), CAPACITY);
        // The survivors are the most recent CAPACITY, in order.
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(events.last().unwrap().request_id, total as u64 - 1);
    }
}
