//! Process-wide metrics registry: counters, gauges, histograms.
//!
//! Metric handles are cheap `static`s declared at the instrumentation
//! site; the first touch registers the metric under its name in a global
//! registry, later touches are a relaxed atomic op. When the
//! [`crate::enabled`] gate is off, update methods return after a single
//! relaxed load without registering anything, so a disabled binary never
//! builds the registry at all.
//!
//! [`metrics_json`] serializes every registered metric to the
//! `bt-obs-metrics-v1` schema (see DESIGN.md, "Observability"):
//!
//! ```json
//! {
//!   "schema": "bt-obs-metrics-v1",
//!   "counters": {"bt_dense.gemm.flops": 123},
//!   "gauges": {"bench.rhs_width": 8.0},
//!   "histograms": {
//!     "bt_dense.lu.panel_solve_ns": {
//!       "count": 4, "sum": 5120, "min": 900, "max": 2100,
//!       "buckets": [{"lt_pow2": 10, "count": 1}, {"lt_pow2": 12, "count": 3}]
//!     }
//!   }
//! }
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::escape;

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// `v` with `i` significant bits, i.e. `2^(i-1) <= v < 2^i` (bucket 0
/// counts zeros). 64 buckets cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Backing storage for one histogram.
pub struct HistogramData {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramData {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>, // f64 bit patterns
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramData>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// A monotonically increasing `u64` counter.
///
/// ```
/// static SOLVES: bt_obs::Counter = bt_obs::Counter::new("doc.registry.solves");
/// bt_obs::set_enabled(true);
/// SOLVES.incr();
/// SOLVES.add(2);
/// assert_eq!(SOLVES.value(), 3);
/// ```
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Counter {
    /// Declares a counter; nothing is registered until the first update.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn slot(&self) -> &AtomicU64 {
        self.cell.get_or_init(|| {
            Arc::clone(
                registry()
                    .counters
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(self.name)
                    .or_default(),
            )
        })
    }

    /// Adds `v`; a no-op while observability is disabled.
    #[inline]
    pub fn add(&self, v: u64) {
        if crate::enabled() {
            self.slot().fetch_add(v, Relaxed);
        }
    }

    /// Adds one; a no-op while observability is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (registers the counter if it never fired).
    pub fn value(&self) -> u64 {
        self.slot().load(Relaxed)
    }
}

/// A last-write-wins `f64` gauge.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Gauge {
    /// Declares a gauge; nothing is registered until the first update.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn slot(&self) -> &AtomicU64 {
        self.cell.get_or_init(|| {
            Arc::clone(
                registry()
                    .gauges
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(self.name)
                    .or_default(),
            )
        })
    }

    /// Sets the gauge; a no-op while observability is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.slot().store(v.to_bits(), Relaxed);
        }
    }

    /// Current value (registers the gauge if it never fired).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.slot().load(Relaxed))
    }
}

/// A fixed-bucket (power-of-two) histogram of `u64` samples, typically
/// nanosecond durations.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<Arc<HistogramData>>,
}

impl Histogram {
    /// Declares a histogram; nothing is registered until the first update.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn slot(&self) -> &HistogramData {
        self.cell.get_or_init(|| {
            Arc::clone(
                registry()
                    .histograms
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(self.name)
                    .or_insert_with(|| Arc::new(HistogramData::new())),
            )
        })
    }

    /// Records one sample; a no-op while observability is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.slot().record(v);
        }
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total recorded samples (registers the histogram if it never fired).
    pub fn count(&self) -> u64 {
        self.slot().count.load(Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.slot().sum.load(Relaxed)
    }
}

/// Snapshot of every registered counter, by name.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    registry()
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(name, v)| ((*name).to_string(), v.load(Relaxed)))
        .collect()
}

/// Snapshot of every registered gauge, by name.
pub fn gauges_snapshot() -> BTreeMap<String, f64> {
    registry()
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(name, v)| ((*name).to_string(), f64::from_bits(v.load(Relaxed))))
        .collect()
}

/// Point-in-time view of one histogram for external consumers (the live
/// exporter); `buckets` holds only the non-empty `(lt_pow2, count)`
/// pairs.
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty buckets as `(lt_pow2 index, count)`, ascending.
    pub buckets: Vec<(usize, u64)>,
}

/// Snapshot of every registered histogram, by name.
pub fn histograms_snapshot() -> BTreeMap<String, HistogramSnapshot> {
    registry()
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(name, h)| {
            let count = h.count.load(Relaxed);
            let snap = HistogramSnapshot {
                count,
                sum: h.sum.load(Relaxed),
                min: if count == 0 { 0 } else { h.min.load(Relaxed) },
                max: h.max.load(Relaxed),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, b)| {
                        let c = b.load(Relaxed);
                        (c > 0).then_some((idx, c))
                    })
                    .collect(),
            };
            ((*name).to_string(), snap)
        })
        .collect()
}

/// Per-counter difference `now - before` (absent counters count as 0),
/// dropping counters that did not move. Pairs with [`counters_snapshot`]
/// to attribute kernel activity to one region of a run.
pub fn counters_diff(before: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    counters_snapshot()
        .into_iter()
        .map(|(name, now)| {
            let delta = now.saturating_sub(before.get(&name).copied().unwrap_or(0));
            (name, delta)
        })
        .filter(|(_, delta)| *delta > 0)
        .collect()
}

/// Zeroes every registered metric (names stay registered). Test/bench
/// helper.
pub fn reset_metrics() {
    let reg = registry();
    for v in reg
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        v.store(0, Relaxed);
    }
    for v in reg
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        v.store(0f64.to_bits(), Relaxed);
    }
    for v in reg
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        v.reset();
    }
}

/// Serializes every registered metric to the `bt-obs-metrics-v1` JSON
/// schema (counters/gauges/histograms keyed by name).
pub fn metrics_json() -> String {
    let reg = registry();
    let mut out = String::from("{\n  \"schema\": \"bt-obs-metrics-v1\",\n  \"counters\": {");
    let counters = reg.counters.lock().expect("metrics registry poisoned");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", escape(name), v.load(Relaxed)));
    }
    drop(counters);
    out.push_str("\n  },\n  \"gauges\": {");
    let gauges = reg.gauges.lock().expect("metrics registry poisoned");
    for (i, (name, v)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let val = f64::from_bits(v.load(Relaxed));
        // JSON has no Inf/NaN literals; clamp to null-free finite output.
        let rendered = if val.is_finite() {
            format!("{val:e}")
        } else {
            "0".to_string()
        };
        out.push_str(&format!("\n    \"{}\": {}", escape(name), rendered));
    }
    drop(gauges);
    out.push_str("\n  },\n  \"histograms\": {");
    let histograms = reg.histograms.lock().expect("metrics registry poisoned");
    for (i, (name, h)) in histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let count = h.count.load(Relaxed);
        let min = if count == 0 { 0 } else { h.min.load(Relaxed) };
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {count}, \"sum\": {}, \"min\": {min}, \"max\": {}, \"buckets\": [",
            escape(name),
            h.sum.load(Relaxed),
            h.max.load(Relaxed),
        ));
        let mut first = true;
        for (idx, b) in h.buckets.iter().enumerate() {
            let c = b.load(Relaxed);
            if c > 0 {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("{{\"lt_pow2\": {idx}, \"count\": {c}}}"));
            }
        }
        out.push_str("]}");
    }
    drop(histograms);
    out.push_str("\n  }\n}\n");
    out
}

/// Writes [`metrics_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_metrics_json(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, metrics_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counter_stays_zero() {
        let _g = crate::test_guard();
        static C: Counter = Counter::new("test.registry.disabled");
        crate::set_enabled(false);
        C.add(5);
        assert_eq!(C.value(), 0);
        crate::set_enabled(true);
        C.add(5);
        assert_eq!(C.value(), 5);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        static H: Histogram = Histogram::new("test.registry.histo");
        H.record(0);
        H.record(1);
        H.record(1023);
        H.record(1024);
        assert_eq!(H.count(), 4);
        assert_eq!(H.sum(), 2048);
        assert_eq!(H.slot().min.load(Relaxed), 0);
        assert_eq!(H.slot().max.load(Relaxed), 1024);
        // 0 -> bucket 0, 1 -> bucket 1, 1023 -> bucket 10, 1024 -> bucket 11.
        for (idx, expect) in [(0, 1), (1, 1), (10, 1), (11, 1)] {
            assert_eq!(H.slot().buckets[idx].load(Relaxed), expect, "bucket {idx}");
        }
    }

    #[test]
    fn snapshot_diff_isolates_deltas() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        static A: Counter = Counter::new("test.registry.diff_a");
        static B: Counter = Counter::new("test.registry.diff_b");
        A.add(2);
        let before = counters_snapshot();
        B.add(3);
        let diff = counters_diff(&before);
        assert_eq!(diff.get("test.registry.diff_b"), Some(&3));
        assert!(!diff.contains_key("test.registry.diff_a"));
    }

    #[test]
    fn gauge_round_trips() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        static G: Gauge = Gauge::new("test.registry.gauge");
        G.set(2.5);
        assert_eq!(G.value(), 2.5);
    }

    #[test]
    fn json_parses_and_validates() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        static C: Counter = Counter::new("test.registry.json_counter");
        static H: Histogram = Histogram::new("test.registry.json_histo");
        C.add(7);
        H.record(100);
        let text = metrics_json();
        let parsed = crate::json::parse(&text).expect("metrics JSON parses");
        crate::json::validate_metrics(&parsed).expect("metrics JSON validates");
        let counters = parsed.get("counters").unwrap();
        assert!(
            counters
                .get("test.registry.json_counter")
                .unwrap()
                .as_f64()
                .unwrap()
                >= 7.0
        );
    }
}
