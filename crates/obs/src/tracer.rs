//! Wall-clock span tracing with Chrome trace-event JSON export.
//!
//! [`span`] returns an RAII guard; on drop, the elapsed wall time is
//! recorded as one complete (`ph:"X"`) event on the calling thread's
//! timeline. Threads are numbered in first-use order and can be labeled
//! ([`set_thread_label`]) — `bt_mpsim::run_spmd` labels each simulated
//! rank's thread `rank N`, so the wall trace lines up with the virtual
//! trace when both are open in Perfetto.
//!
//! While the [`crate::enabled`] gate is off, [`span`] hands back an inert
//! guard after a single relaxed atomic load; no clock is read and no lock
//! is taken. The event sink is bounded ([`MAX_EVENTS`]); overflow drops
//! events and counts them in the `bt_obs.trace.dropped_events` counter.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::escape;
use crate::registry::Counter;

/// Hard cap on buffered events: a runaway instrumented loop costs bounded
/// memory (~100 MB worst case) instead of everything.
pub const MAX_EVENTS: usize = 1 << 20;

static DROPPED: Counter = Counter::new("bt_obs.trace.dropped_events");

struct EventRec {
    cat: &'static str,
    name: &'static str,
    tid: u32,
    ts_ns: u64,
    dur_ns: u64,
    /// Pre-rendered JSON object (including braces), if any.
    args: Option<String>,
    /// Request-context fragment ([`crate::ctx`]) captured at span start,
    /// spliced into `args` at serialization time.
    ctx: Option<std::sync::Arc<str>>,
}

struct Sink {
    events: Mutex<Vec<EventRec>>,
    labels: Mutex<BTreeMap<u32, String>>,
}

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| Sink {
        events: Mutex::new(Vec::new()),
        labels: Mutex::new(BTreeMap::new()),
    })
}

/// Process-wide trace epoch: all span timestamps are relative to the
/// first instrumented event.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (the first instrumented
/// event). Public so callers can capture an event's start time on one
/// thread and emit the finished event later via [`complete_span`] — the
/// serving layer stamps queue entry this way. Unlike [`span`], this
/// always reads the clock; gate on [`crate::enabled`] at the call site
/// if the timestamp is only wanted under observability.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: Cell<Option<u32>> = const { Cell::new(None) };
}

fn current_tid() -> u32 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TID.fetch_add(1, Relaxed);
            t.set(Some(id));
            id
        }
    })
}

/// Names the calling thread in the exported trace (Chrome `thread_name`
/// metadata). Last label wins. A no-op while observability is disabled.
pub fn set_thread_label(label: impl Into<String>) {
    if !crate::enabled() {
        return;
    }
    let tid = current_tid();
    sink()
        .labels
        .lock()
        .expect("trace sink poisoned")
        .insert(tid, label.into());
}

/// RAII wall-clock span; records a complete event when dropped.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    start_ns: u64,
    cat: &'static str,
    name: &'static str,
    args: Option<String>,
    ctx: Option<std::sync::Arc<str>>,
    active: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_ns = now_ns();
        let rec = EventRec {
            cat: self.cat,
            name: self.name,
            tid: current_tid(),
            ts_ns: self.start_ns,
            dur_ns: end_ns.saturating_sub(self.start_ns),
            args: self.args.take(),
            ctx: self.ctx.take(),
        };
        push_event(rec);
    }
}

fn push_event(rec: EventRec) {
    let mut events = sink().events.lock().expect("trace sink poisoned");
    if events.len() < MAX_EVENTS {
        events.push(rec);
    } else {
        drop(events);
        DROPPED.incr();
    }
}

/// Starts a wall-clock span named `name` in category `cat`. Inert (one
/// relaxed load, no clock read) while observability is disabled. If the
/// calling thread has a [`crate::ctx::TraceCtx`] installed, its
/// request/batch ids are attached to the recorded event's `args`.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !crate::enabled() {
        return Span {
            start_ns: 0,
            cat,
            name,
            args: None,
            ctx: None,
            active: false,
        };
    }
    Span {
        start_ns: now_ns(),
        cat,
        name,
        args: None,
        ctx: crate::ctx::current().map(|c| std::sync::Arc::clone(c.fragment())),
        active: true,
    }
}

/// Records an already-finished complete event spanning
/// `[start_ns, end_ns]` (trace-epoch nanoseconds, see [`now_ns`]) on the
/// calling thread's timeline, optionally tagged with an explicit
/// context. This is for durations whose start predates the recording
/// thread's involvement — e.g. a request's queue wait, stamped at
/// `submit` on the client thread but recorded at dispatch. A no-op while
/// observability is disabled.
pub fn complete_span(
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    ctx: Option<&crate::ctx::TraceCtx>,
    args: Option<String>,
) {
    if !crate::enabled() {
        return;
    }
    push_event(EventRec {
        cat,
        name,
        tid: current_tid(),
        ts_ns: start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        args,
        ctx: ctx.map(|c| std::sync::Arc::clone(c.fragment())),
    });
}

/// Like [`span`], attaching the JSON object produced by `args` (e.g.
/// `|| format!("{{\"step\":{step}}}")`). The closure only runs when
/// observability is enabled.
#[inline]
pub fn span_with(cat: &'static str, name: &'static str, args: impl FnOnce() -> String) -> Span {
    let mut s = span(cat, name);
    if s.active {
        s.args = Some(args());
    }
    s
}

/// Discards all buffered events and thread labels (test/bench helper;
/// thread numbering and the epoch are preserved).
pub fn clear_trace() {
    let s = sink();
    s.events.lock().expect("trace sink poisoned").clear();
    s.labels.lock().expect("trace sink poisoned").clear();
}

/// Serializes buffered spans to Chrome trace-event JSON
/// (`{"traceEvents": [...]}`): process/thread metadata first, then
/// complete events sorted by `(tid, ts)` so per-thread timestamps are
/// monotone. Open in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn trace_json() -> String {
    let s = sink();
    let labels = s.labels.lock().expect("trace sink poisoned").clone();
    let events = s.events.lock().expect("trace sink poisoned");
    let mut order: Vec<usize> = (0..events.len()).collect();
    // Parents start earlier; ties (same start) put the longer span first
    // so nesting renders correctly.
    order.sort_by(|&a, &b| {
        (events[a].tid, events[a].ts_ns, events[b].dur_ns).cmp(&(
            events[b].tid,
            events[b].ts_ns,
            events[a].dur_ns,
        ))
    });

    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(
        r#"  {"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"bt wall clock"}}"#,
    );
    for (tid, label) in &labels {
        out.push_str(&format!(
            ",\n  {{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(label)
        ));
    }
    for idx in order {
        let ev = &events[idx];
        let args = render_args(ev.ctx.as_deref(), ev.args.as_deref());
        out.push_str(&format!(
            ",\n  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{args}}}",
            escape(ev.name),
            escape(ev.cat),
            ev.ts_ns as f64 / 1e3,
            ev.dur_ns as f64 / 1e3,
            ev.tid,
        ));
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Splices a context fragment into a pre-rendered args object: the
/// request/batch keys come first, then the span's own keys.
fn render_args(ctx: Option<&str>, args: Option<&str>) -> String {
    match (ctx, args) {
        (None, None) => "{}".to_string(),
        (None, Some(a)) => a.to_string(),
        (Some(c), None) => format!("{{{c}}}"),
        (Some(c), Some(a)) => {
            let inner = a
                .trim()
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .unwrap_or("")
                .trim();
            if inner.is_empty() {
                format!("{{{c}}}")
            } else {
                format!("{{{c},{inner}}}")
            }
        }
    }
}

/// Writes [`trace_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace_json(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn spans_round_trip_through_parser() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        clear_trace();
        set_thread_label("test thread");
        {
            let _outer = span("test", "outer");
            let _inner = span_with("test", "inner", || "{\"k\":1}".to_string());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let text = trace_json();
        let parsed = json::parse(&text).expect("trace JSON parses");
        let summary = json::validate_chrome_trace(&parsed).expect("trace validates");
        assert_eq!(summary.complete_events, 2);
        assert!(text.contains("\"inner\""));
        assert!(text.contains("\"test thread\""));
        // Outer sorts before inner: same-thread, earlier (or equal) start
        // with longer duration.
        let outer_pos = text.find("\"outer\"").unwrap();
        let inner_pos = text.find("\"inner\"").unwrap();
        assert!(outer_pos < inner_pos);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        clear_trace();
        crate::set_enabled(false);
        {
            let _s = span("test", "invisible");
        }
        crate::set_enabled(true);
        let text = trace_json();
        assert!(!text.contains("invisible"));
    }

    #[test]
    fn ctx_fragment_lands_in_span_args() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        clear_trace();
        {
            let _guard = crate::ctx::enter(crate::ctx::TraceCtx::batch(5, &[41, 42]));
            let _plain = span("test", "tagged_plain");
            let _with = span_with("test", "tagged_args", || "{\"k\":1}".to_string());
        }
        {
            let _untagged = span("test", "untagged");
        }
        let text = trace_json();
        let parsed = json::parse(&text).expect("parses");
        json::validate_chrome_trace(&parsed).expect("validates");
        assert!(text.contains(r#""batch":5,"reqs":[41,42]}"#));
        assert!(text.contains(r#""batch":5,"reqs":[41,42],"k":1}"#));
        let untagged_line = text
            .lines()
            .find(|l| l.contains("\"untagged\""))
            .expect("untagged span present");
        assert!(!untagged_line.contains("reqs"));
    }

    #[test]
    fn complete_span_records_retroactively() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        clear_trace();
        let start = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ctx = crate::ctx::TraceCtx::request(77);
        complete_span("test", "queue_wait", start, now_ns(), Some(&ctx), None);
        let text = trace_json();
        let parsed = json::parse(&text).expect("parses");
        json::validate_chrome_trace(&parsed).expect("validates");
        assert!(text.contains("\"queue_wait\""));
        assert!(text.contains("{\"req\":77}"));
    }

    #[test]
    fn per_thread_timestamps_are_monotone() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        clear_trace();
        let threads: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..5 {
                        let _s = span("test", "tick");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let parsed = json::parse(&trace_json()).expect("parses");
        json::validate_chrome_trace(&parsed).expect("monotone per tid");
    }
}
