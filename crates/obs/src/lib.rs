//! # bt-obs: observability for the block tridiagonal suite
//!
//! The *real-time* complement to `bt-mpsim`'s virtual-clock trace: the
//! paper's claims are cost-model claims (`O(M^3 (N/P + log P))` scan
//! cost, `O(R)` multi-RHS amortization), and this crate is the
//! measurement substrate that checks whether the implementation's wall
//! clock agrees with the model. Two facilities, both `std`-only:
//!
//! * a process-wide **metrics registry** ([`registry`]) of atomic
//!   counters, gauges and fixed-bucket histograms with JSON export —
//!   kernel dispatch counts, flop totals, pack/panel-solve nanoseconds;
//! * a **span tracer** ([`tracer`]) recording wall-clock durations per
//!   thread and serializing to Chrome trace-event JSON, so solver phases
//!   and `log P` doubling rounds can be inspected in Perfetto alongside
//!   the virtual trace.
//!
//! Everything is gated by the `BT_OBS` environment variable (or
//! [`set_enabled`]): when disabled, every instrumentation site costs a
//! single relaxed atomic load and touches no shared state, so
//! instrumented kernels stay bitwise identical and within noise of
//! uninstrumented builds.
//!
//! Three serving-path facilities are deliberately NOT gated, because
//! they exist to explain runs that nobody was watching:
//!
//! * [`hdr`] — always-on HDR-style latency recorders (log-linear
//!   buckets, lock-free per-thread shards) behind the serving layer's
//!   p50/p95/p99-by-stage numbers;
//! * [`flight`] — a fixed-size ring of recent structured events
//!   (submits, dispatches, evictions, panics) dumped on solve panic and
//!   on demand;
//! * [`exporter`] — an opt-in (`BT_OBS_ADDR`) `std::net::TcpListener`
//!   thread serving Prometheus text and JSON snapshots live.
//!
//! [`ctx`] carries request/batch ids across the serving path so spans
//! recorded anywhere under a request are tagged with its id.
//!
//! The [`json`] module holds a minimal in-tree JSON parser plus
//! validators for the emitted schemas; the `obs_validate` binary wraps
//! them for CI.
//!
//! ## Example
//!
//! ```
//! bt_obs::set_enabled(true);
//! static CALLS: bt_obs::Counter = bt_obs::Counter::new("doc.calls");
//! CALLS.incr();
//! {
//!     let _span = bt_obs::span("doc", "work");
//!     // ... timed region ...
//! }
//! let metrics = bt_obs::metrics_json();
//! assert!(metrics.contains("doc.calls"));
//! let trace = bt_obs::trace_json();
//! bt_obs::json::validate_chrome_trace(&bt_obs::json::parse(&trace).unwrap()).unwrap();
//! ```

pub mod ctx;
pub mod exporter;
pub mod flight;
pub mod hdr;
pub mod json;
pub mod registry;
pub mod tracer;

use std::sync::atomic::{AtomicU8, Ordering};

pub use ctx::TraceCtx;
pub use hdr::{Latency, LatencySnapshot};
pub use registry::{
    counters_diff, counters_snapshot, metrics_json, reset_metrics, write_metrics_json, Counter,
    Gauge, Histogram,
};
pub use tracer::{
    clear_trace, complete_span, set_thread_label, span, span_with, trace_json, write_trace_json,
    Span,
};

/// Tri-state gate: 0 = uninitialized, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True when observability is on. The steady-state cost is one relaxed
/// atomic load; the first call reads the `BT_OBS` environment variable
/// (any value except empty, `0`, `false` or `off` enables).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("BT_OBS").is_ok_and(|v| {
        let v = v.trim();
        !(v.is_empty()
            || v == "0"
            || v.eq_ignore_ascii_case("false")
            || v.eq_ignore_ascii_case("off"))
    });
    // A racing initialization computes the same value on every thread.
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically enables or disables observability, overriding
/// `BT_OBS` (used by the bench CLI's `--metrics-out`/`--trace-out` flags
/// and by tests).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Serializes tests that flip the global gate or read global registries.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_toggles() {
        let _g = test_guard();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
