//! Live telemetry exporter: a `std::net::TcpListener` thread serving the
//! metrics registry, the always-on latency recorders and the flight
//! recorder over plain HTTP/1.0 — zero dependencies, opt-in.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4):
//!   counters and gauges verbatim, power-of-two histograms as cumulative
//!   `_bucket{le="..."}` series, [`crate::hdr`] recorders as summaries
//!   with `quantile` labels. Names are sanitized (`.` becomes `_`).
//! * `GET /json` (or `/`) — one `bt-obs-snapshot-v1` document embedding
//!   the `bt-obs-metrics-v1` dump plus latency quantiles by stage.
//! * `GET /flight` — the flight-recorder ring as `bt-obs-flight-v1`.
//!
//! Start it explicitly with [`serve`] (tests bind `127.0.0.1:0`) or let
//! [`serve_from_env`] read `BT_OBS_ADDR` — `bench_service` does the
//! latter, so a long bench run can be watched live:
//!
//! ```text
//! BT_OBS=1 BT_OBS_ADDR=127.0.0.1:9464 cargo run --release -p bt-bench --bin bench_service &
//! curl http://127.0.0.1:9464/metrics
//! ```
//!
//! The server is deliberately minimal: one thread, one connection at a
//! time, `Connection: close` on every response. Scrapes read shared
//! atomics only — they never block a recording thread.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use crate::hdr;
use crate::registry;

/// Quantiles exposed for each latency recorder, as Prometheus summary
/// labels and `p50`/... keys in the JSON snapshot.
pub const QUANTILES: [(f64, &str); 4] = [(0.5, "50"), (0.9, "90"), (0.95, "95"), (0.99, "99")];

/// Handle to a running exporter; dropping it stops the thread.
pub struct Exporter {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Exporter {
    /// The bound address (resolves port 0 to the real port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown.store(true, Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port) and
/// serves telemetry until the returned handle drops.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve(addr: &str) -> std::io::Result<Exporter> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("bt-obs-exporter".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Relaxed) {
                    break;
                }
                if let Ok(stream) = stream {
                    // Scrape errors only matter to the scraper.
                    let _ = handle_conn(stream);
                }
            }
        })?;
    Ok(Exporter {
        addr,
        shutdown,
        handle: Some(handle),
    })
}

/// Starts the exporter when `BT_OBS_ADDR` is set; `None` (silently) when
/// it is not, `None` with a stderr note when the bind fails.
#[must_use]
pub fn serve_from_env() -> Option<Exporter> {
    let addr = std::env::var("BT_OBS_ADDR").ok()?;
    let addr = addr.trim();
    if addr.is_empty() {
        return None;
    }
    match serve(addr) {
        Ok(exporter) => Some(exporter),
        Err(e) => {
            eprintln!("bt-obs: BT_OBS_ADDR={addr}: bind failed: {e}");
            None
        }
    }
}

fn handle_conn(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    // Read until the end of the request head (tolerate partial reads;
    // the request line is all we route on).
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let path = path.split('?').next().unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(),
        ),
        "/" | "/json" => ("200 OK", "application/json", snapshot_json()),
        "/flight" => ("200 OK", "application/json", crate::flight::dump_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /json or /flight\n".to_string(),
        ),
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Maps a metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other bytes become `_`.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders the whole registry plus the latency recorders as Prometheus
/// text exposition format.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn prometheus_text() -> String {
    let mut out = String::new();
    for (name, v) in registry::counters_snapshot() {
        let n = sanitize_name(&name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in registry::gauges_snapshot() {
        let n = sanitize_name(&name);
        let v = if v.is_finite() { v } else { 0.0 };
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in registry::histograms_snapshot() {
        let n = sanitize_name(&name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for (idx, c) in &h.buckets {
            cum += c;
            // Bucket `idx` counts v < 2^idx, i.e. v <= 2^idx - 1.
            let le = ((1u128 << idx) - 1) as f64;
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!(
            "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_sum {}\n{n}_count {}\n",
            h.count, h.sum, h.count
        ));
    }
    for (name, snap) in hdr::latencies_snapshot() {
        let n = sanitize_name(&name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, _) in QUANTILES {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", snap.quantile(q)));
        }
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", snap.sum, snap.count));
    }
    out
}

/// One `bt-obs-snapshot-v1` JSON document: latency quantiles by stage,
/// the flight-ring depth, and the full `bt-obs-metrics-v1` dump.
#[must_use]
pub fn snapshot_json() -> String {
    let mut out = String::from("{\n  \"schema\": \"bt-obs-snapshot-v1\",\n  \"latency\": {");
    for (i, (name, snap)) in hdr::latencies_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}",
            crate::json::escape(name),
            snap.count,
            snap.sum,
            snap.min,
            snap.max
        ));
        for (q, tag) in QUANTILES {
            out.push_str(&format!(", \"p{tag}\": {}", snap.quantile(q)));
        }
        out.push('}');
    }
    out.push_str(&format!(
        "\n  }},\n  \"flight_recorded\": {},\n  \"metrics\": ",
        crate::flight::recorded()
    ));
    out.push_str(crate::registry::metrics_json().trim_end());
    out.push_str("\n}\n");
    out
}

/// Summary from [`validate_prometheus_text`].
#[derive(Debug)]
pub struct PromSummary {
    /// Number of sample lines.
    pub samples: usize,
    /// Number of `# TYPE` headers.
    pub types: usize,
}

/// Validates Prometheus text exposition format (the subset this exporter
/// emits): every line is a comment, a `# TYPE name
/// counter|gauge|histogram|summary|untyped` header, or a
/// `name{labels} value` sample with a well-formed name and a float
/// value.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus_text(text: &str) -> Result<PromSummary, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }
    let mut samples = 0usize;
    let mut types = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("line {lineno}: bad metric name in TYPE: {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            types += 1;
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample: name[{labels}] value
        let (name_part, value_part) = if let Some(open) = line.find('{') {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("line {lineno}: unclosed label braces"))?;
            if close < open {
                return Err(format!("line {lineno}: mismatched label braces"));
            }
            let labels = &line[open + 1..close];
            for pair in labels.split(',').filter(|p| !p.trim().is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: label without '=': {pair:?}"))?;
                if !valid_name(k.trim()) {
                    return Err(format!("line {lineno}: bad label name {k:?}"));
                }
                let v = v.trim();
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return Err(format!("line {lineno}: unquoted label value {v:?}"));
                }
            }
            (&line[..open], &line[close + 1..])
        } else {
            let sp = line
                .find(' ')
                .ok_or_else(|| format!("line {lineno}: sample without value"))?;
            (&line[..sp], &line[sp..])
        };
        if !valid_name(name_part.trim()) {
            return Err(format!(
                "line {lineno}: bad metric name {:?}",
                name_part.trim()
            ));
        }
        let value = value_part.split_whitespace().next().unwrap_or("");
        let value_ok = value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !value_ok {
            return Err(format!("line {lineno}: bad sample value {value:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(PromSummary { samples, types })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read");
        let (head, body) = resp.split_once("\r\n\r\n").expect("split head/body");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_endpoints() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        static C: crate::Counter = crate::Counter::new("test.exporter.hits");
        static L: crate::Latency = crate::Latency::new("test.exporter.lat_ns");
        C.incr();
        L.record(1234);
        let exporter = serve("127.0.0.1:0").expect("bind");
        let addr = exporter.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.contains("test_exporter_hits"));
        assert!(body.contains("test_exporter_lat_ns{quantile=\"0.5\"}"));
        let summary = validate_prometheus_text(&body).expect("prometheus text validates");
        assert!(summary.samples > 0 && summary.types > 0);

        let (head, body) = get(addr, "/json");
        assert!(head.starts_with("HTTP/1.0 200"));
        let doc = crate::json::parse(&body).expect("snapshot parses");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Json::as_str),
            Some("bt-obs-snapshot-v1")
        );
        let metrics = doc.get("metrics").expect("embedded metrics");
        crate::json::validate_metrics(metrics).expect("embedded metrics validate");

        let (head, body) = get(addr, "/flight");
        assert!(head.starts_with("HTTP/1.0 200"));
        let doc = crate::json::parse(&body).expect("flight parses");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Json::as_str),
            Some("bt-obs-flight-v1")
        );

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"));
        drop(exporter);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus_text("").is_err());
        assert!(validate_prometheus_text("9bad_name 1\n").is_err());
        assert!(validate_prometheus_text("name notanumber\n").is_err());
        assert!(validate_prometheus_text("name{le=unquoted} 1\n").is_err());
        assert!(validate_prometheus_text("# TYPE x flux\nx 1\n").is_err());
        let ok = "# TYPE a counter\na 1\nb{le=\"0.5\",q=\"x\"} 2.5\nc +Inf\n";
        let s = validate_prometheus_text(ok).expect("valid");
        assert_eq!(s.samples, 3);
        assert_eq!(s.types, 1);
    }

    #[test]
    fn sanitize_maps_dots() {
        assert_eq!(
            sanitize_name("bt_service.queue_wait_ns"),
            "bt_service_queue_wait_ns"
        );
        assert_eq!(sanitize_name("9lives"), "_lives");
    }
}
