//! Minimal in-tree JSON parser and schema validators.
//!
//! The suite emits three JSON artifacts — the mpsim virtual-clock Chrome
//! trace, the bt-obs wall-clock Chrome trace, and the metrics registry
//! dump — and promises they are machine-readable. This module backs that
//! promise without an external serde dependency: a recursive-descent
//! parser into a [`Json`] value plus validators for the Chrome
//! trace-event shape ([`validate_chrome_trace`]) and the
//! `bt-obs-metrics-v1` schema ([`validate_metrics`]). Tests and the CI
//! `obs_validate` binary round-trip every emitted file through them.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys keep first-wins semantics on
/// duplicates; numbers are `f64` (adequate for the emitted schemas).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number literal.
    Num(f64),
    /// String literal (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates map to the replacement character;
                            // the emitted schemas never use them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.entry(key).or_insert(value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// What [`validate_chrome_trace`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events (including metadata).
    pub events: usize,
    /// `ph:"X"` complete events.
    pub complete_events: usize,
    /// Distinct `tid`s carrying non-metadata events.
    pub threads: usize,
    /// `ph:"s"` flow starts.
    pub flow_starts: usize,
    /// `ph:"f"` flow finishes.
    pub flow_finishes: usize,
}

/// Validates Chrome trace-event JSON: either a bare event array or an
/// object with a `traceEvents` array. Every event must carry `name`,
/// `ph`, `ts`, `pid` and `tid`; complete (`X`) events a non-negative
/// `dur`; flow (`s`/`f`) events an `id`. Non-metadata timestamps must be
/// monotone per `tid` in array order, and every flow finish must have a
/// matching flow start with the same `id`.
///
/// # Errors
///
/// The first violated rule, with the event index.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceSummary, String> {
    let events = match doc {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("trace object lacks a traceEvents array")?,
        _ => return Err("trace document is neither an array nor an object".to_string()),
    };
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
    let mut flow_start_ids: Vec<String> = Vec::new();
    let mut flow_finish_ids: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_obj()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if !obj.contains_key(key) {
                return Err(format!("event {i} lacks '{key}'"));
            }
        }
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default();
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: non-numeric ts"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: non-numeric tid"))? as i64;
        match ph {
            "M" => continue, // metadata has no timeline placement
            "X" => {
                summary.complete_events += 1;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: complete event lacks numeric dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur {dur}"));
                }
            }
            "s" | "f" => {
                let id = ev
                    .get("id")
                    .map(|v| match v {
                        Json::Num(n) => Ok(format!("{n}")),
                        Json::Str(s) => Ok(s.clone()),
                        _ => Err(format!("event {i}: flow id is neither number nor string")),
                    })
                    .transpose()?
                    .ok_or_else(|| format!("event {i}: flow event lacks 'id'"))?;
                if ph == "s" {
                    summary.flow_starts += 1;
                    flow_start_ids.push(id);
                } else {
                    summary.flow_finishes += 1;
                    flow_finish_ids.push(id);
                }
            }
            _ => {}
        }
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!(
                "event {i}: ts {ts} goes backwards on tid {tid} (previous {prev})"
            ));
        }
        *prev = ts;
    }
    summary.threads = last_ts.len();
    flow_start_ids.sort_unstable();
    for id in &flow_finish_ids {
        if flow_start_ids.binary_search(id).is_err() {
            return Err(format!("flow finish id {id} has no matching flow start"));
        }
    }
    Ok(summary)
}

/// What [`validate_metrics`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Registered counters.
    pub counters: usize,
    /// Registered gauges.
    pub gauges: usize,
    /// Registered histograms.
    pub histograms: usize,
}

/// Validates a `bt-obs-metrics-v1` document: schema tag, counter values
/// that are non-negative integers, numeric gauges, and histograms whose
/// bucket counts sum to `count`.
///
/// # Errors
///
/// The first violated rule, naming the offending metric.
pub fn validate_metrics(doc: &Json) -> Result<MetricsSummary, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("bt-obs-metrics-v1") => {}
        Some(other) => return Err(format!("unknown metrics schema '{other}'")),
        None => return Err("metrics document lacks a schema tag".to_string()),
    }
    let mut summary = MetricsSummary::default();
    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("metrics document lacks a counters object")?;
    for (name, v) in counters {
        let v = v
            .as_f64()
            .ok_or_else(|| format!("counter '{name}' is not numeric"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("counter '{name}' is not a non-negative integer"));
        }
        summary.counters += 1;
    }
    let gauges = doc
        .get("gauges")
        .and_then(Json::as_obj)
        .ok_or("metrics document lacks a gauges object")?;
    for (name, v) in gauges {
        if v.as_f64().is_none() {
            return Err(format!("gauge '{name}' is not numeric"));
        }
        summary.gauges += 1;
    }
    let histograms = doc
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("metrics document lacks a histograms object")?;
    for (name, h) in histograms {
        let count = h
            .get("count")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("histogram '{name}' lacks numeric count"))?;
        for key in ["sum", "min", "max"] {
            if h.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("histogram '{name}' lacks numeric {key}"));
            }
        }
        let buckets = h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("histogram '{name}' lacks a buckets array"))?;
        let mut total = 0.0;
        for b in buckets {
            total += b
                .get("count")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histogram '{name}': bucket lacks numeric count"))?;
            if b.get("lt_pow2").and_then(Json::as_f64).is_none() {
                return Err(format!("histogram '{name}': bucket lacks lt_pow2"));
            }
        }
        if (total - count).abs() > 0.5 {
            return Err(format!(
                "histogram '{name}': bucket counts sum to {total}, count is {count}"
            ));
        }
        summary.histograms += 1;
    }
    Ok(summary)
}

/// What [`validate_bench_service`] found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchServiceSummary {
    /// Result records (one per `(rate, leg)` pair).
    pub legs: usize,
    /// Batched-over-unbatched completed-throughput ratio at the highest
    /// offered rate both legs ran (1.0 if only one leg is present).
    pub batched_speedup: f64,
}

/// Validates a `bt-bench-service-v1` document (`bench_service` output):
/// schema tag, run parameters, per-leg records with ordered latency
/// percentiles, and — when the coalescer actually saw deep queues (mean
/// batch width ≥ 16 at some rate) — that batched dispatch beat
/// one-solve-per-request throughput at equal-or-better p99 there.
///
/// # Errors
///
/// The first violated rule, naming the offending record.
pub fn validate_bench_service(doc: &Json) -> Result<BenchServiceSummary, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("bt-bench-service-v1") => {}
        Some(other) => return Err(format!("unknown service bench schema '{other}'")),
        None => return Err("service bench document lacks a schema tag".to_string()),
    }
    for key in ["n", "m", "p", "requests", "max_batch", "max_delay_us"] {
        match doc.get(key).and_then(Json::as_f64) {
            Some(v) if v >= 1.0 => {}
            _ => return Err(format!("'{key}' is missing or not a positive number")),
        }
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("service bench document lacks a results array")?;
    if results.is_empty() {
        return Err("results array is empty".to_string());
    }
    let mut parsed: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for (i, rec) in results.iter().enumerate() {
        let leg = rec
            .get("leg")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}] lacks a leg tag"))?;
        if leg != "unbatched" && leg != "batched" {
            return Err(format!("results[{i}] has unknown leg '{leg}'"));
        }
        let num = |key: &str| {
            rec.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("results[{i}] ({leg}) lacks numeric {key}"))
        };
        let rate = num("rate_mult")?;
        let tput = num("throughput_rps")?;
        let width = num("mean_batch_width")?;
        let (p50, p95, p99, max) = (
            num("p50_us")?,
            num("p95_us")?,
            num("p99_us")?,
            num("max_us")?,
        );
        num("rate_rps")?;
        num("requests")?;
        num("dispatches")?;
        num("mean_queue_wait_us")?;
        if tput <= 0.0 {
            return Err(format!("results[{i}] ({leg}) throughput is not positive"));
        }
        if width < 1.0 {
            return Err(format!("results[{i}] ({leg}) mean batch width below 1"));
        }
        if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
            return Err(format!(
                "results[{i}] ({leg}) percentiles are not ordered: \
                 p50 {p50} p95 {p95} p99 {p99} max {max}"
            ));
        }
        parsed.push((leg.to_string(), rate, tput, width, p99));
    }
    // The headline claim: wherever coalescing actually engaged (mean
    // batch width >= 16), batching must win throughput without losing p99.
    let mut summary = BenchServiceSummary {
        legs: parsed.len(),
        batched_speedup: 1.0,
    };
    let mut top_rate = f64::NEG_INFINITY;
    for (leg, rate, tput, width, p99) in &parsed {
        if leg != "batched" {
            continue;
        }
        let Some((_, _, base_tput, _, base_p99)) = parsed
            .iter()
            .find(|(l, r, ..)| l == "unbatched" && r == rate)
        else {
            continue;
        };
        if *width >= 16.0 {
            if tput < base_tput {
                return Err(format!(
                    "rate x{rate}: batched throughput {tput:.0} req/s lost to \
                     unbatched {base_tput:.0} req/s despite mean width {width:.1}"
                ));
            }
            if p99 > base_p99 {
                return Err(format!(
                    "rate x{rate}: batched p99 {p99:.0} us worse than \
                     unbatched {base_p99:.0} us despite mean width {width:.1}"
                ));
            }
        }
        if *rate > top_rate {
            top_rate = *rate;
            summary.batched_speedup = tput / base_tput;
        }
    }
    Ok(summary)
}

/// What [`validate_flight`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightSummary {
    /// Events in the dump.
    pub events: usize,
    /// Total events ever recorded per the header.
    pub recorded: u64,
}

/// Validates a `bt-obs-flight-v1` flight-recorder dump: schema tag,
/// capacity/recorded header, and events carrying numeric
/// `seq`/`t_ns`/`req`/`batch`/`key` plus string `kind`/`detail`, with
/// strictly increasing sequence numbers.
///
/// # Errors
///
/// The first violated rule, with the event index.
pub fn validate_flight(doc: &Json) -> Result<FlightSummary, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("bt-obs-flight-v1") => {}
        Some(other) => return Err(format!("unknown flight schema '{other}'")),
        None => return Err("flight dump lacks a schema tag".to_string()),
    }
    let recorded = doc
        .get("recorded")
        .and_then(Json::as_f64)
        .ok_or("flight dump lacks numeric 'recorded'")?;
    if doc.get("capacity").and_then(Json::as_f64).is_none() {
        return Err("flight dump lacks numeric 'capacity'".to_string());
    }
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("flight dump lacks an events array")?;
    let mut last_seq = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        for key in ["seq", "t_ns", "req", "batch", "key"] {
            if ev.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("flight event {i} lacks numeric '{key}'"));
            }
        }
        for key in ["kind", "detail"] {
            if ev.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("flight event {i} lacks string '{key}'"));
            }
        }
        let seq = ev.get("seq").and_then(Json::as_f64).unwrap_or_default();
        if seq <= last_seq {
            return Err(format!("flight event {i}: seq {seq} not increasing"));
        }
        last_seq = seq;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(FlightSummary {
        events: events.len(),
        recorded: recorded as u64,
    })
}

/// Validates a `bt-obs-snapshot-v1` document (the exporter's `/json`
/// endpoint): latency entries with ordered quantiles and an embedded
/// `bt-obs-metrics-v1` dump.
///
/// # Errors
///
/// The first violated rule, naming the offending entry.
pub fn validate_snapshot(doc: &Json) -> Result<MetricsSummary, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("bt-obs-snapshot-v1") => {}
        Some(other) => return Err(format!("unknown snapshot schema '{other}'")),
        None => return Err("snapshot lacks a schema tag".to_string()),
    }
    let latency = doc
        .get("latency")
        .and_then(Json::as_obj)
        .ok_or("snapshot lacks a latency object")?;
    for (name, entry) in latency {
        let num = |key: &str| {
            entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("latency '{name}' lacks numeric {key}"))
        };
        for key in ["count", "sum", "min", "max"] {
            num(key)?;
        }
        let (p50, p90, p95, p99) = (num("p50")?, num("p90")?, num("p95")?, num("p99")?);
        if !(p50 <= p90 && p90 <= p95 && p95 <= p99) {
            return Err(format!(
                "latency '{name}': quantiles not ordered: {p50} {p90} {p95} {p99}"
            ));
        }
    }
    if doc.get("flight_recorded").and_then(Json::as_f64).is_none() {
        return Err("snapshot lacks numeric 'flight_recorded'".to_string());
    }
    let metrics = doc
        .get("metrics")
        .ok_or("snapshot lacks an embedded metrics document")?;
    validate_metrics(metrics)
}

/// What [`validate_bench_shm`] found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchShmSummary {
    /// Sweep cells (one per `(p, r)` pair).
    pub cells: usize,
    /// RHS columns solved per wall second at the biggest `(p, r)` cell.
    pub headline: f64,
    /// Relative error of the calibration's alpha-beta fit at its
    /// held-out message size.
    pub fit_error: f64,
}

/// Validates a `bt-bench-shm-v1` document (`bench_shm` output): schema
/// tag, run parameters, a calibration block with a finite fit error, and
/// per-cell records whose measured-vs-modeled `ratio` is consistent with
/// the recorded `wall_ns / modeled_ns`.
///
/// # Errors
///
/// The first violated rule, naming the offending cell.
pub fn validate_bench_shm(doc: &Json) -> Result<BenchShmSummary, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("bt-bench-shm-v1") => {}
        Some(other) => return Err(format!("unknown shm bench schema '{other}'")),
        None => return Err("shm bench document lacks a schema tag".to_string()),
    }
    for key in ["n", "m", "reps", "cores"] {
        match doc.get(key).and_then(Json::as_f64) {
            Some(v) if v >= 1.0 => {}
            _ => return Err(format!("'{key}' is missing or not a positive number")),
        }
    }
    let calib = doc
        .get("calib")
        .and_then(Json::as_obj)
        .ok_or("shm bench document lacks a calib object")?;
    let calib_num = |key: &str| {
        calib
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v.as_f64())
            .ok_or_else(|| format!("calib lacks numeric {key}"))
    };
    if calib_num("alpha_s")? <= 0.0 {
        return Err("calib alpha_s is not positive".to_string());
    }
    if calib_num("beta_s_per_byte")? < 0.0 {
        return Err("calib beta_s_per_byte is negative".to_string());
    }
    if calib_num("flop_rate")? <= 0.0 {
        return Err("calib flop_rate is not positive".to_string());
    }
    let fit_error = calib_num("fit_error")?;
    if !fit_error.is_finite() || fit_error < 0.0 {
        return Err(format!(
            "calib fit_error {fit_error} is not a finite non-negative number"
        ));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("shm bench document lacks a results array")?;
    if results.is_empty() {
        return Err("results array is empty".to_string());
    }
    let mut biggest: Option<(f64, f64, f64)> = None; // (p, r, wall_ns)
    for (i, rec) in results.iter().enumerate() {
        let num = |key: &str| {
            rec.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("results[{i}] lacks numeric {key}"))
        };
        let (p, r) = (num("p")?, num("r")?);
        if p < 1.0 || r < 1.0 {
            return Err(format!("results[{i}] has non-positive p or r"));
        }
        num("tile")?;
        let (wall, modeled, ratio) = (num("wall_ns")?, num("modeled_ns")?, num("ratio")?);
        if wall <= 0.0 || modeled <= 0.0 {
            return Err(format!(
                "results[{i}] (p={p} r={r}): wall_ns {wall} / modeled_ns {modeled} not positive"
            ));
        }
        let expect = wall / modeled;
        if ratio <= 0.0 || (ratio - expect).abs() > 0.01 * expect {
            return Err(format!(
                "results[{i}] (p={p} r={r}): ratio {ratio} inconsistent with \
                 wall/modeled {expect:.4}"
            ));
        }
        if biggest.is_none_or(|(bp, br, _)| (p, r) > (bp, br)) {
            biggest = Some((p, r, wall));
        }
    }
    let (_, r_big, wall_big) = biggest.expect("nonempty results");
    let headline = doc
        .get("headline_rhs_cols_per_s")
        .and_then(Json::as_f64)
        .ok_or("shm bench document lacks numeric headline_rhs_cols_per_s")?;
    let expect = r_big / (wall_big * 1e-9);
    if headline <= 0.0 || (headline - expect).abs() > 0.01 * expect {
        return Err(format!(
            "headline {headline:.1} inconsistent with biggest cell's {expect:.1} RHS columns/s"
        ));
    }
    Ok(BenchShmSummary {
        cells: results.len(),
        headline,
        fit_error,
    })
}

/// What [`validate_bench_mixed`] found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchMixedSummary {
    /// Sweep cells (one per `(generator, r)` pair, plus fallback cells).
    pub cells: usize,
    /// Cells where the gray-zone gate forced the `f64` fallback.
    pub fallback_cells: usize,
    /// Best warm-replay speedup (`f64_replay_ns / f32_replay_ns`) over
    /// the `f32` cells.
    pub headline: f64,
}

/// Gray-zone gate mirrored from `bt_ard::MIXED_COND_MAX` (`bt-obs`
/// cannot depend on `bt-ard`): every `f32` cell of a mixed bench must
/// sit at or below this boundary condition estimate.
const MIXED_GATE_COND: f64 = 1e6;

/// Speedup claim a full-scale SIMD `bt-bench-mixed-v1` document must
/// back: the half-width replay path is only worth shipping if the warm
/// replay is at least this much faster somewhere in the sweep.
const MIXED_CLAIM_MIN_SPEEDUP: f64 = 1.6;

/// Validates a `bt-bench-mixed-v1` document (`bench_mixed` output):
/// schema tag, run parameters, per-cell consistency of
/// `replay_speedup = f64_replay_ns / f32_replay_ns`, fallback cells
/// shaped as fallbacks (`precision = "f64"`, `fell_back = true`,
/// `f32_replay_ns = null`, at least one present so the gate is
/// exercised), `f32` cells inside the gray-zone gate, the equal-quality
/// residual claim (`mixed_residual <= max(1e-12, 4 * f64_residual)`),
/// and a headline consistent with the best `f32` cell. Full-scale
/// documents generated on a SIMD dispatch path must also back the
/// [`MIXED_CLAIM_MIN_SPEEDUP`] claim (smoke and scalar runs are only
/// checked for internal consistency).
///
/// # Errors
///
/// The first violated rule, naming the offending cell.
pub fn validate_bench_mixed(doc: &Json) -> Result<BenchMixedSummary, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("bt-bench-mixed-v1") => {}
        Some(other) => return Err(format!("unknown mixed bench schema '{other}'")),
        None => return Err("mixed bench document lacks a schema tag".to_string()),
    }
    for key in ["m", "p", "reps", "cores"] {
        match doc.get(key).and_then(Json::as_f64) {
            Some(v) if v >= 1.0 => {}
            _ => return Err(format!("'{key}' is missing or not a positive number")),
        }
    }
    let smoke = match doc.get("smoke") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("mixed bench document lacks a boolean 'smoke'".to_string()),
    };
    let simd = doc
        .get("simd")
        .and_then(Json::as_str)
        .ok_or("mixed bench document lacks a simd tag")?;
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("mixed bench document lacks a results array")?;
    if results.is_empty() {
        return Err("results array is empty".to_string());
    }
    let mut fallback_cells = 0usize;
    let mut best = 0.0f64;
    for (i, rec) in results.iter().enumerate() {
        let num = |key: &str| {
            rec.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("results[{i}] lacks numeric {key}"))
        };
        let label = rec
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}] lacks a label"))?;
        let fell_back = match rec.get("fell_back") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("results[{i}] ({label}) lacks boolean fell_back")),
        };
        let precision = rec
            .get("precision")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}] ({label}) lacks a precision"))?;
        let cond = num("boundary_cond")?;
        if !cond.is_finite() || cond <= 0.0 {
            return Err(format!(
                "results[{i}] ({label}): boundary_cond {cond} is not a positive finite number"
            ));
        }
        let f64_ns = num("f64_replay_ns")?;
        if f64_ns <= 0.0 || num("refined_ns")? <= 0.0 {
            return Err(format!(
                "results[{i}] ({label}): replay/refined timings must be positive"
            ));
        }
        let speedup = num("replay_speedup")?;
        match precision {
            "f32" => {
                if fell_back {
                    return Err(format!("results[{i}] ({label}): f32 cell claims fell_back"));
                }
                if cond > MIXED_GATE_COND {
                    return Err(format!(
                        "results[{i}] ({label}): f32 cell outside the gray-zone gate \
                         (cond {cond:.1e} > {MIXED_GATE_COND:.0e})"
                    ));
                }
                let f32_ns = num("f32_replay_ns")?;
                if f32_ns <= 0.0 {
                    return Err(format!(
                        "results[{i}] ({label}): f32_replay_ns {f32_ns} not positive"
                    ));
                }
                let expect = f64_ns / f32_ns;
                if (speedup - expect).abs() > 0.01 * expect {
                    return Err(format!(
                        "results[{i}] ({label}): replay_speedup {speedup:.4} inconsistent \
                         with f64/f32 {expect:.4}"
                    ));
                }
                best = best.max(speedup);
            }
            "f64" => {
                if !fell_back {
                    return Err(format!(
                        "results[{i}] ({label}): f64 cell without fell_back — the sweep \
                         only records f64 when the gate trips"
                    ));
                }
                if !matches!(rec.get("f32_replay_ns"), Some(Json::Null)) {
                    return Err(format!(
                        "results[{i}] ({label}): fallback cell must carry f32_replay_ns = null"
                    ));
                }
                fallback_cells += 1;
            }
            other => {
                return Err(format!(
                    "results[{i}] ({label}): unknown precision '{other}'"
                ))
            }
        }
        let (f64_res, mixed_res) = (num("f64_residual")?, num("mixed_residual")?);
        if mixed_res > 1e-12f64.max(f64_res * 4.0) {
            return Err(format!(
                "results[{i}] ({label}): mixed residual {mixed_res:.2e} vs f64's \
                 {f64_res:.2e} breaks the equal-quality claim"
            ));
        }
    }
    if fallback_cells == 0 {
        return Err("no fallback cell — the gray-zone gate was never exercised".to_string());
    }
    if fallback_cells == results.len() {
        return Err("every cell fell back — no f32 cell to support the headline".to_string());
    }
    let headline = doc
        .get("headline_replay_speedup")
        .and_then(Json::as_f64)
        .ok_or("mixed bench document lacks numeric headline_replay_speedup")?;
    if headline <= 0.0 || (headline - best).abs() > 0.01 * best {
        return Err(format!(
            "headline {headline:.4} inconsistent with best f32 cell's {best:.4}"
        ));
    }
    if !smoke && simd != "scalar" && headline < MIXED_CLAIM_MIN_SPEEDUP {
        return Err(format!(
            "full-scale SIMD headline {headline:.2}x is below the {MIXED_CLAIM_MIN_SPEEDUP}x \
             mixed-precision claim"
        ));
    }
    Ok(BenchMixedSummary {
        cells: results.len(),
        fallback_cells,
        headline,
    })
}

/// What [`validate_baseline`] found: the headline figure of each
/// document and their ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSummary {
    /// The shared schema tag.
    pub schema: String,
    /// Headline figure of the committed (baseline) document.
    pub committed: f64,
    /// Headline figure of the freshly generated document.
    pub fresh: f64,
    /// `fresh / committed`.
    pub ratio: f64,
}

/// Headline figure of a bench document: batched-over-unbatched
/// throughput at the top rate for `bt-bench-service-v1`, best modeled
/// pipeline speedup vs unpiped for `bt-bench-pipeline-v1`, RHS columns
/// solved per wall second at the biggest cell for `bt-bench-shm-v1`,
/// best warm-replay speedup over the `f32` cells for
/// `bt-bench-mixed-v1`.
///
/// # Errors
///
/// Unknown schema, or a document missing its headline figures.
pub fn bench_headline(doc: &Json) -> Result<(String, f64), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("bench document lacks a schema tag")?;
    match schema {
        "bt-bench-service-v1" => {
            let summary = validate_bench_service(doc)?;
            Ok((schema.to_string(), summary.batched_speedup))
        }
        "bt-bench-shm-v1" => {
            let summary = validate_bench_shm(doc)?;
            Ok((schema.to_string(), summary.headline))
        }
        "bt-bench-mixed-v1" => {
            let summary = validate_bench_mixed(doc)?;
            Ok((schema.to_string(), summary.headline))
        }
        "bt-bench-pipeline-v1" => {
            let results = doc
                .get("results")
                .and_then(Json::as_arr)
                .ok_or("pipeline bench document lacks a results array")?;
            // Unpiped records trivially carry speedup 1.0; the headline
            // is the best actually-pipelined variant.
            let best = results
                .iter()
                .filter(|rec| {
                    rec.get("variant")
                        .and_then(Json::as_str)
                        .is_some_and(|v| v != "unpiped")
                })
                .filter_map(|rec| rec.get("modeled_speedup_vs_unpiped").and_then(Json::as_f64))
                .fold(f64::NEG_INFINITY, f64::max);
            if !best.is_finite() {
                return Err("pipeline bench has no modeled_speedup_vs_unpiped figures".to_string());
            }
            Ok((schema.to_string(), best))
        }
        other => Err(format!("no baseline rule for schema '{other}'")),
    }
}

/// Perf-regression gate: compares a freshly generated bench document
/// against the committed baseline's headline figure. Passes when
/// `fresh >= tol * committed` — `tol` is the tolerance band (e.g. 0.25
/// lets a smoke-scale rerun keep a quarter of the committed full-scale
/// figure, which still catches sign flips and order-of-magnitude
/// regressions).
///
/// # Errors
///
/// Mismatched/unknown schemas, invalid documents, or a fresh headline
/// below the band.
pub fn validate_baseline(
    committed: &Json,
    fresh: &Json,
    tol: f64,
) -> Result<BaselineSummary, String> {
    let (schema_c, headline_c) = bench_headline(committed)?;
    let (schema_f, headline_f) = bench_headline(fresh)?;
    if schema_c != schema_f {
        return Err(format!(
            "schema mismatch: committed is '{schema_c}', fresh is '{schema_f}'"
        ));
    }
    if headline_c <= 0.0 {
        return Err(format!(
            "committed headline {headline_c} is not positive — baseline file is unusable"
        ));
    }
    let ratio = headline_f / headline_c;
    if ratio < tol {
        return Err(format!(
            "{schema_c}: fresh headline {headline_f:.3} is {ratio:.2}x the committed \
             {headline_c:.3} (tolerance {tol:.2}x) — perf regression"
        ));
    }
    Ok(BaselineSummary {
        schema: schema_c,
        committed: headline_c,
        fresh: headline_f,
        ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": [1, -2.5e3, "x\n\"y\"", true, null], "b": {}}"#).unwrap();
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2].as_str(), Some("x\n\"y\""));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[4], Json::Null);
        assert!(doc.get("b").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_resolve() {
        let doc = parse(r#""rank → 0""#).unwrap();
        assert_eq!(doc.as_str(), Some("rank → 0"));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = parse(&format!("\"{}\"", escape(nasty))).unwrap();
        assert_eq!(doc.as_str(), Some(nasty));
    }

    #[test]
    fn trace_validator_accepts_minimal_trace() {
        let text = r#"[
            {"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"p"}},
            {"name":"a","ph":"X","ts":1.0,"dur":2.0,"pid":0,"tid":0},
            {"name":"msg","ph":"s","id":7,"ts":2.0,"pid":0,"tid":0},
            {"name":"msg","ph":"f","bp":"e","id":7,"ts":5.0,"pid":0,"tid":1}
        ]"#;
        let summary = validate_chrome_trace(&parse(text).unwrap()).unwrap();
        assert_eq!(summary.complete_events, 1);
        assert_eq!(summary.flow_starts, 1);
        assert_eq!(summary.flow_finishes, 1);
        assert_eq!(summary.threads, 2);
    }

    #[test]
    fn trace_validator_rejects_backwards_time() {
        let text = r#"[
            {"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":0,"tid":0},
            {"name":"b","ph":"X","ts":4.0,"dur":1.0,"pid":0,"tid":0}
        ]"#;
        let err = validate_chrome_trace(&parse(text).unwrap()).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn trace_validator_rejects_orphan_flow_finish() {
        let text = r#"[
            {"name":"msg","ph":"f","id":9,"ts":1.0,"pid":0,"tid":0}
        ]"#;
        let err = validate_chrome_trace(&parse(text).unwrap()).unwrap_err();
        assert!(err.contains("no matching flow start"), "{err}");
    }

    #[test]
    fn metrics_validator_checks_bucket_sums() {
        let good = r#"{
            "schema": "bt-obs-metrics-v1",
            "counters": {"c": 3},
            "gauges": {"g": 1.5},
            "histograms": {"h": {"count": 2, "sum": 10, "min": 4, "max": 6,
                "buckets": [{"lt_pow2": 3, "count": 2}]}}
        }"#;
        let summary = validate_metrics(&parse(good).unwrap()).unwrap();
        assert_eq!(
            (summary.counters, summary.gauges, summary.histograms),
            (1, 1, 1)
        );

        let bad = good.replace("\"count\": 2,", "\"count\": 5,");
        let err = validate_metrics(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("sum to"), "{err}");
    }

    fn service_bench_doc() -> String {
        r#"{
            "schema": "bt-bench-service-v1",
            "n": 32, "m": 6, "p": 4, "requests": 192,
            "max_batch": 32, "max_delay_us": 1000,
            "results": [
                {"leg": "unbatched", "rate_mult": 16, "rate_rps": 100000,
                 "requests": 192, "throughput_rps": 10000,
                 "mean_batch_width": 1.0, "max_batch_width": 1, "dispatches": 192,
                 "p50_us": 9000, "p95_us": 16000, "p99_us": 17000, "max_us": 17500,
                 "mean_queue_wait_us": 9000},
                {"leg": "batched", "rate_mult": 16, "rate_rps": 100000,
                 "requests": 192, "throughput_rps": 29000,
                 "mean_batch_width": 32.0, "max_batch_width": 32, "dispatches": 6,
                 "p50_us": 4500, "p95_us": 5900, "p99_us": 6000, "max_us": 6100,
                 "mean_queue_wait_us": 3100}
            ]
        }"#
        .to_string()
    }

    #[test]
    fn service_bench_validator_accepts_batched_win() {
        let summary = validate_bench_service(&parse(&service_bench_doc()).unwrap()).unwrap();
        assert_eq!(summary.legs, 2);
        assert!((summary.batched_speedup - 2.9).abs() < 0.01);
    }

    #[test]
    fn service_bench_validator_rejects_batched_loss_at_depth() {
        // Batched leg slower than unbatched while coalescing was deep
        // (width 32): the headline claim failed, so validation must too.
        let doc =
            service_bench_doc().replace("\"throughput_rps\": 29000", "\"throughput_rps\": 9000");
        let err = validate_bench_service(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains("lost to"), "{err}");

        // Same loss with shallow queues (width 2) is not a violation.
        let doc = doc.replace("\"mean_batch_width\": 32.0", "\"mean_batch_width\": 2.0");
        assert!(validate_bench_service(&parse(&doc).unwrap()).is_ok());
    }

    #[test]
    fn service_bench_validator_rejects_unordered_percentiles() {
        let doc = service_bench_doc().replace("\"p95_us\": 5900", "\"p95_us\": 6900");
        let err = validate_bench_service(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains("not ordered"), "{err}");
    }

    #[test]
    fn service_bench_validator_rejects_worse_p99_at_depth() {
        let doc = service_bench_doc()
            .replace("\"p99_us\": 6000", "\"p99_us\": 18000")
            .replace("\"max_us\": 6100", "\"max_us\": 18500");
        let err = validate_bench_service(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains("p99"), "{err}");
    }

    #[test]
    fn flight_validator_round_trips() {
        let good = r#"{
            "schema": "bt-obs-flight-v1", "capacity": 4096, "recorded": 3,
            "events": [
                {"seq": 0, "t_ns": 10, "kind": "submit", "req": 1, "batch": 0,
                 "key": 7, "detail": ""},
                {"seq": 2, "t_ns": 30, "kind": "solve_panic", "req": 0, "batch": 1,
                 "key": 7, "detail": "boom"}
            ]
        }"#;
        let summary = validate_flight(&parse(good).unwrap()).unwrap();
        assert_eq!((summary.events, summary.recorded), (2, 3));

        let bad = good.replace("\"seq\": 2", "\"seq\": 0");
        let err = validate_flight(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("not increasing"), "{err}");
        let bad = good.replace("\"kind\": \"submit\"", "\"kind\": 5");
        let err = validate_flight(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("kind"), "{err}");
    }

    #[test]
    fn snapshot_validator_checks_quantile_order() {
        let good = r#"{
            "schema": "bt-obs-snapshot-v1",
            "latency": {"stage": {"count": 2, "sum": 30, "min": 10, "max": 20,
                "p50": 10, "p90": 15, "p95": 20, "p99": 20}},
            "flight_recorded": 5,
            "metrics": {"schema": "bt-obs-metrics-v1", "counters": {},
                "gauges": {}, "histograms": {}}
        }"#;
        validate_snapshot(&parse(good).unwrap()).unwrap();
        let bad = good.replace("\"p90\": 15", "\"p90\": 25");
        let err = validate_snapshot(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("not ordered"), "{err}");
    }

    fn pipeline_doc(speedup: f64) -> String {
        format!(
            r#"{{"schema": "bt-bench-pipeline-v1", "results": [
                {{"r": 16, "variant": "unpiped", "modeled_speedup_vs_unpiped": 1.0}},
                {{"r": 16, "variant": "auto", "modeled_speedup_vs_unpiped": {speedup}}}
            ]}}"#
        )
    }

    fn shm_doc(wall_ns: f64) -> String {
        let ratio = wall_ns / 1.0e6;
        let headline = 256.0 / (wall_ns * 1e-9);
        format!(
            r#"{{"schema": "bt-bench-shm-v1", "n": 64, "m": 8, "reps": 3, "cores": 4,
                "calib": {{"alpha_s": 2e-6, "beta_s_per_byte": 4e-11,
                           "flop_rate": 2e10, "fit_error": 0.3}},
                "headline_rhs_cols_per_s": {headline},
                "results": [
                  {{"p": 2, "r": 16, "tile": 16, "wall_ns": 5e5,
                    "modeled_ns": 2.5e5, "ratio": 2.0}},
                  {{"p": 4, "r": 256, "tile": 64, "wall_ns": {wall_ns},
                    "modeled_ns": 1e6, "ratio": {ratio}}}
                ]}}"#
        )
    }

    #[test]
    fn shm_bench_schema_validates_and_catches_inconsistency() {
        let good = shm_doc(3.0e6);
        let s = validate_bench_shm(&parse(&good).unwrap()).unwrap();
        assert_eq!(s.cells, 2);
        assert!((s.fit_error - 0.3).abs() < 1e-12);
        assert!((s.headline - 256.0 / 3.0e-3).abs() < 1.0);

        let bad_ratio = good.replace("\"ratio\": 2.0", "\"ratio\": 7.0");
        let err = validate_bench_shm(&parse(&bad_ratio).unwrap()).unwrap_err();
        assert!(err.contains("inconsistent with"), "{err}");

        let bad_calib = good.replace("\"alpha_s\": 2e-6", "\"alpha_s\": 0");
        let err = validate_bench_shm(&parse(&bad_calib).unwrap()).unwrap_err();
        assert!(err.contains("alpha_s"), "{err}");

        let bad_headline = good.replace("\"headline_rhs_cols_per_s\"", "\"headline_rhs\"");
        let err = validate_bench_shm(&parse(&bad_headline).unwrap()).unwrap_err();
        assert!(err.contains("headline_rhs_cols_per_s"), "{err}");
    }

    fn mixed_doc(f32_ns: f64) -> String {
        let speedup = 4.0e6 / f32_ns;
        format!(
            r#"{{"schema": "bt-bench-mixed-v1", "m": 8, "p": 4, "reps": 5, "cores": 4,
                "simd": "avx2+fma", "smoke": false,
                "headline_replay_speedup": {speedup},
                "results": [
                  {{"label": "clustered", "n": 256, "m": 8, "p": 4, "r": 64,
                    "boundary_cond": 1.3, "precision": "f32", "fell_back": false,
                    "f64_replay_ns": 4e6, "f32_replay_ns": {f32_ns},
                    "replay_speedup": {speedup}, "refined_ns": 9e6, "sweeps": 1,
                    "refined_speedup": 0.45, "f64_residual": 4.2e-16,
                    "mixed_residual": 2.7e-14}},
                  {{"label": "poisson-32", "n": 32, "m": 6, "p": 4, "r": 16,
                    "boundary_cond": 6.3e12, "precision": "f64", "fell_back": true,
                    "f64_replay_ns": 1.3e5, "f32_replay_ns": null,
                    "replay_speedup": 1.0, "refined_ns": 6.7e5, "sweeps": 2,
                    "refined_speedup": 0.2, "f64_residual": 3.7e-5,
                    "mixed_residual": 6.7e-14}}
                ]}}"#
        )
    }

    #[test]
    fn mixed_bench_schema_validates_and_catches_inconsistency() {
        let good = mixed_doc(2.0e6);
        let s = validate_bench_mixed(&parse(&good).unwrap()).unwrap();
        assert_eq!((s.cells, s.fallback_cells), (2, 1));
        assert!((s.headline - 2.0).abs() < 1e-9);

        let bad_speedup = good.replace("\"f32_replay_ns\": 2000000", "\"f32_replay_ns\": 3000000");
        let err = validate_bench_mixed(&parse(&bad_speedup).unwrap()).unwrap_err();
        assert!(err.contains("inconsistent with f64/f32"), "{err}");

        // An f32 cell past the gray-zone gate is a contradiction: setup
        // would have fallen back.
        let bad_gate = good.replace("\"boundary_cond\": 1.3,", "\"boundary_cond\": 2e7,");
        let err = validate_bench_mixed(&parse(&bad_gate).unwrap()).unwrap_err();
        assert!(err.contains("gray-zone gate"), "{err}");

        let bad_quality = good.replace("\"mixed_residual\": 2.7e-14", "\"mixed_residual\": 3e-9");
        let err = validate_bench_mixed(&parse(&bad_quality).unwrap()).unwrap_err();
        assert!(err.contains("equal-quality"), "{err}");

        let no_fallback = good.replace("\"fell_back\": true", "\"fell_back\": false");
        let err = validate_bench_mixed(&parse(&no_fallback).unwrap()).unwrap_err();
        assert!(err.contains("f64 cell without fell_back"), "{err}");
    }

    #[test]
    fn mixed_bench_full_scale_simd_run_must_back_the_claim() {
        // Headline 1.25x: internally consistent, but below the 1.6x
        // claim a full-scale SIMD document must back.
        let slow = mixed_doc(3.2e6);
        let err = validate_bench_mixed(&parse(&slow).unwrap()).unwrap_err();
        assert!(err.contains("below the 1.6x"), "{err}");
        // The same figures pass as a smoke run or on the scalar path.
        let smoke = slow.replace("\"smoke\": false", "\"smoke\": true");
        assert!(validate_bench_mixed(&parse(&smoke).unwrap()).is_ok());
        let scalar = slow.replace("\"simd\": \"avx2+fma\"", "\"simd\": \"scalar\"");
        assert!(validate_bench_mixed(&parse(&scalar).unwrap()).is_ok());
    }

    #[test]
    fn mixed_bench_baseline_tracks_headline() {
        let committed = parse(&mixed_doc(2.0e6)).unwrap();
        let fresh = parse(&mixed_doc(2.2e6)).unwrap();
        let summary = validate_baseline(&committed, &fresh, 0.5).unwrap();
        assert_eq!(summary.schema, "bt-bench-mixed-v1");
        assert!((summary.ratio - 2.0e6 / 2.2e6).abs() < 1e-9);
    }

    #[test]
    fn shm_bench_baseline_tracks_headline() {
        // Fresh run 4x slower at the biggest cell -> headline 0.25x.
        let committed = parse(&shm_doc(1.0e6)).unwrap();
        let fresh = parse(&shm_doc(4.0e6)).unwrap();
        let summary = validate_baseline(&committed, &fresh, 0.2).unwrap();
        assert_eq!(summary.schema, "bt-bench-shm-v1");
        assert!((summary.ratio - 0.25).abs() < 1e-9);
        let err = validate_baseline(&committed, &fresh, 0.5).unwrap_err();
        assert!(err.contains("perf regression"), "{err}");
    }

    #[test]
    fn baseline_gate_passes_within_band_and_fails_below() {
        let committed = parse(&pipeline_doc(1.30)).unwrap();
        let fresh_ok = parse(&pipeline_doc(1.10)).unwrap();
        let summary = validate_baseline(&committed, &fresh_ok, 0.5).unwrap();
        assert!((summary.ratio - 1.10 / 1.30).abs() < 1e-9);

        let fresh_bad = parse(&pipeline_doc(0.40)).unwrap();
        let err = validate_baseline(&committed, &fresh_bad, 0.5).unwrap_err();
        assert!(err.contains("perf regression"), "{err}");
    }

    #[test]
    fn baseline_gate_rejects_schema_mismatch() {
        let service = parse(&service_bench_doc()).unwrap();
        let pipeline = parse(&pipeline_doc(1.2)).unwrap();
        let err = validate_baseline(&service, &pipeline, 0.5).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        // Service-vs-service compares batched speedups.
        let summary = validate_baseline(&service, &service, 0.5).unwrap();
        assert_eq!(summary.schema, "bt-bench-service-v1");
        assert!((summary.ratio - 1.0).abs() < 1e-12);
    }
}
