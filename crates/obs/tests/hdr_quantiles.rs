//! Histogram-correctness coverage for the always-on HDR latency
//! recorder (satellite of the telemetry PR):
//!
//! * a proptest pinning the headline accuracy claim — a shard-merged
//!   quantile is within one bucket of the exact sorted-sample
//!   nearest-rank quantile, for mixed-magnitude sample sets spanning the
//!   linear region through multi-octave values;
//! * a concurrent-recorder stress test — many threads hammering one
//!   recorder must lose no samples and corrupt no aggregate.

use bt_obs::hdr::{bucket_bounds, bucket_index, LatencyData};
use proptest::prelude::*;

/// Exact nearest-rank quantile of `sorted` (ascending), `q` in [0, 1].
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merged_quantiles_within_one_bucket_of_exact(
        // Three magnitude bands so one draw exercises the exact linear
        // region, mid octaves, and wide octaves together.
        lo in proptest::collection::vec(0u64..32, 40),
        mid in proptest::collection::vec(0u64..100_000, 40),
        hi in proptest::collection::vec(0u64..10_000_000_000, 40),
        q_bits in 0u64..1_000,
    ) {
        let data = LatencyData::new();
        let mut samples: Vec<u64> = Vec::with_capacity(120);
        samples.extend(&lo);
        samples.extend(&mid);
        samples.extend(&hi);
        for &v in &samples {
            data.record(v);
        }
        samples.sort_unstable();
        let snap = data.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.min, samples[0]);
        prop_assert_eq!(snap.max, *samples.last().unwrap());

        #[allow(clippy::cast_precision_loss)]
        let q_extra = q_bits as f64 / 1_000.0;
        for q in [0.5, 0.9, 0.95, 0.99, 1.0, q_extra] {
            let exact = exact_quantile(&samples, q);
            let est = snap.quantile(q);
            // The estimate lands in the bucket holding the exact
            // nearest-rank sample, so it can be off by at most that
            // bucket's width.
            let (_, width) = bucket_bounds(bucket_index(exact));
            prop_assert!(
                est.abs_diff(exact) <= width,
                "q={q}: estimate {est} vs exact {exact}, bucket width {width}"
            );
        }
    }

    #[test]
    fn bucket_mapping_is_self_consistent(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        let (lower, width) = bucket_bounds(idx);
        prop_assert!(lower <= v, "v={v}: bucket {idx} lower {lower}");
        prop_assert!(v - lower < width, "v={v}: outside bucket {idx} width {width}");
        // Relative quantization error is bounded by 1/32 above the
        // linear region (and zero inside it).
        prop_assert!(width == 1 || width <= lower / 32 + 1,
            "v={v}: bucket {idx} width {width} too wide for lower {lower}");
    }
}

#[test]
fn concurrent_recorders_lose_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 100_000;
    let data = std::sync::Arc::new(LatencyData::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let data = std::sync::Arc::clone(&data);
            std::thread::spawn(move || {
                // Distinct magnitudes per thread so every shard sees a
                // different octave mix; values are deterministic so the
                // aggregate checks are exact.
                for i in 0..PER_THREAD {
                    data.record(t * 1_000 + (i % 97));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = data.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS)
        .map(|t| (0..PER_THREAD).map(|i| t * 1_000 + (i % 97)).sum::<u64>())
        .sum();
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, 7_096);
    // p50 must sit inside the recorded value range.
    let p50 = snap.quantile(0.5);
    assert!(p50 <= 7_096, "p50 {p50} outside recorded range");
    // Quantiles are monotone in q.
    let mut prev = 0;
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let v = snap.quantile(q);
        assert!(v >= prev, "quantile not monotone at q={q}");
        prev = v;
    }
}
