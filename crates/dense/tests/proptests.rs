//! Property-based tests for the dense kernels: algebraic identities that
//! must hold (to rounding) for arbitrary well-scaled inputs, plus
//! packed-vs-naive GEMM equivalence at blocking boundaries.

use bt_dense::random::{rng, uniform};
use bt_dense::threading::with_thread_budget;
use bt_dense::{
    fro_norm, gemm, gemm_axpy, gemm_packed, inf_norm, matmul, one_norm, LuFactors, Mat, Trans,
};
use proptest::prelude::*;

/// Strategy: an `r x c` matrix with entries in [-10, 10].
fn mat_strategy(r: usize, c: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, r * c).prop_map(move |v| Mat::from_col_major(r, c, v))
}

/// Strategy: a well-conditioned n x n matrix (diagonally dominated).
fn dd_mat_strategy(n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| {
        let mut m = Mat::from_col_major(n, n, v);
        for i in 0..n {
            let boost = 2.0 * n as f64;
            let d = m.get(i, i);
            m.set(i, i, d + if d >= 0.0 { boost } else { -boost });
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative((a, b, c) in (mat_strategy(4, 5), mat_strategy(5, 3), mat_strategy(3, 6))) {
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        let scale = fro_norm(&left).max(1.0);
        prop_assert!(fro_norm(&left.sub(&right)) / scale < 1e-12);
    }

    #[test]
    fn matmul_distributes_over_add((a, b, c) in (mat_strategy(4, 4), mat_strategy(4, 4), mat_strategy(4, 4))) {
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        let scale = fro_norm(&lhs).max(1.0);
        prop_assert!(fro_norm(&lhs.sub(&rhs)) / scale < 1e-12);
    }

    #[test]
    fn transpose_of_product((a, b) in (mat_strategy(3, 5), mat_strategy(5, 4))) {
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(fro_norm(&lhs.sub(&rhs)) < 1e-11);
    }

    #[test]
    fn gemm_trans_flags_match_explicit_transpose((a, b) in (mat_strategy(6, 4), mat_strategy(6, 3))) {
        // A^T (4x6) * B (6x3)
        let mut c1 = Mat::zeros(4, 3);
        gemm(1.0, &a, Trans::Yes, &b, Trans::No, 0.0, &mut c1);
        let c2 = matmul(&a.transpose(), &b);
        prop_assert!(fro_norm(&c1.sub(&c2)) < 1e-12);
    }

    #[test]
    fn lu_solve_residual_small(a in dd_mat_strategy(8), rhs in mat_strategy(8, 3)) {
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&rhs);
        let resid = matmul(&a, &x).sub(&rhs);
        let scale = fro_norm(&rhs).max(1.0);
        prop_assert!(fro_norm(&resid) / scale < 1e-10);
    }

    #[test]
    fn lu_det_multiplicative((a, b) in (dd_mat_strategy(5), dd_mat_strategy(5))) {
        let da = LuFactors::factor(&a).unwrap().det();
        let db = LuFactors::factor(&b).unwrap().det();
        let dab = LuFactors::factor(&matmul(&a, &b)).unwrap().det();
        prop_assert!((dab - da * db).abs() / dab.abs().max(1.0) < 1e-9);
    }

    #[test]
    fn inverse_is_two_sided(a in dd_mat_strategy(6)) {
        let inv = LuFactors::factor(&a).unwrap().inverse();
        let i = Mat::identity(6);
        prop_assert!(fro_norm(&matmul(&a, &inv).sub(&i)) < 1e-10);
        prop_assert!(fro_norm(&matmul(&inv, &a).sub(&i)) < 1e-10);
    }

    #[test]
    fn norm_triangle_inequality((a, b) in (mat_strategy(5, 5), mat_strategy(5, 5))) {
        let sum = a.add(&b);
        prop_assert!(fro_norm(&sum) <= fro_norm(&a) + fro_norm(&b) + 1e-12);
        prop_assert!(one_norm(&sum) <= one_norm(&a) + one_norm(&b) + 1e-12);
        prop_assert!(inf_norm(&sum) <= inf_norm(&a) + inf_norm(&b) + 1e-12);
    }

    #[test]
    fn norm_submultiplicative((a, b) in (mat_strategy(4, 4), mat_strategy(4, 4))) {
        let p = matmul(&a, &b);
        prop_assert!(one_norm(&p) <= one_norm(&a) * one_norm(&b) + 1e-12);
        prop_assert!(inf_norm(&p) <= inf_norm(&a) * inf_norm(&b) + 1e-12);
    }

    #[test]
    fn block_roundtrip(a in mat_strategy(7, 9)) {
        let blk = a.block(2, 3, 4, 5);
        let mut copy = a.clone();
        copy.set_block(2, 3, &blk);
        prop_assert_eq!(copy, a);
    }

    #[test]
    fn vstack_hstack_consistent_with_blocks((a, b) in (mat_strategy(3, 4), mat_strategy(2, 4))) {
        let v = Mat::vstack(&a, &b);
        prop_assert_eq!(v.block(0, 0, 3, 4), a);
        prop_assert_eq!(v.block(3, 0, 2, 4), b);
        let h = Mat::hstack(&v.transpose(), &Mat::identity(4));
        prop_assert_eq!(h.block(0, 5, 4, 4), Mat::identity(4));
    }
}

/// Dimensions straddling every blocking edge of the packed kernel:
/// NB = 64 (63..65) and KC = 128 (127..130), plus MR/NR ragged tails.
const BOUNDARY_DIMS: [usize; 7] = [63, 64, 65, 127, 128, 129, 130];

/// Strategy: one of the boundary-straddling dimensions.
fn boundary_dim() -> impl Strategy<Value = usize> {
    (0usize..BOUNDARY_DIMS.len()).prop_map(|i| BOUNDARY_DIMS[i])
}

/// Reference triple-loop product (no blocking, no packing).
fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for k in 0..a.cols() {
                s += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

proptest! {
    // Each case multiplies ~128^3-sized operands; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn packed_matches_naive_at_boundaries_all_trans_and_threads(
        (m, k, n, seed, threads) in (boundary_dim(), boundary_dim(), boundary_dim(), 0u64..1000, 1usize..5)
    ) {
        let a0 = uniform(m, k, &mut rng(seed));
        let b0 = uniform(k, n, &mut rng(seed.wrapping_add(1)));
        let tol = 1e-12 * k as f64;
        let expect = naive_matmul(&a0, &b0);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            // Store operands so op(A) is m x k and op(B) is k x n.
            let a = if ta == Trans::Yes { a0.transpose() } else { a0.clone() };
            let b = if tb == Trans::Yes { b0.transpose() } else { b0.clone() };
            let mut c = Mat::zeros(m, n);
            with_thread_budget(threads, || gemm(1.0, &a, ta, &b, tb, 0.0, &mut c));
            prop_assert!(
                c.sub(&expect).max_abs() <= tol,
                "gemm({ta:?},{tb:?}) {m}x{k}x{n} threads={threads}: err {}",
                c.sub(&expect).max_abs()
            );
        }
    }

    #[test]
    fn packed_axpy_and_thread_budgets_agree(
        (m, k, n, seed) in (boundary_dim(), boundary_dim(), boundary_dim(), 0u64..1000)
    ) {
        let a = uniform(m, k, &mut rng(seed));
        let b = uniform(k, n, &mut rng(seed ^ 0x9e37));
        let mut c_axpy = Mat::zeros(m, n);
        gemm_axpy(1.0, &a, &b, &mut c_axpy);
        let mut c1 = Mat::zeros(m, n);
        with_thread_budget(1, || gemm_packed(1.0, &a, &b, &mut c1));
        prop_assert!(c1.sub(&c_axpy).max_abs() <= 1e-12 * k as f64);
        // Parallel packed runs are bitwise identical to single-thread.
        for t in [2usize, 4] {
            let mut ct = Mat::zeros(m, n);
            with_thread_budget(t, || gemm_packed(1.0, &a, &b, &mut ct));
            prop_assert_eq!(&c1, &ct);
        }
    }

    #[test]
    fn non_finite_inputs_propagate(
        (m, k, n, i, j, seed) in (boundary_dim(), boundary_dim(), boundary_dim(), 0usize..63, 0usize..63, 0u64..1000)
    ) {
        // Poison one entry of A; every C entry in row i must be non-finite
        // even when B columns contain zeros (0 * NaN == NaN).
        let mut a = uniform(m, k, &mut rng(seed));
        let mut b = uniform(k, n, &mut rng(seed ^ 0x51));
        b.set(j % k, 0, 0.0);
        a.set(i % m, j % k, f64::NAN);
        let c = matmul(&a, &b);
        for jj in 0..n {
            prop_assert!(c.get(i % m, jj).is_nan(), "C[{},{jj}] finite", i % m);
        }
        let mut cp = Mat::zeros(m, n);
        gemm_packed(1.0, &a, &b, &mut cp);
        prop_assert!(cp.get(i % m, 0).is_nan());
    }
}
