//! Cross-kernel agreement and dispatch tests for the SIMD layer.
//!
//! Every GEMM kernel (AXPY, packed, small-block) must produce the same
//! answer — to FMA-vs-separate-rounding tolerance — whichever instruction
//! set [`bt_dense::simd`] dispatches to, across blocking boundaries and
//! on strided views; non-finite inputs must propagate through every
//! path; and the `BT_DENSE_SIMD=0` override must verifiably force the
//! scalar path (observable through the `bt_dense.gemm.*` dispatch
//! counters under `BT_OBS`).
//!
//! Tests that pin or inspect the process-global dispatch decision
//! serialize on one mutex so they cannot race each other (or perturb
//! each other's counter diffs) inside this binary.

use bt_dense::random::{rng, uniform};
use bt_dense::simd;
use bt_dense::{gemm, gemm_axpy, gemm_packed, gemm_small, Isa, Mat, Trans};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes every test in this binary: the active ISA and the metrics
/// registry are process-global.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` with the dispatch pinned to `isa`, restoring the previous
/// decision afterwards. Only ever pins [`Isa::Scalar`] or an ISA that
/// detection already reported, so no unsupported instructions run.
fn with_isa<T>(isa: Isa, f: impl FnOnce() -> T) -> T {
    let prev = simd::force(Some(isa));
    let out = f();
    simd::force(Some(prev));
    out
}

/// The environment-driven dispatch decision (re-runs detection in case
/// an earlier test left a pin behind).
fn detected_isa() -> Isa {
    simd::force(None);
    simd::active()
}

/// Reference triple-loop product (no blocking, packing, or FMA).
fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for k in 0..a.cols() {
                s += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

/// Small-block orders plus sizes straddling the MR/NR tails and the
/// NB = 64 / KC = 128 blocking boundaries.
const DIMS: [usize; 11] = [4, 8, 16, 17, 32, 63, 64, 65, 127, 128, 129];

fn any_dim() -> impl Strategy<Value = usize> {
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

fn small_dim() -> impl Strategy<Value = usize> {
    (0usize..3).prop_map(|i| [4usize, 8, 16][i])
}

proptest! {
    // Each case runs several full products per ISA; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// AXPY and packed kernels agree between the scalar path and the
    /// detected SIMD path to a k-scaled tolerance (FMA fuses the
    /// multiply-add rounding; entries are in [-1, 1] so one ulp per
    /// k-term accumulation is ~1e-16 * k with plenty of headroom).
    #[test]
    fn axpy_and_packed_agree_across_isas(
        (m, k, n, seed) in (any_dim(), any_dim(), any_dim(), 0u64..1000)
    ) {
        let _g = lock();
        let a = uniform(m, k, &mut rng(seed));
        let b = uniform(k, n, &mut rng(seed ^ 0xABCD));
        let tol = 1e-13 * k as f64;
        let detected = detected_isa();
        let runs: [fn(&Mat, &Mat) -> Mat; 2] = [
            |a, b| { let mut c = Mat::zeros(a.rows(), b.cols()); gemm_axpy(1.0, a, b, &mut c); c },
            |a, b| { let mut c = Mat::zeros(a.rows(), b.cols()); gemm_packed(1.0, a, b, &mut c); c },
        ];
        for run in runs {
            let c_scalar = with_isa(Isa::Scalar, || run(&a, &b));
            let c_simd = with_isa(detected, || run(&a, &b));
            prop_assert!(
                c_scalar.sub(&c_simd).max_abs() <= tol,
                "{m}x{k}x{n} scalar vs {}: err {}",
                detected.name(),
                c_scalar.sub(&c_simd).max_abs()
            );
        }
    }

    /// The small-block kernels agree with the naive reference (and hence
    /// with every other kernel) on both the scalar and detected paths,
    /// including `alpha != 1` accumulation into non-zero C.
    #[test]
    fn small_kernels_agree_across_isas(
        (m, seed, alpha) in (small_dim(), 0u64..1000, -2.0f64..2.0)
    ) {
        let _g = lock();
        let a = uniform(m, m, &mut rng(seed));
        let b = uniform(m, m, &mut rng(seed ^ 0x5EED));
        let c0 = uniform(m, m, &mut rng(seed ^ 0xC0));
        let expect = {
            let mut e = c0.clone();
            let p = naive_matmul(&a, &b);
            for j in 0..m {
                for i in 0..m {
                    e.set(i, j, e.get(i, j) + alpha * p.get(i, j));
                }
            }
            e
        };
        let detected = detected_isa();
        for isa in [Isa::Scalar, detected] {
            let c = with_isa(isa, || {
                let mut c = c0.clone();
                prop_assert!(gemm_small(alpha, &a, &b, &mut c), "shape rejected");
                Ok(c)
            })?;
            prop_assert!(
                c.sub(&expect).max_abs() <= 1e-13 * m as f64,
                "small m={m} on {}: err {}",
                isa.name(),
                c.sub(&expect).max_abs()
            );
        }
    }

    /// Strided submatrix views reach the same answers as contiguous
    /// operands through the dispatched `gemm` and through `gemm_small`.
    #[test]
    fn strided_views_match_contiguous(
        (m, seed) in (small_dim(), 0u64..1000)
    ) {
        let _g = lock();
        // Carve m x m windows out of larger backings, offset so the
        // column stride differs from the row count.
        let big_a = uniform(m + 7, m + 3, &mut rng(seed));
        let big_b = uniform(m + 5, m + 2, &mut rng(seed ^ 0x57));
        let av = big_a.as_ref().submatrix(3, 1, m, m);
        let bv = big_b.as_ref().submatrix(2, 1, m, m);
        let a = Mat::from_fn(m, m, |i, j| av.get(i, j));
        let b = Mat::from_fn(m, m, |i, j| bv.get(i, j));
        let expect = naive_matmul(&a, &b);
        let tol = 1e-13 * m as f64;

        // gemm_small on strided in/out views.
        let mut big_c = Mat::zeros(m + 4, m + 1);
        let cv = big_c.as_mut().submatrix_mut(4, 1, m, m);
        prop_assert!(gemm_small(1.0, av, bv, cv));
        let got = big_c.as_ref().submatrix(4, 1, m, m);
        for j in 0..m {
            for i in 0..m {
                prop_assert!((got.get(i, j) - expect.get(i, j)).abs() <= tol);
            }
        }
        // Padding around the window must stay untouched.
        for i in 0..4 {
            prop_assert_eq!(big_c.get(i, 0), 0.0);
        }

        // Dispatched gemm on the same strided views.
        let mut c2 = Mat::zeros(m, m);
        gemm(1.0, av, Trans::No, bv, Trans::No, 0.0, &mut c2);
        prop_assert!(c2.sub(&expect).max_abs() <= tol);
    }

    /// `0 * NaN == NaN` must reach C through every kernel on every ISA:
    /// no kernel may skip zero weights (the
    /// `nonfinite_propagates_through_zero_weights` contract).
    #[test]
    fn nonfinite_propagates_on_every_path(
        (m, seed, poison) in (small_dim(), 0u64..1000, (0usize..2).prop_map(|i| if i == 0 { f64::NAN } else { f64::INFINITY }))
    ) {
        let _g = lock();
        let mut a = uniform(m, m, &mut rng(seed));
        let mut b = uniform(m, m, &mut rng(seed ^ 0xF00));
        a.set(1, 2, poison);
        b.set(2, 0, 0.0); // 0 * poison must still poison C[1, 0]
        let detected = detected_isa();
        for isa in [Isa::Scalar, detected] {
            with_isa(isa, || {
                let mut c = Mat::zeros(m, m);
                assert!(gemm_small(1.0, &a, &b, &mut c));
                assert!(!c.get(1, 0).is_finite(), "small kernel on {} skipped 0 * {poison}", isa.name());
                let mut c = Mat::zeros(m, m);
                gemm_axpy(1.0, &a, &b, &mut c);
                assert!(!c.get(1, 0).is_finite(), "axpy on {} skipped 0 * {poison}", isa.name());
                let mut c = Mat::zeros(m, m);
                gemm_packed(1.0, &a, &b, &mut c);
                assert!(!c.get(1, 0).is_finite(), "packed on {} skipped 0 * {poison}", isa.name());
            });
        }
    }
}

/// `BT_DENSE_SIMD=0` must force the scalar path — asserted through the
/// dispatch counters with metrics live, so the CI scalar leg verifies
/// the whole chain (env var -> detection -> dispatch -> counters). On
/// other legs the same test checks detection matches the host CPU.
#[test]
fn bt_dense_simd_env_override_forces_scalar() {
    let _g = lock();
    // Re-run environment-driven detection (another test may have pinned).
    let isa = detected_isa();
    bt_obs::set_enabled(true);

    let a = uniform(32, 32, &mut rng(7));
    let b = uniform(32, 32, &mut rng(8));
    let mut c = Mat::zeros(32, 32);
    let before = bt_obs::counters_snapshot();
    gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
    let diff = bt_obs::counters_diff(&before);
    let simd_calls = diff.get("bt_dense.gemm.simd_calls").copied().unwrap_or(0);

    if std::env::var("BT_DENSE_SIMD").as_deref() == Ok("0") {
        assert_eq!(isa, Isa::Scalar, "BT_DENSE_SIMD=0 did not force scalar");
        assert_eq!(simd_calls, 0, "scalar-forced gemm counted as a SIMD call");
    } else {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            assert_eq!(isa, Isa::Avx2Fma, "AVX2+FMA host detected as {isa:?}");
            assert_eq!(simd_calls, 1, "SIMD gemm did not bump simd_calls");
        }
        #[cfg(target_arch = "aarch64")]
        assert_eq!(isa, Isa::Neon);
    }
}

/// The small-block counter tracks exactly the `gemm` calls that took the
/// small path, on every ISA (forced-scalar dispatch still uses the
/// unrolled small kernels — they have a scalar body).
#[test]
fn small_call_counter_tracks_small_path() {
    let _g = lock();
    bt_obs::set_enabled(true);
    let detected = detected_isa();
    for isa in [Isa::Scalar, detected] {
        with_isa(isa, || {
            let a = uniform(8, 8, &mut rng(1));
            let b = uniform(8, 8, &mut rng(2));
            let mut c = Mat::zeros(8, 8);
            let before = bt_obs::counters_snapshot();
            gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
            // 17 is not a small-block order: must not count.
            let a17 = uniform(17, 17, &mut rng(3));
            let b17 = uniform(17, 17, &mut rng(4));
            let mut c17 = Mat::zeros(17, 17);
            gemm(1.0, &a17, Trans::No, &b17, Trans::No, 0.0, &mut c17);
            let diff = bt_obs::counters_diff(&before);
            assert_eq!(
                diff.get("bt_dense.gemm.small_calls").copied().unwrap_or(0),
                1,
                "small_calls on {}",
                isa.name()
            );
        });
    }
}

/// Sanity net under the proptests: one fixed case per kernel per ISA
/// against the naive reference, so a broken kernel fails loudly even if
/// proptest shrinking obscures the original failure.
#[test]
fn fixed_case_all_kernels_match_naive() {
    let _g = lock();
    let detected = detected_isa();
    for &(m, k, n) in &[(4usize, 4usize, 4usize), (16, 16, 16), (40, 65, 24)] {
        let a = uniform(m, k, &mut rng(99));
        let b = uniform(k, n, &mut rng(100));
        let expect = naive_matmul(&a, &b);
        let tol = 1e-13 * k as f64;
        for isa in [Isa::Scalar, detected] {
            with_isa(isa, || {
                let mut c = Mat::zeros(m, n);
                gemm_axpy(1.0, &a, &b, &mut c);
                assert!(
                    c.sub(&expect).max_abs() <= tol,
                    "axpy {m}x{k}x{n} {}",
                    isa.name()
                );
                let mut c = Mat::zeros(m, n);
                gemm_packed(1.0, &a, &b, &mut c);
                assert!(
                    c.sub(&expect).max_abs() <= tol,
                    "packed {m}x{k}x{n} {}",
                    isa.name()
                );
                let mut c = Mat::zeros(m, n);
                gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
                assert!(
                    c.sub(&expect).max_abs() <= tol,
                    "gemm {m}x{k}x{n} {}",
                    isa.name()
                );
            });
        }
    }
}
