//! Cholesky factorization for symmetric positive definite matrices.
//!
//! `A = L L^T` with lower-triangular `L`. For SPD blocks this halves the
//! factorization flops relative to LU (`n^3/3` vs `2n^3/3`) and needs no
//! pivoting. The block diagonals `D_i` of an SPD block tridiagonal
//! matrix are themselves SPD (Schur complements), so the SPD Thomas
//! variant in `bt-blocktri` uses this factorization throughout.
//!
//! Like LU, the factorization is generic over the element type (`f64` by
//! default; `f32` for the mixed-precision solve path).

use crate::element::Element;
use crate::lu::SingularError;
use crate::mat::Mat;
use crate::view::{MatMut, MatRef};

/// Observability instruments for the multi-RHS panel solves (no-ops
/// unless `BT_OBS` is on); see the LU counterparts in [`crate::lu`].
static OBS_CHOL_PANEL_SOLVES: bt_obs::Counter = bt_obs::Counter::new("bt_dense.chol.panel_solves");
static OBS_CHOL_PANEL_NS: bt_obs::Histogram =
    bt_obs::Histogram::new("bt_dense.chol.panel_solve_ns");

/// Packed Cholesky factor `L` (lower triangle; the strict upper triangle
/// of the storage is unused).
#[derive(Debug, Clone)]
pub struct CholFactors<E: Element = f64> {
    l: Mat<E>,
}

impl<E: Element> CholFactors<E> {
    /// Factors an SPD matrix.
    ///
    /// # Errors
    ///
    /// [`SingularError`] if a diagonal pivot is non-positive or
    /// negligible — the matrix is not (numerically) positive definite.
    /// Only the lower triangle of `a` is read, so symmetry is assumed,
    /// not checked.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &Mat<E>) -> Result<Self, SingularError> {
        assert!(a.is_square(), "Cholesky of non-square matrix");
        let n = a.rows();
        let mut l = a.clone();
        let tiny = E::from_f64(n as f64) * E::EPSILON * E::from_f64(a.max_abs());

        for k in 0..n {
            // Left-looking column update, diagonal included: subtract the
            // contribution of every finished column j < k from rows k..n
            // of column k —
            //   l[k.., k] -= l[k, j] * l[k.., j]
            // Each term is a contiguous AXPY on the SIMD dispatch path;
            // the per-element accumulation order over j matches the old
            // row-dot formulation exactly. No zero-weight skip: non-finite
            // entries must reach the pivot check below.
            let (head, tail) = l.as_mut_slice().split_at_mut(k * n);
            let colk = &mut tail[k..n];
            for j in 0..k {
                let colj = &head[j * n + k..j * n + n];
                E::simd_axpy(-colj[0], colj, colk);
            }
            let d = colk[0];
            if d <= tiny || !d.is_finite() {
                return Err(SingularError {
                    step: k,
                    pivot: d.to_f64(),
                });
            }
            let lkk = d.sqrt();
            colk[0] = lkk;
            let inv = E::ONE / lkk;
            // Column k below the diagonal.
            for v in &mut colk[1..] {
                *v *= inv;
            }
        }
        // Zero the strict upper triangle so `factor_matrix` is clean.
        for j in 1..n {
            for i in 0..j {
                l.set(i, j, E::ZERO);
            }
        }
        Ok(Self { l })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn factor_matrix(&self) -> &Mat<E> {
        &self.l
    }

    /// `log(det A) = 2 sum log l_kk` (computed in log space to avoid
    /// overflow for large, strongly dominant blocks; accumulated in
    /// `f64` at either working precision).
    pub fn log_det(&self) -> f64 {
        (0..self.order())
            .map(|k| self.l.get(k, k).to_f64().ln())
            .sum::<f64>()
            * 2.0
    }

    /// Solves `A X = B` in place (`L` forward sweep then `L^T` backward).
    /// Multi-column panels split across the intra-rank thread budget
    /// ([`crate::threading`]), each column being an independent sweep.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != order()`.
    pub fn solve_in_place<'b>(&self, b: impl Into<MatMut<'b, E>>) {
        let b = b.into();
        let n = self.order();
        assert_eq!(b.rows(), n, "solve rhs row count mismatch");
        OBS_CHOL_PANEL_SOLVES.incr();
        let _span = bt_obs::span("bt_dense", "chol.solve_panel");
        let t0 = bt_obs::enabled().then(std::time::Instant::now);
        crate::threading::for_each_column_parallel(b, 2 * n * n, |x| self.solve_column(x));
        if let Some(t0) = t0 {
            OBS_CHOL_PANEL_NS.record_duration(t0.elapsed());
        }
    }

    /// Solves `A X = B` into caller-provided storage: copies `b` into
    /// `out`, then solves in place — no allocation.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn solve_into<'b, 'o>(&self, b: impl Into<MatRef<'b, E>>, out: impl Into<MatMut<'o, E>>) {
        let mut out = out.into();
        out.copy_from(b.into());
        self.solve_in_place(out);
    }

    /// Forward (`L`) then backward (`L^T`) sweep on a single RHS column.
    /// The forward sweep is a column AXPY, the backward sweep a dot
    /// product — both on the SIMD dispatch path ([`crate::simd`]).
    fn solve_column(&self, x: &mut [E]) {
        let n = self.order();
        // L w = b
        for k in 0..n {
            let lcol = self.l.col(k);
            let xk = x[k] / lcol[k];
            x[k] = xk;
            if xk != E::ZERO {
                E::simd_axpy(-xk, &lcol[k + 1..], &mut x[k + 1..]);
            }
        }
        // L^T x = w
        for k in (0..n).rev() {
            let lcol = self.l.col(k);
            let s = x[k] - E::simd_dot(&x[k + 1..], &lcol[k + 1..]);
            x[k] = s / lcol[k];
        }
    }

    /// Solves `A X = B`, returning `X`.
    pub fn solve(&self, b: &Mat<E>) -> Mat<E> {
        let mut x = b.clone();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `X A = B` (right division; `A` is symmetric so this is
    /// `(A X^T = B^T)^T`).
    pub fn solve_transposed_system(&self, b: &Mat<E>) -> Mat<E> {
        let mut xt = b.transpose();
        self.solve_in_place(&mut xt);
        xt.transpose()
    }
}

/// Flop count of an `n x n` Cholesky factorization (`n^3/3` to leading
/// order — half of LU).
#[inline]
pub const fn cholesky_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::random::{rng, spd};

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(8, &mut rng(1));
        let ch = CholFactors::factor(&a).unwrap();
        let l = ch.factor_matrix();
        let rec = matmul(l, &l.transpose());
        assert!(rec.sub(&a).max_abs() < 1e-10 * a.max_abs());
    }

    #[test]
    fn solve_residual_small() {
        let a = spd(10, &mut rng(2));
        let ch = CholFactors::factor(&a).unwrap();
        let b = Mat::from_fn(10, 3, |i, j| ((i + j) as f64).sin());
        let x = ch.solve(&b);
        assert!(matmul(&a, &x).sub(&b).max_abs() < 1e-10);
    }

    #[test]
    fn f32_factor_and_solve() {
        // The same sweeps at f32, at single-precision tolerance.
        let a = spd(12, &mut rng(21));
        let a32 = a.convert::<f32>();
        let ch = CholFactors::factor(&a32).unwrap();
        let b = Mat::from_fn(12, 3, |i, j| ((i + j) as f64).sin());
        let x = ch.solve(&b.convert::<f32>());
        let r = matmul(&a, &x.convert::<f64>()).sub(&b);
        assert!(r.max_abs() < 1e-3, "f32 residual {}", r.max_abs());
        // Reconstruction too.
        let l = ch.factor_matrix();
        let rec = matmul(&l.convert::<f64>(), &l.convert::<f64>().transpose());
        assert!(rec.sub(&a).max_abs() < 1e-4 * a.max_abs());
    }

    #[test]
    fn panel_solve_bitwise_identical_across_thread_budgets() {
        use crate::threading::with_thread_budget;
        let a = spd(50, &mut rng(9));
        let ch = CholFactors::factor(&a).unwrap();
        let b = Mat::from_fn(50, 16, |i, j| ((i * 16 + j) as f64 * 0.21).sin());
        let x1 = with_thread_budget(1, || ch.solve(&b));
        for t in [2, 5] {
            let xt = with_thread_budget(t, || ch.solve(&b));
            assert_eq!(x1, xt, "budget {t} changed the solve bits");
        }
    }

    #[test]
    fn right_division() {
        let a = spd(6, &mut rng(3));
        let ch = CholFactors::factor(&a).unwrap();
        let b = Mat::from_fn(4, 6, |i, j| (i * 6 + j) as f64 * 0.1);
        let x = ch.solve_transposed_system(&b);
        assert!(matmul(&x, &a).sub(&b).max_abs() < 1e-10);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = spd(9, &mut rng(11));
        let ch = CholFactors::factor(&a).unwrap();
        let b = Mat::from_fn(9, 4, |i, j| ((i * 4 + j) as f64 * 0.17).cos());
        let expect = ch.solve(&b);
        let mut out = Mat::zeros(9, 4);
        ch.solve_into(&b, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn matches_lu_solution() {
        let a = spd(7, &mut rng(4));
        let b = Mat::from_fn(7, 2, |i, _| i as f64 + 1.0);
        let x_ch = CholFactors::factor(&a).unwrap().solve(&b);
        let x_lu = crate::lu::LuFactors::factor(&a).unwrap().solve(&b);
        assert!(x_ch.sub(&x_lu).max_abs() < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = CholFactors::factor(&a).unwrap_err();
        assert_eq!(err.step, 1);
        assert!(CholFactors::factor(&Mat::<f64>::zeros(3, 3)).is_err());
    }

    #[test]
    fn identity_factors_to_identity() {
        let ch = CholFactors::factor(&Mat::<f64>::identity(5)).unwrap();
        assert!(ch.factor_matrix().sub(&Mat::identity(5)).max_abs() < 1e-15);
        assert!((ch.log_det() - 0.0).abs() < 1e-15);
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd(5, &mut rng(6));
        let ch = CholFactors::factor(&a).unwrap();
        let lu_det = crate::lu::LuFactors::factor(&a).unwrap().det();
        assert!((ch.log_det() - lu_det.ln()).abs() < 1e-9);
    }

    #[test]
    fn only_lower_triangle_is_read() {
        let mut a = spd(4, &mut rng(7));
        let ch_clean = CholFactors::factor(&a).unwrap();
        // Garbage in the strict upper triangle must not matter.
        a.set(0, 3, 999.0);
        a.set(1, 2, -999.0);
        let ch_dirty = CholFactors::factor(&a).unwrap();
        assert!(
            ch_clean
                .factor_matrix()
                .sub(ch_dirty.factor_matrix())
                .max_abs()
                < 1e-14
        );
    }

    #[test]
    fn flop_formula() {
        assert_eq!(cholesky_flops(3), 9);
        assert!(cholesky_flops(8) * 2 <= crate::lu::lu_flops(8) + 8);
    }
}
