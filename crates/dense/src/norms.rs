//! Matrix and vector norms, and relative-error helpers used by the
//! accuracy experiments (Table III) and the test suites.
//!
//! Norms accept matrices of either element type and always accumulate
//! and report in `f64` (for `E = f64` the operations are identical to
//! the pre-generic code, bit for bit; for `E = f32` the widened
//! accumulation avoids compounding single-precision rounding into the
//! diagnostic itself).

use crate::element::Element;
use crate::lu::LuFactors;
use crate::mat::Mat;

/// Frobenius norm `sqrt(sum a_ij^2)`.
pub fn fro_norm<E: Element>(a: &Mat<E>) -> f64 {
    a.as_slice()
        .iter()
        .map(|v| {
            let v = v.to_f64();
            v * v
        })
        .sum::<f64>()
        .sqrt()
}

/// 1-norm: maximum absolute column sum.
pub fn one_norm<E: Element>(a: &Mat<E>) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|v| v.to_f64().abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Infinity norm: maximum absolute row sum.
pub fn inf_norm<E: Element>(a: &Mat<E>) -> f64 {
    let mut sums = vec![0.0; a.rows()];
    for j in 0..a.cols() {
        for (s, v) in sums.iter_mut().zip(a.col(j)) {
            *s += v.to_f64().abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Euclidean norm of a vector.
pub fn vec_norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// `||a - b||_F / max(||b||_F, floor)` — relative difference with a floor
/// that avoids division by zero for zero references.
pub fn rel_diff<E: Element>(a: &Mat<E>, b: &Mat<E>) -> f64 {
    let denom = fro_norm(b).max(f64::MIN_POSITIVE.sqrt());
    fro_norm(&a.sub(b)) / denom
}

/// 1-norm condition number estimate via the explicit inverse.
///
/// Exact (not an estimator); intended for the modest block orders (`M` up
/// to a few hundred) this suite works with, where the `O(M^3)` inverse is
/// cheap. Returns `f64::INFINITY` for singular matrices. The inverse is
/// computed at the matrix's own precision.
pub fn cond_1<E: Element>(a: &Mat<E>) -> f64 {
    match LuFactors::factor(a) {
        Ok(lu) => one_norm(a) * one_norm(&lu.inverse()),
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fro_norm_known() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((fro_norm(&a) - 5.0).abs() < 1e-14);
        assert_eq!(fro_norm(&Mat::<f64>::zeros(3, 3)), 0.0);
    }

    #[test]
    fn one_and_inf_norms() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(one_norm(&a), 6.0); // col 1: |−2|+|4| = 6
        assert_eq!(inf_norm(&a), 7.0); // row 1: |−3|+|4| = 7
    }

    #[test]
    fn norms_accept_f32_matrices() {
        let a = Mat::<f32>::from_fn(2, 2, |i, j| if i == j { 3.0 + j as f32 } else { 0.0 });
        assert!((fro_norm(&a) - 5.0).abs() < 1e-6);
        assert!((one_norm(&a) - 4.0).abs() < 1e-6);
        assert!((cond_1(&a) - 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn one_norm_of_transpose_is_inf_norm() {
        let a = Mat::from_fn(4, 6, |i, j| ((i * 6 + j) as f64 * 0.3).sin());
        assert!((one_norm(&a.transpose()) - inf_norm(&a)).abs() < 1e-14);
    }

    #[test]
    fn vec_norm2_known() {
        assert!((vec_norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(vec_norm2(&[]), 0.0);
    }

    #[test]
    fn rel_diff_zero_for_equal() {
        let a: Mat = Mat::identity(3);
        assert_eq!(rel_diff(&a, &a), 0.0);
    }

    #[test]
    fn rel_diff_scales() {
        let a = Mat::identity(2);
        let b = a.scaled(1.0 + 1e-8);
        let d = rel_diff(&b, &a);
        assert!(d > 1e-9 && d < 1e-7);
    }

    #[test]
    fn cond_identity_is_one() {
        assert!((cond_1(&Mat::<f64>::identity(7)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cond_diag_matches_ratio() {
        let a = Mat::from_diag(&[10.0, 1.0, 0.1]);
        assert!((cond_1(&a) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cond_singular_is_infinite() {
        let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(cond_1(&a).is_infinite());
    }
}
