//! The [`Element`] abstraction: one trait over the scalar types the
//! dense kernels are generic in (`f64` and `f32`).
//!
//! Everything in this crate used to be hardwired to `f64`. The
//! mixed-precision solve path needs the same kernels at `f32` — double
//! the SIMD width, half the wire bytes — so [`Mat`], the views, the
//! GEMM/LU/Cholesky kernels and the workspace pool are generic over
//! `E: Element` with `f64` as the default type parameter (existing
//! `Mat` call sites compile unchanged).
//!
//! The trait carries three kinds of items:
//!
//! * **scalar constants and operations** (`ZERO`, `EPSILON`, `abs`,
//!   `sqrt`, ...) so generic numerical code reads like the old `f64`
//!   code and — for `E = f64` — executes the *same operations in the
//!   same order*, keeping the f64 paths bitwise identical to the
//!   pre-generic kernels;
//! * **SIMD dispatch hooks** (`simd_axpy`, `simd_microkernel`, ...)
//!   that route to the per-type vectorized kernels in [`crate::simd`]
//!   behind the shared runtime [`crate::Isa`] dispatch;
//! * **type-erasure hooks** ([`AnyVec`] / [`AnyMat`]) so the comm layer
//!   can move panels of either precision through one non-generic wire
//!   payload type while charging `size_of::<E>()`-exact byte counts.
//!
//! Kernel-shape constants (`MR`/`NR`, packed-crossover flops) also live
//! here: the f32 microkernel tile is 16 x 4 (two AVX2 vectors of eight
//! lanes), twice the height of the 8 x 4 f64 tile.

use crate::mat::Mat;
use crate::simd;
use crate::view::{MatMut, MatRef};
use std::cell::RefCell;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar element type of the dense kernels (`f64` or `f32`).
///
/// Implemented for exactly those two types; downstream crates select
/// precision with a type parameter (`Mat<f32>`) and fall back to the
/// `f64` default everywhere else.
pub trait Element:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + fmt::LowerExp
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision.
    const EPSILON: Self;
    /// Canonical lowercase type name (`"f64"` / `"f32"`), used in bench
    /// schemas and error messages.
    const NAME: &'static str;
    /// Microkernel tile height for this element type (one cache line of
    /// C per register column: 8 f64 or 16 f32 — two AVX2 vectors either
    /// way).
    const MR: usize;
    /// Microkernel tile width.
    const NR: usize;
    /// Packed-vs-AXPY GEMM crossover on SIMD dispatch paths, in flops
    /// (`2 m k n`). Measured for f64 (see `BENCH_gemm.json`); the f32
    /// value starts from the same sweep methodology.
    const PACKED_MIN_FLOPS_SIMD: usize;
    /// Packed-vs-AXPY crossover on the scalar fallback path.
    const PACKED_MIN_FLOPS_SCALAR: usize;
    /// Whether wide multi-RHS triangular panel solves take the
    /// row-oriented sweep (`LuFactors` transposes the panel so every
    /// elimination step is one AXPY across the full panel width instead
    /// of a length-`<= n` column fragment). `f32` opts in — block orders
    /// are small (`M ~ 8`), so the column sweep's AXPYs never fill the
    /// 8-lane `f32` FMA vectors and the half-width path would see no
    /// speedup. `f64` stays on the per-column sweep, keeping its solver
    /// bit patterns identical to the original `f64`-only implementation.
    const WIDE_PANEL_SOLVE: bool;

    /// Conversion from `f64` (rounds for `f32`; identity for `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// True for non-NaN, non-infinite values.
    fn is_finite(self) -> bool;

    /// `y += w * x` through the runtime-dispatched SIMD path.
    fn simd_axpy(w: Self, x: &[Self], y: &mut [Self]);
    /// Dot product through the runtime-dispatched SIMD path.
    fn simd_dot(x: &[Self], y: &[Self]) -> Self;
    /// Packed `MR x NR` microkernel; `acc` must hold `MR * NR` elements.
    fn simd_microkernel(kb: usize, pa: &[Self], pb: &[Self], acc: &mut [Self]);
    /// Whole-block small-M GEMM; returns `false` for unsupported shapes.
    fn simd_gemm_small(
        alpha: Self,
        a: MatRef<'_, Self>,
        b: MatRef<'_, Self>,
        c: &mut MatMut<'_, Self>,
    ) -> bool;
    /// Hands the caller this thread's packing scratch `(packed_a,
    /// packed_b)` for [`crate::gemm_packed`] — per element type, because
    /// a `thread_local!` cannot be generic.
    fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<Self>, &mut Vec<Self>) -> R) -> R;

    /// Wraps a buffer in the precision-erased [`AnyVec`].
    fn vec_into_any(v: Vec<Self>) -> AnyVec;
    /// Recovers a typed buffer; `None` on precision mismatch.
    fn vec_from_any(v: AnyVec) -> Option<Vec<Self>>;
    /// Wraps a matrix in the precision-erased [`AnyMat`].
    fn mat_into_any(m: Mat<Self>) -> AnyMat;
    /// Recovers a typed matrix; `None` on precision mismatch.
    fn mat_from_any(m: AnyMat) -> Option<Mat<Self>>;
}

impl Element for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const NAME: &'static str = "f64";
    const MR: usize = 8;
    const NR: usize = 4;
    // Measured on the AVX2+FMA reference host (`cargo bench -p bt-bench
    // --bench kernels`, see `BENCH_gemm.json`): the FMA microkernel beats
    // the (also FMA-vectorized) AXPY kernel at every swept size from
    // m = k = n = 8 (1 kflop, 1.08x) through m = 256 (3.7x), while AXPY
    // wins at m = 4 (128 flop, 2.2x — the pack pass dominates). 512 flops
    // splits that gap.
    const PACKED_MIN_FLOPS_SIMD: usize = 512;
    // The same sweep under `BT_DENSE_SIMD=0` shows the autovectorized
    // AXPY loop winning through m = 48 and the scalar microkernel taking
    // over from m = 63; the crossover sits right at `2 * 63^3`.
    const PACKED_MIN_FLOPS_SCALAR: usize = 500_000;
    // Frozen bit patterns: every pre-existing f64 result is pinned by
    // downstream tests, so f64 keeps the original per-column sweep.
    const WIDE_PANEL_SOLVE: bool = false;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn simd_axpy(w: Self, x: &[Self], y: &mut [Self]) {
        simd::axpy(w, x, y);
    }
    #[inline]
    fn simd_dot(x: &[Self], y: &[Self]) -> Self {
        simd::dot(x, y)
    }
    #[inline]
    fn simd_microkernel(kb: usize, pa: &[Self], pb: &[Self], acc: &mut [Self]) {
        simd::microkernel(kb, pa, pb, acc);
    }
    #[inline]
    fn simd_gemm_small(
        alpha: Self,
        a: MatRef<'_, Self>,
        b: MatRef<'_, Self>,
        c: &mut MatMut<'_, Self>,
    ) -> bool {
        simd::gemm_small(alpha, a, b, c)
    }
    fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<Self>, &mut Vec<Self>) -> R) -> R {
        thread_local! {
            /// Per-thread packing scratch `(packed_a, packed_b)`: warm
            /// `gemm_packed` calls on a given OS thread reuse these
            /// instead of allocating.
            static PACK_BUFS_F64: RefCell<(Vec<f64>, Vec<f64>)> =
                const { RefCell::new((Vec::new(), Vec::new())) };
        }
        PACK_BUFS_F64.with(|bufs| {
            let mut bufs = bufs.borrow_mut();
            let (pa, pb) = &mut *bufs;
            f(pa, pb)
        })
    }

    #[inline]
    fn vec_into_any(v: Vec<Self>) -> AnyVec {
        AnyVec::F64(v)
    }
    #[inline]
    fn vec_from_any(v: AnyVec) -> Option<Vec<Self>> {
        match v {
            AnyVec::F64(v) => Some(v),
            AnyVec::F32(_) => None,
        }
    }
    #[inline]
    fn mat_into_any(m: Mat<Self>) -> AnyMat {
        AnyMat::F64(m)
    }
    #[inline]
    fn mat_from_any(m: AnyMat) -> Option<Mat<Self>> {
        match m {
            AnyMat::F64(m) => Some(m),
            AnyMat::F32(_) => None,
        }
    }
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const NAME: &'static str = "f32";
    // Two AVX2 vectors per register column, like f64 — but 8 lanes each.
    const MR: usize = 16;
    const NR: usize = 4;
    // Same flop-count crossover as f64 to first order: the pack-pass
    // overhead and the microkernel advantage both scale with element
    // throughput. The f32 rows of `BENCH_gemm.json` measure the actual
    // per-ISA crossover.
    const PACKED_MIN_FLOPS_SIMD: usize = 512;
    const PACKED_MIN_FLOPS_SCALAR: usize = 500_000;
    // At M ~ 8 block orders the column sweep's AXPYs are at most 8 long
    // and spend everything on dispatch; the row sweep's panel-width
    // AXPYs are what make the half-width replay actually fast.
    const WIDE_PANEL_SOLVE: bool = true;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline]
    fn simd_axpy(w: Self, x: &[Self], y: &mut [Self]) {
        simd::axpy_f32(w, x, y);
    }
    #[inline]
    fn simd_dot(x: &[Self], y: &[Self]) -> Self {
        simd::dot_f32(x, y)
    }
    #[inline]
    fn simd_microkernel(kb: usize, pa: &[Self], pb: &[Self], acc: &mut [Self]) {
        simd::microkernel_f32(kb, pa, pb, acc);
    }
    #[inline]
    fn simd_gemm_small(
        alpha: Self,
        a: MatRef<'_, Self>,
        b: MatRef<'_, Self>,
        c: &mut MatMut<'_, Self>,
    ) -> bool {
        simd::gemm_small_f32(alpha, a, b, c)
    }
    fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<Self>, &mut Vec<Self>) -> R) -> R {
        thread_local! {
            static PACK_BUFS_F32: RefCell<(Vec<f32>, Vec<f32>)> =
                const { RefCell::new((Vec::new(), Vec::new())) };
        }
        PACK_BUFS_F32.with(|bufs| {
            let mut bufs = bufs.borrow_mut();
            let (pa, pb) = &mut *bufs;
            f(pa, pb)
        })
    }

    #[inline]
    fn vec_into_any(v: Vec<Self>) -> AnyVec {
        AnyVec::F32(v)
    }
    #[inline]
    fn vec_from_any(v: AnyVec) -> Option<Vec<Self>> {
        match v {
            AnyVec::F32(v) => Some(v),
            AnyVec::F64(_) => None,
        }
    }
    #[inline]
    fn mat_into_any(m: Mat<Self>) -> AnyMat {
        AnyMat::F32(m)
    }
    #[inline]
    fn mat_from_any(m: AnyMat) -> Option<Mat<Self>> {
        match m {
            AnyMat::F32(m) => Some(m),
            AnyMat::F64(_) => None,
        }
    }
}

/// A precision-erased element buffer: the payload storage of the comm
/// layer's `PanelBuf`, which must be a single non-generic type because
/// both backends move payloads as `Box<dyn Any>`.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyVec {
    /// Single-precision buffer.
    F32(Vec<f32>),
    /// Double-precision buffer.
    F64(Vec<f64>),
}

impl AnyVec {
    /// Bytes per element of the stored precision.
    #[inline]
    pub fn elem_size(&self) -> usize {
        match self {
            AnyVec::F32(_) => std::mem::size_of::<f32>(),
            AnyVec::F64(_) => std::mem::size_of::<f64>(),
        }
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            AnyVec::F32(v) => v.len(),
            AnyVec::F64(v) => v.len(),
        }
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocated capacity, in elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        match self {
            AnyVec::F32(v) => v.capacity(),
            AnyVec::F64(v) => v.capacity(),
        }
    }

    /// True when both buffers store the same precision.
    #[inline]
    pub fn same_precision(&self, other: &AnyVec) -> bool {
        matches!(
            (self, other),
            (AnyVec::F32(_), AnyVec::F32(_)) | (AnyVec::F64(_), AnyVec::F64(_))
        )
    }
}

/// A precision-erased matrix: the slot type of the comm backends'
/// in-flight receive requests, which must store either precision in one
/// non-generic request struct.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyMat {
    /// Single-precision matrix.
    F32(Mat<f32>),
    /// Double-precision matrix.
    F64(Mat<f64>),
}

impl AnyMat {
    /// `(rows, cols)` of the wrapped matrix.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        match self {
            AnyMat::F32(m) => m.shape(),
            AnyMat::F64(m) => m.shape(),
        }
    }

    /// Bytes per element of the stored precision.
    #[inline]
    pub fn elem_size(&self) -> usize {
        match self {
            AnyMat::F32(_) => std::mem::size_of::<f32>(),
            AnyMat::F64(_) => std::mem::size_of::<f64>(),
        }
    }

    /// Canonical name of the stored precision (`"f32"` / `"f64"`).
    #[inline]
    pub fn precision_name(&self) -> &'static str {
        match self {
            AnyMat::F32(_) => f32::NAME,
            AnyMat::F64(_) => f64::NAME,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_primitives() {
        assert_eq!(<f64 as Element>::EPSILON, f64::EPSILON);
        assert_eq!(<f32 as Element>::EPSILON, f32::EPSILON);
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
        // Twice the lanes, twice the tile height.
        assert_eq!(<f32 as Element>::MR, 2 * <f64 as Element>::MR);
        assert_eq!(<f32 as Element>::NR, <f64 as Element>::NR);
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(f64::from_f64(1.5), 1.5);
        assert_eq!(<f32 as Element>::from_f64(1.5), 1.5f32);
        assert_eq!(1.5f32.to_f64(), 1.5);
        // f64 -> f32 rounds.
        let x = 0.1f64;
        assert_ne!(<f32 as Element>::from_f64(x).to_f64(), x);
    }

    #[test]
    fn any_vec_tracks_precision_and_size() {
        let a = f32::vec_into_any(vec![1.0f32; 6]);
        let b = f64::vec_into_any(vec![1.0f64; 6]);
        assert_eq!(a.elem_size(), 4);
        assert_eq!(b.elem_size(), 8);
        assert_eq!(a.len(), 6);
        assert!(!a.same_precision(&b));
        assert!(f32::vec_from_any(b.clone()).is_none());
        assert_eq!(f64::vec_from_any(b).unwrap().len(), 6);
    }

    #[test]
    fn any_mat_roundtrip_and_mismatch() {
        let m = Mat::<f32>::zeros(2, 3);
        let any = f32::mat_into_any(m);
        assert_eq!(any.shape(), (2, 3));
        assert_eq!(any.elem_size(), 4);
        assert_eq!(any.precision_name(), "f32");
        assert!(f64::mat_from_any(any.clone()).is_none());
        assert_eq!(f32::mat_from_any(any).unwrap().shape(), (2, 3));
    }
}
