//! Borrowed column-major matrix views: [`MatRef`] / [`MatMut`].
//!
//! A view is `(data, rows, cols, col_stride)` over an element buffer in
//! column-major order: element `(i, j)` lives at `i + j * col_stride`.
//! With `col_stride == rows` the view is *contiguous* (identical layout
//! to [`Mat`]); with `col_stride > rows` it addresses a column-aligned
//! window of a larger matrix. Columns are always contiguous slices
//! either way, which is the access pattern every kernel in this crate
//! relies on.
//!
//! Like [`Mat`], views are generic over the scalar type with `f64` as
//! the default: `MatRef<'a>` means `MatRef<'a, f64>`, and `MatRef<'a,
//! f32>` is the half-width view used by the mixed-precision path.
//!
//! Views exist so hot paths can operate on submatrices and
//! [`crate::workspace::Workspace`]-pooled buffers without materializing
//! temporaries: the GEMM/GEMV kernels and the LU/Cholesky panel solves
//! all accept `impl Into<MatRef>` / `impl Into<MatMut>`, so `&Mat` /
//! `&mut Mat` callers keep working unchanged while allocation-free
//! callers pass views (DESIGN.md §"Memory model").

use crate::element::Element;
use crate::mat::Mat;
use std::fmt;

/// Backing length required by a `rows x cols` view with `col_stride`.
#[inline]
pub(crate) fn required_len(rows: usize, cols: usize, col_stride: usize) -> usize {
    if rows == 0 || cols == 0 {
        0
    } else {
        (cols - 1) * col_stride + rows
    }
}

/// Immutable borrowed view of a column-major matrix.
#[derive(Clone, Copy)]
pub struct MatRef<'a, E: Element = f64> {
    pub(crate) data: &'a [E],
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) col_stride: usize,
}

impl<'a, E: Element> MatRef<'a, E> {
    /// Builds a view over `data` with an explicit column stride.
    ///
    /// # Panics
    ///
    /// Panics if `col_stride < rows` or `data` is too short for the
    /// requested shape.
    pub fn from_parts(data: &'a [E], rows: usize, cols: usize, col_stride: usize) -> Self {
        assert!(col_stride >= rows, "col_stride {col_stride} < rows {rows}");
        assert!(
            data.len() >= required_len(rows, cols, col_stride),
            "backing slice of {} too short for {rows}x{cols} stride {col_stride}",
            data.len()
        );
        Self {
            data,
            rows,
            cols,
            col_stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Distance between column starts in the backing buffer.
    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// True when the columns are packed back to back (`Mat` layout).
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.col_stride == self.rows || self.cols <= 1
    }

    /// Column `j` as a contiguous slice (borrowing the backing buffer,
    /// not the view).
    #[inline]
    pub fn col(&self, j: usize) -> &'a [E] {
        debug_assert!(j < self.cols);
        &self.data[j * self.col_stride..j * self.col_stride + self.rows]
    }

    /// Element read (bounds checked in debug builds).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> E {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.col_stride]
    }

    /// The `br x bc` sub-view with top-left corner `(r0, c0)` — no copy.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the view bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, br: usize, bc: usize) -> MatRef<'a, E> {
        assert!(
            r0 + br <= self.rows && c0 + bc <= self.cols,
            "submatrix out of bounds"
        );
        let start = c0 * self.col_stride + r0;
        let len = required_len(br, bc, self.col_stride);
        MatRef {
            data: &self.data[start..start + len],
            rows: br,
            cols: bc,
            col_stride: self.col_stride,
        }
    }

    /// Copies the view into a freshly allocated [`Mat`].
    pub fn to_mat(&self) -> Mat<E> {
        let mut out = Mat::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            out.col_mut(j).copy_from_slice(self.col(j));
        }
        out
    }
}

/// Mutable borrowed view of a column-major matrix.
pub struct MatMut<'a, E: Element = f64> {
    pub(crate) data: &'a mut [E],
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) col_stride: usize,
}

impl<'a, E: Element> MatMut<'a, E> {
    /// Builds a mutable view over `data` with an explicit column stride.
    ///
    /// # Panics
    ///
    /// Panics if `col_stride < rows` or `data` is too short for the
    /// requested shape.
    pub fn from_parts(data: &'a mut [E], rows: usize, cols: usize, col_stride: usize) -> Self {
        assert!(col_stride >= rows, "col_stride {col_stride} < rows {rows}");
        assert!(
            data.len() >= required_len(rows, cols, col_stride),
            "backing slice of {} too short for {rows}x{cols} stride {col_stride}",
            data.len()
        );
        Self {
            data,
            rows,
            cols,
            col_stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Distance between column starts in the backing buffer.
    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// True when the columns are packed back to back (`Mat` layout).
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.col_stride == self.rows || self.cols <= 1
    }

    /// Immutable reborrow of this view.
    #[inline]
    pub fn rb(&self) -> MatRef<'_, E> {
        MatRef {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            col_stride: self.col_stride,
        }
    }

    /// Mutable reborrow: a shorter-lived `MatMut` over the same window,
    /// so a view can be passed to a consuming kernel and used again.
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_, E> {
        MatMut {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            col_stride: self.col_stride,
        }
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[E] {
        debug_assert!(j < self.cols);
        &self.data[j * self.col_stride..j * self.col_stride + self.rows]
    }

    /// Mutable column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [E] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.col_stride..j * self.col_stride + self.rows]
    }

    /// Element read (bounds checked in debug builds).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> E {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.col_stride]
    }

    /// Element write (bounds checked in debug builds).
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: E) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.col_stride] = v;
    }

    /// Zeroes every element of the window (gap elements of a strided
    /// backing buffer are untouched).
    pub fn fill_zero(&mut self) {
        for j in 0..self.cols {
            self.col_mut(j).fill(E::ZERO);
        }
    }

    /// Sets every element of the window to `v`.
    pub fn fill(&mut self, v: E) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Scales every element of the window by `s`.
    pub fn scale(&mut self, s: E) {
        for j in 0..self.cols {
            for v in self.col_mut(j) {
                *v *= s;
            }
        }
    }

    /// Overwrites the window with the contents of `src`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, src: MatRef<'_, E>) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// The `br x bc` mutable sub-view with top-left corner `(r0, c0)`,
    /// consuming this view (use [`MatMut::rb_mut`] first to keep it).
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the view bounds.
    pub fn submatrix_mut(self, r0: usize, c0: usize, br: usize, bc: usize) -> MatMut<'a, E> {
        assert!(
            r0 + br <= self.rows && c0 + bc <= self.cols,
            "submatrix out of bounds"
        );
        let start = c0 * self.col_stride + r0;
        let len = required_len(br, bc, self.col_stride);
        MatMut {
            data: &mut self.data[start..start + len],
            rows: br,
            cols: bc,
            col_stride: self.col_stride,
        }
    }
}

impl<'a, E: Element> From<&'a Mat<E>> for MatRef<'a, E> {
    fn from(m: &'a Mat<E>) -> Self {
        m.as_ref()
    }
}

impl<'a, E: Element> From<&'a mut Mat<E>> for MatRef<'a, E> {
    fn from(m: &'a mut Mat<E>) -> Self {
        m.as_ref()
    }
}

impl<'a, E: Element> From<&'a mut Mat<E>> for MatMut<'a, E> {
    fn from(m: &'a mut Mat<E>) -> Self {
        m.as_mut()
    }
}

impl<'short, 'long: 'short, E: Element> From<&'short MatMut<'long, E>> for MatRef<'short, E> {
    fn from(m: &'short MatMut<'long, E>) -> Self {
        m.rb()
    }
}

impl<'short, 'long: 'short, E: Element> From<&'short mut MatMut<'long, E>> for MatMut<'short, E> {
    fn from(m: &'short mut MatMut<'long, E>) -> Self {
        m.rb_mut()
    }
}

// Debug prints shape + stride, not contents — views over large
// workspaces would otherwise dump megabytes.
impl<E: Element> fmt::Debug for MatRef<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MatRef<{}> {}x{} (col_stride {})",
            E::NAME,
            self.rows,
            self.cols,
            self.col_stride
        )
    }
}

impl<E: Element> fmt::Debug for MatMut<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MatMut<{}> {}x{} (col_stride {})",
            E::NAME,
            self.rows,
            self.cols,
            self.col_stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize) -> Mat {
        Mat::from_fn(rows, cols, |i, j| (i * 100 + j) as f64)
    }

    #[test]
    fn full_view_roundtrip() {
        let m = seq(3, 4);
        let v = m.as_ref();
        assert_eq!(v.shape(), (3, 4));
        assert!(v.is_contiguous());
        assert_eq!(v.get(2, 3), 203.0);
        assert_eq!(v.col(1), m.col(1));
        assert_eq!(v.to_mat(), m);
    }

    #[test]
    fn submatrix_strides() {
        let m = seq(5, 5);
        let v = m.submatrix(1, 2, 3, 2);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.col_stride(), 5);
        assert!(!v.is_contiguous());
        assert_eq!(v.get(0, 0), m.get(1, 2));
        assert_eq!(v.get(2, 1), m.get(3, 3));
        assert_eq!(v.to_mat(), m.block(1, 2, 3, 2));
        // Nested sub-view.
        let w = v.submatrix(1, 1, 2, 1);
        assert_eq!(w.to_mat(), m.block(2, 3, 2, 1));
    }

    #[test]
    fn mut_view_writes_through() {
        let mut m = seq(4, 4);
        {
            let mut v = m.submatrix_mut(1, 1, 2, 2);
            v.set(0, 0, -1.0);
            v.col_mut(1)[1] = -2.0;
        }
        assert_eq!(m.get(1, 1), -1.0);
        assert_eq!(m.get(2, 2), -2.0);
    }

    #[test]
    fn fill_and_copy_only_touch_window() {
        let mut m = seq(4, 4);
        let orig = m.clone();
        let src = Mat::filled(2, 2, 7.0);
        {
            let mut v = m.submatrix_mut(1, 1, 2, 2);
            v.fill_zero();
            v.copy_from(src.as_ref());
        }
        for j in 0..4 {
            for i in 0..4 {
                let inside = (1..3).contains(&i) && (1..3).contains(&j);
                let expect = if inside { 7.0 } else { orig.get(i, j) };
                assert_eq!(m.get(i, j), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn reborrows() {
        let mut m = seq(3, 3);
        let mut v = m.as_mut();
        v.rb_mut().fill(1.0);
        assert_eq!(v.rb().get(2, 2), 1.0);
        v.set(0, 0, 9.0);
        assert_eq!(m.get(0, 0), 9.0);
    }

    #[test]
    fn f32_views_share_the_kernel_access_pattern() {
        let m = Mat::<f32>::from_fn(4, 4, |i, j| (i * 100 + j) as f32);
        let v = m.submatrix(1, 1, 2, 2);
        assert_eq!(v.get(1, 1), 202.0f32);
        assert_eq!(v.col_stride(), 4);
        assert_eq!(v.to_mat(), m.block(1, 1, 2, 2));
    }

    #[test]
    #[should_panic(expected = "submatrix out of bounds")]
    fn submatrix_out_of_bounds_panics() {
        let m = seq(3, 3);
        let _ = m.as_ref().submatrix(2, 2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn from_parts_checks_length() {
        let data = [0.0f64; 5];
        let _ = MatRef::from_parts(&data, 2, 3, 2);
    }
}
