//! [`Workspace`]: a pool of reusable element buffers for
//! allocation-free hot paths.
//!
//! The solver's replay loop needs many short-lived `Mat` temporaries
//! per step. Allocating them fresh each call makes the `O(M^2)` replay
//! allocator-bound at small/medium `M`, so hot paths instead check
//! buffers out of a `Workspace` ([`Workspace::take`]) and return them
//! ([`Workspace::put`]) when done. After one warm-up pass the pool
//! holds a buffer of every size the path needs and subsequent passes
//! allocate nothing — the invariant `tests/workspace.rs` asserts via
//! [`WorkspaceStats::checkouts`] deltas.
//!
//! Like [`Mat`], the pool is generic over the element type with `f64`
//! as the default; byte accounting follows `size_of::<E>()`, so an
//! `f32` workspace reports half the bytes of an `f64` one for the same
//! shapes. A pool only ever holds buffers of its own element type.
//!
//! A `Workspace` is deliberately *not* thread-safe: each rank (and each
//! worker thread that wants reuse) owns its own. `checkouts` counts
//! pool *misses* (a fresh heap allocation was required), `reuses`
//! counts hits; both also feed the global `bt-obs` registry as
//! `bt_dense.ws.checkouts` / `bt_dense.ws.reuses`, with the peak
//! outstanding+pooled footprint on the `bt_dense.ws.bytes_high_water`
//! gauge.

use crate::element::Element;
use crate::mat::Mat;
use crate::view::MatRef;

static OBS_WS_CHECKOUTS: bt_obs::Counter = bt_obs::Counter::new("bt_dense.ws.checkouts");
static OBS_WS_REUSES: bt_obs::Counter = bt_obs::Counter::new("bt_dense.ws.reuses");
static OBS_WS_HIGH_WATER: bt_obs::Gauge = bt_obs::Gauge::new("bt_dense.ws.bytes_high_water");
static OBS_WS_TRIMMED: bt_obs::Counter = bt_obs::Counter::new("bt_dense.ws.trimmed_bytes");

/// Cumulative usage counters for one [`Workspace`].
///
/// `checkouts` / `reuses` are monotone over the workspace's lifetime
/// (they survive [`Workspace::reset`]); `bytes_high_water` is the peak
/// of outstanding + pooled bytes seen so far.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Pool misses: a `take` had no adequate pooled buffer and hit the
    /// heap allocator. Zero delta across a pass means the pass was
    /// allocation-free.
    pub checkouts: u64,
    /// Pool hits: a `take` was satisfied by recycling a pooled buffer.
    pub reuses: u64,
    /// Peak bytes simultaneously owned (checked out + pooled).
    pub bytes_high_water: u64,
    /// Pooled bytes released back to the allocator by
    /// [`Workspace::trim_to`] and [`Workspace::reset`] — the shrink-policy
    /// counterpart of `bytes_high_water`.
    pub trimmed_bytes: u64,
}

/// A pool of reusable column-major element buffers.
///
/// `take` hands out a correctly shaped, zeroed [`Mat`]; `put` returns
/// its backing buffer to the pool for the next `take` of any shape that
/// fits. Buffers are matched on *capacity*, not shape, so one pool
/// serves temporaries of mixed sizes.
#[derive(Debug, Default)]
pub struct Workspace<E: Element = f64> {
    free: Vec<Vec<E>>,
    bytes_out: u64,
    bytes_pooled: u64,
    stats: WorkspaceStats,
}

impl<E: Element> Workspace<E> {
    /// Bytes per pooled element.
    const ELEM_BYTES: u64 = std::mem::size_of::<E>() as u64;

    /// An empty pool. The first pass through a hot path populates it.
    pub fn new() -> Self {
        Self {
            free: Vec::new(),
            bytes_out: 0,
            bytes_pooled: 0,
            stats: WorkspaceStats::default(),
        }
    }

    /// Checks out a zeroed `rows x cols` matrix, recycling a pooled
    /// buffer when one is large enough.
    pub fn take(&mut self, rows: usize, cols: usize) -> Mat<E> {
        let need = rows * cols;
        let mut buf = self.pick(need);
        buf.clear();
        buf.resize(need, E::ZERO);
        self.note_out(buf.capacity() as u64 * Self::ELEM_BYTES);
        Mat::from_col_major(rows, cols, buf)
    }

    /// Checks out a copy of `src` (same recycling as [`Workspace::take`],
    /// but filled by copying columns instead of a zero pass).
    pub fn take_copy(&mut self, src: MatRef<'_, E>) -> Mat<E> {
        let (rows, cols) = src.shape();
        let mut buf = self.pick(rows * cols);
        buf.clear();
        for j in 0..cols {
            buf.extend_from_slice(src.col(j));
        }
        self.note_out(buf.capacity() as u64 * Self::ELEM_BYTES);
        Mat::from_col_major(rows, cols, buf)
    }

    /// Returns a matrix's backing buffer to the pool.
    ///
    /// Accepts any `Mat`, including ones this workspace never handed
    /// out — "foreign" buffers are simply adopted, which lets a caller
    /// seed the pool. Zero-capacity buffers are dropped.
    pub fn put(&mut self, m: Mat<E>) {
        let buf = m.into_vec();
        let cap_bytes = buf.capacity() as u64 * Self::ELEM_BYTES;
        self.bytes_out = self.bytes_out.saturating_sub(cap_bytes);
        if buf.capacity() > 0 {
            self.bytes_pooled += cap_bytes;
            self.free.push(buf);
        }
    }

    /// Drops every pooled buffer and zeroes the byte accounting.
    /// Cumulative `checkouts`/`reuses`/`bytes_high_water` stats are
    /// kept (released bytes are counted into `trimmed_bytes`) — the next
    /// `take` after a reset is a fresh checkout.
    pub fn reset(&mut self) {
        self.note_trimmed(self.bytes_pooled);
        self.free.clear();
        self.bytes_out = 0;
        self.bytes_pooled = 0;
    }

    /// Shrinks the pool to at most `max_pooled_bytes` of idle capacity,
    /// dropping the **largest** buffers first (one oversized solve is
    /// exactly one or two huge buffers; the steady-state small ones keep
    /// the hot path allocation-free). Returns the bytes released.
    ///
    /// Without a trim policy the capacity-matched pool retains every
    /// high-water buffer forever, so a single wide-batch solve pins its
    /// peak memory for the life of the session. Long-lived owners (the
    /// solve service, [`crate::Workspace`]-holding sessions) call this
    /// after unusually wide work; released bytes are surfaced as
    /// [`WorkspaceStats::trimmed_bytes`] and the
    /// `bt_dense.ws.trimmed_bytes` counter.
    pub fn trim_to(&mut self, max_pooled_bytes: u64) -> u64 {
        let mut released = 0u64;
        while self.bytes_pooled > max_pooled_bytes && !self.free.is_empty() {
            let largest = self
                .free
                .iter()
                .enumerate()
                .max_by_key(|(_, buf)| buf.capacity())
                .map(|(i, _)| i)
                .expect("pool non-empty");
            let buf = self.free.swap_remove(largest);
            let cap_bytes = buf.capacity() as u64 * Self::ELEM_BYTES;
            self.bytes_pooled -= cap_bytes;
            released += cap_bytes;
        }
        self.note_trimmed(released);
        released
    }

    /// Bytes of idle pooled capacity (excluding checked-out buffers).
    pub fn pooled_bytes(&self) -> u64 {
        self.bytes_pooled
    }

    /// Number of buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Cumulative usage counters.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Smallest pooled buffer with capacity >= `need`, else a fresh
    /// allocation. Linear scan: pools hold a handful of buffers.
    fn pick(&mut self, need: usize) -> Vec<E> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= need
                && best.is_none_or(|b| buf.capacity() < self.free[b].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let buf = self.free.swap_remove(i);
                self.bytes_pooled -= buf.capacity() as u64 * Self::ELEM_BYTES;
                self.stats.reuses += 1;
                OBS_WS_REUSES.incr();
                buf
            }
            None => {
                self.stats.checkouts += 1;
                OBS_WS_CHECKOUTS.incr();
                Vec::with_capacity(need)
            }
        }
    }

    fn note_trimmed(&mut self, released: u64) {
        if released > 0 {
            self.stats.trimmed_bytes += released;
            OBS_WS_TRIMMED.add(released);
        }
    }

    fn note_out(&mut self, cap_bytes: u64) {
        self.bytes_out += cap_bytes;
        let total = self.bytes_out + self.bytes_pooled;
        if total > self.stats.bytes_high_water {
            self.stats.bytes_high_water = total;
            OBS_WS_HIGH_WATER.set(total as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_take_reuses() {
        let mut ws: Workspace = Workspace::new();
        let a = ws.take(4, 3);
        assert_eq!(a.shape(), (4, 3));
        assert_eq!(ws.stats().checkouts, 1);
        ws.put(a);
        let b = ws.take(3, 4); // same element count, different shape
        assert_eq!(b.shape(), (3, 4));
        assert_eq!(
            ws.stats(),
            WorkspaceStats {
                checkouts: 1,
                reuses: 1,
                bytes_high_water: 12 * 8,
                trimmed_bytes: 0,
            }
        );
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_is_zeroed_after_reuse() {
        let mut ws: Workspace = Workspace::new();
        let mut a = ws.take(2, 2);
        a.fill(5.0);
        ws.put(a);
        let b = ws.take(2, 2);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_copy_matches_source() {
        let mut ws: Workspace = Workspace::new();
        let src = Mat::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        let c = ws.take_copy(src.as_ref());
        assert_eq!(c, src);
        // Strided source copies the window only.
        ws.put(c);
        let big = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let c2 = ws.take_copy(big.submatrix(1, 1, 2, 2));
        assert_eq!(c2, big.block(1, 1, 2, 2));
        assert_eq!(ws.stats().reuses, 1);
    }

    #[test]
    fn smallest_adequate_buffer_wins() {
        let mut ws: Workspace = Workspace::new();
        let big = ws.take(10, 10);
        let small = ws.take(2, 2);
        ws.put(big);
        ws.put(small);
        // A 2x2 request should recycle the 4-element buffer, not the
        // 100-element one.
        let got = ws.take(2, 2);
        assert_eq!(got.as_slice().len(), 4);
        assert_eq!(ws.pooled(), 1); // big one still pooled
        ws.put(got);
        assert_eq!(ws.stats().checkouts, 2);
        assert_eq!(ws.stats().reuses, 1);
    }

    #[test]
    fn reset_drops_pool_but_keeps_stats() {
        let mut ws: Workspace = Workspace::new();
        let a = ws.take(3, 3);
        ws.put(a);
        ws.reset();
        assert_eq!(ws.pooled(), 0);
        let _ = ws.take(3, 3);
        assert_eq!(ws.stats().checkouts, 2, "post-reset take must re-allocate");
    }

    #[test]
    fn adopts_foreign_buffers() {
        let mut ws: Workspace = Workspace::new();
        ws.put(Mat::zeros(5, 5));
        let a = ws.take(5, 5);
        assert_eq!(ws.stats().checkouts, 0);
        assert_eq!(ws.stats().reuses, 1);
        drop(a);
    }

    #[test]
    fn empty_mats_are_not_pooled() {
        let mut ws: Workspace = Workspace::new();
        ws.put(Mat::empty());
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn trim_drops_largest_buffers_first() {
        let mut ws: Workspace = Workspace::new();
        let huge = ws.take(100, 100); // 80_000 B
        let mid = ws.take(10, 10); // 800 B
        let small = ws.take(2, 2); // 32 B
        ws.put(huge);
        ws.put(mid);
        ws.put(small);
        let before = ws.pooled_bytes();
        assert!(before >= 80_832);
        // A 100 B budget must shed the huge buffer and then the mid one,
        // keeping the small steady-state buffer.
        let released = ws.trim_to(100);
        assert_eq!(released, before - ws.pooled_bytes());
        assert!(ws.pooled_bytes() <= 100, "pool {} B", ws.pooled_bytes());
        assert_eq!(ws.pooled(), 1);
        assert_eq!(ws.stats().trimmed_bytes, released);
        // The survivor is the small buffer: a small take still reuses.
        let again = ws.take(2, 2);
        assert_eq!(ws.stats().checkouts, 3);
        drop(again);
    }

    #[test]
    fn trim_under_budget_is_a_noop() {
        let mut ws: Workspace = Workspace::new();
        let a = ws.take(4, 4);
        ws.put(a);
        assert_eq!(ws.trim_to(u64::MAX), 0);
        assert_eq!(ws.stats().trimmed_bytes, 0);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn trim_bounds_high_water_regrowth() {
        // The bytes-high-water pin: after an oversized pass and a trim,
        // a small pass cannot re-reach the oversized footprint — the peak
        // stays a one-off, not a permanent floor.
        let mut ws: Workspace = Workspace::new();
        let oversized = ws.take(64, 4096); // one huge replay batch
        ws.put(oversized);
        let peak = ws.stats().bytes_high_water;
        assert!(peak >= 64 * 4096 * 8);
        ws.trim_to(0);
        assert_eq!(ws.pooled_bytes(), 0);
        for _ in 0..10 {
            let a = ws.take(64, 4);
            let b = ws.take(64, 4);
            ws.put(a);
            ws.put(b);
        }
        // Outstanding + pooled bytes after the trim stay bounded by the
        // small working set; the recorded peak is unchanged.
        assert!(ws.pooled_bytes() <= 2 * 64 * 4 * 8);
        assert_eq!(ws.stats().bytes_high_water, peak);
    }

    #[test]
    fn reset_counts_trimmed_bytes() {
        let mut ws: Workspace = Workspace::new();
        let a = ws.take(8, 8);
        ws.put(a);
        let pooled = ws.pooled_bytes();
        assert!(pooled > 0);
        ws.reset();
        assert_eq!(ws.stats().trimmed_bytes, pooled);
    }

    #[test]
    fn warm_loop_is_allocation_free() {
        let mut ws: Workspace = Workspace::new();
        // Warm-up pass.
        let (a, b) = (ws.take(4, 4), ws.take(4, 1));
        ws.put(a);
        ws.put(b);
        let cold = ws.stats().checkouts;
        for _ in 0..100 {
            let (a, b) = (ws.take(4, 4), ws.take(4, 1));
            ws.put(a);
            ws.put(b);
        }
        assert_eq!(ws.stats().checkouts, cold);
        assert_eq!(ws.stats().reuses, 200);
    }

    #[test]
    fn f32_pool_charges_half_the_bytes() {
        let mut w64: Workspace<f64> = Workspace::new();
        let mut w32: Workspace<f32> = Workspace::new();
        let a = w64.take(6, 2);
        let b = w32.take(6, 2);
        w64.put(a);
        w32.put(b);
        assert_eq!(w64.pooled_bytes(), 12 * 8);
        assert_eq!(w32.pooled_bytes(), 12 * 4);
        assert_eq!(
            w32.stats().bytes_high_water * 2,
            w64.stats().bytes_high_water
        );
    }
}
