//! Runtime-dispatched SIMD primitives for the dense kernels.
//!
//! Every flop in the suite funnels through a handful of inner loops: the
//! packed GEMM microkernel, the AXPY update (`y += w * x`) shared by
//! `gemm_axpy`/`gemv`/the LU and Cholesky sweeps, the dot product of the
//! transpose/backward sweeps, and the whole-block small-M GEMM
//! specializations. This module provides one explicitly vectorized
//! implementation of each — at **both element widths**, `f64` and `f32`
//! — selected **at runtime** from the CPU:
//!
//! * **x86_64** — AVX2 + FMA (`_mm256_fmadd_pd`, 4 lanes of `f64`;
//!   `_mm256_fmadd_ps`, 8 lanes of `f32`), detected with
//!   `is_x86_feature_detected!`;
//! * **aarch64** — NEON (`vfmaq_f64`, 2 lanes; `vfmaq_f32`, 4 lanes),
//!   always present on aarch64 but still routed through the same
//!   dispatch point;
//! * **fallback** — portable scalar loops with hoisted bounds checks,
//!   identical in summation order to the pre-SIMD kernels.
//!
//! The f32 kernels are the flop half of the mixed-precision solve path:
//! twice the lanes per vector means the 16 x 4 f32 microkernel tile
//! retires twice the flops per FMA of the 8 x 4 f64 tile, using the same
//! register budget (two vectors of A per column). Both widths share one
//! dispatch decision — there is exactly one [`active`] ISA per process,
//! and `BT_DENSE_SIMD=0` forces the scalar path for every element type.
//!
//! The decision is made once, cached in an atomic, and exposed as
//! [`active`]. The `BT_DENSE_SIMD` environment variable overrides it:
//! `0` forces the scalar path (CI runs the whole workspace this way),
//! any other value — or unset — keeps hardware detection. Tests can pin
//! a path in-process with [`force`].
//!
//! # Safety invariants
//!
//! All `unsafe` here is confined to `#[target_feature]` kernels and is
//! justified by exactly two obligations, both discharged by safe code:
//!
//! 1. **CPU features** — a feature-gated kernel is only reachable through
//!    a dispatch `match` on [`active`], which returns [`Isa::Avx2Fma`] /
//!    [`Isa::Neon`] only after the corresponding runtime detection (or a
//!    test override, which is documented as unsound-if-lied-to on
//!    [`force`]).
//! 2. **In-bounds pointers** — every kernel receives plain slices and the
//!    safe wrappers assert the length contracts up front (`pa.len() >=
//!    kb * MR`, equal `x`/`y` lengths, `4 | 8 | 16`-row columns). The
//!    packed-panel contract is guaranteed by `pack_a`/`pack_b`, which
//!    zero-pad every micro-panel to full `MR`/`NR` size; the small-M
//!    kernels rely on [`crate::view`] columns being contiguous
//!    `rows`-long slices whatever the column stride.
//!
//! FMA contracts `a * b + c` into one rounding, so SIMD results differ
//! from the scalar path by well-understood ULP-level amounts; the
//! proptests in `tests/simd_kernels.rs` pin the two paths together under
//! a `k`-scaled tolerance. Within one process the selected path is
//! fixed, so results remain bitwise deterministic across repeat runs and
//! thread budgets.

use crate::element::Element;
use crate::view::{MatMut, MatRef};
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

/// f64 microkernel tile height/width — `<f64 as Element>::MR` / `NR`.
pub(crate) const MR: usize = 8;
pub(crate) const NR: usize = 4;
/// f32 microkernel tile height/width — `<f32 as Element>::MR` / `NR`.
/// Same two-vectors-of-A register plan as f64, at 8 lanes per vector.
pub(crate) const MR32: usize = 16;
pub(crate) const NR32: usize = 4;

/// Instruction set the dense kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Isa {
    /// Portable scalar loops (also the `BT_DENSE_SIMD=0` path).
    Scalar = 0,
    /// AVX2 + FMA on x86_64 (4 x f64 / 8 x f32 per vector).
    Avx2Fma = 1,
    /// NEON on aarch64 (2 x f64 / 4 x f32 per vector).
    Neon = 2,
}

impl Isa {
    /// Human-readable name (used by benches and the metrics gauge docs).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2Fma => "avx2+fma",
            Isa::Neon => "neon",
        }
    }

    /// Stable numeric encoding for the `bt_dense.gemm.dispatch_isa`
    /// gauge: 0 = scalar, 1 = avx2+fma, 2 = neon.
    #[inline]
    pub fn index(self) -> u8 {
        self as u8
    }
}

/// Cached dispatch decision: `UNRESOLVED` until first use.
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);
const UNRESOLVED: u8 = u8::MAX;

fn decode(v: u8) -> Isa {
    match v {
        1 => Isa::Avx2Fma,
        2 => Isa::Neon,
        _ => Isa::Scalar,
    }
}

/// Hardware + environment detection (no caching; see [`active`]).
fn detect() -> Isa {
    // BT_DENSE_SIMD=0 forces the scalar path; anything else (including
    // unset or `1`) keeps hardware detection.
    if std::env::var("BT_DENSE_SIMD").is_ok_and(|v| v.trim() == "0") {
        return Isa::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Isa::Avx2Fma;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Isa::Neon;
        }
    }
    Isa::Scalar
}

/// The instruction set every dispatched kernel currently uses.
///
/// First call runs detection (environment override, then CPU features)
/// and caches the result; later calls are one relaxed atomic load.
#[inline]
pub fn active() -> Isa {
    let v = ACTIVE.load(Relaxed);
    if v == UNRESOLVED {
        let isa = detect();
        ACTIVE.store(isa.index(), Relaxed);
        isa
    } else {
        decode(v)
    }
}

/// Overrides the dispatch decision in-process (primarily for tests and
/// benches). `Some(isa)` pins every subsequent kernel to that path;
/// `None` re-runs detection (environment, then CPU features). Returns
/// the previously active ISA.
///
/// Forcing [`Isa::Avx2Fma`] or [`Isa::Neon`] on hardware without those
/// features makes later kernel calls execute unsupported instructions —
/// only force upward what [`active`] already reports, or [`Isa::Scalar`]
/// (always safe).
pub fn force(isa: Option<Isa>) -> Isa {
    let prev = active();
    match isa {
        Some(isa) => ACTIVE.store(isa.index(), Relaxed),
        None => ACTIVE.store(detect().index(), Relaxed),
    }
    prev
}

// ---------------------------------------------------------------------
// AXPY: y[i] += w * x[i]
// ---------------------------------------------------------------------

/// `y += w * x`, elementwise over equal-length slices.
///
/// Never skips `w == 0.0` (`0 * NaN` must reach `y`), matching the
/// non-finite propagation contract of the GEMM kernels. On SIMD paths
/// each element is one fused multiply-add; lanes never reassociate
/// across elements, so the result per element is independent of the
/// vector width.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(w: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active()` only reports Avx2Fma after runtime AVX2+FMA
        // detection; slice lengths were just checked equal.
        Isa::Avx2Fma => unsafe { x86::axpy(w, x, y) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `active()` only reports Neon after runtime detection.
        Isa::Neon => unsafe { neon::axpy(w, x, y) },
        _ => {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi += w * *xi;
            }
        }
    }
}

/// `y += w * x` over `f32` slices — the 8-lane AVX2 / 4-lane NEON
/// counterpart of [`axpy`], same dispatch point and same non-finite
/// propagation contract.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub(crate) fn axpy_f32(w: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2Fma implies runtime-detected AVX2+FMA; lengths equal.
        Isa::Avx2Fma => unsafe { x86::axpy_f32(w, x, y) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon implies runtime-detected NEON; lengths equal.
        Isa::Neon => unsafe { neon::axpy_f32(w, x, y) },
        _ => {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi += w * *xi;
            }
        }
    }
}

// ---------------------------------------------------------------------
// DOT: sum_i x[i] * y[i]
// ---------------------------------------------------------------------

/// Dot product of equal-length slices.
///
/// SIMD paths keep independent per-lane accumulators and combine them
/// once at the end, so the summation order differs from the scalar
/// sweep (and from the pre-SIMD kernels) by ULP-level reassociation;
/// for a fixed dispatch path the order is fixed, keeping results
/// deterministic run to run.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2Fma implies runtime-detected AVX2+FMA; lengths equal.
        Isa::Avx2Fma => unsafe { x86::dot(x, y) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon implies runtime-detected NEON; lengths equal.
        Isa::Neon => unsafe { neon::dot(x, y) },
        _ => x.iter().zip(y).map(|(a, b)| a * b).sum(),
    }
}

/// Dot product over `f32` slices (see [`dot`] for the reassociation
/// contract).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub(crate) fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2Fma implies runtime-detected AVX2+FMA; lengths equal.
        Isa::Avx2Fma => unsafe { x86::dot_f32(x, y) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon implies runtime-detected NEON; lengths equal.
        Isa::Neon => unsafe { neon::dot_f32(x, y) },
        _ => x.iter().zip(y).map(|(a, b)| a * b).sum(),
    }
}

// ---------------------------------------------------------------------
// Packed MR x NR microkernel
// ---------------------------------------------------------------------

/// Register-tiled `MR x NR` rank-`kb` update on packed micro-panels:
/// `acc[jj * MR + ii] += sum_p pa[p * MR + ii] * pb[p * NR + jj]`.
///
/// `pa`/`pb` are the zero-padded panels produced by `pack_a`/`pack_b`,
/// so every `MR`-tall / `NR`-wide stripe is fully populated — the
/// kernels run with zero bounds checks in the `kb` loop.
///
/// # Panics
///
/// Panics if a panel is shorter than `kb` full micro-rows or `acc` is
/// smaller than the `MR * NR` tile.
#[inline]
pub(crate) fn microkernel(kb: usize, pa: &[f64], pb: &[f64], acc: &mut [f64]) {
    assert!(pa.len() >= kb * MR, "packed A panel too short");
    assert!(pb.len() >= kb * NR, "packed B panel too short");
    assert!(acc.len() >= MR * NR, "accumulator tile too short");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2Fma implies runtime-detected AVX2+FMA; the panel
        // length contracts were just asserted.
        Isa::Avx2Fma => unsafe { x86::microkernel(kb, pa, pb, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon implies runtime-detected NEON; lengths asserted.
        Isa::Neon => unsafe { neon::microkernel(kb, pa, pb, acc) },
        _ => microkernel_scalar::<f64, MR, NR>(kb, pa, pb, acc),
    }
}

/// The `MR32 x NR32` packed `f32` microkernel (see [`microkernel`]).
///
/// # Panics
///
/// Panics if a panel is shorter than `kb` full micro-rows or `acc` is
/// smaller than the `MR32 * NR32` tile.
#[inline]
pub(crate) fn microkernel_f32(kb: usize, pa: &[f32], pb: &[f32], acc: &mut [f32]) {
    assert!(pa.len() >= kb * MR32, "packed A panel too short");
    assert!(pb.len() >= kb * NR32, "packed B panel too short");
    assert!(acc.len() >= MR32 * NR32, "accumulator tile too short");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2Fma implies runtime-detected AVX2+FMA; lengths
        // asserted above.
        Isa::Avx2Fma => unsafe { x86::microkernel_f32(kb, pa, pb, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon implies runtime-detected NEON; lengths asserted.
        Isa::Neon => unsafe { neon::microkernel_f32(kb, pa, pb, acc) },
        _ => microkernel_scalar::<f32, MR32, NR32>(kb, pa, pb, acc),
    }
}

/// Portable microkernel, generic over the element type and tile shape:
/// same summation order as the SIMD tiles, array conversions hoisted out
/// of the inner loops (`chunks_exact` hands the compiler fixed-length
/// panels, so the `jj`/`ii` loops are bounds-check-free and
/// autovectorize).
fn microkernel_scalar<E: Element, const MRC: usize, const NRC: usize>(
    kb: usize,
    pa: &[E],
    pb: &[E],
    acc: &mut [E],
) {
    let pa = &pa[..kb * MRC];
    let pb = &pb[..kb * NRC];
    for (ap, bp) in pa.chunks_exact(MRC).zip(pb.chunks_exact(NRC)) {
        let ap: &[E; MRC] = ap.try_into().expect("MR panel stripe");
        let bp: &[E; NRC] = bp.try_into().expect("NR panel stripe");
        for jj in 0..NRC {
            let bv = bp[jj];
            for ii in 0..MRC {
                acc[jj * MRC + ii] += ap[ii] * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Small-M whole-block GEMM specializations
// ---------------------------------------------------------------------

/// Block orders served by the whole-block kernels. These are the block
/// sizes that dominate ARD workloads (DESIGN.md §6.8); the dispatcher in
/// `gemm` routes exact `M x M x M` products here, skipping packing
/// entirely.
pub(crate) const SMALL_DIMS: [usize; 3] = [4, 8, 16];

/// Whole-block `C += alpha * A * B` for square `M x M` operands with
/// `M` in [`SMALL_DIMS`]. Returns `false` (computing nothing) when the
/// shape is not an exact small block. Operands may be strided views —
/// only columns are addressed, and view columns are always contiguous.
pub(crate) fn gemm_small(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, c: &mut MatMut<'_>) -> bool {
    let m = a.rows();
    if !SMALL_DIMS.contains(&m) || a.cols() != m || b.shape() != (m, m) || c.shape() != (m, m) {
        return false;
    }
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2Fma implies runtime-detected AVX2+FMA; the shape
        // check above guarantees M-long columns with M = 4 * NV.
        Isa::Avx2Fma => unsafe {
            match m {
                4 => x86::small::<4, 1>(alpha, a, b, c),
                8 => x86::small::<8, 2>(alpha, a, b, c),
                _ => x86::small::<16, 4>(alpha, a, b, c),
            }
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon implies runtime-detected NEON; M = 2 * NV.
        Isa::Neon => unsafe {
            match m {
                4 => neon::small::<4, 2>(alpha, a, b, c),
                8 => neon::small::<8, 4>(alpha, a, b, c),
                _ => neon::small::<16, 8>(alpha, a, b, c),
            }
        },
        _ => match m {
            4 => small_scalar::<f64, 4>(alpha, a, b, c),
            8 => small_scalar::<f64, 8>(alpha, a, b, c),
            _ => small_scalar::<f64, 16>(alpha, a, b, c),
        },
    }
    true
}

/// The `f32` whole-block kernel dispatcher (see [`gemm_small`]). The
/// `M = 4` block fits a single SSE vector on x86, so it gets a dedicated
/// 128-bit kernel; 8 and 16 use full-width AVX2 vectors.
pub(crate) fn gemm_small_f32(
    alpha: f32,
    a: MatRef<'_, f32>,
    b: MatRef<'_, f32>,
    c: &mut MatMut<'_, f32>,
) -> bool {
    let m = a.rows();
    if !SMALL_DIMS.contains(&m) || a.cols() != m || b.shape() != (m, m) || c.shape() != (m, m) {
        return false;
    }
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2Fma implies runtime-detected AVX2+FMA (which
        // subsumes the SSE + FMA used by the M = 4 kernel); the shape
        // check guarantees M-long columns with M = 8 * NV (or exactly 4).
        Isa::Avx2Fma => unsafe {
            match m {
                4 => x86::small4_f32(alpha, a, b, c),
                8 => x86::small_f32::<8, 1>(alpha, a, b, c),
                _ => x86::small_f32::<16, 2>(alpha, a, b, c),
            }
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon implies runtime-detected NEON; M = 4 * NV.
        Isa::Neon => unsafe {
            match m {
                4 => neon::small_f32::<4, 1>(alpha, a, b, c),
                8 => neon::small_f32::<8, 2>(alpha, a, b, c),
                _ => neon::small_f32::<16, 4>(alpha, a, b, c),
            }
        },
        _ => match m {
            4 => small_scalar::<f32, 4>(alpha, a, b, c),
            8 => small_scalar::<f32, 8>(alpha, a, b, c),
            _ => small_scalar::<f32, 16>(alpha, a, b, c),
        },
    }
    true
}

/// Portable whole-block kernel: fixed-size array views make every loop
/// bound a compile-time constant, so the body fully unrolls and
/// autovectorizes without bounds checks.
fn small_scalar<E: Element, const M: usize>(
    alpha: E,
    a: MatRef<'_, E>,
    b: MatRef<'_, E>,
    c: &mut MatMut<'_, E>,
) {
    for j in 0..M {
        let bcol: &[E; M] = b.col(j).try_into().expect("B column");
        let mut acc = [E::ZERO; M];
        for (k, &bkj) in bcol.iter().enumerate() {
            let acol: &[E; M] = a.col(k).try_into().expect("A column");
            for i in 0..M {
                acc[i] += acol[i] * bkj;
            }
        }
        let ccol: &mut [E; M] = c.col_mut(j).try_into().expect("C column");
        for i in 0..M {
            ccol[i] += alpha * acc[i];
        }
    }
}

// ---------------------------------------------------------------------
// x86_64: AVX2 + FMA
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MatMut, MatRef, MR, MR32, NR, NR32};
    use core::arch::x86_64::{
        __m256, __m256d, _mm256_add_pd, _mm256_add_ps, _mm256_fmadd_pd, _mm256_fmadd_ps,
        _mm256_loadu_pd, _mm256_loadu_ps, _mm256_set1_pd, _mm256_set1_ps, _mm256_setzero_pd,
        _mm256_setzero_ps, _mm256_storeu_pd, _mm256_storeu_ps, _mm_fmadd_ps, _mm_loadu_ps,
        _mm_set1_ps, _mm_setzero_ps, _mm_storeu_ps,
    };

    /// f64 lanes per vector.
    const V: usize = 4;
    /// f32 lanes per vector.
    const VS: usize = 8;

    /// `MR x NR` packed microkernel: the 8 x 4 accumulator tile lives in
    /// eight YMM registers (two per output column), fed by two A loads
    /// and four B broadcasts per `kb` step — 32 flops per iteration with
    /// no memory traffic beyond the contiguous packed panels.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA, `pa.len() >= kb * MR`, `pb.len() >= kb * NR`
    /// and `acc.len() >= MR * NR`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn microkernel(kb: usize, pa: &[f64], pb: &[f64], acc: &mut [f64]) {
        debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR && acc.len() >= MR * NR);
        let mut c00 = _mm256_setzero_pd();
        let mut c10 = _mm256_setzero_pd();
        let mut c01 = _mm256_setzero_pd();
        let mut c11 = _mm256_setzero_pd();
        let mut c02 = _mm256_setzero_pd();
        let mut c12 = _mm256_setzero_pd();
        let mut c03 = _mm256_setzero_pd();
        let mut c13 = _mm256_setzero_pd();
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kb {
            let a0 = _mm256_loadu_pd(ap);
            let a1 = _mm256_loadu_pd(ap.add(V));
            let b0 = _mm256_set1_pd(*bp);
            c00 = _mm256_fmadd_pd(a0, b0, c00);
            c10 = _mm256_fmadd_pd(a1, b0, c10);
            let b1 = _mm256_set1_pd(*bp.add(1));
            c01 = _mm256_fmadd_pd(a0, b1, c01);
            c11 = _mm256_fmadd_pd(a1, b1, c11);
            let b2 = _mm256_set1_pd(*bp.add(2));
            c02 = _mm256_fmadd_pd(a0, b2, c02);
            c12 = _mm256_fmadd_pd(a1, b2, c12);
            let b3 = _mm256_set1_pd(*bp.add(3));
            c03 = _mm256_fmadd_pd(a0, b3, c03);
            c13 = _mm256_fmadd_pd(a1, b3, c13);
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        let out = acc.as_mut_ptr();
        _mm256_storeu_pd(out, c00);
        _mm256_storeu_pd(out.add(V), c10);
        _mm256_storeu_pd(out.add(MR), c01);
        _mm256_storeu_pd(out.add(MR + V), c11);
        _mm256_storeu_pd(out.add(2 * MR), c02);
        _mm256_storeu_pd(out.add(2 * MR + V), c12);
        _mm256_storeu_pd(out.add(3 * MR), c03);
        _mm256_storeu_pd(out.add(3 * MR + V), c13);
    }

    /// `MR32 x NR32` packed `f32` microkernel: the same two-A-loads /
    /// four-B-broadcasts register plan as the f64 tile, but each of the
    /// eight YMM accumulators now holds 8 single-precision lanes — 64
    /// flops per `kb` step, double the f64 rate.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA, `pa.len() >= kb * MR32`, `pb.len() >= kb *
    /// NR32` and `acc.len() >= MR32 * NR32`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn microkernel_f32(kb: usize, pa: &[f32], pb: &[f32], acc: &mut [f32]) {
        debug_assert!(pa.len() >= kb * MR32 && pb.len() >= kb * NR32 && acc.len() >= MR32 * NR32);
        let mut c00 = _mm256_setzero_ps();
        let mut c10 = _mm256_setzero_ps();
        let mut c01 = _mm256_setzero_ps();
        let mut c11 = _mm256_setzero_ps();
        let mut c02 = _mm256_setzero_ps();
        let mut c12 = _mm256_setzero_ps();
        let mut c03 = _mm256_setzero_ps();
        let mut c13 = _mm256_setzero_ps();
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kb {
            let a0 = _mm256_loadu_ps(ap);
            let a1 = _mm256_loadu_ps(ap.add(VS));
            let b0 = _mm256_set1_ps(*bp);
            c00 = _mm256_fmadd_ps(a0, b0, c00);
            c10 = _mm256_fmadd_ps(a1, b0, c10);
            let b1 = _mm256_set1_ps(*bp.add(1));
            c01 = _mm256_fmadd_ps(a0, b1, c01);
            c11 = _mm256_fmadd_ps(a1, b1, c11);
            let b2 = _mm256_set1_ps(*bp.add(2));
            c02 = _mm256_fmadd_ps(a0, b2, c02);
            c12 = _mm256_fmadd_ps(a1, b2, c12);
            let b3 = _mm256_set1_ps(*bp.add(3));
            c03 = _mm256_fmadd_ps(a0, b3, c03);
            c13 = _mm256_fmadd_ps(a1, b3, c13);
            ap = ap.add(MR32);
            bp = bp.add(NR32);
        }
        let out = acc.as_mut_ptr();
        _mm256_storeu_ps(out, c00);
        _mm256_storeu_ps(out.add(VS), c10);
        _mm256_storeu_ps(out.add(MR32), c01);
        _mm256_storeu_ps(out.add(MR32 + VS), c11);
        _mm256_storeu_ps(out.add(2 * MR32), c02);
        _mm256_storeu_ps(out.add(2 * MR32 + VS), c12);
        _mm256_storeu_ps(out.add(3 * MR32), c03);
        _mm256_storeu_ps(out.add(3 * MR32 + VS), c13);
    }

    /// `y += w * x` with one fused multiply-add per element.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA and `x.len() == y.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn axpy(w: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        let n = y.len();
        let wv = _mm256_set1_pd(w);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 2 * V <= n {
            let y0 = _mm256_fmadd_pd(wv, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
            let y1 = _mm256_fmadd_pd(
                wv,
                _mm256_loadu_pd(xp.add(i + V)),
                _mm256_loadu_pd(yp.add(i + V)),
            );
            _mm256_storeu_pd(yp.add(i), y0);
            _mm256_storeu_pd(yp.add(i + V), y1);
            i += 2 * V;
        }
        if i + V <= n {
            let y0 = _mm256_fmadd_pd(wv, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
            _mm256_storeu_pd(yp.add(i), y0);
            i += V;
        }
        while i < n {
            // Scalar fused tail: same one-rounding semantics as the lanes.
            *yp.add(i) = w.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }

    /// `y += w * x` over `f32`, 8 lanes per fused multiply-add.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA and `x.len() == y.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn axpy_f32(w: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        let n = y.len();
        let wv = _mm256_set1_ps(w);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 2 * VS <= n {
            let y0 = _mm256_fmadd_ps(wv, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
            let y1 = _mm256_fmadd_ps(
                wv,
                _mm256_loadu_ps(xp.add(i + VS)),
                _mm256_loadu_ps(yp.add(i + VS)),
            );
            _mm256_storeu_ps(yp.add(i), y0);
            _mm256_storeu_ps(yp.add(i + VS), y1);
            i += 2 * VS;
        }
        if i + VS <= n {
            let y0 = _mm256_fmadd_ps(wv, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
            _mm256_storeu_ps(yp.add(i), y0);
            i += VS;
        }
        while i < n {
            // Scalar fused tail: same one-rounding semantics as the lanes.
            *yp.add(i) = w.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }

    /// Dot product with two independent lane accumulators.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA and `x.len() == y.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 2 * V <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(xp.add(i + V)),
                _mm256_loadu_pd(yp.add(i + V)),
                acc1,
            );
            i += 2 * V;
        }
        if i + V <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
            i += V;
        }
        let acc = _mm256_add_pd(acc0, acc1);
        let mut lanes = [0.0f64; V];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        while i < n {
            s = (*xp.add(i)).mul_add(*yp.add(i), s);
            i += 1;
        }
        s
    }

    /// `f32` dot product with two independent lane accumulators.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA and `x.len() == y.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 2 * VS <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(xp.add(i + VS)),
                _mm256_loadu_ps(yp.add(i + VS)),
                acc1,
            );
            i += 2 * VS;
        }
        if i + VS <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)), acc0);
            i += VS;
        }
        let mut lanes = [0.0f32; VS];
        _mm256_storeu_ps(lanes.as_mut_ptr(), _mm256_add_ps(acc0, acc1));
        let mut s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        while i < n {
            s = (*xp.add(i)).mul_add(*yp.add(i), s);
            i += 1;
        }
        s
    }

    /// Whole-block `C += alpha * A * B` for `M x M` operands, `M = 4 * NV`.
    /// One output column is accumulated in `NV` YMM registers while the
    /// `M` rank-1 terms stream through broadcasts of B — no packing, no
    /// scratch.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA; `a`, `b`, `c` must be `M x M` views (their
    /// columns are contiguous `M`-long slices by the view invariant).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn small<const M: usize, const NV: usize>(
        alpha: f64,
        a: MatRef<'_>,
        b: MatRef<'_>,
        c: &mut MatMut<'_>,
    ) {
        debug_assert!(M == 4 * NV && a.shape() == (M, M));
        let alphav = _mm256_set1_pd(alpha);
        for j in 0..M {
            let bcol = b.col(j);
            let mut acc = [_mm256_setzero_pd(); NV];
            for (k, bkj) in bcol.iter().enumerate() {
                let ap = a.col(k).as_ptr();
                let bv = _mm256_set1_pd(*bkj);
                for (v, accv) in acc.iter_mut().enumerate() {
                    *accv = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(V * v)), bv, *accv);
                }
            }
            let cp = c.col_mut(j).as_mut_ptr();
            for (v, &accv) in acc.iter().enumerate() {
                let cv: __m256d = _mm256_loadu_pd(cp.add(V * v));
                _mm256_storeu_pd(cp.add(V * v), _mm256_fmadd_pd(alphav, accv, cv));
            }
        }
    }

    /// `f32` whole-block kernel for `M x M` operands, `M = 8 * NV`
    /// (M = 8 and 16; M = 4 has its own 128-bit kernel below).
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA; `a`, `b`, `c` must be `M x M` views.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn small_f32<const M: usize, const NV: usize>(
        alpha: f32,
        a: MatRef<'_, f32>,
        b: MatRef<'_, f32>,
        c: &mut MatMut<'_, f32>,
    ) {
        debug_assert!(M == 8 * NV && a.shape() == (M, M));
        let alphav = _mm256_set1_ps(alpha);
        for j in 0..M {
            let bcol = b.col(j);
            let mut acc = [_mm256_setzero_ps(); NV];
            for (k, bkj) in bcol.iter().enumerate() {
                let ap = a.col(k).as_ptr();
                let bv = _mm256_set1_ps(*bkj);
                for (v, accv) in acc.iter_mut().enumerate() {
                    *accv = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(VS * v)), bv, *accv);
                }
            }
            let cp = c.col_mut(j).as_mut_ptr();
            for (v, &accv) in acc.iter().enumerate() {
                let cv: __m256 = _mm256_loadu_ps(cp.add(VS * v));
                _mm256_storeu_ps(cp.add(VS * v), _mm256_fmadd_ps(alphav, accv, cv));
            }
        }
    }

    /// `f32` whole-block kernel for the 4 x 4 case: one 128-bit vector
    /// holds a full column, so the accumulator is a single XMM register.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA (FMA covers the 128-bit `_mm_fmadd_ps`);
    /// `a`, `b`, `c` must be `4 x 4` views.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn small4_f32(
        alpha: f32,
        a: MatRef<'_, f32>,
        b: MatRef<'_, f32>,
        c: &mut MatMut<'_, f32>,
    ) {
        debug_assert!(a.shape() == (4, 4));
        let alphav = _mm_set1_ps(alpha);
        for j in 0..4 {
            let bcol = b.col(j);
            let mut acc = _mm_setzero_ps();
            for (k, bkj) in bcol.iter().enumerate() {
                let ap = a.col(k).as_ptr();
                acc = _mm_fmadd_ps(_mm_loadu_ps(ap), _mm_set1_ps(*bkj), acc);
            }
            let cp = c.col_mut(j).as_mut_ptr();
            let cv = _mm_loadu_ps(cp);
            _mm_storeu_ps(cp, _mm_fmadd_ps(alphav, acc, cv));
        }
    }
}

// ---------------------------------------------------------------------
// aarch64: NEON
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{MatMut, MatRef, MR, MR32, NR, NR32};
    use core::arch::aarch64::{
        vaddq_f32, vaddq_f64, vdupq_n_f32, vdupq_n_f64, vfmaq_f32, vfmaq_f64, vld1q_f32, vld1q_f64,
        vst1q_f32, vst1q_f64,
    };

    /// f64 lanes per vector.
    const V: usize = 2;
    /// f32 lanes per vector.
    const VS: usize = 4;

    /// `MR x NR` packed microkernel: 16 two-lane accumulators (four per
    /// output column).
    ///
    /// # Safety
    ///
    /// Requires NEON, `pa.len() >= kb * MR`, `pb.len() >= kb * NR` and
    /// `acc.len() >= MR * NR`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn microkernel(kb: usize, pa: &[f64], pb: &[f64], acc: &mut [f64]) {
        debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR && acc.len() >= MR * NR);
        let mut tile = [[vdupq_n_f64(0.0); MR / V]; NR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kb {
            let a = [
                vld1q_f64(ap),
                vld1q_f64(ap.add(V)),
                vld1q_f64(ap.add(2 * V)),
                vld1q_f64(ap.add(3 * V)),
            ];
            for (jj, col) in tile.iter_mut().enumerate() {
                let bv = vdupq_n_f64(*bp.add(jj));
                for (v, accv) in col.iter_mut().enumerate() {
                    *accv = vfmaq_f64(*accv, a[v], bv);
                }
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        let out = acc.as_mut_ptr();
        for (jj, col) in tile.iter().enumerate() {
            for (v, &accv) in col.iter().enumerate() {
                vst1q_f64(out.add(jj * MR + v * V), accv);
            }
        }
    }

    /// `MR32 x NR32` packed `f32` microkernel: 16 four-lane accumulators
    /// (four per output column), the register plan of the f64 tile at
    /// twice the lanes. aarch64's 32 vector registers hold the tile, the
    /// four A vectors and the B broadcast without spilling.
    ///
    /// # Safety
    ///
    /// Requires NEON, `pa.len() >= kb * MR32`, `pb.len() >= kb * NR32`
    /// and `acc.len() >= MR32 * NR32`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn microkernel_f32(kb: usize, pa: &[f32], pb: &[f32], acc: &mut [f32]) {
        debug_assert!(pa.len() >= kb * MR32 && pb.len() >= kb * NR32 && acc.len() >= MR32 * NR32);
        let mut tile = [[vdupq_n_f32(0.0); MR32 / VS]; NR32];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kb {
            let a = [
                vld1q_f32(ap),
                vld1q_f32(ap.add(VS)),
                vld1q_f32(ap.add(2 * VS)),
                vld1q_f32(ap.add(3 * VS)),
            ];
            for (jj, col) in tile.iter_mut().enumerate() {
                let bv = vdupq_n_f32(*bp.add(jj));
                for (v, accv) in col.iter_mut().enumerate() {
                    *accv = vfmaq_f32(*accv, a[v], bv);
                }
            }
            ap = ap.add(MR32);
            bp = bp.add(NR32);
        }
        let out = acc.as_mut_ptr();
        for (jj, col) in tile.iter().enumerate() {
            for (v, &accv) in col.iter().enumerate() {
                vst1q_f32(out.add(jj * MR32 + v * VS), accv);
            }
        }
    }

    /// `y += w * x` with one fused multiply-add per element.
    ///
    /// # Safety
    ///
    /// Requires NEON and `x.len() == y.len()`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy(w: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        let n = y.len();
        let wv = vdupq_n_f64(w);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 2 * V <= n {
            let y0 = vfmaq_f64(vld1q_f64(yp.add(i)), vld1q_f64(xp.add(i)), wv);
            let y1 = vfmaq_f64(vld1q_f64(yp.add(i + V)), vld1q_f64(xp.add(i + V)), wv);
            vst1q_f64(yp.add(i), y0);
            vst1q_f64(yp.add(i + V), y1);
            i += 2 * V;
        }
        if i + V <= n {
            let y0 = vfmaq_f64(vld1q_f64(yp.add(i)), vld1q_f64(xp.add(i)), wv);
            vst1q_f64(yp.add(i), y0);
            i += V;
        }
        while i < n {
            *yp.add(i) = w.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }

    /// `y += w * x` over `f32`, 4 lanes per fused multiply-add.
    ///
    /// # Safety
    ///
    /// Requires NEON and `x.len() == y.len()`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_f32(w: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        let n = y.len();
        let wv = vdupq_n_f32(w);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 2 * VS <= n {
            let y0 = vfmaq_f32(vld1q_f32(yp.add(i)), vld1q_f32(xp.add(i)), wv);
            let y1 = vfmaq_f32(vld1q_f32(yp.add(i + VS)), vld1q_f32(xp.add(i + VS)), wv);
            vst1q_f32(yp.add(i), y0);
            vst1q_f32(yp.add(i + VS), y1);
            i += 2 * VS;
        }
        if i + VS <= n {
            let y0 = vfmaq_f32(vld1q_f32(yp.add(i)), vld1q_f32(xp.add(i)), wv);
            vst1q_f32(yp.add(i), y0);
            i += VS;
        }
        while i < n {
            *yp.add(i) = w.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }

    /// Dot product with two independent lane accumulators.
    ///
    /// # Safety
    ///
    /// Requires NEON and `x.len() == y.len()`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc0 = vdupq_n_f64(0.0);
        let mut acc1 = vdupq_n_f64(0.0);
        let mut i = 0;
        while i + 2 * V <= n {
            acc0 = vfmaq_f64(acc0, vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i)));
            acc1 = vfmaq_f64(acc1, vld1q_f64(xp.add(i + V)), vld1q_f64(yp.add(i + V)));
            i += 2 * V;
        }
        if i + V <= n {
            acc0 = vfmaq_f64(acc0, vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i)));
            i += V;
        }
        let acc = vaddq_f64(acc0, acc1);
        let mut lanes = [0.0f64; V];
        vst1q_f64(lanes.as_mut_ptr(), acc);
        let mut s = lanes[0] + lanes[1];
        while i < n {
            s = (*xp.add(i)).mul_add(*yp.add(i), s);
            i += 1;
        }
        s
    }

    /// `f32` dot product with two independent lane accumulators.
    ///
    /// # Safety
    ///
    /// Requires NEON and `x.len() == y.len()`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 2 * VS <= n {
            acc0 = vfmaq_f32(acc0, vld1q_f32(xp.add(i)), vld1q_f32(yp.add(i)));
            acc1 = vfmaq_f32(acc1, vld1q_f32(xp.add(i + VS)), vld1q_f32(yp.add(i + VS)));
            i += 2 * VS;
        }
        if i + VS <= n {
            acc0 = vfmaq_f32(acc0, vld1q_f32(xp.add(i)), vld1q_f32(yp.add(i)));
            i += VS;
        }
        let mut lanes = [0.0f32; VS];
        vst1q_f32(lanes.as_mut_ptr(), vaddq_f32(acc0, acc1));
        let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        while i < n {
            s = (*xp.add(i)).mul_add(*yp.add(i), s);
            i += 1;
        }
        s
    }

    /// Whole-block `C += alpha * A * B` for `M x M` operands, `M = 2 * NV`.
    ///
    /// # Safety
    ///
    /// Requires NEON; `a`, `b`, `c` must be `M x M` views.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn small<const M: usize, const NV: usize>(
        alpha: f64,
        a: MatRef<'_>,
        b: MatRef<'_>,
        c: &mut MatMut<'_>,
    ) {
        debug_assert!(M == 2 * NV && a.shape() == (M, M));
        let alphav = vdupq_n_f64(alpha);
        for j in 0..M {
            let bcol = b.col(j);
            let mut acc = [vdupq_n_f64(0.0); NV];
            for (k, bkj) in bcol.iter().enumerate() {
                let ap = a.col(k).as_ptr();
                let bv = vdupq_n_f64(*bkj);
                for (v, accv) in acc.iter_mut().enumerate() {
                    *accv = vfmaq_f64(*accv, vld1q_f64(ap.add(V * v)), bv);
                }
            }
            let cp = c.col_mut(j).as_mut_ptr();
            for (v, &accv) in acc.iter().enumerate() {
                let cv = vld1q_f64(cp.add(V * v));
                vst1q_f64(cp.add(V * v), vfmaq_f64(cv, alphav, accv));
            }
        }
    }

    /// `f32` whole-block kernel for `M x M` operands, `M = 4 * NV`.
    ///
    /// # Safety
    ///
    /// Requires NEON; `a`, `b`, `c` must be `M x M` views.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn small_f32<const M: usize, const NV: usize>(
        alpha: f32,
        a: MatRef<'_, f32>,
        b: MatRef<'_, f32>,
        c: &mut MatMut<'_, f32>,
    ) {
        debug_assert!(M == 4 * NV && a.shape() == (M, M));
        let alphav = vdupq_n_f32(alpha);
        for j in 0..M {
            let bcol = b.col(j);
            let mut acc = [vdupq_n_f32(0.0); NV];
            for (k, bkj) in bcol.iter().enumerate() {
                let ap = a.col(k).as_ptr();
                let bv = vdupq_n_f32(*bkj);
                for (v, accv) in acc.iter_mut().enumerate() {
                    *accv = vfmaq_f32(*accv, vld1q_f32(ap.add(VS * v)), bv);
                }
            }
            let cp = c.col_mut(j).as_mut_ptr();
            for (v, &accv) in acc.iter().enumerate() {
                let cv = vld1q_f32(cp.add(VS * v));
                vst1q_f32(cp.add(VS * v), vfmaq_f32(cv, alphav, accv));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    /// Serializes tests that touch the process-global dispatch state.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Restores the previously active ISA on drop.
    struct IsaGuard(Isa);
    impl Drop for IsaGuard {
        fn drop(&mut self) {
            force(Some(self.0));
        }
    }
    fn pin(isa: Isa) -> IsaGuard {
        IsaGuard(force(Some(isa)))
    }

    #[test]
    fn tile_constants_match_the_element_trait() {
        assert_eq!(MR, <f64 as Element>::MR);
        assert_eq!(NR, <f64 as Element>::NR);
        assert_eq!(MR32, <f32 as Element>::MR);
        assert_eq!(NR32, <f32 as Element>::NR);
    }

    #[test]
    fn detection_is_cached_and_forcible() {
        let _l = lock();
        let detected = active();
        {
            let _g = pin(Isa::Scalar);
            assert_eq!(active(), Isa::Scalar);
        }
        assert_eq!(active(), detected, "force(None) re-detects");
    }

    #[test]
    fn axpy_matches_scalar_reference() {
        let _l = lock();
        for n in [0usize, 1, 3, 4, 7, 8, 9, 31, 64, 100] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let y0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
            let w = -1.75;
            let mut expect = y0.clone();
            for (e, xv) in expect.iter_mut().zip(&x) {
                *e += w * xv;
            }
            let mut got = y0.clone();
            axpy(w, &x, &mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() <= 1e-15 * e.abs().max(1.0), "n={n}");
            }
        }
    }

    #[test]
    fn axpy_f32_matches_scalar_reference() {
        let _l = lock();
        for n in [0usize, 1, 3, 7, 8, 15, 16, 17, 31, 64, 100] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
            let y0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).cos()).collect();
            let w = -1.75f32;
            let mut expect = y0.clone();
            for (e, xv) in expect.iter_mut().zip(&x) {
                *e += w * xv;
            }
            let mut got = y0.clone();
            axpy_f32(w, &x, &mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() <= 1e-6 * e.abs().max(1.0), "n={n}");
            }
        }
    }

    #[test]
    fn axpy_propagates_zero_times_nan() {
        let _l = lock();
        let x = [f64::NAN, f64::INFINITY, 1.0];
        let mut y = [0.0; 3];
        axpy(0.0, &x, &mut y);
        assert!(y[0].is_nan() && y[1].is_nan());
        assert_eq!(y[2], 0.0);
    }

    #[test]
    fn axpy_f32_propagates_zero_times_nan() {
        let _l = lock();
        let x = [f32::NAN, f32::INFINITY, 1.0];
        let mut y = [0.0f32; 3];
        axpy_f32(0.0, &x, &mut y);
        assert!(y[0].is_nan() && y[1].is_nan());
        assert_eq!(y[2], 0.0);
    }

    #[test]
    fn dot_matches_scalar_reference() {
        let _l = lock();
        for n in [0usize, 1, 2, 5, 8, 13, 16, 33, 100] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).cos()).collect();
            let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = dot(&x, &y);
            assert!(
                (got - expect).abs() <= 1e-13 * expect.abs().max(1.0),
                "n={n}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn dot_f32_matches_scalar_reference() {
        let _l = lock();
        for n in [0usize, 1, 2, 5, 8, 15, 16, 17, 33, 100] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).sin()).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.23).cos()).collect();
            let expect: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = dot_f32(&x, &y);
            // f32 reassociation error grows with n; scale the tolerance.
            assert!(
                (got - expect).abs() <= 1e-6 * (n as f32 + 1.0),
                "n={n}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn microkernel_paths_agree() {
        let _l = lock();
        let kb = 37;
        let pa: Vec<f64> = (0..kb * MR).map(|i| (i as f64 * 0.17).sin()).collect();
        let pb: Vec<f64> = (0..kb * NR).map(|i| (i as f64 * 0.29).cos()).collect();
        let mut scalar = [0.0f64; MR * NR];
        {
            let _g = pin(Isa::Scalar);
            microkernel(kb, &pa, &pb, &mut scalar);
        }
        let mut active_path = [0.0f64; MR * NR];
        microkernel(kb, &pa, &pb, &mut active_path);
        for (s, v) in scalar.iter().zip(&active_path) {
            assert!((s - v).abs() <= 1e-13 * s.abs().max(1.0));
        }
    }

    #[test]
    fn microkernel_f32_paths_agree() {
        let _l = lock();
        let kb = 37;
        let pa: Vec<f32> = (0..kb * MR32).map(|i| (i as f32 * 0.17).sin()).collect();
        let pb: Vec<f32> = (0..kb * NR32).map(|i| (i as f32 * 0.29).cos()).collect();
        let mut scalar = [0.0f32; MR32 * NR32];
        {
            let _g = pin(Isa::Scalar);
            microkernel_f32(kb, &pa, &pb, &mut scalar);
        }
        let mut active_path = [0.0f32; MR32 * NR32];
        microkernel_f32(kb, &pa, &pb, &mut active_path);
        for (s, v) in scalar.iter().zip(&active_path) {
            assert!((s - v).abs() <= 1e-6 * (kb as f32), "{s} vs {v}");
        }
    }

    #[test]
    fn small_kernel_paths_agree_and_respect_alpha() {
        let _l = lock();
        for m in SMALL_DIMS {
            let a = Mat::from_fn(m, m, |i, j| ((i * m + j) as f64 * 0.31).sin());
            let b = Mat::from_fn(m, m, |i, j| ((i + 2 * j) as f64 * 0.17).cos());
            let c0 = Mat::from_fn(m, m, |i, j| (i as f64 - j as f64) * 0.05);
            let mut scalar = c0.clone();
            {
                let _g = pin(Isa::Scalar);
                assert!(gemm_small(
                    -1.5,
                    a.as_ref(),
                    b.as_ref(),
                    &mut scalar.as_mut()
                ));
            }
            let mut active_path = c0.clone();
            assert!(gemm_small(
                -1.5,
                a.as_ref(),
                b.as_ref(),
                &mut active_path.as_mut()
            ));
            assert!(
                scalar.sub(&active_path).max_abs() <= 1e-13 * m as f64,
                "m={m}"
            );
        }
    }

    #[test]
    fn small_f32_kernel_paths_agree_and_respect_alpha() {
        let _l = lock();
        for m in SMALL_DIMS {
            let a = Mat::<f32>::from_fn(m, m, |i, j| ((i * m + j) as f32 * 0.31).sin());
            let b = Mat::<f32>::from_fn(m, m, |i, j| ((i + 2 * j) as f32 * 0.17).cos());
            let c0 = Mat::<f32>::from_fn(m, m, |i, j| (i as f32 - j as f32) * 0.05);
            let mut scalar = c0.clone();
            {
                let _g = pin(Isa::Scalar);
                assert!(gemm_small_f32(
                    -1.5,
                    a.as_ref(),
                    b.as_ref(),
                    &mut scalar.as_mut()
                ));
            }
            let mut active_path = c0.clone();
            assert!(gemm_small_f32(
                -1.5,
                a.as_ref(),
                b.as_ref(),
                &mut active_path.as_mut()
            ));
            assert!(
                scalar.sub(&active_path).max_abs() <= 1e-5 * m as f64,
                "m={m}"
            );
        }
    }

    #[test]
    fn small_kernel_rejects_unsupported_shapes() {
        let _l = lock();
        let a = Mat::zeros(5, 5);
        let b = Mat::zeros(5, 5);
        let mut c = Mat::zeros(5, 5);
        assert!(!gemm_small(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut()));
        let a8 = Mat::zeros(8, 8);
        let b84 = Mat::zeros(8, 4);
        let mut c84 = Mat::zeros(8, 4);
        assert!(!gemm_small(
            1.0,
            a8.as_ref(),
            b84.as_ref(),
            &mut c84.as_mut()
        ));
        let a5 = Mat::<f32>::zeros(5, 5);
        let b5 = Mat::<f32>::zeros(5, 5);
        let mut c5 = Mat::<f32>::zeros(5, 5);
        assert!(!gemm_small_f32(
            1.0,
            a5.as_ref(),
            b5.as_ref(),
            &mut c5.as_mut()
        ));
    }
}
