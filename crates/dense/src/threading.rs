//! Intra-rank thread budget for the dense kernels.
//!
//! The SPMD runtime models `P` ranks as OS threads; each rank may in turn
//! be granted `threads_per_rank` intra-rank threads for its dense kernels
//! (packed GEMM macro-loops, multi-RHS triangular panel solves). The
//! budget is **thread-local**: `bt_mpsim::run_spmd` stamps each rank
//! thread with its model's `threads_per_rank`, so concurrently simulated
//! ranks cannot observe each other's budgets.
//!
//! Outside an SPMD run (plain library use, benches), the budget defaults
//! to the `BT_DENSE_THREADS` environment variable, or 1 when unset — the
//! kernels never go parallel unless asked.
//!
//! Parallel kernels in this crate are written so the floating-point
//! summation order per output element is independent of the budget:
//! results are bitwise identical for any thread count (see DESIGN.md,
//! "Threading model").

use crate::view::MatMut;
use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-wide default: `BT_DENSE_THREADS` (clamped to >= 1), else 1.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("BT_DENSE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Threads the current thread's dense kernels may use (>= 1).
pub fn current_threads() -> usize {
    BUDGET.with(Cell::get).unwrap_or_else(default_threads)
}

/// Sets the calling thread's budget. `0` clears it back to the
/// process-wide default. Returns the previous explicit budget, if any.
pub fn set_thread_budget(threads: usize) -> Option<usize> {
    BUDGET.with(|b| b.replace(if threads == 0 { None } else { Some(threads) }))
}

/// Runs `f` with the calling thread's budget set to `threads`, restoring
/// the previous budget afterwards (also on unwind via a drop guard).
pub fn with_thread_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(set_thread_budget(threads));
    f()
}

/// Minimum total flops before a panel operation is worth spreading over
/// threads; below this, spawn overhead dominates.
const PANEL_PAR_MIN_FLOPS: usize = 50_000;

/// Applies `f` to every column of the column-major panel `b`, splitting
/// the columns across the calling thread's budget when the panel is
/// multi-column and `flops_per_col * cols` clears the spawn-overhead
/// threshold. Columns are fully independent, so the result is identical
/// (bitwise) to the sequential sweep for any thread count.
pub(crate) fn for_each_column_parallel<E: crate::element::Element>(
    mut b: MatMut<'_, E>,
    flops_per_col: usize,
    f: impl Fn(&mut [E]) + Sync,
) {
    let n = b.rows();
    let r = b.cols();
    if n == 0 || r == 0 {
        return;
    }
    let t = current_threads().min(r);
    // The chunked parallel split needs back-to-back columns; strided
    // views take the sequential sweep (columns are independent either
    // way, so results are identical).
    if t > 1 && b.is_contiguous() && flops_per_col.saturating_mul(r) >= PANEL_PAR_MIN_FLOPS {
        let cols_per = r.div_ceil(t);
        let f = &f;
        rayon::scope(|s| {
            for chunk in b.data[..n * r].chunks_mut(cols_per * n) {
                s.spawn(move |_| {
                    for x in chunk.chunks_exact_mut(n) {
                        f(x);
                    }
                });
            }
        });
    } else {
        for j in 0..r {
            f(b.col_mut(j));
        }
    }
}

/// Applies `f` to contiguous multi-column *blocks* of the panel, one
/// block per thread: `f` receives `(block, ncols)` where `block` is
/// `ncols` back-to-back columns of `b.rows()` elements each. Requires a
/// contiguous view (callers check [`MatMut::is_contiguous`]). As with
/// [`for_each_column_parallel`], `f`'s per-element arithmetic must not
/// depend on the block width, so results stay bitwise identical for any
/// thread count.
pub(crate) fn for_each_column_block_parallel<E: crate::element::Element>(
    b: MatMut<'_, E>,
    flops_per_col: usize,
    f: impl Fn(&mut [E], usize) + Sync,
) {
    let n = b.rows();
    let r = b.cols();
    if n == 0 || r == 0 {
        return;
    }
    debug_assert!(b.is_contiguous(), "block split needs packed columns");
    let data = &mut b.data[..n * r];
    let t = current_threads().min(r);
    if t > 1 && flops_per_col.saturating_mul(r) >= PANEL_PAR_MIN_FLOPS {
        let cols_per = r.div_ceil(t);
        let f = &f;
        rayon::scope(|s| {
            for chunk in data.chunks_mut(cols_per * n) {
                s.spawn(move |_| f(chunk, chunk.len() / n));
            }
        });
    } else {
        f(data, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_at_least_one() {
        assert!(current_threads() >= 1);
    }

    #[test]
    fn with_budget_scopes_and_restores() {
        let before = current_threads();
        let inside = with_thread_budget(7, current_threads);
        assert_eq!(inside, 7);
        assert_eq!(current_threads(), before);
        // Nesting restores the outer override, not the process default.
        with_thread_budget(3, || {
            with_thread_budget(5, || assert_eq!(current_threads(), 5));
            assert_eq!(current_threads(), 3);
        });
    }

    #[test]
    fn budget_is_thread_local() {
        with_thread_budget(9, || {
            let other = std::thread::spawn(current_threads).join().unwrap();
            assert_eq!(other, default_threads(), "new threads see the default");
            assert_eq!(current_threads(), 9);
        });
    }

    #[test]
    fn panel_split_covers_every_column() {
        use crate::mat::Mat;
        let mut m = Mat::from_fn(100, 7, |i, j| (i * 7 + j) as f64);
        let expect = m.scaled(2.0);
        with_thread_budget(3, || {
            // Huge per-column cost forces the parallel path.
            for_each_column_parallel(m.as_mut(), 1_000_000, |col| {
                for v in col.iter_mut() {
                    *v *= 2.0;
                }
            });
        });
        assert_eq!(m, expect);
    }

    #[test]
    fn panel_split_strided_view_falls_back_sequential() {
        use crate::mat::Mat;
        let mut m = Mat::from_fn(100, 9, |i, j| (i * 9 + j) as f64);
        let mut expect = m.clone();
        for j in 2..2 + 5 {
            for i in 1..1 + 80 {
                expect[(i, j)] *= 3.0;
            }
        }
        with_thread_budget(3, || {
            for_each_column_parallel(m.submatrix_mut(1, 2, 80, 5), 1_000_000, |col| {
                for v in col.iter_mut() {
                    *v *= 3.0;
                }
            });
        });
        assert_eq!(m, expect);
    }

    #[test]
    fn zero_clears_to_default() {
        let prev = set_thread_budget(4);
        assert_eq!(current_threads(), 4);
        set_thread_budget(0);
        assert_eq!(current_threads(), default_threads());
        // Restore whatever the test environment had.
        set_thread_budget(prev.unwrap_or(0));
    }
}
