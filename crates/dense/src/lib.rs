//! # bt-dense: dense linear algebra kernels for the block tridiagonal suite
//!
//! Self-contained dense linear algebra — the BLAS/LAPACK substitute this
//! reproduction builds on (see DESIGN.md §3), generic over the scalar
//! type ([`Element`]: `f64` by default, `f32` for the mixed-precision
//! solve path). Provides:
//!
//! * [`Mat`] — owned column-major matrix ([`mat`]);
//! * [`MatRef`]/[`MatMut`] — borrowed column-major views ([`view`]);
//! * [`Element`] — the scalar-type trait, plus the precision-erased
//!   [`AnyVec`]/[`AnyMat`] carriers the comm layer ships panels with
//!   ([`element`]);
//! * [`Workspace`] — reusable buffer pool for allocation-free hot paths
//!   ([`workspace`]);
//! * [`gemm()`]/[`matmul`]/[`gemv`] — blocked matrix multiply (module [`mod@gemm`]),
//!   dispatched over runtime-detected SIMD kernels ([`simd`]);
//! * [`LuFactors`] — partially pivoted LU with factor-once / solve-many
//!   panel solves ([`lu`]);
//! * [`CholFactors`] — Cholesky for SPD blocks ([`cholesky`]);
//! * norms and condition estimates ([`norms`]);
//! * seeded random matrix generators ([`random`]).
//!
//! Everything is pure Rust with no external BLAS. The only `unsafe` in
//! the crate is the explicit-SIMD kernel layer ([`simd`]): runtime
//! CPU-feature dispatch (AVX2+FMA on x86_64, NEON on aarch64, portable
//! scalar fallback, `BT_DENSE_SIMD=0` override) behind length-checked
//! safe wrappers, at both element widths. Flop-count helpers
//! (`gemm_flops`, `lu_flops`, ...) feed the virtual-time cost model in
//! `bt-mpsim`.
//!
//! ## Quick example
//!
//! ```
//! use bt_dense::{matmul, invert, Mat};
//!
//! let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let inv = invert(&a).unwrap();
//! let prod = matmul(&a, &inv);
//! assert!(prod.sub(&Mat::identity(2)).max_abs() < 1e-12);
//! ```

pub mod cholesky;
pub mod element;
pub mod gemm;
pub mod lu;
pub mod mat;
pub mod norms;
pub mod random;
pub mod simd;
pub mod threading;
pub mod view;
pub mod workspace;

pub use cholesky::{cholesky_flops, CholFactors};
pub use element::{AnyMat, AnyVec, Element};
pub use gemm::{
    colsplit_plan, colsplit_plan_for, gemm, gemm_axpy, gemm_flops, gemm_packed, gemm_small, gemv,
    matmul, matvec, ColsplitPlan, Trans,
};
pub use lu::{invert, lu_flops, lu_solve_flops, solve, LuFactors, SingularError};
pub use mat::Mat;
pub use norms::{cond_1, fro_norm, inf_norm, one_norm, rel_diff, vec_norm2};
pub use simd::Isa;
pub use threading::{current_threads, set_thread_budget, with_thread_budget};
pub use view::{MatMut, MatRef};
pub use workspace::{Workspace, WorkspaceStats};
