//! Seeded random matrix generators.
//!
//! Everything in the suite that involves randomness takes an explicit
//! seed so experiments and tests are exactly reproducible.

use crate::mat::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a seeded RNG. All suite randomness flows through this so the
/// generator can be swapped in one place.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `rows x cols` matrix with i.i.d. entries uniform in `[-1, 1)`.
pub fn uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0..1.0);
    }
    m
}

/// Random square matrix with the diagonal boosted so the matrix is
/// strictly row diagonally dominant: `|a_ii| > sum_{j != i} |a_ij| * margin`.
///
/// `margin >= 1.0`; larger margins give better conditioning.
///
/// # Panics
///
/// Panics if `margin < 1.0`.
pub fn diag_dominant(n: usize, margin: f64, rng: &mut StdRng) -> Mat {
    assert!(margin >= 1.0, "dominance margin must be >= 1, got {margin}");
    let mut m = uniform(n, n, rng);
    for i in 0..n {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
        let sign = if m.get(i, i) >= 0.0 { 1.0 } else { -1.0 };
        m.set(i, i, sign * (off * margin + 1.0));
    }
    m
}

/// Random symmetric positive definite matrix: `A = B B^T + n * I` with
/// uniform `B`. Well conditioned and always invertible.
pub fn spd(n: usize, rng: &mut StdRng) -> Mat {
    let b = uniform(n, n, rng);
    let mut a = crate::gemm::matmul(&b, &b.transpose());
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Random vector with entries uniform in `[-1, 1)`.
pub fn uniform_vec(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuFactors;
    use crate::norms::cond_1;

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = uniform(4, 4, &mut rng(42));
        let b = uniform(4, 4, &mut rng(42));
        assert_eq!(a, b);
        let c = uniform(4, 4, &mut rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_entries_in_range() {
        let m = uniform(20, 20, &mut rng(7));
        assert!(m.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn diag_dominant_really_is() {
        let m = diag_dominant(15, 1.5, &mut rng(11));
        for i in 0..15 {
            let off: f64 = (0..15).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
            assert!(m.get(i, i).abs() > off, "row {i} not dominant");
        }
        // Dominant matrices must factor without trouble.
        assert!(LuFactors::factor(&m).is_ok());
    }

    #[test]
    #[should_panic(expected = "dominance margin")]
    fn diag_dominant_rejects_small_margin() {
        let _ = diag_dominant(3, 0.5, &mut rng(0));
    }

    #[test]
    fn spd_is_symmetric_and_invertible() {
        let a = spd(10, &mut rng(3));
        assert!(a.sub(&a.transpose()).max_abs() < 1e-12);
        assert!(cond_1(&a).is_finite());
    }

    #[test]
    fn uniform_vec_len_and_determinism() {
        let v = uniform_vec(9, &mut rng(5));
        assert_eq!(v.len(), 9);
        assert_eq!(v, uniform_vec(9, &mut rng(5)));
    }
}
