//! Column-major dense matrix type.
//!
//! [`Mat`] is the single owned matrix type used throughout the suite. It is
//! deliberately simple: an element buffer in column-major (Fortran) order
//! with explicit dimensions, generic over the scalar type ([`Element`]:
//! `f64` or `f32`) with `f64` as the default — bare `Mat` everywhere means
//! `Mat<f64>`, while the mixed-precision solve path works on `Mat<f32>`.
//! Column-major order matches the access pattern of the blocked GEMM and
//! LU kernels in this crate and makes multi-right-hand-side panels
//! (`M x R`) contiguous per right-hand side.

use crate::element::Element;
use crate::view::{MatMut, MatRef};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Owned dense `rows x cols` matrix of `E` in column-major order.
///
/// Element `(i, j)` lives at buffer offset `i + j * rows`.
///
/// # Examples
///
/// ```
/// use bt_dense::Mat;
///
/// let mut a = Mat::zeros(2, 2);
/// a[(0, 0)] = 1.0;
/// a[(1, 1)] = 2.0;
/// assert_eq!(a.trace(), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat<E: Element = f64> {
    rows: usize,
    cols: usize,
    data: Vec<E>,
}

impl<E: Element> Mat<E> {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![E::ZERO; rows * cols],
        }
    }

    /// The canonical `0 x 0` empty matrix (no allocation).
    ///
    /// Use this — not `Mat::zeros(0, 0)` — where a slot is structurally
    /// present but holds no data (e.g. the sub-diagonal factor of the
    /// first block row). Any arithmetic that actually reads elements of
    /// an empty matrix trips the usual shape assertions, so accidental
    /// use fails fast instead of silently producing empty products.
    pub fn empty() -> Self {
        Self {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }

    /// A `rows x 0` matrix (no allocation): the identity element for
    /// column-wise accumulation and the seed value of the scan kernels,
    /// which require a row count but carry no columns yet.
    pub fn zero_width(rows: usize) -> Self {
        Self {
            rows,
            cols: 0,
            data: Vec::new(),
        }
    }

    /// True if the matrix holds no elements (either dimension is 0).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: E) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = E::ONE;
        }
        m
    }

    /// Creates an `n x n` diagonal matrix from `diag`.
    pub fn from_diag(diag: &[E]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix from a column-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<E>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from rows given in row-major order (convenient for
    /// literals in tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[E]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> E) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// Mutable view of the column-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Consumes the matrix, returning the column-major buffer.
    pub fn into_vec(self) -> Vec<E> {
        self.data
    }

    /// Borrows the whole matrix as an immutable [`MatRef`] view.
    #[allow(clippy::should_implement_trait)] // matrix view, not AsRef<T>
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, E> {
        MatRef {
            data: &self.data,
            rows: self.rows,
            cols: self.cols,
            col_stride: self.rows,
        }
    }

    /// Borrows the whole matrix as a mutable [`MatMut`] view.
    #[allow(clippy::should_implement_trait)] // matrix view, not AsMut<T>
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_, E> {
        MatMut {
            data: &mut self.data,
            rows: self.rows,
            cols: self.cols,
            col_stride: self.rows,
        }
    }

    /// Borrows the `br x bc` submatrix at `(r0, c0)` as a strided view —
    /// the no-copy counterpart of [`Mat::block`].
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the matrix bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, br: usize, bc: usize) -> MatRef<'_, E> {
        self.as_ref().submatrix(r0, c0, br, bc)
    }

    /// Mutable strided view of the `br x bc` submatrix at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the matrix bounds.
    pub fn submatrix_mut(&mut self, r0: usize, c0: usize, br: usize, bc: usize) -> MatMut<'_, E> {
        self.as_mut().submatrix_mut(r0, c0, br, bc)
    }

    /// Immutable view of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[E] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable view of column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [E] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Unchecked-in-release element read (bounds checked in debug builds).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> E {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// Unchecked-in-release element write (bounds checked in debug builds).
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: E) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows] = v;
    }

    /// Sets every element to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(E::ZERO);
    }

    /// Sets every element to `v`, retaining the allocation.
    pub fn fill(&mut self, v: E) {
        self.data.fill(v);
    }

    /// Overwrites `self` with the contents of `src`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, src: &Mat<E>) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Element-wise conversion to another precision: rounds when
    /// narrowing (`f64 -> f32`), exact when widening (`f32 -> f64`),
    /// and the identity for `E -> E`.
    pub fn convert<F: Element>(&self) -> Mat<F> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| F::from_f64(v.to_f64())).collect(),
        }
    }

    /// [`Mat::convert`] into an existing matrix, reusing its allocation.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn convert_into<F: Element>(&self, out: &mut Mat<F>) {
        assert_eq!(self.shape(), out.shape(), "convert_into shape mismatch");
        for (dst, &src) in out.data.iter_mut().zip(&self.data) {
            *dst = F::from_f64(src.to_f64());
        }
    }

    /// In-place `self += other` with element-wise widening/narrowing
    /// through `f64` — the accumulation step of mixed-precision
    /// refinement (`x_f64 += dx_f32`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign_converted<F: Element>(&mut self, other: &Mat<F>) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += E::from_f64(b.to_f64());
        }
    }

    /// In-place `self -= other` across precisions; inverse of
    /// [`Mat::add_assign_converted`] (used to undo a rejected
    /// refinement correction).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub_assign_converted<F: Element>(&mut self, other: &Mat<F>) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a -= E::from_f64(b.to_f64());
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Mat<E> {
        let mut t = Mat::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t[(j, i)] = self.get(i, j);
            }
        }
        t
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> E {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Extracts the `br x bc` submatrix whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, br: usize, bc: usize) -> Mat<E> {
        assert!(
            r0 + br <= self.rows && c0 + bc <= self.cols,
            "block out of bounds"
        );
        let mut b = Mat::zeros(br, bc);
        for j in 0..bc {
            let src = &self.data[(c0 + j) * self.rows + r0..(c0 + j) * self.rows + r0 + br];
            b.col_mut(j).copy_from_slice(src);
        }
        b
    }

    /// Writes `blk` into the submatrix with top-left corner `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, r0: usize, c0: usize, blk: &Mat<E>) {
        assert!(
            r0 + blk.rows <= self.rows && c0 + blk.cols <= self.cols,
            "set_block out of bounds"
        );
        for j in 0..blk.cols {
            let dst_off = (c0 + j) * self.rows + r0;
            self.data[dst_off..dst_off + blk.rows].copy_from_slice(blk.col(j));
        }
    }

    /// Extracts columns `c0..c0 + k` as a new `rows x k` matrix.
    pub fn columns(&self, c0: usize, k: usize) -> Mat<E> {
        self.block(0, c0, self.rows, k)
    }

    /// In-place scale: `self *= s`.
    pub fn scale(&mut self, s: E) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    pub fn scaled(&self, s: E) -> Mat<E> {
        let mut out = self.clone();
        out.scale(s);
        out
    }

    /// In-place negation.
    pub fn negate(&mut self) {
        for v in &mut self.data {
            *v = -*v;
        }
    }

    /// In-place element-wise add: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Mat<E>) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// In-place element-wise subtract: `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub_assign(&mut self, other: &Mat<E>) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= *b;
        }
    }

    /// In-place `self += s * other` (matrix AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: E, other: &Mat<E>) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * *b;
        }
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &Mat<E>) -> Mat<E> {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &Mat<E>) -> Mat<E> {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Largest absolute entry (`max |a_ij|`) as `f64`; 0 for empty
    /// matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs().to_f64()))
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Stacks `top` above `bottom`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vstack(top: &Mat<E>, bottom: &Mat<E>) -> Mat<E> {
        assert_eq!(top.cols, bottom.cols, "vstack column mismatch");
        let mut out = Mat::zeros(top.rows + bottom.rows, top.cols);
        out.set_block(0, 0, top);
        out.set_block(top.rows, 0, bottom);
        out
    }

    /// Concatenates `left` and `right` horizontally.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hstack(left: &Mat<E>, right: &Mat<E>) -> Mat<E> {
        assert_eq!(left.rows, right.rows, "hstack row mismatch");
        let mut out = Mat::zeros(left.rows, left.cols + right.cols);
        out.set_block(0, 0, left);
        out.set_block(0, left.cols, right);
        out
    }
}

impl<E: Element> Index<(usize, usize)> for Mat<E> {
    type Output = E;

    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &E {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i + j * self.rows]
    }
}

impl<E: Element> IndexMut<(usize, usize)> for Mat<E> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut E {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i + j * self.rows]
    }
}

impl<E: Element> fmt::Debug for Mat<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat<{}> {}x{} [", E::NAME, self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:>12.5e} ", self.get(i, j))?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m: Mat = Mat::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diag() {
        let m: Mat = Mat::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn col_major_layout() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        // column-major: [1, 3, 2, 4]
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn from_col_major_roundtrip() {
        let m = Mat::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 2)], 5.0);
        assert_eq!(m.into_vec(), vec![1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_col_major_bad_len_panics() {
        let _ = Mat::from_col_major(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_rows(&[&[1., 2., 3.], &[4., 5., 6.]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn block_get_set_roundtrip() {
        let mut m = Mat::zeros(4, 4);
        let b = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        m.set_block(1, 2, &b);
        assert_eq!(m.block(1, 2, 2, 2), b);
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(2, 3)], 4.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "block out of bounds")]
    fn block_out_of_bounds_panics() {
        let m: Mat = Mat::zeros(3, 3);
        let _ = m.block(2, 2, 2, 2);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Mat::from_rows(&[&[5., 6.], &[7., 8.]]);
        assert_eq!(a.add(&b), Mat::from_rows(&[&[6., 8.], &[10., 12.]]));
        assert_eq!(b.sub(&a), Mat::from_rows(&[&[4., 4.], &[4., 4.]]));
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c, Mat::from_rows(&[&[11., 14.], &[17., 20.]]));
        assert_eq!(a.scaled(3.0), Mat::from_rows(&[&[3., 6.], &[9., 12.]]));
    }

    #[test]
    fn trace_and_max_abs() {
        let a = Mat::from_rows(&[&[1., -9.], &[3., 4.]]);
        assert_eq!(a.trace(), 5.0);
        assert_eq!(a.max_abs(), 9.0);
    }

    #[test]
    fn stack_ops() {
        let a = Mat::identity(2);
        let b = Mat::filled(2, 2, 3.0);
        let v = Mat::vstack(&a, &b);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(2, 0)], 3.0);
        let h = Mat::hstack(&a, &b);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(0, 2)], 3.0);
        assert_eq!(h[(0, 0)], 1.0);
    }

    #[test]
    fn columns_extract() {
        let m = Mat::from_rows(&[&[1., 2., 3.], &[4., 5., 6.]]);
        let c = m.columns(1, 2);
        assert_eq!(c, Mat::from_rows(&[&[2., 3.], &[5., 6.]]));
    }

    #[test]
    fn from_fn_builder() {
        let m = Mat::from_fn(3, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Mat::identity(2);
        assert!(m.all_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn empty_and_zero_width() {
        let e: Mat = Mat::empty();
        assert_eq!(e.shape(), (0, 0));
        assert!(e.is_empty());
        let z: Mat = Mat::zero_width(3);
        assert_eq!(z.shape(), (3, 0));
        assert!(z.is_empty());
        assert!(!Mat::<f64>::zeros(1, 1).is_empty());
        // hstack accumulation with a zero-width identity element.
        let a = Mat::identity(3);
        assert_eq!(Mat::hstack(&z, &a), a);
    }

    #[test]
    fn fill_and_copy_from() {
        let mut m = Mat::zeros(2, 2);
        m.fill(7.0);
        assert_eq!(m, Mat::filled(2, 2, 7.0));
        let src = Mat::identity(2);
        m.copy_from(&src);
        assert_eq!(m, src);
        m.fill_zero();
        assert_eq!(m, Mat::zeros(2, 2));
    }

    #[test]
    fn f32_matrices_and_conversion() {
        let a = Mat::from_rows(&[&[1.0, 0.1], &[-2.5, 4.0]]);
        let s: Mat<f32> = a.convert();
        assert_eq!(s[(1, 0)], -2.5f32);
        // 0.1 is not exactly representable: narrowing rounds...
        assert_ne!(s[(0, 1)].to_f64(), a[(0, 1)]);
        // ...and widening back is exact (identity for exact values).
        let back: Mat = s.convert();
        assert_eq!(back[(1, 1)], 4.0);
        assert_eq!(a.convert::<f64>(), a);
        assert_eq!(s.max_abs(), 4.0);
    }
}
