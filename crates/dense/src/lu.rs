//! LU factorization with partial (row) pivoting, and solvers built on it.
//!
//! [`LuFactors`] stores the packed factorization `P A = L U` of a square
//! matrix. A factorization is computed once and then reused for any number
//! of right-hand sides — which is exactly the access pattern the
//! accelerated recursive doubling algorithm depends on: all
//! matrix-dependent work happens at factorization time, and each
//! right-hand-side panel solve is an `O(n^2 r)` triangular sweep.
//!
//! The factorization is generic over the element type (`f64` by default):
//! the mixed-precision solve path factors in `f32` — half the factor
//! storage, double the SIMD width in the elimination AXPYs — and
//! recovers `f64` accuracy by iterative refinement in `bt-ard`.
//! Conditioning diagnostics ([`LuFactors::det`], [`LuFactors::min_pivot`])
//! report in `f64` at either precision.

use crate::element::Element;
use crate::mat::Mat;
use crate::view::{MatMut, MatRef};
use std::fmt;

/// Observability instruments for the multi-RHS panel solves (no-ops
/// unless `BT_OBS` is on): call count plus a nanosecond histogram, the
/// measured side of the `O(n^2 r)` triangular-sweep cost claim.
static OBS_LU_PANEL_SOLVES: bt_obs::Counter = bt_obs::Counter::new("bt_dense.lu.panel_solves");
static OBS_LU_PANEL_NS: bt_obs::Histogram = bt_obs::Histogram::new("bt_dense.lu.panel_solve_ns");

/// Minimum panel width for the row-oriented sweep
/// ([`LuFactors::solve_block_rowwise`]): one full 8-lane `f32` AVX2
/// vector per AXPY. Narrower panels stay on the per-column sweep.
const WIDE_SOLVE_MIN_COLS: usize = 8;

/// Error returned when a factorization or solve encounters a singular (or
/// numerically singular) matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SingularError {
    /// Elimination step at which the zero pivot appeared.
    pub step: usize,
    /// Magnitude of the offending pivot (widened to `f64` for `f32`
    /// factorizations).
    pub pivot: f64,
}

impl fmt::Display for SingularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is singular to working precision: pivot {:.3e} at elimination step {}",
            self.pivot, self.step
        )
    }
}

impl std::error::Error for SingularError {}

/// Packed `P A = L U` factorization of a square matrix.
///
/// `L` is unit lower triangular and stored below the diagonal of `lu`; `U`
/// is upper triangular and stored on and above the diagonal. `piv[k]` is
/// the row swapped with row `k` at step `k`.
///
/// # Examples
///
/// ```
/// use bt_dense::{LuFactors, Mat};
///
/// let a: Mat = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = LuFactors::factor(&a).unwrap();
/// let b = Mat::from_rows(&[&[10.0], &[12.0]]);
/// let x = lu.solve(&b);
/// // A * x == b
/// assert!((4.0 * x[(0, 0)] + 3.0 * x[(1, 0)] - 10.0).abs() < 1e-12);
/// assert!((6.0 * x[(0, 0)] + 3.0 * x[(1, 0)] - 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors<E: Element = f64> {
    lu: Mat<E>,
    piv: Vec<usize>,
    /// +1.0 or -1.0: parity of the row permutation (used by `det`).
    sign: f64,
}

impl<E: Element> LuFactors<E> {
    /// Factors a square matrix with partial pivoting.
    ///
    /// Returns [`SingularError`] if a pivot is exactly zero or smaller in
    /// magnitude than `n * eps * max|A|` (numerically singular), with
    /// `eps` the working precision's epsilon.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &Mat<E>) -> Result<Self, SingularError> {
        assert!(
            a.is_square(),
            "LU of non-square {}x{} matrix",
            a.rows(),
            a.cols()
        );
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv = Vec::with_capacity(n);
        let mut sign = 1.0;
        let tiny = E::from_f64(n as f64) * E::EPSILON * E::from_f64(a.max_abs());

        for k in 0..n {
            // Find pivot: largest |value| in column k at or below the diagonal.
            let col = lu.col(k);
            let mut p = k;
            let mut pmax = col[k].abs();
            for (off, v) in col[k..].iter().enumerate().skip(1) {
                let av = v.abs();
                if av > pmax {
                    pmax = av;
                    p = k + off;
                }
            }
            if pmax <= tiny || !pmax.is_finite() {
                return Err(SingularError {
                    step: k,
                    pivot: pmax.to_f64(),
                });
            }
            piv.push(p);
            if p != k {
                sign = -sign;
                swap_rows(&mut lu, k, p);
            }

            // Eliminate below the pivot, updating the trailing submatrix
            // column by column (column-major friendly rank-1 update).
            let pivot = lu.get(k, k);
            let inv_pivot = E::ONE / pivot;
            // Scale multipliers in column k.
            {
                let colk = lu.col_mut(k);
                for v in &mut colk[k + 1..] {
                    *v *= inv_pivot;
                }
            }
            // Trailing update: for each column j > k:
            //   lu[i, j] -= lu[i, k] * lu[k, j]  for i > k
            let m_rows = n;
            let (head, tail) = lu.as_mut_slice().split_at_mut((k + 1) * m_rows);
            let mults = &head[k * m_rows + k + 1..k * m_rows + m_rows];
            for (jc, colj) in tail.chunks_exact_mut(m_rows).enumerate() {
                let _ = jc;
                let ukj = colj[k];
                if ukj == E::ZERO {
                    continue;
                }
                // Rank-1 update of column j: colj[k+1..] -= ukj * mults,
                // through the SIMD AXPY primitive.
                E::simd_axpy(-ukj, mults, &mut colj[k + 1..]);
            }
        }

        Ok(Self { lu, piv, sign })
    }

    /// Order of the factored matrix.
    #[inline]
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Pivot indices (`piv[k]` was swapped with row `k`).
    pub fn pivots(&self) -> &[usize] {
        &self.piv
    }

    /// The packed LU storage (L strictly below diagonal, U on/above).
    pub fn packed(&self) -> &Mat<E> {
        &self.lu
    }

    /// Determinant of the original matrix (accumulated in `f64` at
    /// either working precision).
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for k in 0..self.order() {
            d *= self.lu.get(k, k).to_f64();
        }
        d
    }

    /// Smallest |diagonal entry of U| — a cheap conditioning indicator.
    pub fn min_pivot(&self) -> f64 {
        (0..self.order())
            .map(|k| self.lu.get(k, k).abs().to_f64())
            .fold(f64::INFINITY, f64::min)
    }

    /// Solves `A X = B` in place: `b` holds `B` on entry, `X` on exit.
    /// `B` may have any number of columns (multi-RHS panel); wide panels
    /// are split across the intra-rank thread budget
    /// ([`crate::threading`]), each column being an independent
    /// triangular sweep.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.order()`.
    pub fn solve_in_place<'b>(&self, b: impl Into<MatMut<'b, E>>) {
        let mut b = b.into();
        let n = self.order();
        assert_eq!(b.rows(), n, "solve rhs row count mismatch");
        OBS_LU_PANEL_SOLVES.incr();
        let _span = bt_obs::span("bt_dense", "lu.solve_panel");
        let t0 = bt_obs::enabled().then(std::time::Instant::now);
        // Apply the row permutation to B (sequential: touches all columns).
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                swap_rows_view(&mut b, k, p);
            }
        }
        if E::WIDE_PANEL_SOLVE && b.is_contiguous() && b.cols() >= WIDE_SOLVE_MIN_COLS {
            crate::threading::for_each_column_block_parallel(b, 2 * n * n, |block, w| {
                self.solve_block_rowwise(block, w);
            });
        } else {
            crate::threading::for_each_column_parallel(b, 2 * n * n, |x| self.solve_column(x));
        }
        if let Some(t0) = t0 {
            OBS_LU_PANEL_NS.record_duration(t0.elapsed());
        }
    }

    /// Solves `A X = B` into caller-provided storage: copies `b` into
    /// `out`, then solves in place — no allocation.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn solve_into<'b, 'o>(&self, b: impl Into<MatRef<'b, E>>, out: impl Into<MatMut<'o, E>>) {
        let mut out = out.into();
        out.copy_from(b.into());
        self.solve_in_place(out);
    }

    /// One forward + backward triangular sweep on a single permuted RHS
    /// column. Both substitutions are column-oriented AXPY updates, so
    /// they run on the SIMD dispatch path ([`crate::simd`]).
    fn solve_column(&self, x: &mut [E]) {
        let n = self.order();
        // Forward substitution with unit lower triangular L.
        for k in 0..n {
            let xk = x[k];
            if xk == E::ZERO {
                continue;
            }
            let lcol = self.lu.col(k);
            E::simd_axpy(-xk, &lcol[k + 1..], &mut x[k + 1..]);
        }
        // Backward substitution with U.
        for k in (0..n).rev() {
            let ucol = self.lu.col(k);
            let xk = x[k] / ucol[k];
            x[k] = xk;
            if xk == E::ZERO {
                continue;
            }
            E::simd_axpy(-xk, &ucol[..k], &mut x[..k]);
        }
    }

    /// Row-oriented multi-RHS sweep over a contiguous column-major block
    /// of `w` permuted RHS columns. The block is transposed into
    /// row-major scratch so every elimination step updates one *row*
    /// across all `w` columns with a single length-`w` AXPY (instead of
    /// `w` separate length-`<= n` column fragments), then transposed
    /// back; the two `O(n w)` transposes are noise next to the
    /// `O(n^2 w)` sweep. Per element the arithmetic is the same fused
    /// multiply-add and divide sequence as [`Self::solve_column`] — the
    /// AXPY multiplier and vector swap roles, and IEEE products commute
    /// exactly — so the orientation is a pure layout change. Enabled per
    /// element type via [`Element::WIDE_PANEL_SOLVE`].
    fn solve_block_rowwise(&self, data: &mut [E], w: usize) {
        let n = self.order();
        debug_assert_eq!(data.len(), n * w);
        let mut z = vec![E::ZERO; n * w];
        for (j, col) in data.chunks_exact(n).enumerate() {
            for (k, &v) in col.iter().enumerate() {
                z[k * w + j] = v;
            }
        }
        // Forward substitution with unit lower triangular L: row k is
        // final once reached, rows below accumulate `-L[i,k] * row_k`.
        for k in 0..n {
            let lcol = self.lu.col(k);
            let (head, tail) = z.split_at_mut((k + 1) * w);
            let zk = &head[k * w..];
            for (off, zi) in tail.chunks_exact_mut(w).enumerate() {
                let lik = lcol[k + 1 + off];
                if lik == E::ZERO {
                    continue;
                }
                E::simd_axpy(-lik, zk, zi);
            }
        }
        // Backward substitution with U.
        for k in (0..n).rev() {
            let ucol = self.lu.col(k);
            let (head, tail) = z.split_at_mut(k * w);
            let zk = &mut tail[..w];
            let ukk = ucol[k];
            for v in zk.iter_mut() {
                *v /= ukk;
            }
            for (i, zi) in head.chunks_exact_mut(w).enumerate() {
                let uik = ucol[i];
                if uik == E::ZERO {
                    continue;
                }
                E::simd_axpy(-uik, &*zk, zi);
            }
        }
        for (j, col) in data.chunks_exact_mut(n).enumerate() {
            for (k, v) in col.iter_mut().enumerate() {
                *v = z[k * w + j];
            }
        }
    }

    /// Solves `A X = B`, returning `X`.
    pub fn solve(&self, b: &Mat<E>) -> Mat<E> {
        let mut x = b.clone();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `X A = B` (right division), returning `X`.
    ///
    /// Implemented as `A^T X^T = B^T` using the identity
    /// `(X A)^T = A^T X^T`; costs one extra pair of transposes.
    pub fn solve_transposed_system(&self, b: &Mat<E>) -> Mat<E> {
        let mut xt = b.transpose();
        self.solve_transpose_in_place(&mut xt);
        xt.transpose()
    }

    /// Solves `A^T X = B` in place. Multi-column panels split across the
    /// intra-rank thread budget like [`Self::solve_in_place`].
    pub fn solve_transpose_in_place<'b>(&self, b: impl Into<MatMut<'b, E>>) {
        let mut b = b.into();
        let n = self.order();
        assert_eq!(b.rows(), n, "solve rhs row count mismatch");
        crate::threading::for_each_column_parallel(b.rb_mut(), 2 * n * n, |x| {
            self.solve_transpose_column(x);
        });
        // Undo the permutation last (sequential: touches all columns).
        for (k, &p) in self.piv.iter().enumerate().rev() {
            if p != k {
                swap_rows_view(&mut b, k, p);
            }
        }
    }

    /// One `U^T`/`L^T` sweep on a single RHS column:
    /// `A^T = (P^T L U)^T = U^T L^T P`, so solve `U^T w = b`, then
    /// `L^T v = w` (the caller applies `x = P^T v` afterwards). The
    /// inner products run on the SIMD dot-product path.
    fn solve_transpose_column(&self, x: &mut [E]) {
        let n = self.order();
        for k in 0..n {
            let ucol = self.lu.col(k);
            let s = x[k] - E::simd_dot(&x[..k], &ucol[..k]);
            x[k] = s / ucol[k];
        }
        for k in (0..n).rev() {
            let lcol = self.lu.col(k);
            let s = E::simd_dot(&x[k + 1..], &lcol[k + 1..]);
            x[k] -= s;
        }
    }

    /// Explicit inverse of the original matrix.
    pub fn inverse(&self) -> Mat<E> {
        let n = self.order();
        let mut inv = Mat::<E>::identity(n);
        self.solve_in_place(&mut inv);
        inv
    }
}

/// Swaps rows `i` and `j` of `m` in place.
fn swap_rows<E: Element>(m: &mut Mat<E>, i: usize, j: usize) {
    if i == j {
        return;
    }
    let rows = m.rows();
    let data = m.as_mut_slice();
    let cols = data.len() / rows;
    for c in 0..cols {
        data.swap(c * rows + i, c * rows + j);
    }
}

/// Swaps rows `i` and `j` of a (possibly strided) view in place.
pub(crate) fn swap_rows_view<E: Element>(m: &mut MatMut<'_, E>, i: usize, j: usize) {
    if i == j {
        return;
    }
    for c in 0..m.cols() {
        m.col_mut(c).swap(i, j);
    }
}

/// Convenience: factors `a` and solves `a x = b` in one call.
///
/// Prefer holding on to [`LuFactors`] when the same matrix is reused.
pub fn solve<E: Element>(a: &Mat<E>, b: &Mat<E>) -> Result<Mat<E>, SingularError> {
    Ok(LuFactors::factor(a)?.solve(b))
}

/// Convenience: explicit inverse of `a`.
pub fn invert<E: Element>(a: &Mat<E>) -> Result<Mat<E>, SingularError> {
    Ok(LuFactors::factor(a)?.inverse())
}

/// Flop count of an `n x n` LU factorization (2/3 n^3 to leading order).
#[inline]
pub const fn lu_flops(n: usize) -> u64 {
    let n = n as u64;
    (2 * n * n * n) / 3
}

/// Flop count of a triangular panel solve with `r` right-hand sides.
#[inline]
pub const fn lu_solve_flops(n: usize, r: usize) -> u64 {
    2 * (n as u64) * (n as u64) * (r as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn test_mat(n: usize, seed: f64) -> Mat {
        // Diagonally dominant => well conditioned and nonsingular.
        Mat::from_fn(n, n, |i, j| {
            let base = ((i * n + j) as f64 * 0.711 + seed).sin();
            if i == j {
                base + 2.0 * n as f64
            } else {
                base
            }
        })
    }

    #[test]
    fn factor_solve_roundtrip() {
        for n in [1, 2, 3, 5, 8, 17, 40] {
            let a = test_mat(n, 0.4);
            let lu = LuFactors::factor(&a).unwrap();
            let b = Mat::from_fn(n, 3, |i, j| (i + 2 * j) as f64);
            let x = lu.solve(&b);
            let r = matmul(&a, &x).sub(&b);
            assert!(r.max_abs() < 1e-9, "n={n} residual {}", r.max_abs());
        }
    }

    #[test]
    fn f32_factor_solve_roundtrip() {
        // The same elimination and triangular sweeps at f32, checked at
        // single-precision tolerance against the f64 reference problem.
        for n in [1, 3, 8, 17, 40] {
            let a = test_mat(n, 0.4);
            let a32 = a.convert::<f32>();
            let lu = LuFactors::factor(&a32).unwrap();
            let b = Mat::from_fn(n, 3, |i, j| (i + 2 * j) as f64);
            let x = lu.solve(&b.convert::<f32>());
            let r = matmul(&a, &x.convert::<f64>()).sub(&b);
            assert!(
                r.max_abs() < 1e-3 * n as f64,
                "n={n} f32 residual {}",
                r.max_abs()
            );
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = test_mat(12, 1.1);
        let inv = invert(&a).unwrap();
        let prod = matmul(&a, &inv);
        assert!(prod.sub(&Mat::identity(12)).max_abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        let b = Mat::from_rows(&[&[3.0], &[7.0]]);
        let x = lu.solve(&b);
        assert!((x[(0, 0)] - 7.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(LuFactors::factor(&a).is_err());
        let z: Mat = Mat::zeros(3, 3);
        let err = LuFactors::factor(&z).unwrap_err();
        assert_eq!(err.step, 0);
        // f32 singularity detection uses f32's epsilon in the threshold.
        let z32 = Mat::<f32>::zeros(2, 2);
        assert!(LuFactors::factor(&z32).is_err());
    }

    #[test]
    fn determinant_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        assert!((lu.det() - (-2.0)).abs() < 1e-14);

        let i5: Mat = Mat::identity(5);
        assert!((LuFactors::factor(&i5).unwrap().det() - 1.0).abs() < 1e-15);

        // Permutation matrix: det = -1.
        let p = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((LuFactors::factor(&p).unwrap().det() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn multi_rhs_panel_solve() {
        let n = 10;
        let a = test_mat(n, 2.2);
        let lu = LuFactors::factor(&a).unwrap();
        let b = Mat::from_fn(n, 7, |i, j| ((i * 7 + j) as f64).cos());
        let x = lu.solve(&b);
        assert!(matmul(&a, &x).sub(&b).max_abs() < 1e-10);
    }

    #[test]
    fn panel_solve_bitwise_identical_across_thread_budgets() {
        use crate::threading::with_thread_budget;
        // Wide enough panel (n^2 * r flops) to take the parallel path.
        let n = 60;
        let a = test_mat(n, 1.7);
        let lu = LuFactors::factor(&a).unwrap();
        let b = Mat::from_fn(n, 24, |i, j| ((i * 24 + j) as f64 * 0.13).cos());
        let x1 = with_thread_budget(1, || lu.solve(&b));
        for t in [2, 4, 7] {
            let xt = with_thread_budget(t, || lu.solve(&b));
            assert_eq!(x1, xt, "budget {t} changed the solve bits");
            let mut bt = b.clone();
            with_thread_budget(t, || lu.solve_transpose_in_place(&mut bt));
            let mut b1 = b.clone();
            with_thread_budget(1, || lu.solve_transpose_in_place(&mut b1));
            assert_eq!(b1, bt, "budget {t} changed the transpose-solve bits");
        }
    }

    #[test]
    fn f32_wide_panel_solve_matches_column_sweep_exactly() {
        // The row-oriented sweep is a pure layout change: per element it
        // performs the same FMA/divide sequence as the per-column sweep,
        // so the results agree bitwise. A strided output window forces
        // the legacy per-column path for the reference.
        for (n, r) in [(5, 8), (8, 24), (13, 24), (17, 9), (40, 16)] {
            let a32 = test_mat(n, 0.6).convert::<f32>();
            let lu = LuFactors::factor(&a32).unwrap();
            let b = Mat::from_fn(n, r, |i, j| ((i * r + j) as f64 * 0.37).sin()).convert::<f32>();
            let wide = lu.solve(&b);
            let mut scratch = Mat::<f32>::zeros(n + 3, r + 2);
            lu.solve_into(&b, scratch.submatrix_mut(1, 1, n, r));
            assert_eq!(scratch.block(1, 1, n, r), wide, "n={n} r={r}");
        }
    }

    #[test]
    fn f32_wide_panel_solve_bitwise_identical_across_thread_budgets() {
        use crate::threading::with_thread_budget;
        let n = 60;
        let a32 = test_mat(n, 1.7).convert::<f32>();
        let lu = LuFactors::factor(&a32).unwrap();
        let b = Mat::from_fn(n, 24, |i, j| ((i * 24 + j) as f64 * 0.13).cos()).convert::<f32>();
        let x1 = with_thread_budget(1, || lu.solve(&b));
        for t in [2, 4, 7] {
            let xt = with_thread_budget(t, || lu.solve(&b));
            assert_eq!(x1, xt, "budget {t} changed the f32 wide-solve bits");
        }
    }

    #[test]
    fn transpose_solve() {
        let n = 9;
        let a = test_mat(n, 0.9);
        let lu = LuFactors::factor(&a).unwrap();
        let b = Mat::from_fn(n, 2, |i, j| (i as f64 - j as f64).tanh());
        let mut x = b.clone();
        lu.solve_transpose_in_place(&mut x);
        let r = matmul(&a.transpose(), &x).sub(&b);
        assert!(r.max_abs() < 1e-10, "residual {}", r.max_abs());
    }

    #[test]
    fn right_division_solves_xa_eq_b() {
        let n = 6;
        let a = test_mat(n, 3.3);
        let lu = LuFactors::factor(&a).unwrap();
        let b = Mat::from_fn(4, n, |i, j| ((i + j) as f64 * 0.3).sin());
        let x = lu.solve_transposed_system(&b);
        assert_eq!(x.shape(), (4, n));
        let r = matmul(&x, &a).sub(&b);
        assert!(r.max_abs() < 1e-10, "residual {}", r.max_abs());
    }

    #[test]
    fn min_pivot_reflects_conditioning() {
        let good = test_mat(6, 0.5);
        let lu = LuFactors::factor(&good).unwrap();
        assert!(lu.min_pivot() > 1.0);
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(lu_flops(3), 18);
        assert_eq!(lu_solve_flops(3, 2), 36);
    }

    #[test]
    fn solve_into_matches_solve() {
        let n = 8;
        let a = test_mat(n, 0.8);
        let lu = LuFactors::factor(&a).unwrap();
        let b = Mat::from_fn(n, 3, |i, j| ((i * 3 + j) as f64 * 0.21).sin());
        let expect = lu.solve(&b);
        let mut out = Mat::zeros(n, 3);
        lu.solve_into(&b, &mut out);
        assert_eq!(out, expect);
        // Strided output window inside a larger scratch matrix.
        let mut scratch = Mat::filled(n + 4, 5, 9.0);
        lu.solve_into(&b, scratch.submatrix_mut(2, 1, n, 3));
        assert_eq!(scratch.block(2, 1, n, 3), expect);
        assert_eq!(scratch[(0, 0)], 9.0, "solve_into wrote outside window");
    }

    #[test]
    fn convenience_solve_matches_factor_solve() {
        let a = test_mat(5, 0.1);
        let b = Mat::from_fn(5, 1, |i, _| i as f64);
        let x1 = solve(&a, &b).unwrap();
        let x2 = LuFactors::factor(&a).unwrap().solve(&b);
        assert_eq!(x1, x2);
    }
}
