//! General matrix-matrix and matrix-vector multiplication kernels.
//!
//! The workhorse is [`gemm`], a BLAS-3-style update
//! `C <- alpha * op(A) * op(B) + beta * C` with optional transposition of
//! either operand. The no-transpose path is a cache-blocked column-major
//! kernel (j-k-i loop order, AXPY inner loops) that vectorizes well; the
//! transpose paths go through a lightweight packing step so the inner loops
//! stay contiguous.

use crate::mat::Mat;

/// Operand transposition selector for [`gemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// Effective `(rows, cols)` of `op(m)`.
    fn dims(self, m: &Mat) -> (usize, usize) {
        match self {
            Trans::No => (m.rows(), m.cols()),
            Trans::Yes => (m.cols(), m.rows()),
        }
    }
}

/// Column block width used by the blocked kernel. Chosen so a `KC x NB`
/// panel of B plus a column stripe of A stay L1/L2-resident for the block
/// sizes this suite uses (M up to a few hundred).
const NB: usize = 64;
/// Inner (k) blocking depth.
const KC: usize = 128;

/// `C <- alpha * op(A) * op(B) + beta * C`.
///
/// # Panics
///
/// Panics if the operand shapes are not conformable with `C`.
///
/// # Examples
///
/// ```
/// use bt_dense::{gemm, Mat, Trans};
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let mut c = Mat::zeros(2, 2);
/// gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
/// assert_eq!(c, a);
/// ```
pub fn gemm(alpha: f64, a: &Mat, ta: Trans, b: &Mat, tb: Trans, beta: f64, c: &mut Mat) {
    let (m, ka) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(ka, kb, "gemm inner dimension mismatch: {ka} vs {kb}");
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm output shape mismatch: expected {m}x{n}, got {}x{}",
        c.rows(),
        c.cols()
    );
    let k = ka;

    // Scale C by beta once up front.
    if beta == 0.0 {
        c.fill_zero();
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (Trans::No, Trans::No) => gemm_nn(alpha, a, b, c),
        _ => {
            // Pack op(A)/op(B) into plain column-major temporaries, then use
            // the fast no-transpose kernel. Packing is O(mk + kn), negligible
            // next to the O(mnk) multiply for the sizes we care about.
            let ap;
            let bp;
            let a_eff = match ta {
                Trans::No => a,
                Trans::Yes => {
                    ap = a.transpose();
                    &ap
                }
            };
            let b_eff = match tb {
                Trans::No => b,
                Trans::Yes => {
                    bp = b.transpose();
                    &bp
                }
            };
            gemm_nn(alpha, a_eff, b_eff, c);
        }
    }
}

/// Blocked `C += alpha * A * B` for plain column-major operands.
fn gemm_nn(alpha: f64, a: &Mat, b: &Mat, c: &mut Mat) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    let a_buf = a.as_slice();

    for j0 in (0..n).step_by(NB) {
        let jb = NB.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kb = KC.min(k - k0);
            for j in j0..j0 + jb {
                let c_col = c.col_mut(j);
                let b_col = b.col(j);
                for kk in k0..k0 + kb {
                    let w = alpha * b_col[kk];
                    if w == 0.0 {
                        continue;
                    }
                    let a_col = &a_buf[kk * m..kk * m + m];
                    // AXPY: c_col += w * a_col -- contiguous, auto-vectorized.
                    for (ci, ai) in c_col.iter_mut().zip(a_col) {
                        *ci += w * *ai;
                    }
                }
            }
        }
    }
}

/// Returns `a * b` as a freshly allocated matrix.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    gemm(1.0, a, Trans::No, b, Trans::No, 0.0, &mut c);
    c
}

/// `y <- alpha * A * x + beta * y` (matrix-vector product).
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn gemv(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), a.cols(), "gemv x length mismatch");
    assert_eq!(y.len(), a.rows(), "gemv y length mismatch");
    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for (j, &xj) in x.iter().enumerate() {
        let w = alpha * xj;
        if w == 0.0 {
            continue;
        }
        for (yi, ai) in y.iter_mut().zip(a.col(j)) {
            *yi += w * *ai;
        }
    }
}

/// Returns `a * x` for a vector `x`.
pub fn matvec(a: &Mat, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.rows()];
    gemv(1.0, a, x, 0.0, &mut y);
    y
}

/// Floating point operation count of `gemm` on `m x k` by `k x n` operands
/// (multiply-add counted as 2 flops). Used by the virtual-time cost model.
#[inline]
pub const fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Mat, b: &Mat, tol: f64) -> bool {
        a.shape() == b.shape() && a.sub(b).max_abs() <= tol
    }

    /// Naive reference multiply for cross-checking the blocked kernel.
    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn seq_mat(rows: usize, cols: usize, seed: f64) -> Mat {
        Mat::from_fn(rows, cols, |i, j| {
            ((i * cols + j) as f64 * 0.37 + seed).sin()
        })
    }

    #[test]
    fn matmul_identity() {
        let a = seq_mat(5, 5, 1.0);
        assert!(approx_eq(&matmul(&a, &Mat::identity(5)), &a, 0.0));
        assert!(approx_eq(&matmul(&Mat::identity(5), &a), &a, 0.0));
    }

    #[test]
    fn matmul_matches_naive_rectangular() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 2, 9), (16, 16, 16), (65, 130, 67)] {
            let a = seq_mat(m, k, 0.3);
            let b = seq_mat(k, n, 0.7);
            assert!(
                approx_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-12 * (k as f64)),
                "mismatch for {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = seq_mat(4, 4, 0.1);
        let b = seq_mat(4, 4, 0.2);
        let c0 = seq_mat(4, 4, 0.9);
        let mut c = c0.clone();
        gemm(2.0, &a, Trans::No, &b, Trans::No, 3.0, &mut c);
        let expect = naive_matmul(&a, &b).scaled(2.0).add(&c0.scaled(3.0));
        assert!(approx_eq(&c, &expect, 1e-12));
    }

    #[test]
    fn gemm_transpose_paths() {
        let a = seq_mat(6, 3, 0.4);
        let b = seq_mat(6, 5, 0.5);
        // C = A^T * B : 3x5
        let mut c = Mat::zeros(3, 5);
        gemm(1.0, &a, Trans::Yes, &b, Trans::No, 0.0, &mut c);
        assert!(approx_eq(&c, &naive_matmul(&a.transpose(), &b), 1e-12));

        // C = A^T * B^T where B is 5x6
        let b2 = seq_mat(5, 6, 0.8);
        let mut c2 = Mat::zeros(3, 5);
        gemm(1.0, &a, Trans::Yes, &b2, Trans::Yes, 0.0, &mut c2);
        assert!(approx_eq(
            &c2,
            &naive_matmul(&a.transpose(), &b2.transpose()),
            1e-12
        ));

        // C = A * B^T where A is 6x3, B is 5x3
        let b3 = seq_mat(5, 3, 0.2);
        let mut c3 = Mat::zeros(6, 5);
        gemm(1.0, &a, Trans::No, &b3, Trans::Yes, 0.0, &mut c3);
        assert!(approx_eq(&c3, &naive_matmul(&a, &b3.transpose()), 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let mut c = Mat::zeros(2, 3);
        gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
    }

    #[test]
    fn gemv_matches_matmul() {
        let a = seq_mat(5, 4, 0.6);
        let x: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let y = matvec(&a, &x);
        let xm = Mat::from_col_major(4, 1, x);
        let ym = matmul(&a, &xm);
        for i in 0..5 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn gemv_beta_accumulates() {
        let a = Mat::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 10.0, 10.0];
        gemv(2.0, &a, &x, 1.0, &mut y);
        assert_eq!(y, vec![12.0, 14.0, 16.0]);
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = Mat::zeros(0, 3);
        let b = Mat::zeros(3, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (0, 2));

        let a = Mat::zeros(2, 0);
        let b = Mat::zeros(0, 2);
        let mut c = Mat::filled(2, 2, 5.0);
        gemm(1.0, &a, Trans::No, &b, Trans::No, 1.0, &mut c);
        assert_eq!(c, Mat::filled(2, 2, 5.0));
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }
}
