//! General matrix-matrix and matrix-vector multiplication kernels.
//!
//! The workhorse is [`gemm`], a BLAS-3-style update
//! `C <- alpha * op(A) * op(B) + beta * C` with optional transposition of
//! either operand, dispatched over three kernels by measured crossover
//! (see the [`Element`] crossover constants):
//!
//! * [`gemm_small`] — fully unrolled whole-block kernels for exact
//!   `M x M x M` products with `M` in {4, 8, 16}, the block orders that
//!   dominate ARD workloads. No packing, no blocking loops.
//! * [`gemm_axpy`] — a lean cache-blocked j-k-i kernel whose AXPY inner
//!   loops go through the runtime-dispatched SIMD primitives
//!   ([`crate::simd`]).
//! * [`gemm_packed`] — a BLIS-style packed kernel: operand panels are
//!   repacked into contiguous `E::MR`-tall / `E::NR`-wide micro-panels
//!   and multiplied by a register-tiled microkernel (in [`crate::simd`],
//!   FMA-vectorized where the CPU allows), with the `jc` (column-block)
//!   and `ic` (row-block) macro-loops parallelized over the intra-rank
//!   thread budget ([`crate::threading`]).
//!
//! Every kernel is generic over the element type (`f64` by default,
//! `f32` for the mixed-precision solve path); the tile shape and the
//! packed-vs-AXPY crossover come from the [`Element`] impl, and the
//! per-type SIMD kernels are reached through its dispatch hooks.
//!
//! Every public kernel accepts `impl Into<MatRef>` / `impl Into<MatMut>`
//! operands, so both owned matrices (`&Mat` / `&mut Mat`) and borrowed
//! [`MatRef`]/[`MatMut`] views (including strided submatrix windows)
//! work without copies. Packing scratch lives in per-type thread-local
//! buffers ([`Element::with_pack_bufs`]), so warm calls on a given
//! thread allocate nothing.
//!
//! Both kernels accumulate every term unconditionally (no zero
//! short-circuits), so non-finite inputs propagate into the output as
//! IEEE-754 dictates. Both also fix the per-element summation order
//! independently of blocking and thread count: for a given problem the
//! result is bitwise identical whether the kernel runs on 1 thread or 16.

use crate::element::Element;
use crate::mat::Mat;
use crate::simd::{self, Isa};
use crate::threading;
use crate::view::{MatMut, MatRef};

/// Observability counters (no-ops unless `BT_OBS` is on): dispatch counts
/// for the small/packed/AXPY split, how many dispatches ran on a SIMD
/// instruction set, total flops issued through this module, and
/// nanoseconds spent repacking operand panels — the raw inputs for
/// checking the CostModel's compute term against real kernel behaviour.
/// Counters aggregate over both element types; the per-call precision is
/// visible in the bench schemas instead.
static OBS_PACKED_CALLS: bt_obs::Counter = bt_obs::Counter::new("bt_dense.gemm.packed_calls");
static OBS_AXPY_CALLS: bt_obs::Counter = bt_obs::Counter::new("bt_dense.gemm.axpy_calls");
static OBS_SMALL_CALLS: bt_obs::Counter = bt_obs::Counter::new("bt_dense.gemm.small_calls");
static OBS_SIMD_CALLS: bt_obs::Counter = bt_obs::Counter::new("bt_dense.gemm.simd_calls");
static OBS_GEMV_CALLS: bt_obs::Counter = bt_obs::Counter::new("bt_dense.gemm.gemv_calls");
static OBS_GEMM_FLOPS: bt_obs::Counter = bt_obs::Counter::new("bt_dense.gemm.flops");
static OBS_PACK_NS: bt_obs::Counter = bt_obs::Counter::new("bt_dense.gemm.pack_ns");
/// Last-dispatched instruction set, encoded per [`Isa::index`]
/// (0 = scalar, 1 = avx2+fma, 2 = neon).
static OBS_DISPATCH_ISA: bt_obs::Gauge = bt_obs::Gauge::new("bt_dense.gemm.dispatch_isa");

/// Operand transposition selector for [`gemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// Effective `(rows, cols)` of `op(m)`.
    fn dims<E: Element>(self, m: MatRef<'_, E>) -> (usize, usize) {
        match self {
            Trans::No => (m.rows(), m.cols()),
            Trans::Yes => (m.cols(), m.rows()),
        }
    }
}

/// Column block width shared by both kernels (`NC` in BLIS terms): a
/// `KC x NB` panel of B plus a column stripe of A stay cache-resident.
const NB: usize = 64;
/// Inner (k) blocking depth (`KC`).
const KC: usize = 128;
/// Row block height of the packed kernel's `ic` macro-loop (`MC`): one
/// packed `MC x KC` A-panel is 256 KiB at f64 (sized for outer-cache
/// residency), 128 KiB at f32.
const MC: usize = 256;

/// Upper bound of `E::MR * E::NR` over the implemented element types
/// (f32's 16 x 4 tile): the microkernel accumulator is a fixed-size
/// stack array of this size, sliced down per type, because stable Rust
/// cannot size an array by an associated const.
const ACC_MAX: usize = 64;

/// Minimum rows per intra-rank thread for the `ic`-parallel path.
const IC_MIN_ROWS: usize = 64;

/// `C <- alpha * op(A) * op(B) + beta * C`.
///
/// Operands may be `&Mat`, `&mut Mat`, or borrowed views
/// ([`MatRef`]/[`MatMut`], including strided submatrix windows), at
/// either element type (all operands must agree).
///
/// # Panics
///
/// Panics if the operand shapes are not conformable with `C`.
///
/// # Examples
///
/// ```
/// use bt_dense::{gemm, Mat, Trans};
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let mut c = Mat::zeros(2, 2);
/// gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
/// assert_eq!(c, a);
/// ```
pub fn gemm<'a, 'b, 'c, E: Element>(
    alpha: E,
    a: impl Into<MatRef<'a, E>>,
    ta: Trans,
    b: impl Into<MatRef<'b, E>>,
    tb: Trans,
    beta: E,
    c: impl Into<MatMut<'c, E>>,
) {
    gemm_ref(alpha, a.into(), ta, b.into(), tb, beta, c.into());
}

fn gemm_ref<E: Element>(
    alpha: E,
    a: MatRef<'_, E>,
    ta: Trans,
    b: MatRef<'_, E>,
    tb: Trans,
    beta: E,
    mut c: MatMut<'_, E>,
) {
    let (m, ka) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(ka, kb, "gemm inner dimension mismatch: {ka} vs {kb}");
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm output shape mismatch: expected {m}x{n}, got {}x{}",
        c.rows(),
        c.cols()
    );
    let k = ka;

    // Scale C by beta once up front.
    if beta == E::ZERO {
        c.fill_zero();
    } else if beta != E::ONE {
        c.scale(beta);
    }
    if alpha == E::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (Trans::No, Trans::No) => gemm_nn(alpha, a, b, c),
        _ => {
            // Pack op(A)/op(B) into plain column-major temporaries, then use
            // the fast no-transpose kernel. Packing is O(mk + kn), negligible
            // next to the O(mnk) multiply for the sizes we care about.
            let ap;
            let bp;
            let a_eff = match ta {
                Trans::No => a,
                Trans::Yes => {
                    ap = transpose_of(a);
                    ap.as_ref()
                }
            };
            let b_eff = match tb {
                Trans::No => b,
                Trans::Yes => {
                    bp = transpose_of(b);
                    bp.as_ref()
                }
            };
            gemm_nn(alpha, a_eff, b_eff, c);
        }
    }
}

/// Materializes the transpose of a view (for the `Trans::Yes` paths).
fn transpose_of<E: Element>(v: MatRef<'_, E>) -> Mat<E> {
    let mut t = Mat::<E>::zeros(v.cols(), v.rows());
    for j in 0..v.cols() {
        for i in 0..v.rows() {
            t.set(j, i, v.get(i, j));
        }
    }
    t
}

/// `C += alpha * A * B` for plain column-major operands: dispatches
/// between the small-block, packed and AXPY kernels on problem shape
/// and size (measured crossover — see the `Element` crossover consts).
fn gemm_nn<E: Element>(alpha: E, a: MatRef<'_, E>, b: MatRef<'_, E>, mut c: MatMut<'_, E>) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let isa = simd::active();
    if bt_obs::enabled() {
        OBS_DISPATCH_ISA.set(f64::from(isa.index()));
        if isa != Isa::Scalar {
            OBS_SIMD_CALLS.incr();
        }
    }
    if m == n && E::simd_gemm_small(alpha, a, b, &mut c) {
        OBS_SMALL_CALLS.incr();
        OBS_GEMM_FLOPS.add(gemm_flops(m, k, n));
        return;
    }
    let packed_min = if isa == Isa::Scalar {
        E::PACKED_MIN_FLOPS_SCALAR
    } else {
        E::PACKED_MIN_FLOPS_SIMD
    };
    if 2 * m * k * n >= packed_min {
        gemm_packed_ref(alpha, a, b, c);
    } else {
        gemm_axpy_ref(alpha, a, b, c);
    }
}

/// Whole-block `C += alpha * A * B` for exact `M x M` operands with
/// `M` in {4, 8, 16} — the fully unrolled small-block specialization
/// the dispatcher prefers for ARD-sized blocks. Returns `false` without
/// touching `C` when the shape is not an exact small block (callers
/// fall back to [`gemm`]); exposed so benches can time it against the
/// other kernels directly.
pub fn gemm_small<'a, 'b, 'c, E: Element>(
    alpha: E,
    a: impl Into<MatRef<'a, E>>,
    b: impl Into<MatRef<'b, E>>,
    c: impl Into<MatMut<'c, E>>,
) -> bool {
    let (a, b, mut c) = (a.into(), b.into(), c.into());
    let hit = E::simd_gemm_small(alpha, a, b, &mut c);
    if hit {
        OBS_SMALL_CALLS.incr();
        OBS_GEMM_FLOPS.add(gemm_flops(a.rows(), a.rows(), a.rows()));
    }
    hit
}

/// A kernel choice frozen from a *full* problem shape, applicable to
/// any column slice of that problem.
///
/// The dispatcher in [`gemm`] picks packed vs. AXPY from `2*m*k*n`, so
/// naively calling `gemm` per column-tile of a wide panel can cross the
/// crossover threshold (or, for square tiles, hit the small-block
/// kernels) and change the kernel — and with it the bitwise result —
/// as a function of the tile width. `ColsplitPlan` freezes the decision
/// once, from the full `(m, k, n)`: both selectable kernels accumulate
/// each output column independently in fixed `k`-order (packed's NR
/// zero-padding is inert, AXPY's column loop is outermost), so applying
/// the same plan tile-by-tile is bitwise identical to one full-width
/// call. Used by the RHS-tiled replay pipeline in bt-ard.
///
/// The small-block kernels are deliberately never chosen: they require
/// exact `M x M` shapes, which a partial tile cannot guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColsplitPlan {
    packed: bool,
}

/// Freezes the packed-vs-AXPY kernel choice for the full `(m, k, n)`
/// problem at the default `f64` element type, for column-tiled
/// application via [`ColsplitPlan::apply`].
pub fn colsplit_plan(m: usize, k: usize, n: usize) -> ColsplitPlan {
    colsplit_plan_for::<f64>(m, k, n)
}

/// [`colsplit_plan`] at an explicit element type — the crossover
/// constants are per-precision, so a plan frozen for `f32` tiles must be
/// frozen with `f32`'s thresholds.
pub fn colsplit_plan_for<E: Element>(m: usize, k: usize, n: usize) -> ColsplitPlan {
    let packed_min = if simd::active() == Isa::Scalar {
        E::PACKED_MIN_FLOPS_SCALAR
    } else {
        E::PACKED_MIN_FLOPS_SIMD
    };
    ColsplitPlan {
        packed: 2 * m * k * n >= packed_min,
    }
}

impl ColsplitPlan {
    /// `C += alpha * A * B` with the frozen kernel. `b`/`c` may be any
    /// column slice of the planned problem (same `m` and `k`, any `n`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not conformable.
    pub fn apply<'a, 'b, 'c, E: Element>(
        &self,
        alpha: E,
        a: impl Into<MatRef<'a, E>>,
        b: impl Into<MatRef<'b, E>>,
        c: impl Into<MatMut<'c, E>>,
    ) {
        if self.packed {
            gemm_packed_ref(alpha, a.into(), b.into(), c.into());
        } else {
            gemm_axpy_ref(alpha, a.into(), b.into(), c.into());
        }
    }
}

/// Cache-blocked `C += alpha * A * B` with AXPY inner loops (j-k-i loop
/// order). The small-problem kernel; exposed for benchmarking against
/// [`gemm_packed`].
///
/// # Panics
///
/// Panics if shapes are not conformable.
pub fn gemm_axpy<'a, 'b, 'c, E: Element>(
    alpha: E,
    a: impl Into<MatRef<'a, E>>,
    b: impl Into<MatRef<'b, E>>,
    c: impl Into<MatMut<'c, E>>,
) {
    gemm_axpy_ref(alpha, a.into(), b.into(), c.into());
}

fn gemm_axpy_ref<E: Element>(alpha: E, a: MatRef<'_, E>, b: MatRef<'_, E>, mut c: MatMut<'_, E>) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(k, b.rows(), "gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    OBS_AXPY_CALLS.incr();
    OBS_GEMM_FLOPS.add(gemm_flops(m, k, n));

    for j0 in (0..n).step_by(NB) {
        let jb = NB.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kb = KC.min(k - k0);
            for j in j0..j0 + jb {
                let b_col = b.col(j);
                let c_col = c.col_mut(j);
                for (kk, bk) in b_col.iter().enumerate().skip(k0).take(kb) {
                    // No skip on zero weights: 0 * inf and 0 * NaN must
                    // reach C as NaN, matching IEEE-754 and the packed
                    // kernel.
                    let w = alpha * *bk;
                    // AXPY: c_col += w * a_col — contiguous columns through
                    // the runtime-dispatched SIMD primitive (FMA per
                    // element where the CPU allows).
                    E::simd_axpy(w, a.col(kk), c_col);
                }
            }
        }
    }
}

/// BLIS-style packed `C += alpha * A * B` for plain column-major
/// operands.
///
/// A and B panels are repacked into contiguous `E::MR x KC` /
/// `KC x E::NR` micro-panels (zero-padded at the edges) and combined by
/// a register-tiled microkernel. Packing scratch is checked out of
/// per-type thread-local buffers, so warm calls allocate nothing. When
/// the calling thread's budget ([`threading::current_threads`]) exceeds
/// 1, the `jc` macro-loop (column blocks) — or, for single-column-block
/// shapes, the `ic` macro-loop (row blocks) — is distributed across
/// threads. Per-element summation order is fixed by the `KC` partition
/// of `k` alone, so the result is bitwise identical for every thread
/// count.
///
/// # Panics
///
/// Panics if shapes are not conformable.
pub fn gemm_packed<'a, 'b, 'c, E: Element>(
    alpha: E,
    a: impl Into<MatRef<'a, E>>,
    b: impl Into<MatRef<'b, E>>,
    c: impl Into<MatMut<'c, E>>,
) {
    gemm_packed_ref(alpha, a.into(), b.into(), c.into());
}

fn gemm_packed_ref<E: Element>(alpha: E, a: MatRef<'_, E>, b: MatRef<'_, E>, mut c: MatMut<'_, E>) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(k, b.rows(), "gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    OBS_PACKED_CALLS.incr();
    OBS_GEMM_FLOPS.add(gemm_flops(m, k, n));

    let (lda, ldb, ldc) = (a.col_stride(), b.col_stride(), c.col_stride());
    let a_buf = a.data;
    let b_buf = b.data;
    let threads = threading::current_threads();
    let jc_blocks = n.div_ceil(NB);

    if threads > 1 && jc_blocks > 1 {
        // jc-parallel: disjoint NB-aligned column stripes of C. The
        // backing buffer is split at column boundaries (columns never
        // interleave in column-major storage, whatever the stride), so
        // each thread owns a contiguous sub-slice. The split points
        // match the sequential stripe order exactly.
        let t = threads.min(jc_blocks);
        let cols_per = jc_blocks.div_ceil(t) * NB;
        // Partial move of the view's fields (MatMut has no Drop): the
        // raw buffer is what gets carved up across threads.
        let mut rest = c.data;
        rayon::scope(|s| {
            let mut j0 = 0;
            while j0 < n {
                let ncols = cols_per.min(n - j0);
                let split = if j0 + ncols < n {
                    ncols * ldc
                } else {
                    rest.len()
                };
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(split);
                rest = tail;
                let b_chunk = &b_buf[j0 * ldb..];
                s.spawn(move |_| {
                    packed_stripe(alpha, a_buf, lda, 0, m, k, b_chunk, ldb, ncols, chunk, ldc);
                });
                j0 += ncols;
            }
        });
    } else if threads > 1 && m >= 2 * IC_MIN_ROWS {
        // ic-parallel: disjoint row stripes. Column-major C rows
        // interleave, so each thread works on a private copy of its row
        // stripe and the main thread copies the stripes back; writebacks
        // inside the stripe happen in the same order as the direct path,
        // keeping the result bitwise independent of the thread count.
        // (The stripe copies are allocated per call — this path only
        // runs under a multi-thread budget, never on the zero-alloc
        // replay path.)
        let t = threads.min(m / IC_MIN_ROWS).max(1);
        let rows_per = m.div_ceil(t).next_multiple_of(E::MR);
        let ranges: Vec<(usize, usize)> = (0..m)
            .step_by(rows_per)
            .map(|r0| (r0, rows_per.min(m - r0)))
            .collect();
        let mut stripes: Vec<Vec<E>> = ranges
            .iter()
            .map(|&(r0, mb)| {
                let mut s = vec![E::ZERO; mb * n];
                for j in 0..n {
                    s[j * mb..(j + 1) * mb].copy_from_slice(&c.col(j)[r0..r0 + mb]);
                }
                s
            })
            .collect();
        rayon::scope(|s| {
            for (&(r0, mb), stripe) in ranges.iter().zip(stripes.iter_mut()) {
                s.spawn(move |_| {
                    packed_stripe(alpha, a_buf, lda, r0, mb, k, b_buf, ldb, n, stripe, mb);
                });
            }
        });
        for (&(r0, mb), stripe) in ranges.iter().zip(&stripes) {
            for j in 0..n {
                c.col_mut(j)[r0..r0 + mb].copy_from_slice(&stripe[j * mb..(j + 1) * mb]);
            }
        }
    } else {
        packed_stripe(alpha, a_buf, lda, 0, m, k, b_buf, ldb, n, c.data, ldc);
    }
}

/// Sequential packed kernel over one stripe: rows `[row0, row0 + mb)` of
/// A against all `ncols` columns of the B stripe, accumulating into `c`
/// (leading dimension `ldc`, stripe rows starting at index 0).
#[allow(clippy::too_many_arguments)]
fn packed_stripe<E: Element>(
    alpha: E,
    a: &[E],
    lda: usize,
    row0: usize,
    mb_total: usize,
    k: usize,
    b: &[E],
    ldb: usize,
    ncols: usize,
    c: &mut [E],
    ldc: usize,
) {
    let (mr, nr) = (E::MR, E::NR);
    E::with_pack_bufs(|packed_a, packed_b| {
        packed_b.clear();
        packed_b.resize(KC * ncols.next_multiple_of(nr), E::ZERO);
        packed_a.clear();
        packed_a.resize(MC.min(mb_total).next_multiple_of(mr) * KC, E::ZERO);
        // Pack-time accounting: accumulate locally, publish once per stripe
        // so the hot loop touches no shared state.
        let obs = bt_obs::enabled();
        let mut pack_ns = 0u64;
        let mut timed = |work: &mut dyn FnMut()| {
            if obs {
                let t0 = std::time::Instant::now();
                work();
                pack_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            } else {
                work();
            }
        };

        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            timed(&mut || pack_b(b, ldb, pc, kb, ncols, packed_b));
            for ic in (0..mb_total).step_by(MC) {
                let mbb = MC.min(mb_total - ic);
                timed(&mut || pack_a(a, lda, row0 + ic, mbb, pc, kb, packed_a));
                let n_jr = ncols.div_ceil(nr);
                let n_ir = mbb.div_ceil(mr);
                for jr in 0..n_jr {
                    let jb = nr.min(ncols - jr * nr);
                    let pb = &packed_b[jr * kb * nr..][..kb * nr];
                    for ir in 0..n_ir {
                        let ib = mr.min(mbb - ir * mr);
                        let pa = &packed_a[ir * kb * mr..][..kb * mr];
                        // Fixed-size stack tile sliced to this type's
                        // MR * NR (stable Rust cannot size an array by an
                        // associated const).
                        let mut acc = [E::ZERO; ACC_MAX];
                        E::simd_microkernel(kb, pa, pb, &mut acc);
                        // Writeback the valid ib x jb corner of the tile.
                        for jj in 0..jb {
                            let dst = &mut c[(jr * nr + jj) * ldc + ic + ir * mr..][..ib];
                            let src = &acc[jj * mr..jj * mr + ib];
                            for (ci, &av) in dst.iter_mut().zip(src) {
                                *ci += alpha * av;
                            }
                        }
                    }
                }
            }
        }
        if obs {
            OBS_PACK_NS.add(pack_ns);
        }
    });
}

/// Packs rows `[row0, row0 + mb)` of the `KC`-deep A panel at `pc` into
/// `E::MR`-tall micro-panels: `out[ir * kb * MR + p * MR + ii]`,
/// zero-padded to full MR height.
fn pack_a<E: Element>(
    a: &[E],
    lda: usize,
    row0: usize,
    mb: usize,
    pc: usize,
    kb: usize,
    out: &mut [E],
) {
    let mr = E::MR;
    let n_ir = mb.div_ceil(mr);
    out[..n_ir * kb * mr].fill(E::ZERO);
    for ir in 0..n_ir {
        let ib = mr.min(mb - ir * mr);
        let dst_base = ir * kb * mr;
        for p in 0..kb {
            let src = &a[(pc + p) * lda + row0 + ir * mr..][..ib];
            out[dst_base + p * mr..dst_base + p * mr + ib].copy_from_slice(src);
        }
    }
}

/// Packs the `KC`-deep B panel at `pc` into `E::NR`-wide micro-panels:
/// `out[jr * kb * NR + p * NR + jj]`, zero-padded to full NR width.
fn pack_b<E: Element>(b: &[E], ldb: usize, pc: usize, kb: usize, ncols: usize, out: &mut [E]) {
    let nr = E::NR;
    let n_jr = ncols.div_ceil(nr);
    out[..n_jr * kb * nr].fill(E::ZERO);
    for jr in 0..n_jr {
        let jb = nr.min(ncols - jr * nr);
        let dst_base = jr * kb * nr;
        for jj in 0..jb {
            let src = &b[(jr * nr + jj) * ldb + pc..][..kb];
            for (p, &v) in src.iter().enumerate() {
                out[dst_base + p * nr + jj] = v;
            }
        }
    }
}

/// Returns `a * b` as a freshly allocated matrix.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul<E: Element>(a: &Mat<E>, b: &Mat<E>) -> Mat<E> {
    let mut c = Mat::<E>::zeros(a.rows(), b.cols());
    gemm(E::ONE, a, Trans::No, b, Trans::No, E::ZERO, &mut c);
    c
}

/// `y <- alpha * A * x + beta * y` (matrix-vector product).
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn gemv<'a, E: Element>(alpha: E, a: impl Into<MatRef<'a, E>>, x: &[E], beta: E, y: &mut [E]) {
    let a = a.into();
    assert_eq!(x.len(), a.cols(), "gemv x length mismatch");
    assert_eq!(y.len(), a.rows(), "gemv y length mismatch");
    OBS_GEMV_CALLS.incr();
    OBS_GEMM_FLOPS.add(gemm_flops(a.rows(), a.cols(), 1));
    if beta == E::ZERO {
        y.fill(E::ZERO);
    } else if beta != E::ONE {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for (j, &xj) in x.iter().enumerate() {
        // No skip on zero weights (see gemm_axpy): non-finite entries of
        // A must propagate even when the matching x entry is zero.
        let w = alpha * xj;
        E::simd_axpy(w, a.col(j), y);
    }
}

/// Returns `a * x` for a vector `x`.
pub fn matvec<E: Element>(a: &Mat<E>, x: &[E]) -> Vec<E> {
    let mut y = vec![E::ZERO; a.rows()];
    gemv(E::ONE, a, x, E::ZERO, &mut y);
    y
}

/// Floating point operation count of `gemm` on `m x k` by `k x n` operands
/// (multiply-add counted as 2 flops). Used by the virtual-time cost model.
#[inline]
pub const fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threading::with_thread_budget;

    fn approx_eq(a: &Mat, b: &Mat, tol: f64) -> bool {
        a.shape() == b.shape() && a.sub(b).max_abs() <= tol
    }

    /// Naive reference multiply for cross-checking the blocked kernels.
    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn seq_mat(rows: usize, cols: usize, seed: f64) -> Mat {
        Mat::from_fn(rows, cols, |i, j| {
            ((i * cols + j) as f64 * 0.37 + seed).sin()
        })
    }

    #[test]
    fn matmul_identity() {
        let a = seq_mat(5, 5, 1.0);
        assert!(approx_eq(&matmul(&a, &Mat::identity(5)), &a, 0.0));
        assert!(approx_eq(&matmul(&Mat::identity(5), &a), &a, 0.0));
    }

    #[test]
    fn matmul_matches_naive_rectangular() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 2, 9), (16, 16, 16), (65, 130, 67)] {
            let a = seq_mat(m, k, 0.3);
            let b = seq_mat(k, n, 0.7);
            assert!(
                approx_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-12 * (k as f64)),
                "mismatch for {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn packed_matches_naive_at_blocking_boundaries() {
        // Sizes straddling MR (8), NR (4), NB (64) and KC (128) edges,
        // including deliberately ragged tails.
        for &(m, k, n) in &[
            (63, 64, 65),
            (64, 63, 64),
            (65, 65, 63),
            (127, 128, 129),
            (130, 127, 128),
            (9, 200, 5),
            (200, 9, 3),
            (1, 129, 1),
        ] {
            let a = seq_mat(m, k, 0.21);
            let b = seq_mat(k, n, 0.83);
            let mut c = Mat::zeros(m, n);
            gemm_packed(1.0, &a, &b, &mut c);
            assert!(
                approx_eq(&c, &naive_matmul(&a, &b), 1e-12 * (k as f64)),
                "packed mismatch for {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn packed_f32_matches_f64_reference() {
        // The f32 packed kernel (16 x 4 microkernel, f32 packing) against
        // the f64 naive product, at single-precision tolerance. Sizes
        // straddle the f32 tile edges (MR = 16) and the KC boundary.
        for &(m, k, n) in &[(17, 33, 5), (48, 128, 31), (130, 129, 40), (1, 257, 1)] {
            let a = seq_mat(m, k, 0.21);
            let b = seq_mat(k, n, 0.83);
            let a32 = a.convert::<f32>();
            let b32 = b.convert::<f32>();
            let mut c32 = Mat::<f32>::zeros(m, n);
            gemm_packed(1.0f32, &a32, &b32, &mut c32);
            let expect = naive_matmul(&a, &b);
            let diff = c32.convert::<f64>().sub(&expect).max_abs();
            assert!(
                diff <= 1e-5 * (k as f64),
                "f32 packed mismatch for {m}x{k}x{n}: {diff:e}"
            );
        }
    }

    #[test]
    fn axpy_and_small_f32_match_f64_reference() {
        // The f32 AXPY kernel and the f32 small-block kernels against the
        // f64 naive product.
        for &(m, k, n) in &[(4, 4, 4), (8, 8, 8), (16, 16, 16), (7, 9, 5)] {
            let a = seq_mat(m, k, 0.4);
            let b = seq_mat(k, n, 0.6);
            let mut c32 = Mat::<f32>::zeros(m, n);
            gemm(
                1.0f32,
                &a.convert::<f32>(),
                Trans::No,
                &b.convert::<f32>(),
                Trans::No,
                0.0,
                &mut c32,
            );
            let diff = c32.convert::<f64>().sub(&naive_matmul(&a, &b)).max_abs();
            assert!(diff <= 1e-5 * (k as f64), "f32 mismatch for {m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_accumulates_with_alpha() {
        let a = seq_mat(70, 40, 0.5);
        let b = seq_mat(40, 70, 0.6);
        let c0 = seq_mat(70, 70, 0.7);
        let mut c = c0.clone();
        gemm_packed(-1.5, &a, &b, &mut c);
        let expect = c0.add(&naive_matmul(&a, &b).scaled(-1.5));
        assert!(approx_eq(&c, &expect, 1e-11));
    }

    #[test]
    fn packed_bitwise_identical_across_thread_budgets() {
        // Both parallel macro-loop splits (jc for wide C, ic for tall C)
        // must preserve the per-element summation order exactly.
        for &(m, k, n) in &[(96, 300, 200), (400, 150, 40)] {
            let a = seq_mat(m, k, 0.11);
            let b = seq_mat(k, n, 0.91);
            let mut c1 = Mat::zeros(m, n);
            with_thread_budget(1, || gemm_packed(1.0, &a, &b, &mut c1));
            for t in [2, 3, 5] {
                let mut ct = Mat::zeros(m, n);
                with_thread_budget(t, || gemm_packed(1.0, &a, &b, &mut ct));
                assert_eq!(c1, ct, "budget {t} changed bits for {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn packed_f32_bitwise_identical_across_thread_budgets() {
        // The ic-parallel row split aligns stripes to E::MR — exercise it
        // at the f32 tile height too.
        for &(m, k, n) in &[(96, 300, 200), (400, 150, 40)] {
            let a = seq_mat(m, k, 0.11).convert::<f32>();
            let b = seq_mat(k, n, 0.91).convert::<f32>();
            let mut c1 = Mat::<f32>::zeros(m, n);
            with_thread_budget(1, || gemm_packed(1.0f32, &a, &b, &mut c1));
            for t in [2, 5] {
                let mut ct = Mat::<f32>::zeros(m, n);
                with_thread_budget(t, || gemm_packed(1.0f32, &a, &b, &mut ct));
                assert_eq!(c1, ct, "budget {t} changed f32 bits for {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn axpy_and_packed_agree() {
        let a = seq_mat(80, 90, 0.2);
        let b = seq_mat(90, 70, 0.4);
        let mut cp = Mat::zeros(80, 70);
        let mut cx = Mat::zeros(80, 70);
        gemm_packed(1.0, &a, &b, &mut cp);
        gemm_axpy(1.0, &a, &b, &mut cx);
        assert!(approx_eq(&cp, &cx, 1e-12 * 90.0));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = seq_mat(4, 4, 0.1);
        let b = seq_mat(4, 4, 0.2);
        let c0 = seq_mat(4, 4, 0.9);
        let mut c = c0.clone();
        gemm(2.0, &a, Trans::No, &b, Trans::No, 3.0, &mut c);
        let expect = naive_matmul(&a, &b).scaled(2.0).add(&c0.scaled(3.0));
        assert!(approx_eq(&c, &expect, 1e-12));
    }

    #[test]
    fn gemm_transpose_paths() {
        let a = seq_mat(6, 3, 0.4);
        let b = seq_mat(6, 5, 0.5);
        // C = A^T * B : 3x5
        let mut c = Mat::zeros(3, 5);
        gemm(1.0, &a, Trans::Yes, &b, Trans::No, 0.0, &mut c);
        assert!(approx_eq(&c, &naive_matmul(&a.transpose(), &b), 1e-12));

        // C = A^T * B^T where B is 5x6
        let b2 = seq_mat(5, 6, 0.8);
        let mut c2 = Mat::zeros(3, 5);
        gemm(1.0, &a, Trans::Yes, &b2, Trans::Yes, 0.0, &mut c2);
        assert!(approx_eq(
            &c2,
            &naive_matmul(&a.transpose(), &b2.transpose()),
            1e-12
        ));

        // C = A * B^T where A is 6x3, B is 5x3
        let b3 = seq_mat(5, 3, 0.2);
        let mut c3 = Mat::zeros(6, 5);
        gemm(1.0, &a, Trans::No, &b3, Trans::Yes, 0.0, &mut c3);
        assert!(approx_eq(&c3, &naive_matmul(&a, &b3.transpose()), 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_shape_mismatch_panics() {
        let a: Mat = Mat::zeros(2, 3);
        let b: Mat = Mat::zeros(2, 3);
        let mut c: Mat = Mat::zeros(2, 3);
        gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
    }

    #[test]
    fn gemv_matches_matmul() {
        let a = seq_mat(5, 4, 0.6);
        let x: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let y = matvec(&a, &x);
        let xm = Mat::from_col_major(4, 1, x);
        let ym = matmul(&a, &xm);
        for i in 0..5 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn gemv_beta_accumulates() {
        let a = Mat::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 10.0, 10.0];
        gemv(2.0, &a, &x, 1.0, &mut y);
        assert_eq!(y, vec![12.0, 14.0, 16.0]);
    }

    #[test]
    fn nonfinite_propagates_through_zero_weights() {
        // A NaN in A must reach C even when the matching B entry is 0.0
        // (0 * NaN == NaN); the old kernels skipped zero weights and
        // silently produced finite garbage instead.
        let mut a = Mat::identity(3);
        a.set(1, 0, f64::NAN);
        let b = Mat::zeros(3, 2);
        let c = matmul(&a, &b);
        assert!(c[(1, 0)].is_nan(), "gemm dropped 0 * NaN");

        let mut y = vec![0.0; 3];
        gemv(1.0, &a, &[0.0, 0.0, 0.0], 0.0, &mut y);
        assert!(y[1].is_nan(), "gemv dropped 0 * NaN");

        // Same through the packed kernel.
        let mut ap = Mat::identity(64);
        ap.set(3, 2, f64::INFINITY);
        let bp = Mat::zeros(64, 64);
        let mut cp = Mat::zeros(64, 64);
        gemm_packed(1.0, &ap, &bp, &mut cp);
        assert!(cp[(3, 2)].is_nan(), "packed dropped 0 * inf");
    }

    #[test]
    fn empty_dims_are_noops() {
        let a: Mat = Mat::zeros(0, 3);
        let b: Mat = Mat::zeros(3, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (0, 2));

        let a: Mat = Mat::zeros(2, 0);
        let b: Mat = Mat::zeros(0, 2);
        let mut c = Mat::filled(2, 2, 5.0);
        gemm(1.0, &a, Trans::No, &b, Trans::No, 1.0, &mut c);
        assert_eq!(c, Mat::filled(2, 2, 5.0));
    }

    #[test]
    fn strided_views_match_owned_blocks() {
        // Kernels on submatrix views must agree with the same product on
        // materialized blocks, for both dispatch paths.
        let big_a = seq_mat(40, 40, 0.13);
        let big_b = seq_mat(40, 40, 0.77);
        let a_blk = big_a.block(3, 5, 20, 12);
        let b_blk = big_b.block(7, 1, 12, 16);
        let mut expect = Mat::zeros(20, 16);
        gemm_axpy(1.0, &a_blk, &b_blk, &mut expect);

        let mut got = Mat::zeros(20, 16);
        gemm_axpy(
            1.0,
            big_a.submatrix(3, 5, 20, 12),
            big_b.submatrix(7, 1, 12, 16),
            &mut got,
        );
        assert_eq!(got, expect, "axpy strided mismatch");

        let mut got_p = Mat::zeros(20, 16);
        gemm_packed(
            1.0,
            big_a.submatrix(3, 5, 20, 12),
            big_b.submatrix(7, 1, 12, 16),
            &mut got_p,
        );
        let mut expect_p = Mat::zeros(20, 16);
        gemm_packed(1.0, &a_blk, &b_blk, &mut expect_p);
        assert_eq!(got_p, expect_p, "packed strided mismatch");

        // Strided output window: C written through a submatrix view only
        // touches the window.
        let mut big_c = seq_mat(30, 30, 0.5);
        let orig_c = big_c.clone();
        gemm(
            1.0,
            &a_blk,
            Trans::No,
            &b_blk,
            Trans::No,
            0.0,
            big_c.submatrix_mut(2, 4, 20, 16),
        );
        assert_eq!(big_c.block(2, 4, 20, 16), expect);
        big_c
            .as_mut()
            .submatrix_mut(2, 4, 20, 16)
            .copy_from(orig_c.submatrix(2, 4, 20, 16));
        assert_eq!(big_c, orig_c, "gemm wrote outside the output window");
    }

    #[test]
    fn strided_views_parallel_paths_match_sequential() {
        // The jc/ic-parallel packed paths must handle non-unit strides
        // (ldc > rows) and stay bitwise identical to one thread.
        let big_a = seq_mat(420, 320, 0.31);
        let big_b = seq_mat(320, 220, 0.61);
        // (400, 300, 200) drives the jc-parallel split; (400, 150, 40)
        // has a single column block and drives the ic-parallel split.
        for &(m, k, n) in &[(400, 300, 200), (400, 150, 40)] {
            let mut big_c1 = Mat::zeros(410, 210);
            let mut big_ct = Mat::zeros(410, 210);
            with_thread_budget(1, || {
                gemm_packed(
                    1.0,
                    big_a.submatrix(9, 11, m, k),
                    big_b.submatrix(5, 7, k, n),
                    big_c1.submatrix_mut(3, 2, m, n),
                );
            });
            for t in [2, 5] {
                big_ct.fill_zero();
                with_thread_budget(t, || {
                    gemm_packed(
                        1.0,
                        big_a.submatrix(9, 11, m, k),
                        big_b.submatrix(5, 7, k, n),
                        big_ct.submatrix_mut(3, 2, m, n),
                    );
                });
                assert_eq!(
                    big_c1, big_ct,
                    "budget {t} changed bits on strided {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn gemv_on_submatrix_view() {
        let big = seq_mat(10, 10, 0.9);
        let x: Vec<f64> = (0..4).map(|i| i as f64 - 1.5).collect();
        let mut y_view = vec![0.0; 5];
        gemv(1.0, big.submatrix(2, 3, 5, 4), &x, 0.0, &mut y_view);
        let y_blk = matvec(&big.block(2, 3, 5, 4), &x);
        assert_eq!(y_view, y_blk);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    fn colsplit_plan_tiled_is_bitwise_identical() {
        // Column-tiled application of a frozen plan must reproduce the
        // full-width product bit for bit, for every tile width — the
        // invariant the RHS-tiled replay pipeline rests on. Shapes span
        // both sides of the packed crossover, including square m == n
        // cases the top-level dispatcher would send to the small kernels.
        for &(m, k, n) in &[(4, 4, 4), (8, 8, 8), (5, 7, 23), (16, 16, 64), (32, 32, 33)] {
            let a = seq_mat(m, k, 0.3);
            let b = seq_mat(k, n, 0.7);
            let plan = colsplit_plan(m, k, n);
            let mut full = Mat::zeros(m, n);
            plan.apply(1.5, &a, &b, &mut full);
            for tile in [1, 2, 3, n.div_ceil(2), n, n + 5] {
                let mut tiled = Mat::zeros(m, n);
                let mut c0 = 0;
                while c0 < n {
                    let w = tile.min(n - c0);
                    plan.apply(
                        1.5,
                        &a,
                        b.as_ref().submatrix(0, c0, k, w),
                        tiled.as_mut().submatrix_mut(0, c0, m, w),
                    );
                    c0 += w;
                }
                assert_eq!(full, tiled, "{m}x{k}x{n} tile={tile}");
            }
        }
    }

    #[test]
    fn colsplit_plan_f32_tiled_is_bitwise_identical() {
        // The same tiling invariant holds for plans frozen and applied at
        // f32 — the mixed-precision replay pipeline depends on it.
        for &(m, k, n) in &[(8, 8, 8), (16, 16, 64), (32, 32, 33)] {
            let a = seq_mat(m, k, 0.3).convert::<f32>();
            let b = seq_mat(k, n, 0.7).convert::<f32>();
            let plan = colsplit_plan_for::<f32>(m, k, n);
            let mut full = Mat::<f32>::zeros(m, n);
            plan.apply(1.5f32, &a, &b, &mut full);
            for tile in [1, 3, n] {
                let mut tiled = Mat::<f32>::zeros(m, n);
                let mut c0 = 0;
                while c0 < n {
                    let w = tile.min(n - c0);
                    plan.apply(
                        1.5f32,
                        &a,
                        b.as_ref().submatrix(0, c0, k, w),
                        tiled.as_mut().submatrix_mut(0, c0, m, w),
                    );
                    c0 += w;
                }
                assert_eq!(full, tiled, "f32 {m}x{k}x{n} tile={tile}");
            }
        }
    }

    #[test]
    fn colsplit_plan_matches_dispatch_threshold() {
        // Tiny problem: AXPY side of the crossover on every ISA.
        assert_eq!(colsplit_plan(2, 2, 2), ColsplitPlan { packed: false });
        // Huge problem: packed on every ISA (2 * 128^3 > 500k).
        assert_eq!(colsplit_plan(128, 128, 128), ColsplitPlan { packed: true });
    }
}
