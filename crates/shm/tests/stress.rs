//! Deadlock and ordering stress for the shared-memory backend: the
//! crossed-isend regression from the pipelined-replay work (both sides
//! post sends before either receives), all-pairs exchanges, and FIFO
//! ordering under sustained pressure — all on real threads, where a
//! genuine deadlock hangs the test rather than merely mis-modeling time.

use bt_comm::{CommBackend, CostModel};
use bt_dense::Mat;
use bt_shm::run_shm;

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

/// Both ranks post their sends before either receives — the pattern that
/// deadlocks under synchronous (rendezvous) sends. The unbounded SPSC
/// wire makes every send eager, so this must complete regardless of
/// scheduling; repeated to give the thread scheduler chances to
/// interleave badly.
#[test]
fn crossed_isends_do_not_deadlock() {
    let out = run_shm(2, ZERO, |comm| {
        let peer = 1 - comm.rank();
        let mut ok = 0usize;
        for round in 0..200 {
            let mine = Mat::from_fn(4, 4, |i, j| (comm.rank() * 100 + round + i * 4 + j) as f64);
            let s = comm.isend_panel(peer, 2, mine.as_ref());
            let r = comm.irecv_panel_into(peer, 2, Mat::<f64>::zeros(4, 4));
            comm.send_wait(s);
            let got = comm.recv_wait(r);
            let want = Mat::from_fn(4, 4, |i, j| (peer * 100 + round + i * 4 + j) as f64);
            assert_eq!(got, want, "round {round}");
            ok += 1;
        }
        ok
    });
    assert_eq!(out.results, vec![200, 200]);
    assert!(out.stats.is_balanced());
}

/// Every rank sends to every other rank before receiving anything: the
/// worst case for buffered-eager semantics (P-1 crossed sends per rank,
/// all in flight at once).
#[test]
fn all_pairs_crossed_sends_complete() {
    let p = 8;
    let out = run_shm(p, ZERO, move |comm| {
        let me = comm.rank();
        let sends: Vec<_> = (0..p)
            .filter(|&dst| dst != me)
            .map(|dst| {
                let panel = Mat::from_fn(3, 3, |i, j| (me * 9 + i * 3 + j) as f64);
                comm.isend_panel(dst, 7, panel.as_ref())
            })
            .collect();
        let recvs: Vec<_> = (0..p)
            .filter(|&src| src != me)
            .map(|src| comm.irecv_panel_into(src, 7, Mat::<f64>::zeros(3, 3)))
            .collect();
        for s in sends {
            comm.send_wait(s);
        }
        let mut sum = 0.0;
        for r in recvs {
            let got: Mat = comm.recv_wait(r);
            sum += got.col(0)[0];
        }
        sum
    });
    // Each rank receives panel[0,0] = src * 9 from every other rank.
    for (rank, &got) in out.results.iter().enumerate() {
        let want: f64 = (0..p).filter(|&s| s != rank).map(|s| (s * 9) as f64).sum();
        assert_eq!(got, want, "rank {rank}");
    }
    assert!(out.stats.is_balanced());
}

/// Same-tag messages on one (src, dst) edge must arrive in send order
/// even when the receiver falls far behind (the unbounded queue absorbs
/// the burst, then drains FIFO).
#[test]
fn message_order_holds_under_pressure() {
    let out = run_shm(2, ZERO, |comm| {
        if comm.rank() == 0 {
            for i in 0..1000u64 {
                comm.send(1, 5, i);
            }
            0
        } else {
            let mut last = None;
            for _ in 0..1000 {
                let v: u64 = comm.recv(0, 5);
                if let Some(prev) = last {
                    assert!(v == prev + 1, "out of order: {prev} then {v}");
                }
                last = Some(v);
            }
            last.unwrap()
        }
    });
    assert_eq!(out.results[1], 999);
}

/// Nonblocking receives tested (not waited) while the sender is slow:
/// `recv_test` must return the request intact until the message lands,
/// then complete exactly once.
#[test]
fn recv_test_polls_without_losing_the_request() {
    let out = run_shm(2, ZERO, |comm| {
        if comm.rank() == 0 {
            // Give rank 1 time to poll a few empty tests first.
            std::thread::sleep(std::time::Duration::from_millis(5));
            let panel = Mat::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
            let s = comm.isend_panel(1, 3, panel.as_ref());
            comm.send_wait(s);
            0.0
        } else {
            let req = comm.irecv_panel_into(0, 3, Mat::<f64>::zeros(2, 2));
            while !comm.recv_test(&req) {
                std::hint::spin_loop();
            }
            let got = comm.recv_wait(req);
            assert_eq!(got, Mat::from_fn(2, 2, |i, j| (i * 2 + j) as f64));
            1.0
        }
    });
    assert!(out.stats.is_balanced());
    drop(out);
}
