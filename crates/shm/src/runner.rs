//! Shared-memory SPMD launcher: `P` real rank threads, wall-clock stats.
//!
//! The shape mirrors `bt_mpsim`'s runner — one-shot [`run_shm`] and the
//! persistent [`ShmWorld`] — but everything timed is real: the
//! `modeled_seconds` of an [`SpmdOutput`] from this backend is the
//! maximum per-rank wall time (each rank's `virtual_time` is its real
//! elapsed seconds), directly comparable against the virtual clock the
//! simulator produces for the same program under a calibrated
//! [`CostModel`].
//!
//! Rank threads can be pinned to cores with `BT_SHM_PIN=1` (Linux only;
//! rank `r` goes to core `r % ncores` via a raw `sched_setaffinity`
//! call). Pinning tightens wall-clock variance on dedicated hosts but
//! hurts on shared/oversubscribed ones, so it is opt-in.

use std::time::Instant;

use bt_comm::{CostModel, PersistentWorld, SpmdBackend, SpmdOutput, WorldStats, MAX_RANKS};

use crate::comm::{Envelope, ShmComm};
use crate::spsc::spsc_channel;

/// True when `BT_SHM_PIN` asks for core pinning (`1`/`true`/`on`).
fn pin_requested() -> bool {
    static PIN: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PIN.get_or_init(|| {
        std::env::var("BT_SHM_PIN")
            .map(|v| matches!(v.as_str(), "1" | "true" | "on"))
            .unwrap_or(false)
    })
}

/// Pins the calling thread to `core` (best effort, Linux only).
#[cfg(target_os = "linux")]
fn pin_to_core(core: usize) {
    // Raw syscall wrapper: the container has no `libc` crate, but the
    // symbol is always in the platform C library we already link.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // cpu_set_t is 1024 bits on Linux; one u64 word per 64 cores.
    let mut mask = [0u64; 16];
    let word = core / 64;
    if word < mask.len() {
        mask[word] = 1u64 << (core % 64);
        // Failure (e.g. restricted affinity) is non-fatal: stay unpinned.
        unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) {}

/// Prepares the calling rank thread: intra-rank kernel thread budget,
/// optional core pinning, observability labels.
fn init_rank_thread(rank: usize, model: CostModel) {
    bt_dense::threading::set_thread_budget(model.threads_per_rank.max(1));
    if pin_requested() {
        let ncores = std::thread::available_parallelism().map_or(1, usize::from);
        pin_to_core(rank % ncores);
    }
    if bt_obs::enabled() {
        bt_obs::set_thread_label(format!("shm rank {rank}"));
    }
}

/// Builds the all-to-all SPSC mesh and one [`ShmComm`] per rank.
fn build_comms(p: usize, model: CostModel) -> Vec<ShmComm> {
    assert!(p >= 1, "world size must be at least 1");
    assert!(
        p <= MAX_RANKS,
        "world size {p} exceeds MAX_RANKS ({MAX_RANKS})"
    );
    // chans[src][dst]: exactly one producer (src) and consumer (dst)
    // per channel — the SPSC restriction is structural.
    let mut txs: Vec<Vec<Option<crate::spsc::SpscSender<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut rx_rows: Vec<Vec<Option<crate::spsc::SpscReceiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, row) in txs.iter_mut().enumerate() {
        for (dst, slot) in row.iter_mut().enumerate() {
            let (tx, rx) = spsc_channel();
            *slot = Some(tx);
            rx_rows[dst][src] = Some(rx);
        }
    }
    txs.into_iter()
        .zip(rx_rows)
        .enumerate()
        .map(|(rank, (send_row, recv_row))| {
            let senders = send_row
                .into_iter()
                .map(|s| s.expect("sender built"))
                .collect();
            let receivers = recv_row
                .into_iter()
                .map(|r| r.expect("receiver built"))
                .collect();
            ShmComm::new(rank, p, senders, receivers, model)
        })
        .collect()
}

/// Runs `f` as an SPMD program on `p` real rank threads.
///
/// Same contract as `bt_mpsim::run_spmd`, with measured time: each rank
/// gets its own [`ShmComm`], `modeled_seconds` is the maximum per-rank
/// wall clock. `model` is attached to the communicators (for
/// model-consulting call sites such as RHS-tile auto-selection) but
/// never advances any clock.
///
/// # Panics
///
/// Panics if `p == 0` or `p > MAX_RANKS`, or if any rank panics (the
/// panic is propagated; peers blocked on the dead rank panic with a
/// "terminated" message of their own).
pub fn run_shm<T, F>(p: usize, model: CostModel, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&mut ShmComm) -> T + Sync,
{
    let comms = build_comms(p, model);
    let start = Instant::now();
    let f = &f;
    let rank_outputs: Vec<(T, bt_comm::RankStats, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut comm| {
                scope.spawn(move || {
                    init_rank_thread(bt_comm::CommBackend::rank(&comm), model);
                    let _span = bt_obs::span_with("shm", "rank", || {
                        format!("{{\"rank\":{}}}", bt_comm::CommBackend::rank(&comm))
                    });
                    comm.epoch = Instant::now();
                    let result = f(&mut comm);
                    (
                        result,
                        bt_comm::CommBackend::stats(&comm),
                        bt_comm::CommBackend::virtual_time(&comm),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(out) => out,
                Err(e) => {
                    std::panic::panic_any(format!("rank {rank} panicked: {}", panic_msg(&*e)))
                }
            })
            .collect()
    });
    let wall = start.elapsed();

    let mut results = Vec::with_capacity(p);
    let mut per_rank = Vec::with_capacity(p);
    let mut elapsed = 0.0f64;
    for (result, stats, clock) in rank_outputs {
        results.push(result);
        per_rank.push(stats);
        elapsed = elapsed.max(clock);
    }
    SpmdOutput {
        results,
        stats: WorldStats { per_rank },
        wall,
        modeled_seconds: elapsed,
    }
}

fn panic_msg(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One dispatched unit of work for a persistent rank thread.
type Job = Box<dyn FnOnce(&mut ShmComm) -> Box<dyn std::any::Any + Send> + Send>;

/// What a persistent rank reports back after a job.
enum RankDone {
    Ok {
        result: Box<dyn std::any::Any + Send>,
        stats: bt_comm::RankStats,
        clock: f64,
    },
    Panicked(String),
}

/// A **reusable** shared-memory world: `P` rank threads spawned (and
/// pinned) once, serving jobs through [`PersistentWorld::run`] with the
/// same per-job reset semantics as the simulator's `SpmdWorld`. Keeping
/// the threads warm matters more here than in the simulator — core
/// pinning, kernel thread budgets and the panel pool all stay hot
/// between solves.
pub struct ShmWorld {
    p: usize,
    model: CostModel,
    job_txs: Vec<std::sync::mpsc::Sender<Job>>,
    done_rx: std::sync::mpsc::Receiver<(usize, RankDone)>,
    handles: Vec<std::thread::JoinHandle<()>>,
    dead: bool,
}

impl ShmWorld {
    /// Spawns the `p` persistent rank threads.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `p > MAX_RANKS`.
    pub fn new(p: usize, model: CostModel) -> Self {
        let comms = build_comms(p, model);
        let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, RankDone)>();
        let mut job_txs = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for mut comm in comms {
            let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
            job_txs.push(job_tx);
            let done_tx = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                let rank = bt_comm::CommBackend::rank(&comm);
                init_rank_thread(rank, model);
                while let Ok(job) = job_rx.recv() {
                    comm.reset_for_reuse();
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&mut comm)));
                    match outcome {
                        Ok(result) => {
                            let done = RankDone::Ok {
                                result,
                                stats: bt_comm::CommBackend::stats(&comm),
                                clock: bt_comm::CommBackend::virtual_time(&comm),
                            };
                            if done_tx.send((rank, done)).is_err() {
                                return; // world dropped mid-job
                            }
                        }
                        Err(e) => {
                            let _ = done_tx.send((rank, RankDone::Panicked(panic_msg(&*e))));
                            std::panic::resume_unwind(e);
                        }
                    }
                }
            }));
        }
        Self {
            p,
            model,
            job_txs,
            done_rx,
            handles,
            dead: false,
        }
    }
}

impl PersistentWorld for ShmWorld {
    type Comm = ShmComm;

    #[inline]
    fn ranks(&self) -> usize {
        self.p
    }

    #[inline]
    fn model(&self) -> CostModel {
        self.model
    }

    #[inline]
    fn is_dead(&self) -> bool {
        self.dead
    }

    fn run<T, F>(&mut self, f: F) -> SpmdOutput<T>
    where
        T: Send + 'static,
        F: Fn(&mut ShmComm) -> T + Send + Sync + 'static,
    {
        assert!(!self.dead, "ShmWorld is dead after a panicked job");
        let f = std::sync::Arc::new(f);
        let start = Instant::now();
        for tx in &self.job_txs {
            let f = std::sync::Arc::clone(&f);
            let job: Job = Box::new(move |comm| Box::new(f(comm)));
            if tx.send(job).is_err() {
                self.dead = true;
                panic!("ShmWorld rank thread is gone (earlier panic?)");
            }
        }
        let mut slots: Vec<Option<RankDone>> = (0..self.p).map(|_| None).collect();
        let mut first_panic: Option<(usize, String)> = None;
        for _ in 0..self.p {
            match self.done_rx.recv() {
                Ok((rank, done)) => {
                    if let RankDone::Panicked(msg) = &done {
                        if first_panic.is_none() {
                            first_panic = Some((rank, msg.clone()));
                        }
                    }
                    slots[rank] = Some(done);
                }
                Err(_) => {
                    self.dead = true;
                    panic!("ShmWorld rank thread died without reporting");
                }
            }
        }
        let wall = start.elapsed();
        if let Some((rank, msg)) = first_panic {
            self.dead = true;
            std::panic::panic_any(format!("rank {rank} panicked: {msg}"));
        }

        let mut results = Vec::with_capacity(self.p);
        let mut per_rank = Vec::with_capacity(self.p);
        let mut elapsed = 0.0f64;
        for done in slots.into_iter() {
            match done.expect("all ranks reported") {
                RankDone::Ok {
                    result,
                    stats,
                    clock,
                } => {
                    results.push(
                        *result
                            .downcast::<T>()
                            .expect("job result type fixed by run's signature"),
                    );
                    per_rank.push(stats);
                    elapsed = elapsed.max(clock);
                }
                RankDone::Panicked(_) => unreachable!("panics returned above"),
            }
        }
        SpmdOutput {
            results,
            stats: WorldStats { per_rank },
            wall,
            modeled_seconds: elapsed,
        }
    }
}

impl Drop for ShmWorld {
    fn drop(&mut self) {
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The shared-memory runtime as an [`SpmdBackend`]: the zero-sized
/// selector that the generic driver/session/service layers use to run
/// rank programs on real threads instead of the simulator.
pub struct ShmBackend;

impl SpmdBackend for ShmBackend {
    type Comm = ShmComm;
    type World = ShmWorld;

    fn name() -> &'static str {
        "shm"
    }

    fn run<T, F>(p: usize, model: CostModel, f: F) -> SpmdOutput<T>
    where
        T: Send,
        F: Fn(&mut ShmComm) -> T + Sync,
    {
        run_shm(p, model, f)
    }

    fn world(p: usize, model: CostModel) -> ShmWorld {
        ShmWorld::new(p, model)
    }
}
