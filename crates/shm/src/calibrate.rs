//! Alpha-beta calibration of the real SPSC transport.
//!
//! The simulator's calibration (`bt_mpsim::calibrate`) times its
//! crossbeam channels; this one times the shared-memory backend's
//! lock-free SPSC channels, so a [`CostModel`] built here makes the
//! simulator's virtual clocks a prediction of *this backend on this
//! host*. [`calibrate_shm`] also reports a fit error: the relative
//! mismatch between the fitted `alpha + beta * bytes` line and a
//! measured mid-size message, i.e. how well the linear model actually
//! describes the transport it was fitted to.

use std::time::Instant;

use bt_comm::{CommBackend, CostModel};

use crate::runner::run_shm;

/// A calibrated model plus the quality of the alpha-beta fit.
#[derive(Debug, Clone, Copy)]
pub struct ShmCalibration {
    /// Fitted cost model (`threads_per_rank` left at 1).
    pub model: CostModel,
    /// Relative error of the fitted line at a mid-size message that did
    /// not participate in the fit: `|predicted - measured| / measured`.
    pub fit_error: f64,
}

/// One-way time per message of a two-rank SPSC ping-pong with
/// `words` f64 payloads, averaged over `iters` round trips.
fn time_pingpong(words: usize, iters: usize) -> f64 {
    let out = run_shm(2, CostModel::zero(), move |comm| {
        let payload = vec![0.0f64; words];
        comm.barrier();
        let t0 = Instant::now();
        for _ in 0..iters {
            if comm.rank() == 0 {
                comm.send(1, 1, payload.clone());
                let _: Vec<f64> = comm.recv(1, 2);
            } else {
                let got: Vec<f64> = comm.recv(0, 1);
                comm.send(0, 2, got);
            }
        }
        t0.elapsed().as_secs_f64()
    });
    out.results[0] / (2 * iters) as f64
}

/// Measures SPSC transport costs: `(latency_s, per_byte_s)`.
pub fn measure_transport_shm() -> (f64, f64) {
    const SMALL: usize = 8; // one f64
    const LARGE: usize = 1 << 16; // 64 KiB of f64s
    let t_small = time_pingpong(SMALL / 8, 400);
    let t_large = time_pingpong(LARGE / 8, 100);
    let latency = t_small.max(1e-9);
    let per_byte = ((t_large - t_small) / (LARGE - SMALL) as f64).max(0.0);
    (latency, per_byte)
}

/// Calibrates a [`CostModel`] against the shared-memory transport and
/// this host's GEMM rate, and scores the fit at a held-out 8 KiB
/// message.
pub fn calibrate_shm() -> ShmCalibration {
    let (latency_s, per_byte_s) = measure_transport_shm();
    let model = CostModel {
        latency_s,
        per_byte_s,
        flop_rate: measure_flop_rate(64),
        threads_per_rank: 1,
    };
    // Held-out point: 8 KiB sits between the fit's 8 B and 64 KiB ends.
    const MID: usize = 1 << 13;
    let measured = time_pingpong(MID / 8, 200).max(1e-12);
    let predicted = model.msg_time(MID as u64);
    let fit_error = (predicted - measured).abs() / measured;
    ShmCalibration { model, fit_error }
}

/// Measures the host's GEMM flop rate (flop/s) using `m x m` operands
/// — same procedure as `bt_mpsim::calibrate::measure_flop_rate`, kept
/// local so this crate stays independent of the simulator.
pub fn measure_flop_rate(m: usize) -> f64 {
    use bt_dense::{gemm, gemm_flops, random::rng, random::uniform, Mat, Trans};
    let a = uniform(m, m, &mut rng(1));
    let b = uniform(m, m, &mut rng(2));
    let mut c = Mat::zeros(m, m);
    gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
    let reps = (200_000_000 / gemm_flops(m, m, m).max(1)).clamp(3, 2000);
    let t0 = Instant::now();
    for _ in 0..reps {
        gemm(1.0, &a, Trans::No, &b, Trans::No, 1.0, &mut c);
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(c.max_abs());
    (reps * gemm_flops(m, m, m)) as f64 / secs.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shm_transport_is_plausible() {
        let (latency, per_byte) = measure_transport_shm();
        assert!(latency > 0.0 && latency < 1e-2, "latency {latency}");
        assert!((0.0..1e-5).contains(&per_byte), "per_byte {per_byte}");
    }

    #[test]
    fn calibration_reports_finite_fit() {
        let cal = calibrate_shm();
        assert!(cal.model.msg_time(1024) > 0.0);
        assert!(cal.fit_error.is_finite() && cal.fit_error >= 0.0);
    }
}
