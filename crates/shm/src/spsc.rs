//! Lock-free unbounded single-producer single-consumer queue.
//!
//! The shared-memory backend's wire: each ordered rank pair `(src, dst)`
//! owns exactly one channel, so the single-producer/single-consumer
//! restriction is structural, not a usage convention. The queue is a
//! singly linked list with a dummy head node: the producer appends at
//! `tail` with one `Release` store, the consumer advances `head` after
//! one `Acquire` load — no CAS loops, no locks, no shared counters on
//! the fast path. Being unbounded makes every send *eager*: a push can
//! never block on the consumer, which is what guarantees crossed
//! `isend`s cannot deadlock (the regression the simulator backend pins).

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

struct Node<T> {
    value: Option<T>,
    next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    fn boxed(value: Option<T>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            value,
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

struct Shared<T> {
    /// Consumer-owned cursor (dummy node before the first live element).
    head: AtomicPtr<Node<T>>,
    /// Producer-owned cursor (last appended node).
    tail: AtomicPtr<Node<T>>,
    /// Set when the producer side is dropped.
    closed: AtomicBool,
}

// The queue hands each `T` from exactly one thread to exactly one other.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Sole owner at this point: free the remaining chain.
        let mut cur = self.head.load(Ordering::Relaxed);
        while !cur.is_null() {
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
        }
    }
}

/// Producing half; exactly one exists per queue.
pub struct SpscSender<T> {
    shared: Arc<Shared<T>>,
}

/// Consuming half; exactly one exists per queue.
pub struct SpscReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// The receive side observed a closed, drained queue: the producing
/// rank is gone and no further message can arrive.
#[derive(Debug, PartialEq, Eq)]
pub struct Disconnected;

/// Creates a new unbounded SPSC channel.
pub fn spsc_channel<T>() -> (SpscSender<T>, SpscReceiver<T>) {
    let dummy = Node::boxed(None);
    let shared = Arc::new(Shared {
        head: AtomicPtr::new(dummy),
        tail: AtomicPtr::new(dummy),
        closed: AtomicBool::new(false),
    });
    (
        SpscSender {
            shared: Arc::clone(&shared),
        },
        SpscReceiver { shared },
    )
}

impl<T> SpscSender<T> {
    /// Appends `value`. Never blocks; the queue is unbounded.
    pub fn push(&self, value: T) {
        let node = Node::boxed(Some(value));
        // Producer-owned tail: no other thread ever stores it between
        // our load and store.
        let tail = self.shared.tail.load(Ordering::Relaxed);
        unsafe { (*tail).next.store(node, Ordering::Release) };
        self.shared.tail.store(node, Ordering::Relaxed);
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T> SpscReceiver<T> {
    /// Pops the next element if one is ready. `Ok(None)` means the queue
    /// is momentarily empty; [`Disconnected`] means empty *and* the
    /// sender is gone for good.
    pub fn try_pop(&self) -> Result<Option<T>, Disconnected> {
        let head = self.shared.head.load(Ordering::Relaxed);
        let next = unsafe { (*head).next.load(Ordering::Acquire) };
        if next.is_null() {
            // Re-check emptiness *after* observing closed, or a racing
            // final push could be missed.
            if self.shared.closed.load(Ordering::Acquire) {
                let next = unsafe { (*head).next.load(Ordering::Acquire) };
                if next.is_null() {
                    return Err(Disconnected);
                }
                return Ok(Some(self.take(head, next)));
            }
            return Ok(None);
        }
        Ok(Some(self.take(head, next)))
    }

    /// Pops the next element, spinning (then yielding) until one arrives.
    pub fn pop_blocking(&self) -> Result<T, Disconnected> {
        let mut spins = 0u32;
        loop {
            match self.try_pop()? {
                Some(v) => return Ok(v),
                None => {
                    // Short hot spin to catch back-to-back scan rounds,
                    // then be polite to the scheduler: rank threads may
                    // be oversubscribed on small hosts.
                    if spins < 128 {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    fn take(&self, head: *mut Node<T>, next: *mut Node<T>) -> T {
        let value = unsafe { (*next).value.take().expect("live node holds a value") };
        self.shared.head.store(next, Ordering::Relaxed);
        // The old dummy is now unreachable from both cursors.
        drop(unsafe { Box::from_raw(head) });
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_in_order() {
        let (tx, rx) = spsc_channel();
        for i in 0..100 {
            tx.push(i);
        }
        for i in 0..100 {
            assert_eq!(rx.try_pop(), Ok(Some(i)));
        }
        assert_eq!(rx.try_pop(), Ok(None));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = spsc_channel();
        tx.push(1u32);
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(Some(1)));
        assert_eq!(rx.try_pop(), Err(Disconnected));
    }

    #[test]
    fn cross_thread_stream() {
        let (tx, rx) = spsc_channel();
        let n = 50_000u64;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    tx.push(i);
                }
            });
            for i in 0..n {
                assert_eq!(rx.pop_blocking(), Ok(i));
            }
            assert_eq!(rx.try_pop(), Err(Disconnected));
        });
    }

    #[test]
    fn drop_frees_undrained_elements() {
        let (tx, rx) = spsc_channel();
        for i in 0..10 {
            tx.push(vec![i; 100]);
        }
        drop(tx);
        drop(rx); // must not leak or double-free (run under the test harness)
    }
}
