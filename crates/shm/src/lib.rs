//! # bt-shm: real shared-memory SPMD backend
//!
//! The wall-clock implementation of the backend-neutral
//! [`bt_comm::CommBackend`] / [`bt_comm::SpmdBackend`] traits
//! (DESIGN.md §6.12): `P` genuine rank threads exchanging messages over
//! lock-free single-producer single-consumer channels ([`spsc`]), with
//! the same MPI-flavoured surface and the same pooled
//! [`bt_comm::PanelBuf`] wire format as the virtual-clock simulator
//! (`bt-mpsim`). Where the simulator *models* time, this backend
//! *measures* it: per-rank clocks are real elapsed seconds, the overlap
//! accounting reports real hidden communication, and an
//! [`SpmdOutput`](bt_comm::SpmdOutput) from [`run_shm`] carries
//! measured solve times directly comparable against the simulator's
//! predictions under a calibrated model ([`calibrate_shm`]).
//!
//! Select it at the driver layer with `BT_BACKEND=shm`; pin rank
//! threads to cores with `BT_SHM_PIN=1` (Linux).
//!
//! ## Example
//!
//! ```
//! use bt_comm::{CommBackend, CostModel};
//! use bt_shm::run_shm;
//!
//! let out = run_shm(4, CostModel::zero(), |comm| {
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! });
//! assert_eq!(out.results, vec![6, 6, 6, 6]);
//! assert!(out.modeled_seconds > 0.0); // real seconds, not modeled
//! ```

pub mod calibrate;
pub mod comm;
pub mod runner;
pub mod spsc;

pub use calibrate::{calibrate_shm, measure_transport_shm, ShmCalibration};
pub use comm::{ShmComm, ShmRecvRequest, ShmSendRequest};
pub use runner::{run_shm, ShmBackend, ShmWorld};
