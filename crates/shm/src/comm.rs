//! Wall-clock rank communicator over shared-memory SPSC channels.
//!
//! [`ShmComm`] is the real-parallelism implementation of
//! [`CommBackend`]: the same MPI-flavoured surface as the simulator's
//! `bt_mpsim::Comm`, but messages travel over the lock-free
//! [`crate::spsc`] channels between genuinely concurrent rank threads
//! and every timing observable is measured, not modeled:
//!
//! * [`CommBackend::virtual_time`] is wall-clock seconds since the
//!   world's epoch (job start), so "modeled" aggregates computed from it
//!   are real times.
//! * [`CommBackend::compute`] only counts flops — the dense kernels
//!   already burn the real cycles.
//! * The nonblocking-receive overlap accounting reports real hidden
//!   seconds: time a posted receive spent in flight before this rank
//!   entered its wait.
//!
//! Sends are buffered-eager exactly like the simulator (payload packed
//! at the call, push never blocks), so crossed `isend`s are
//! deadlock-free by construction and the two backends accept the same
//! programs.

use std::any::Any;
use std::collections::VecDeque;
use std::time::Instant;

use bt_comm::{CommBackend, CostModel, PanelBuf, Payload, RankStats, USER_TAG_LIMIT};

use crate::spsc::{SpscReceiver, SpscSender};

/// Nanoseconds a blocking receive spent waiting on its SPSC channel.
static OBS_RECV_WAIT_NS: bt_obs::Histogram = bt_obs::Histogram::new("bt_shm.comm.recv_wait_ns");
/// Depth of the nonblocking-receive queue at each post.
static OBS_INFLIGHT_DEPTH: bt_obs::Histogram = bt_obs::Histogram::new("bt_shm.comm.inflight_depth");
/// Real nanoseconds of in-flight receive time hidden behind compute.
static OBS_OVERLAP_NS: bt_obs::Counter = bt_obs::Counter::new("bt_shm.comm.overlap_ns");

/// A message on the shared-memory wire.
pub(crate) struct Envelope {
    pub tag: u64,
    pub bytes: u64,
    pub payload: Box<dyn Any + Send>,
}

/// Handle for a posted [`CommBackend::isend_panel`]. Shared-memory sends
/// are buffered-eager (packed into a pooled [`PanelBuf`] and enqueued at
/// the call), so the request is complete the moment it exists.
#[derive(Debug)]
#[must_use = "MPI-style requests should be completed with send_wait()"]
pub struct ShmSendRequest {
    pub(crate) _private: (),
}

/// Handle for a posted [`CommBackend::irecv_panel_into`]: owns the
/// destination buffer and the real post instant used for overlap
/// accounting. Dropping one without `recv_wait` panics — an outstanding
/// receive at rank exit is a lost message.
#[derive(Debug)]
#[must_use = "an irecv must be completed with recv_wait() (dropping panics)"]
pub struct ShmRecvRequest {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    /// Wall-clock instant the receive was posted.
    pub(crate) posted_at: Instant,
    /// Destination buffer (at either precision); `None` once waited.
    pub(crate) out: Option<bt_dense::AnyMat>,
}

impl Drop for ShmRecvRequest {
    fn drop(&mut self) {
        if self.out.is_some() && !std::thread::panicking() {
            panic!(
                "ShmRecvRequest (src {}, tag {}) dropped without recv_wait()",
                self.src, self.tag
            );
        }
    }
}

/// Per-rank communicator of a shared-memory world.
pub struct ShmComm {
    rank: usize,
    size: usize,
    pub(crate) senders: Vec<SpscSender<Envelope>>,
    pub(crate) receivers: Vec<SpscReceiver<Envelope>>,
    /// Out-of-order buffer, per source rank (same tag-matching contract
    /// as the simulator: non-matching tags are buffered, per-`(src,
    /// tag)` delivery stays FIFO).
    pending: Vec<VecDeque<Envelope>>,
    pub(crate) stats: RankStats,
    /// Epoch of the current job; `virtual_time` is seconds since this.
    pub(crate) epoch: Instant,
    /// Attached cost model — not used to advance any clock, but exposed
    /// so model-consulting call sites (RHS tile auto-selection, modeled
    /// comparisons) see the calibrated machine description.
    model: CostModel,
    inflight_recvs: usize,
    /// Real seconds nonblocking receives spent in flight post→completion.
    inflight_s: f64,
    /// Real seconds of that in-flight time hidden behind compute.
    overlap_s: f64,
    pub(crate) collective_seq: u64,
}

impl ShmComm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<SpscSender<Envelope>>,
        receivers: Vec<SpscReceiver<Envelope>>,
        model: CostModel,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            receivers,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            stats: RankStats::default(),
            epoch: Instant::now(),
            model,
            inflight_recvs: 0,
            inflight_s: 0.0,
            overlap_s: 0.0,
            collective_seq: 0,
        }
    }

    /// Number of posted-but-not-yet-waited nonblocking receives.
    #[inline]
    pub fn inflight_recvs(&self) -> usize {
        self.inflight_recvs
    }

    fn send_internal<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        assert!(
            dest < self.size,
            "send to rank {dest} in a world of size {}",
            self.size
        );
        let bytes = value.byte_size();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        self.senders[dest].push(Envelope {
            tag,
            bytes,
            payload: Box::new(value),
        });
    }

    /// Blocks until a message matching `(src, tag)` arrives, honouring
    /// the out-of-order buffer. Records the real wait in the
    /// `bt_shm.comm.recv_wait_ns` histogram.
    fn wait_for(&mut self, src: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.pending[src].iter().position(|e| e.tag == tag) {
            return self.pending[src].remove(pos).expect("position just found");
        }
        let t0 = bt_obs::enabled().then(Instant::now);
        let env = loop {
            let env = self.receivers[src].pop_blocking().unwrap_or_else(|_| {
                panic!(
                    "rank {}: rank {src} terminated before sending tag {tag}",
                    self.rank
                )
            });
            if env.tag == tag {
                break env;
            }
            self.pending[src].push_back(env);
        };
        if let Some(t0) = t0 {
            OBS_RECV_WAIT_NS.record_duration(t0.elapsed());
        }
        env
    }

    /// True when a matching message has already arrived (drains the
    /// channel into the pending buffer; never blocks, never consumes).
    fn probe(&mut self, src: usize, tag: u64) -> bool {
        if self.pending[src].iter().any(|e| e.tag == tag) {
            return true;
        }
        while let Ok(Some(env)) = self.receivers[src].try_pop() {
            let hit = env.tag == tag;
            self.pending[src].push_back(env);
            if hit {
                return true;
            }
        }
        false
    }

    /// Resets per-job state so a persistent rank serves a fresh program
    /// with fresh counters and a fresh epoch (see [`crate::ShmWorld`]).
    pub(crate) fn reset_for_reuse(&mut self) {
        debug_assert!(
            self.pending.iter().all(VecDeque::is_empty),
            "rank {}: undelivered messages left over from the previous job",
            self.rank
        );
        self.stats = RankStats::default();
        self.epoch = Instant::now();
        self.inflight_recvs = 0;
        self.inflight_s = 0.0;
        self.overlap_s = 0.0;
        self.collective_seq = 0;
    }
}

impl CommBackend for ShmComm {
    type SendReq = ShmSendRequest;
    type RecvReq = ShmRecvRequest;

    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn model(&self) -> CostModel {
        self.model
    }

    #[inline]
    fn stats(&self) -> RankStats {
        self.stats
    }

    /// Real seconds since the job epoch.
    #[inline]
    fn virtual_time(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    #[inline]
    fn inflight_seconds(&self) -> f64 {
        self.inflight_s
    }

    #[inline]
    fn overlap_seconds(&self) -> f64 {
        self.overlap_s
    }

    /// Counts `flops`; no clock to advance — the kernels that reported
    /// them already spent the real time.
    fn compute(&mut self, flops: u64) {
        self.stats.flops += flops;
    }

    /// No-op beyond the sign check: wall time cannot be steered.
    fn advance_time(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot rewind the clock");
    }

    fn send_raw<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        self.send_internal(dest, tag, value);
    }

    fn recv_raw<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        assert!(
            src < self.size,
            "recv from rank {src} in a world of size {}",
            self.size
        );
        let env = self.wait_for(src, tag);
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.bytes;
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from rank {src}: expected {}",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    fn next_collective_tag(&mut self) -> u64 {
        let tag = USER_TAG_LIMIT + self.collective_seq;
        self.collective_seq += 1;
        tag
    }

    /// Nonblocking panel send: packed into a pooled [`PanelBuf`] and
    /// enqueued immediately, so the returned request is already complete
    /// (the unbounded channel is the eager buffer).
    fn isend_panel<E: bt_dense::Element>(
        &mut self,
        dest: usize,
        tag: u64,
        panel: bt_dense::MatRef<'_, E>,
    ) -> ShmSendRequest {
        self.send_panel(dest, tag, panel);
        ShmSendRequest { _private: () }
    }

    fn irecv_panel_into<E: bt_dense::Element>(
        &mut self,
        src: usize,
        tag: u64,
        out: bt_dense::Mat<E>,
    ) -> ShmRecvRequest {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        assert!(
            src < self.size,
            "irecv from rank {src} in a world of size {}",
            self.size
        );
        self.inflight_recvs += 1;
        if bt_obs::enabled() {
            OBS_INFLIGHT_DEPTH.record(self.inflight_recvs as u64);
        }
        ShmRecvRequest {
            src,
            tag,
            posted_at: Instant::now(),
            out: Some(E::mat_into_any(out)),
        }
    }

    /// Always true: eager sends complete at post time.
    fn send_test(&mut self, _req: &ShmSendRequest) -> bool {
        true
    }

    /// Completes the (already complete) send.
    fn send_wait(&mut self, _req: ShmSendRequest) {}

    /// True when the matching message has physically arrived. Never
    /// blocks, never consumes.
    fn recv_test(&mut self, req: &ShmRecvRequest) -> bool {
        self.probe(req.src, req.tag)
    }

    fn recv_wait<E: bt_dense::Element>(&mut self, mut req: ShmRecvRequest) -> bt_dense::Mat<E> {
        let out = req.out.take().expect("request not yet waited");
        let mut out = E::mat_from_any(out).unwrap_or_else(|| {
            panic!(
                "rank {}: recv_wait precision mismatch: posted buffer is not {}",
                self.rank,
                E::NAME
            )
        });
        let wait_start = Instant::now();
        let env = self.wait_for(req.src, req.tag);
        let done = Instant::now();
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.bytes;
        self.stats.nb_recvs += 1;
        // Real overlap accounting: of the post→completion interval, the
        // part not spent blocked right here was hidden behind whatever
        // this rank computed in between.
        let in_flight = done.duration_since(req.posted_at).as_secs_f64();
        let blocked = done.duration_since(wait_start).as_secs_f64();
        let hidden = (in_flight - blocked).max(0.0);
        self.inflight_s += in_flight;
        self.overlap_s += hidden;
        let hidden_ns = (hidden * 1e9).round() as u64;
        self.stats.overlap_ns += hidden_ns;
        if bt_obs::enabled() {
            OBS_OVERLAP_NS.add(hidden_ns);
        }
        self.inflight_recvs = self.inflight_recvs.saturating_sub(1);
        let buf: PanelBuf = *env.payload.downcast::<PanelBuf>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {} from rank {}: expected PanelBuf",
                self.rank, req.tag, req.src
            )
        });
        buf.unpack_into(out.as_mut());
        out
    }
}
