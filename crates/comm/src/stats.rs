//! Per-rank and aggregated communication/computation counters.
//!
//! These drive the communication-volume experiment (Figure 6) and the
//! complexity-model validation (Table I): the algorithms' analytic word
//! and flop counts are checked against these measured values.

/// Counters accumulated by a single rank over one SPMD run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Floating point operations reported via `Comm::compute`.
    pub flops: u64,
    /// Messages received through the nonblocking path
    /// (`Comm::irecv_panel_into` + `RecvRequest::wait`); a subset of
    /// `msgs_recv`.
    pub nb_recvs: u64,
    /// Virtual nanoseconds of in-flight communication hidden behind
    /// compute between an irecv post and its completion — the per-rank
    /// numerator of the pipeline overlap ratio.
    pub overlap_ns: u64,
}

impl RankStats {
    /// Element-wise sum of two counter sets.
    pub fn merged(self, other: RankStats) -> RankStats {
        RankStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            flops: self.flops + other.flops,
            nb_recvs: self.nb_recvs + other.nb_recvs,
            overlap_ns: self.overlap_ns + other.overlap_ns,
        }
    }
}

/// Aggregated view over all ranks of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldStats {
    /// One entry per rank, index = rank id.
    pub per_rank: Vec<RankStats>,
}

impl WorldStats {
    /// Total counters across ranks.
    pub fn total(&self) -> RankStats {
        self.per_rank
            .iter()
            .copied()
            .fold(RankStats::default(), RankStats::merged)
    }

    /// Maximum bytes sent by any single rank (critical-path proxy).
    pub fn max_bytes_sent(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.bytes_sent)
            .max()
            .unwrap_or(0)
    }

    /// Maximum flops performed by any single rank.
    pub fn max_flops(&self) -> u64 {
        self.per_rank.iter().map(|r| r.flops).max().unwrap_or(0)
    }

    /// Sanity invariant: every sent message was received.
    pub fn is_balanced(&self) -> bool {
        let t = self.total();
        t.msgs_sent == t.msgs_recv && t.bytes_sent == t.bytes_recv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(s: u64, bs: u64, r: u64, br: u64, f: u64) -> RankStats {
        RankStats {
            msgs_sent: s,
            bytes_sent: bs,
            msgs_recv: r,
            bytes_recv: br,
            flops: f,
            nb_recvs: 0,
            overlap_ns: 0,
        }
    }

    #[test]
    fn merged_adds_fields() {
        let a = rs(1, 10, 2, 20, 100);
        let b = rs(3, 30, 4, 40, 200);
        assert_eq!(a.merged(b), rs(4, 40, 6, 60, 300));
    }

    #[test]
    fn merged_adds_overlap_fields() {
        let a = RankStats {
            nb_recvs: 2,
            overlap_ns: 1_500,
            ..RankStats::default()
        };
        let b = RankStats {
            nb_recvs: 3,
            overlap_ns: 500,
            ..RankStats::default()
        };
        let m = a.merged(b);
        assert_eq!(m.nb_recvs, 5);
        assert_eq!(m.overlap_ns, 2_000);
    }

    #[test]
    fn world_total_and_maxima() {
        let w = WorldStats {
            per_rank: vec![rs(1, 10, 0, 0, 5), rs(0, 0, 1, 10, 9)],
        };
        assert_eq!(w.total(), rs(1, 10, 1, 10, 14));
        assert_eq!(w.max_bytes_sent(), 10);
        assert_eq!(w.max_flops(), 9);
        assert!(w.is_balanced());
    }

    #[test]
    fn unbalanced_detected() {
        let w = WorldStats {
            per_rank: vec![rs(1, 10, 0, 0, 0)],
        };
        assert!(!w.is_balanced());
    }

    #[test]
    fn empty_world() {
        let w = WorldStats::default();
        assert_eq!(w.total(), RankStats::default());
        assert_eq!(w.max_bytes_sent(), 0);
        assert!(w.is_balanced());
    }
}
