//! Backend-neutral communication layer for the block tridiagonal suite.
//!
//! Everything a distributed solver needs to be written once and run on
//! any SPMD backend lives here:
//!
//! * [`CommBackend`] — the per-rank communicator trait: point-to-point
//!   sends/receives, pooled panel transport, nonblocking requests
//!   completed through the communicator, accounting hooks, and the full
//!   collective suite as provided methods (identical message patterns
//!   and tag sequences on every backend).
//! * [`SpmdBackend`] / [`PersistentWorld`] — how to launch rank
//!   programs: one-shot scoped runs and reusable persistent worlds.
//! * [`Payload`] / [`PanelBuf`] — the wire format, with a process-wide
//!   buffer pool shared by all backends.
//! * [`CostModel`] — the alpha-beta/flop-rate model: the simulator's
//!   clock, and the calibrated reference real backends compare against.
//! * [`RankStats`] / [`WorldStats`] — per-rank counters.
//!
//! Implementations in-tree: `bt-mpsim` (virtual-clock simulator) and
//! `bt-shm` (real shared-memory threads). The trait seam is also where a
//! future MPI/RDMA backend would plug in.

pub mod backend;
pub mod model;
pub mod payload;
pub mod spmd;
pub mod stats;

pub use backend::{CommBackend, USER_TAG_LIMIT};
pub use model::CostModel;
pub use payload::{panel_pool_drain, PanelBuf, Payload};
pub use spmd::{PersistentWorld, SpmdBackend, SpmdOutput, MAX_RANKS};
pub use stats::{RankStats, WorldStats};
