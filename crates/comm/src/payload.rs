//! The [`Payload`] trait: what can travel through the runtime.
//!
//! A payload is any `Send + 'static` value that can report its wire size.
//! Sizes feed the communication-volume counters (Figure 6) and the
//! virtual-time model; they approximate what an MPI implementation would
//! put on the wire (raw element bytes, ignoring header overhead — headers
//! are modeled by the per-message `alpha` term instead). Element bytes
//! follow the payload's own precision: an `f32` panel occupies half the
//! wire of the same-shape `f64` panel, which is what makes the
//! mixed-precision solve path's halved communication volume visible to
//! both the simulator's cost model and the shared-memory backend's
//! measured stats.

use bt_dense::{AnyVec, Element, Mat, MatMut, MatRef};
use std::sync::{Mutex, OnceLock};

/// A value that can be sent between ranks.
pub trait Payload: Send + 'static {
    /// Approximate number of bytes this value occupies on the wire.
    fn byte_size(&self) -> u64;
}

/// Pool-hit/miss counters for the [`PanelBuf`] buffer pool (no-ops
/// unless `BT_OBS` is on).
static OBS_POOL_HITS: bt_obs::Counter = bt_obs::Counter::new("bt_mpsim.panel_pool.hits");
static OBS_POOL_MISSES: bt_obs::Counter = bt_obs::Counter::new("bt_mpsim.panel_pool.misses");

/// Process-wide free list backing [`PanelBuf`]: buffers released by
/// `unpack_into` on any rank thread are recycled by later `pack` calls.
/// Holds buffers of both element widths; `pack` only checks out a buffer
/// of its own precision (matched by element size, so an `f32` panel never
/// reinterprets an `f64` allocation). (Sends cross rank threads, so
/// unlike [`bt_dense::Workspace`] this pool must be shared; a `Mutex` is
/// fine — packing happens at most once per message, never in an inner
/// loop.)
static PANEL_POOL: OnceLock<Mutex<Vec<AnyVec>>> = OnceLock::new();

fn panel_pool() -> &'static Mutex<Vec<AnyVec>> {
    PANEL_POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Empties the [`PanelBuf`] pool, returning how many buffers were
/// dropped. For benchmarks that want a cold-allocator baseline.
pub fn panel_pool_drain() -> usize {
    let mut pool = panel_pool().lock().unwrap();
    let n = pool.len();
    pool.clear();
    n
}

/// A dense panel on the wire at either element width, packed from a
/// [`MatRef`] and unpacked into caller-provided [`MatMut`] scratch — the
/// allocation-free counterpart of sending an owned [`Mat`].
///
/// The backing buffer is checked out of a process-wide pool on `pack`
/// and returned on `unpack_into`, so a warm send/recv round-trip
/// performs no heap allocation. Wire size matches `Mat`'s
/// (`rows * cols * size_of::<E>()` bytes), keeping communication-volume
/// accounting identical whichever payload a path uses — and halved for
/// `f32` panels relative to `f64` ones of the same shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelBuf {
    rows: usize,
    cols: usize,
    data: AnyVec,
}

impl PanelBuf {
    /// Packs a (possibly strided) view into a pooled buffer of the
    /// view's own precision.
    pub fn pack<E: Element>(src: MatRef<'_, E>) -> Self {
        let (rows, cols) = src.shape();
        let need = rows * cols;
        let mut data: Vec<E> = {
            let mut pool = panel_pool().lock().unwrap();
            // Smallest adequate same-precision pooled buffer, else a
            // fresh allocation.
            let mut best: Option<usize> = None;
            for (i, buf) in pool.iter().enumerate() {
                if buf.elem_size() == std::mem::size_of::<E>()
                    && buf.capacity() >= need
                    && best.is_none_or(|b| buf.capacity() < pool[b].capacity())
                {
                    best = Some(i);
                }
            }
            match best {
                Some(i) => {
                    OBS_POOL_HITS.incr();
                    E::vec_from_any(pool.swap_remove(i)).expect("pool entry matched by elem_size")
                }
                None => {
                    OBS_POOL_MISSES.incr();
                    Vec::with_capacity(need)
                }
            }
        };
        data.clear();
        for j in 0..cols {
            data.extend_from_slice(src.col(j));
        }
        Self {
            rows,
            cols,
            data: E::vec_into_any(data),
        }
    }

    /// `(rows, cols)` of the packed panel.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bytes per packed element (4 for `f32` panels, 8 for `f64`).
    pub fn elem_size(&self) -> usize {
        self.data.elem_size()
    }

    /// Copies the panel into `out` and releases the backing buffer to
    /// the pool.
    ///
    /// # Panics
    ///
    /// Panics if `out`'s shape differs from the packed panel's, or if
    /// `out`'s element type differs from the precision the panel was
    /// packed at (precision on the wire is part of the message contract,
    /// like MPI datatypes).
    pub fn unpack_into<E: Element>(self, mut out: MatMut<'_, E>) {
        assert_eq!(
            out.shape(),
            (self.rows, self.cols),
            "unpack_into shape mismatch"
        );
        let data = E::vec_from_any(self.data)
            .unwrap_or_else(|| panic!("unpack_into precision mismatch: panel is not {}", E::NAME));
        for j in 0..self.cols {
            out.col_mut(j)
                .copy_from_slice(&data[j * self.rows..(j + 1) * self.rows]);
        }
        if data.capacity() > 0 {
            panel_pool().lock().unwrap().push(E::vec_into_any(data));
        }
    }

    /// Copies the panel into a freshly allocated [`Mat`] and releases
    /// the backing buffer to the pool.
    ///
    /// # Panics
    ///
    /// Panics on a precision mismatch, like [`PanelBuf::unpack_into`].
    pub fn unpack<E: Element>(self) -> Mat<E> {
        let mut out = Mat::zeros(self.rows, self.cols);
        self.unpack_into(out.as_mut());
        out
    }
}

impl Payload for PanelBuf {
    fn byte_size(&self) -> u64 {
        // Same accounting as `Mat` at the matching precision: switching a
        // path from owned to pooled panels must not change measured comm
        // volume, and dropping a path to f32 must halve it.
        (self.rows * self.cols * self.data.elem_size()) as u64
    }
}

macro_rules! scalar_payload {
    ($($t:ty),*) => {
        $(impl Payload for $t {
            fn byte_size(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        })*
    };
}

scalar_payload!(f64, f32, u64, i64, u32, i32, usize, u8, bool);

impl Payload for () {
    fn byte_size(&self) -> u64 {
        // Empty payloads still occupy a (modeled) header's worth of wire;
        // we report 0 and let the alpha term account for the message.
        0
    }
}

impl<T> Payload for Vec<T>
where
    T: Send + 'static,
{
    fn byte_size(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>()) as u64
    }
}

impl<E: Element> Payload for Mat<E> {
    fn byte_size(&self) -> u64 {
        (self.rows() * self.cols() * std::mem::size_of::<E>()) as u64
    }
}

impl Payload for String {
    fn byte_size(&self) -> u64 {
        self.len() as u64
    }
}

impl<T: Payload> Payload for Option<T> {
    fn byte_size(&self) -> u64 {
        match self {
            Some(v) => 1 + v.byte_size(),
            None => 1,
        }
    }
}

impl<T: Payload> Payload for Box<T> {
    fn byte_size(&self) -> u64 {
        (**self).byte_size()
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<A: Payload, B: Payload, C: Payload, D: Payload> Payload for (A, B, C, D) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size() + self.3.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(1.0f64.byte_size(), 8);
        assert_eq!(1u32.byte_size(), 4);
        assert_eq!(true.byte_size(), 1);
        assert_eq!(().byte_size(), 0);
    }

    #[test]
    fn vec_size_counts_elements() {
        let v = vec![0.0f64; 10];
        assert_eq!(v.byte_size(), 80);
        let empty: Vec<f64> = vec![];
        assert_eq!(empty.byte_size(), 0);
    }

    #[test]
    fn mat_size_counts_entries() {
        let m = Mat::<f64>::zeros(3, 5);
        assert_eq!(m.byte_size(), 15 * 8);
        assert_eq!(Mat::<f32>::zeros(3, 5).byte_size(), 15 * 4);
    }

    #[test]
    fn composite_sizes_add_up() {
        let pair = (Mat::<f64>::zeros(2, 2), vec![0.0f64; 3]);
        assert_eq!(pair.byte_size(), 32 + 24);
        assert_eq!(Some(1.0f64).byte_size(), 9);
        assert_eq!((None as Option<f64>).byte_size(), 1);
        assert_eq!("abc".to_string().byte_size(), 3);
    }

    #[test]
    fn panel_buf_roundtrip_and_byte_size() {
        let src = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let p = PanelBuf::pack(src.as_ref());
        assert_eq!(p.shape(), (3, 4));
        assert_eq!(p.byte_size(), src.byte_size());
        let mut out = Mat::zeros(3, 4);
        p.unpack_into(out.as_mut());
        assert_eq!(out, src);
    }

    #[test]
    fn f32_panels_are_half_the_bytes_of_f64() {
        // The satellite fix this PR pins down: wire accounting derives
        // from the element size instead of hardcoding `f64`.
        let src64: Mat = Mat::from_fn(6, 7, |i, j| (i * 7 + j) as f64);
        let src32 = src64.convert::<f32>();
        let p64 = PanelBuf::pack(src64.as_ref());
        let p32 = PanelBuf::pack(src32.as_ref());
        assert_eq!(p64.elem_size(), 8);
        assert_eq!(p32.elem_size(), 4);
        assert_eq!(p64.byte_size(), 6 * 7 * 8);
        assert_eq!(p32.byte_size(), p64.byte_size() / 2);
        // Round-trip at f32 stays exact for these integer-valued entries.
        let out: Mat<f32> = p32.unpack();
        assert_eq!(out, src32);
        p64.unpack_into(Mat::<f64>::zeros(6, 7).as_mut());
    }

    #[test]
    fn pool_does_not_mix_precisions() {
        panel_pool_drain();
        // Release an f64 buffer of ample capacity into the pool...
        let big: Mat = Mat::from_fn(8, 8, |i, j| (i + j) as f64);
        PanelBuf::pack(big.as_ref()).unpack_into(Mat::<f64>::zeros(8, 8).as_mut());
        // ...then pack a small f32 panel: it must NOT reuse the f64
        // allocation even though the capacity would fit.
        let small = Mat::<f32>::from_fn(2, 2, |i, j| (i * 2 + j) as f32);
        let p = PanelBuf::pack(small.as_ref());
        assert_eq!(p.elem_size(), 4);
        let out: Mat<f32> = p.unpack();
        assert_eq!(out, small);
        // Pool now holds one buffer of each width.
        let pool = panel_pool().lock().unwrap();
        let sizes: Vec<usize> = pool.iter().map(|b| b.elem_size()).collect();
        assert!(sizes.contains(&8) && sizes.contains(&4), "sizes: {sizes:?}");
    }

    #[test]
    #[should_panic(expected = "unpack_into precision mismatch")]
    fn unpack_precision_mismatch_panics() {
        let p = PanelBuf::pack(Mat::<f32>::zeros(2, 2).as_ref());
        p.unpack_into(Mat::<f64>::zeros(2, 2).as_mut());
    }

    #[test]
    fn panel_buf_strided_pack_and_unpack() {
        let big = Mat::from_fn(6, 6, |i, j| (10 * i + j) as f64);
        let p = PanelBuf::pack(big.submatrix(1, 2, 3, 2));
        let mut dst = Mat::filled(5, 4, -1.0);
        p.unpack_into(dst.submatrix_mut(1, 1, 3, 2));
        assert_eq!(dst.block(1, 1, 3, 2), big.block(1, 2, 3, 2));
        assert_eq!(dst[(0, 0)], -1.0, "unpack wrote outside the window");
    }

    #[test]
    fn panel_buf_pool_recycles() {
        panel_pool_drain();
        let src = Mat::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut out: Mat = Mat::zeros(4, 4);
        PanelBuf::pack(src.as_ref()).unpack_into(out.as_mut());
        // Buffer returned to the pool; the next pack of a fitting shape
        // must recycle it rather than allocate.
        // (>= comparisons: the pool is process-global and other tests in
        // this binary may be using it concurrently.)
        assert!(!panel_pool().lock().unwrap().is_empty());
        PanelBuf::pack(src.submatrix(0, 0, 2, 2)).unpack_into(out.submatrix_mut(0, 0, 2, 2));
        assert!(panel_pool_drain() >= 1, "pool should hold the buffer");
    }

    #[test]
    #[should_panic(expected = "unpack_into shape mismatch")]
    fn panel_buf_shape_mismatch_panics() {
        let p = PanelBuf::pack(Mat::<f64>::zeros(2, 3).as_ref());
        let mut out: Mat = Mat::zeros(3, 2);
        p.unpack_into(out.as_mut());
    }
}
