//! Backend-neutral SPMD launch surface: the [`SpmdOutput`] every runner
//! returns, and the [`SpmdBackend`]/[`PersistentWorld`] traits that let
//! the session/service layers run the same rank program on the
//! simulator or on a real backend.

use std::time::Duration;

use crate::backend::CommBackend;
use crate::model::CostModel;
use crate::stats::WorldStats;

/// Hard cap on world size: ranks are OS threads that mostly block on
/// channels, so thousands are fine, but an unbounded request is almost
/// certainly a bug.
pub const MAX_RANKS: usize = 4096;

/// Everything produced by one SPMD run.
#[derive(Debug)]
pub struct SpmdOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank communication/computation counters.
    pub stats: WorldStats,
    /// Real elapsed wall-clock time of the whole run.
    pub wall: Duration,
    /// Modeled parallel runtime: the maximum final clock over all ranks.
    /// On the simulator this is virtual time per the run's [`CostModel`];
    /// on real backends it is the slowest rank's measured seconds.
    pub modeled_seconds: f64,
}

impl<T> SpmdOutput<T> {
    /// Total seconds of nonblocking-receive transfer time hidden behind
    /// compute, summed over ranks (from `RankStats::overlap_ns`). Zero
    /// for programs using only blocking receives; the numerator of a
    /// pipeline's overlap ratio.
    pub fn overlap_seconds(&self) -> f64 {
        self.stats
            .per_rank
            .iter()
            .map(|r| r.overlap_ns as f64 * 1e-9)
            .sum()
    }

    /// Maximum overlap seconds achieved by any single rank — the
    /// critical-path counterpart of [`SpmdOutput::overlap_seconds`].
    pub fn max_rank_overlap_seconds(&self) -> f64 {
        self.stats
            .per_rank
            .iter()
            .map(|r| r.overlap_ns as f64 * 1e-9)
            .fold(0.0, f64::max)
    }
}

/// A **reusable** SPMD world: `P` rank threads spawned once, each
/// running jobs dispatched through [`PersistentWorld::run`] with the
/// same semantics as the backend's one-shot runner (per-rank state is
/// reset before every job).
///
/// Constraints inherited from reuse:
///
/// * Jobs must be `'static` (they are boxed and shipped to long-lived
///   threads) — capture shared state via `Arc`, not borrows.
/// * A program must receive every message it is sent; leftovers would
///   corrupt the next job.
/// * A panicking job kills the world: the panic is propagated to the
///   caller (catchable) and the world refuses further jobs
///   ([`PersistentWorld::is_dead`]) — peers may have been left
///   mid-protocol, so the only safe move is to rebuild.
pub trait PersistentWorld {
    /// The communicator handed to each rank's job.
    type Comm: CommBackend;

    /// World size.
    fn ranks(&self) -> usize;

    /// The cost model jobs run under.
    fn model(&self) -> CostModel;

    /// True once a job has panicked; the world no longer accepts jobs.
    fn is_dead(&self) -> bool;

    /// Runs `f` on every rank on the persistent threads. Blocks until
    /// all ranks finish.
    ///
    /// # Panics
    ///
    /// Panics if the world is dead, or if any rank's job panics (the
    /// panic is propagated to this caller and the world is marked dead).
    fn run<T, F>(&mut self, f: F) -> SpmdOutput<T>
    where
        T: Send + 'static,
        F: Fn(&mut Self::Comm) -> T + Send + Sync + 'static;
}

/// One SPMD execution backend: a communicator type plus the two ways to
/// launch a rank program on it — a one-shot scoped run and a persistent
/// reusable world. The type itself is a zero-sized selector
/// (`SimBackend`, `ShmBackend`), so session/service layers can be
/// generic over the backend with no runtime cost.
pub trait SpmdBackend: 'static {
    /// The per-rank communicator.
    type Comm: CommBackend;
    /// The reusable-world runner.
    type World: PersistentWorld<Comm = Self::Comm> + Send;

    /// Short stable name for diagnostics and env selection
    /// (`"sim"`, `"shm"`).
    fn name() -> &'static str;

    /// Runs `f` as an SPMD program on `p` ranks under `model`, one rank
    /// per thread, returning when every rank has finished.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `p > MAX_RANKS`, or if any rank panics (the
    /// panic is propagated).
    fn run<T, F>(p: usize, model: CostModel, f: F) -> SpmdOutput<T>
    where
        T: Send,
        F: Fn(&mut Self::Comm) -> T + Sync;

    /// Spawns a persistent `p`-rank world for repeated jobs.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `p > MAX_RANKS`.
    fn world(p: usize, model: CostModel) -> Self::World;
}
