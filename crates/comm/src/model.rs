//! Communication/computation cost model for the virtual-time engine.
//!
//! The runtime tracks, per rank, a virtual clock advanced by two rules:
//!
//! * local computation of `f` flops costs `f / flop_rate` seconds;
//! * a message of `b` bytes injected at sender-time `t_i` becomes
//!   available to the receiver at `t_i + alpha + beta * b` (the classic
//!   latency/bandwidth "alpha-beta" model, the simplification of LogGP
//!   used throughout the parallel algorithms literature — including the
//!   complexity analysis reproduced here).
//!
//! Two refinements make the model honest about *pipelined* traffic:
//!
//! * **Link serialization.** A sender's injections toward one
//!   destination serialize on the outgoing link: the injection time of a
//!   message is `max(clock, link_busy[dest])` and the link stays busy for
//!   `beta * b` after it. Alpha overlaps with the predecessor's transfer
//!   (pipelined-rendezvous semantics), so splitting a panel into `T`
//!   back-to-back tiles delivers the last byte at exactly the same time
//!   as one combined message — tiling by itself is modeled as free, and
//!   any win must come from overlap.
//! * **Overlap accounting.** A blocking receive charges the receiver
//!   `max(clock, avail_at)` at the call; a nonblocking receive
//!   ([`crate::CommBackend::irecv_panel_into`]) posts without advancing the
//!   clock and charges the same `max` only at `wait`, so message
//!   transfer hidden under compute issued between post and wait costs
//!   `max(compute, comm)` rather than `compute + comm`. The hidden
//!   seconds are reported per rank as `RankStats::overlap_ns`.
//!
//! The modeled parallel runtime of an SPMD program is the maximum final
//! clock over all ranks. This lets the suite explore processor counts far
//! beyond the physical cores of the host (DESIGN.md §3) while the *same
//! program* also runs under real wall-clock timing.

/// Alpha-beta communication and flop-rate computation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency in seconds (`alpha`).
    pub latency_s: f64,
    /// Per-byte transfer time in seconds (`beta`, inverse bandwidth).
    pub per_byte_s: f64,
    /// Local computation rate in flop/s **per thread**.
    pub flop_rate: f64,
    /// Intra-rank threads available to the dense kernels. Modeled compute
    /// time divides by this (perfect intra-rank scaling, the standard
    /// hybrid MPI+threads assumption); the exact flop/byte *counters* are
    /// unaffected, so Table I validation is thread-count independent.
    /// `run_spmd` also hands this value to `bt_dense::threading` so the
    /// real kernels use the same budget the model assumes.
    pub threads_per_rank: usize,
}

impl CostModel {
    /// A model loosely calibrated to a commodity cluster: 2 microsecond
    /// latency, 5 GB/s effective bandwidth, 5 Gflop/s per-core DGEMM rate.
    pub const fn cluster() -> Self {
        Self {
            latency_s: 2.0e-6,
            per_byte_s: 2.0e-10,
            flop_rate: 5.0e9,
            threads_per_rank: 1,
        }
    }

    /// A model for a high-end interconnect (Cray-class: ~1 us latency,
    /// 10 GB/s, 10 Gflop/s) — the regime of the paper's testbed.
    pub const fn hpc() -> Self {
        Self {
            latency_s: 1.0e-6,
            per_byte_s: 1.0e-10,
            flop_rate: 1.0e10,
            threads_per_rank: 1,
        }
    }

    /// A free model: communication and computation cost nothing. Useful
    /// when only the counters (bytes/messages/flops) matter.
    pub const fn zero() -> Self {
        Self {
            latency_s: 0.0,
            per_byte_s: 0.0,
            flop_rate: f64::INFINITY,
            threads_per_rank: 1,
        }
    }

    /// Copy of `self` with `threads_per_rank` threads available to each
    /// rank's dense kernels.
    pub const fn with_threads_per_rank(mut self, threads: usize) -> Self {
        self.threads_per_rank = threads;
        self
    }

    /// Time for a message of `bytes` bytes.
    #[inline]
    pub fn msg_time(&self, bytes: u64) -> f64 {
        self.latency_s + self.per_byte_s * bytes as f64
    }

    /// Time for `flops` floating point operations, spread over the rank's
    /// intra-rank threads. A zero `threads_per_rank` is treated as 1 so a
    /// field-defaulted model cannot produce infinite times.
    #[inline]
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / self.flop_rate / self.threads_per_rank.max(1) as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_time_combines_latency_and_bandwidth() {
        let m = CostModel {
            latency_s: 1.0,
            per_byte_s: 0.5,
            flop_rate: 1.0,
            threads_per_rank: 1,
        };
        assert_eq!(m.msg_time(0), 1.0);
        assert_eq!(m.msg_time(4), 3.0);
    }

    #[test]
    fn compute_time_scales_with_flops() {
        let m = CostModel {
            latency_s: 0.0,
            per_byte_s: 0.0,
            flop_rate: 2.0,
            threads_per_rank: 1,
        };
        assert_eq!(m.compute_time(10), 5.0);
    }

    #[test]
    fn zero_model_costs_nothing() {
        let m = CostModel::zero();
        assert_eq!(m.msg_time(1 << 20), 0.0);
        assert_eq!(m.compute_time(u64::MAX), 0.0);
    }

    #[test]
    fn compute_time_divides_by_threads() {
        let m = CostModel::cluster();
        let m4 = m.with_threads_per_rank(4);
        assert_eq!(m.compute_time(1000) / 4.0, m4.compute_time(1000));
        // Message time is unaffected by the intra-rank thread count.
        assert_eq!(m.msg_time(4096), m4.msg_time(4096));
        // threads_per_rank == 0 is clamped, not infinite/NaN.
        let m0 = m.with_threads_per_rank(0);
        assert_eq!(m0.compute_time(1000), m.compute_time(1000));
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        assert!(CostModel::hpc().latency_s < CostModel::cluster().latency_s);
        assert!(CostModel::hpc().flop_rate > CostModel::cluster().flop_rate);
    }
}
