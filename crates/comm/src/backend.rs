//! The [`CommBackend`] trait: the communication surface every solver in
//! this workspace is written against.
//!
//! A backend provides point-to-point messaging (blocking and
//! nonblocking), panel transport over the pooled [`PanelBuf`] wire
//! format, accounting hooks (`compute`, `stats`, a per-rank clock), and
//! — as provided methods layered on the raw point-to-point layer — the
//! full collective suite. Two implementations ship in-tree:
//!
//! * `bt-mpsim`'s `Comm`: the virtual-clock **simulator**. Its clock is
//!   modeled time under a [`CostModel`]; `compute` advances the clock
//!   without burning cycles, so world sizes far beyond the host's cores
//!   still produce faithful modeled runtimes.
//! * `bt-shm`'s `ShmComm`: a **real shared-memory SPMD backend**. P rank
//!   threads exchange panels over lock-free SPSC channels; the clock is
//!   wall time and `compute` only counts flops.
//!
//! The collective algorithms live here as provided methods so every
//! backend exhibits the same message pattern, tag sequence and
//! (rank-ordered, non-commutative-safe) reduction semantics. They are
//! expressed over [`CommBackend::send_raw`]/[`CommBackend::recv_raw`] —
//! the un-asserted point-to-point layer that is allowed to use the
//! reserved collective tag space above [`USER_TAG_LIMIT`].
//!
//! Nonblocking completion goes through the communicator
//! (`comm.send_wait(req)` / `comm.recv_wait(req)`) rather than through
//! methods on the request handles: a backend whose requests complete
//! off-thread needs the communicator at completion time, while the
//! simulator's buffered-eager sends do not — routing both through the
//! same seam keeps call sites backend-agnostic without threading unused
//! state anywhere.

use bt_dense::{Element, Mat, MatMut, MatRef};

use crate::model::CostModel;
use crate::payload::{PanelBuf, Payload};
use crate::stats::RankStats;

/// First tag value reserved for collectives; user tags must be below this.
pub const USER_TAG_LIMIT: u64 = 1 << 48;

/// Per-rank communicator surface of one SPMD backend.
///
/// Every collective must be called by **all ranks in the same order**
/// (the usual SPMD contract). A per-communicator sequence number keyed
/// into a reserved tag space keeps successive collectives from
/// interfering, even when user point-to-point traffic is in flight.
///
/// Non-commutative operators are supported everywhere they make sense:
/// reductions and scans always combine partial results in rank order
/// (`op(lower_ranks_result, higher_ranks_result)`), which is what the
/// matrix-product scans of recursive doubling require.
pub trait CommBackend {
    /// Handle for a posted [`CommBackend::isend_panel`], completed via
    /// [`CommBackend::send_wait`].
    type SendReq;
    /// Handle for a posted [`CommBackend::irecv_panel_into`], completed
    /// via [`CommBackend::recv_wait`].
    type RecvReq;

    /// This rank's id, `0 <= rank() < size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// The cost model attached to this world. For the simulator this
    /// *defines* the clock; for real backends it is the calibrated
    /// reference that modeled figures are compared against.
    fn model(&self) -> CostModel;

    /// This rank's counters so far.
    fn stats(&self) -> RankStats;

    /// Seconds elapsed on this backend's clock since the program (or
    /// job) started: virtual time on the simulator, wall time on real
    /// backends.
    fn virtual_time(&self) -> f64;

    /// Virtual/wall seconds nonblocking receives spent in flight between
    /// post and completion (the overlap ratio's denominator).
    fn inflight_seconds(&self) -> f64;

    /// Seconds of in-flight communication hidden behind compute — time
    /// this rank did **not** spend blocked in a wait.
    /// `overlap_seconds() / inflight_seconds()` is the run's overlap
    /// ratio: 0 for post-then-immediately-wait, approaching 1 for a
    /// perfectly hidden pipeline.
    fn overlap_seconds(&self) -> f64;

    /// Records `flops` floating point operations of local computation,
    /// advancing this backend's clock accordingly (the simulator charges
    /// modeled time; real backends only count, their clock is wall time).
    fn compute(&mut self, flops: u64);

    /// Advances the backend clock by `seconds` without counting flops
    /// (for modeling non-flop work such as data movement). Real-clock
    /// backends may treat this as a no-op.
    fn advance_time(&mut self, seconds: f64);

    /// Sends `value` to `dest` with `tag`, without the user-tag range
    /// check — the building block collectives use for tags above
    /// [`USER_TAG_LIMIT`]. Non-blocking (buffered-eager): never waits
    /// for the receiver, so crossed sends cannot deadlock.
    ///
    /// # Panics
    ///
    /// Panics if `dest >= size()` or the destination rank terminated.
    fn send_raw<T: Payload>(&mut self, dest: usize, tag: u64, value: T);

    /// Receives a `T` from `src` with matching `tag`, blocking until it
    /// arrives; no user-tag range check. Messages with other tags from
    /// the same source are buffered for later matching receives, so
    /// out-of-order tag matching behaves like MPI.
    ///
    /// # Panics
    ///
    /// Panics if `src >= size()`, if the matching message's payload is
    /// not a `T`, or if `src` terminated without sending one.
    fn recv_raw<T: Payload>(&mut self, src: usize, tag: u64) -> T;

    /// Allocates a fresh collective tag (same value on every rank
    /// because collectives are called in the same order on every rank).
    /// Must return `USER_TAG_LIMIT + seq` for a per-communicator
    /// sequence `seq` starting at 0 — the reserved per-round offsets the
    /// provided collectives add (multiples of `1 << 56`) rely on it.
    fn next_collective_tag(&mut self) -> u64;

    /// Nonblocking panel send of a (possibly strided) view at either
    /// element width, packed into a pooled [`PanelBuf`]. Complete via
    /// [`CommBackend::send_wait`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`CommBackend::send`].
    fn isend_panel<E: Element>(
        &mut self,
        dest: usize,
        tag: u64,
        panel: MatRef<'_, E>,
    ) -> Self::SendReq;

    /// Posts a nonblocking receive of a panel from `src` with `tag`,
    /// taking ownership of the destination buffer `out` (typically a
    /// [`bt_dense::Workspace`] checkout). Completion —
    /// [`CommBackend::recv_wait`] — blocks for the message, unpacks it
    /// into the buffer and hands the buffer back. Requests on the same
    /// `(src, tag)` complete in post order. The buffer's element type is
    /// part of the message contract: the sender must have packed the
    /// panel at the same precision.
    ///
    /// # Panics
    ///
    /// Panics if `src >= size()` or `tag` is in the collective-reserved
    /// range.
    fn irecv_panel_into<E: Element>(&mut self, src: usize, tag: u64, out: Mat<E>) -> Self::RecvReq;

    /// True when the posted send has completed (backends with buffered
    /// sends complete at post time).
    fn send_test(&mut self, req: &Self::SendReq) -> bool;

    /// Completes a posted send, blocking if the backend requires it.
    fn send_wait(&mut self, req: Self::SendReq);

    /// True when the message matching a posted receive is available for
    /// completion without blocking. Use it to opportunistically drain,
    /// not to synchronize — that is [`CommBackend::recv_wait`]'s job.
    fn recv_test(&mut self, req: &Self::RecvReq) -> bool;

    /// Completes a posted receive: blocks until the matching message
    /// arrives, unpacks the panel into the owned buffer and returns it.
    /// On the simulator the clock charge is `max(now, avail_at)` — the
    /// overlap accounting; real backends record measured wait time.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`CommBackend::recv`], plus a
    /// shape or precision mismatch between the sent panel and the posted
    /// buffer.
    fn recv_wait<E: Element>(&mut self, req: Self::RecvReq) -> Mat<E>;

    /// Sends `value` to `dest` with `tag`. Non-blocking.
    ///
    /// # Panics
    ///
    /// Panics if `dest >= size()`, if `tag >= USER_TAG_LIMIT` (reserved
    /// for collectives), or if the destination rank has terminated.
    fn send<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        self.send_raw(dest, tag, value);
    }

    /// Receives a `T` from `src` with matching `tag`, blocking until it
    /// arrives.
    ///
    /// # Panics
    ///
    /// Panics if `src >= size()`, if `tag >= USER_TAG_LIMIT`, if the
    /// matching message's payload is not a `T`, or if `src` terminated
    /// without sending a matching message.
    fn recv<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        self.recv_raw(src, tag)
    }

    /// Combined send-then-receive with the same peer (safe because sends
    /// never block). The standard building block of doubling exchanges.
    fn sendrecv<T: Payload>(&mut self, peer: usize, tag: u64, value: T) -> T {
        self.send(peer, tag, value);
        self.recv(peer, tag)
    }

    /// Sends a (possibly strided) matrix view to `dest` with `tag` as a
    /// pooled [`PanelBuf`] — no per-message allocation once the pool is
    /// warm. Pairs with [`CommBackend::recv_panel_into`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`CommBackend::send`].
    fn send_panel<E: Element>(&mut self, dest: usize, tag: u64, panel: MatRef<'_, E>) {
        self.send(dest, tag, PanelBuf::pack(panel));
    }

    /// Receives a panel from `src` with matching `tag` directly into
    /// caller-provided scratch, returning the backing buffer to the
    /// [`PanelBuf`] pool. Pairs with [`CommBackend::send_panel`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`CommBackend::recv`], plus a shape or
    /// precision mismatch between the sent panel and `out`.
    fn recv_panel_into<E: Element>(&mut self, src: usize, tag: u64, out: MatMut<'_, E>) {
        self.recv::<PanelBuf>(src, tag).unpack_into(out);
    }

    /// MPI_Sendrecv-style paired exchange of panels under one tag:
    /// optionally sends to `send_to` and optionally receives from
    /// `recv_from`, in the send-first order that is unconditionally
    /// deadlock-free under buffered sends. The building block of
    /// doubling rounds and halo exchanges, replacing hand-rolled
    /// rank-parity orderings.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CommBackend::send_panel`] /
    /// [`CommBackend::recv_panel_into`].
    fn exchange_panel<E: Element>(
        &mut self,
        tag: u64,
        send_to: Option<(usize, MatRef<'_, E>)>,
        recv_from: Option<(usize, MatMut<'_, E>)>,
    ) {
        if let Some((dst, panel)) = send_to {
            self.send_panel(dst, tag, panel);
        }
        if let Some((src, out)) = recv_from {
            self.recv_panel_into(src, tag, out);
        }
    }

    /// True on rank 0 — convenient for one-rank-only side effects.
    fn is_root(&self) -> bool {
        self.rank() == 0
    }

    /// Synchronizes all ranks (dissemination barrier, `ceil(log2 P)`
    /// rounds).
    fn barrier(&mut self) {
        let tag = self.next_collective_tag();
        let p = self.size();
        let r = self.rank();
        let mut k = 1;
        while k < p {
            let to = (r + k) % p;
            let from = (r + p - k) % p;
            self.send_raw(to, tag + (k as u64) * (1 << 56), ());
            let () = self.recv_raw(from, tag + (k as u64) * (1 << 56));
            k <<= 1;
        }
    }

    /// Broadcasts `value` from `root` to all ranks (binomial tree).
    ///
    /// On the root, pass `Some(value)`; on other ranks pass `None`.
    /// Returns the broadcast value on every rank.
    ///
    /// # Panics
    ///
    /// Panics if the root passes `None` or a non-root passes `Some`.
    fn broadcast<T: Payload + Clone>(&mut self, root: usize, value: Option<T>) -> T {
        let tag = self.next_collective_tag();
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        if vr == 0 {
            assert!(value.is_some(), "broadcast root must supply a value");
        } else {
            assert!(
                value.is_none(),
                "non-root rank {} passed a broadcast value",
                self.rank()
            );
        }

        let mut current = value;
        // Receive from the parent: the rank that differs in the lowest set
        // bit of our virtual rank.
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = ((vr - mask) + root) % p;
                current = Some(self.recv_raw(parent, tag));
                break;
            }
            mask <<= 1;
        }
        // Forward to children under decreasing masks.
        mask >>= 1;
        let val = current.expect("broadcast value must exist after receive phase");
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let child = ((vr + mask) + root) % p;
                self.send_raw(child, tag, val.clone());
            }
            mask >>= 1;
        }
        val
    }

    /// Reduces values from all ranks onto `root` with an associative (not
    /// necessarily commutative) `op`; partial results are combined in rank
    /// order. Returns `Some(total)` on root, `None` elsewhere.
    fn reduce<T: Payload + Clone>(
        &mut self,
        root: usize,
        value: T,
        op: impl Fn(&T, &T) -> T,
    ) -> Option<T> {
        let tag = self.next_collective_tag();
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if vr & mask == 0 {
                let peer_vr = vr | mask;
                if peer_vr < p {
                    let peer = (peer_vr + root) % p;
                    let other: T = self.recv_raw(peer, tag);
                    // `acc` covers virtual ranks [vr, vr+mask), `other`
                    // covers [vr+mask, ...): combine in rank order.
                    acc = op(&acc, &other);
                }
            } else {
                let peer = ((vr & !mask) + root) % p;
                self.send_raw(peer, tag, acc.clone());
                return None;
            }
            mask <<= 1;
        }
        debug_assert_eq!(vr, 0);
        Some(acc)
    }

    /// Reduce-to-all: every rank gets the rank-ordered combination of all
    /// contributions (reduce to rank 0, then broadcast).
    fn allreduce<T: Payload + Clone>(&mut self, value: T, op: impl Fn(&T, &T) -> T) -> T {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced)
    }

    /// Gathers one value from each rank onto `root`, in rank order.
    /// Returns `Some(vec)` (indexed by rank) on root, `None` elsewhere.
    fn gather<T: Payload>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        let tag = self.next_collective_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for src in (0..self.size()).filter(|&s| s != root) {
                let received = self.recv_raw(src, tag);
                out[src] = Some(received);
            }
            Some(
                out.into_iter()
                    .map(|v| v.expect("gather slot filled"))
                    .collect(),
            )
        } else {
            self.send_raw(root, tag, value);
            None
        }
    }

    /// All-gather: every rank receives the vector of all contributions in
    /// rank order (gather to rank 0 + broadcast).
    fn allgather<T: Payload + Clone>(&mut self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered)
    }

    /// Scatters `values` (indexed by rank) from `root`: rank `i` receives
    /// `values[i]`. On the root pass `Some(values)` (length `P`); on
    /// other ranks pass `None`.
    ///
    /// # Panics
    ///
    /// Panics if the root's vector length differs from the world size, if
    /// the root passes `None`, or a non-root passes `Some`.
    fn scatter<T: Payload>(&mut self, root: usize, values: Option<Vec<T>>) -> T {
        let tag = self.next_collective_tag();
        if self.rank() == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(values.len(), self.size(), "scatter length mismatch");
            let mut mine = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == root {
                    mine = Some(v);
                } else {
                    self.send_raw(dst, tag, v);
                }
            }
            mine.expect("root keeps its own slot")
        } else {
            assert!(
                values.is_none(),
                "non-root rank {} passed scatter values",
                self.rank()
            );
            self.recv_raw(root, tag)
        }
    }

    /// All-to-all personalized exchange: `values[dst]` goes to rank
    /// `dst`; returns the vector of contributions received, indexed by
    /// source rank.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != size()`.
    fn alltoall<T: Payload>(&mut self, values: Vec<T>) -> Vec<T> {
        let tag = self.next_collective_tag();
        assert_eq!(values.len(), self.size(), "alltoall length mismatch");
        let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
        for (dst, v) in values.into_iter().enumerate() {
            if dst == self.rank() {
                slots[dst] = Some(v);
            } else {
                self.send_raw(dst, tag, v);
            }
        }
        let (p, me) = (self.size(), self.rank());
        for src in (0..p).filter(|&s| s != me) {
            let received = self.recv_raw(src, tag);
            slots[src] = Some(received);
        }
        slots.into_iter().map(|v| v.expect("slot filled")).collect()
    }

    /// Inclusive scan (Kogge-Stone recursive doubling, `ceil(log2 P)`
    /// rounds): rank `r` obtains `op(x_0, op(x_1, ... x_r))` combined in
    /// rank order. This is the communication pattern whose cost is the
    /// `log P` term in the paper's `O(M^3 (N/P + log P))` bound.
    fn scan_inclusive<T: Payload + Clone>(&mut self, value: T, op: impl Fn(&T, &T) -> T) -> T {
        let tag = self.next_collective_tag();
        let p = self.size();
        let r = self.rank();
        let mut acc = value;
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < p {
            let round_tag = tag + round * (1 << 56);
            if r + dist < p {
                self.send_raw(r + dist, round_tag, acc.clone());
            }
            if r >= dist {
                let other: T = self.recv_raw(r - dist, round_tag);
                // `other` covers ranks [r - 2*dist + 1 .. r - dist], all
                // earlier than `acc`'s window: combine with it on the left.
                acc = op(&other, &acc);
            }
            dist <<= 1;
            round += 1;
        }
        acc
    }

    /// Exclusive scan: rank `r > 0` obtains the combination of ranks
    /// `0..r`; rank 0 obtains `None`. One shift round after an inclusive
    /// scan.
    fn scan_exclusive<T: Payload + Clone>(
        &mut self,
        value: T,
        op: impl Fn(&T, &T) -> T,
    ) -> Option<T> {
        let inclusive = self.scan_inclusive(value, op);
        let tag = self.next_collective_tag();
        let p = self.size();
        let r = self.rank();
        if r + 1 < p {
            self.send_raw(r + 1, tag, inclusive);
        }
        if r > 0 {
            Some(self.recv_raw(r - 1, tag))
        } else {
            None
        }
    }
}
