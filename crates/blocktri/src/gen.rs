//! Block tridiagonal system generators.
//!
//! Each generator implements [`BlockRowSource`] with **per-row
//! determinism**: `row(i)` depends only on the generator parameters and
//! `i`, never on generation order. Distributed solvers exploit this to
//! materialize only their local row range with no communication.
//!
//! The generators cover the numerical regime of the paper's application
//! domain (diagonally dominant systems from implicit PDE discretizations
//! and plasma-physics solvers): see DESIGN.md §3.

use crate::matrix::{BlockRow, BlockRowSource, BlockTridiag, BlockVec};
use bt_dense::random::{diag_dominant, rng, uniform};
use bt_dense::Mat;

/// Mixes a seed and a row index into an independent per-row seed
/// (splitmix64 finalizer — enough to decorrelate consecutive rows).
pub fn row_seed(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random block rows with the diagonal block boosted until each scalar
/// row of the block row (including the `A` and `C` contributions) is
/// strictly diagonally dominant. Well conditioned for any `N`, `M`.
#[derive(Debug, Clone)]
pub struct RandomDominant {
    n: usize,
    m: usize,
    /// Dominance margin (`>= 1`); larger = better conditioned.
    margin: f64,
    seed: u64,
}

impl RandomDominant {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `m == 0` or `margin < 1.0`.
    pub fn new(n: usize, m: usize, margin: f64, seed: u64) -> Self {
        assert!(n > 0 && m > 0, "empty system");
        assert!(margin >= 1.0, "margin must be >= 1");
        Self { n, m, margin, seed }
    }
}

impl BlockRowSource for RandomDominant {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.m
    }

    fn row(&self, i: usize) -> BlockRow {
        assert!(i < self.n, "row {i} out of range {}", self.n);
        let mut rg = rng(row_seed(self.seed, i as u64));
        let m = self.m;
        let a = if i == 0 {
            Mat::zeros(m, m)
        } else {
            uniform(m, m, &mut rg)
        };
        let c = if i + 1 == self.n {
            Mat::zeros(m, m)
        } else {
            uniform(m, m, &mut rg)
        };
        let mut b = uniform(m, m, &mut rg);
        // Boost B's diagonal so each scalar row dominates the whole block
        // row: |b_kk| > margin * (sum |a_kj| + |c_kj| + |b_kj|, j != k).
        for k in 0..m {
            let mut off = 0.0;
            for j in 0..m {
                off += a.get(k, j).abs() + c.get(k, j).abs();
                if j != k {
                    off += b.get(k, j).abs();
                }
            }
            let sign = if b.get(k, k) >= 0.0 { 1.0 } else { -1.0 };
            b.set(k, k, sign * (off * self.margin + 1.0));
        }
        BlockRow::new(a, b, c)
    }
}

/// 2D Poisson equation (5-point stencil) on an `M x N` grid, ordered so
/// each grid column is one block row: `B = tridiag(-1, 4, -1)` (`M x M`),
/// `A = C = -I`. Symmetric positive definite, the classic model problem.
#[derive(Debug, Clone)]
pub struct Poisson2D {
    n: usize,
    m: usize,
}

impl Poisson2D {
    /// Grid with `n` block columns of height `m`.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "empty grid");
        Self { n, m }
    }
}

impl BlockRowSource for Poisson2D {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.m
    }

    fn row(&self, i: usize) -> BlockRow {
        assert!(i < self.n);
        let m = self.m;
        let b = Mat::from_fn(m, m, |r, c| {
            if r == c {
                4.0
            } else if r.abs_diff(c) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let coupling = Mat::identity(m).scaled(-1.0);
        let a = if i == 0 {
            Mat::zeros(m, m)
        } else {
            coupling.clone()
        };
        let c = if i + 1 == self.n {
            Mat::zeros(m, m)
        } else {
            coupling
        };
        BlockRow::new(a, b, c)
    }
}

/// Upwinded convection-diffusion on an `M x N` grid: a *nonsymmetric*
/// block tridiagonal system. `peclet` in `[0, 1)` sets the strength of
/// the convective skew; `0` recovers [`Poisson2D`].
#[derive(Debug, Clone)]
pub struct ConvectionDiffusion {
    n: usize,
    m: usize,
    peclet: f64,
}

impl ConvectionDiffusion {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `peclet` is outside `[0, 1)`.
    pub fn new(n: usize, m: usize, peclet: f64) -> Self {
        assert!(n > 0 && m > 0, "empty grid");
        assert!((0.0..1.0).contains(&peclet), "peclet must be in [0, 1)");
        Self { n, m, peclet }
    }
}

impl BlockRowSource for ConvectionDiffusion {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.m
    }

    fn row(&self, i: usize) -> BlockRow {
        assert!(i < self.n);
        let m = self.m;
        let p = self.peclet;
        let b = Mat::from_fn(m, m, |r, c| {
            if r == c {
                4.0 + 2.0 * p
            } else if c + 1 == r {
                -(1.0 + p) // flow direction: downwind coefficient grows
            } else if r + 1 == c {
                -(1.0 - p)
            } else {
                0.0
            }
        });
        let a = if i == 0 {
            Mat::zeros(m, m)
        } else {
            Mat::identity(m).scaled(-(1.0 + p))
        };
        let c = if i + 1 == self.n {
            Mat::zeros(m, m)
        } else {
            Mat::identity(m).scaled(-(1.0 - p))
        };
        BlockRow::new(a, b, c)
    }
}

/// 2D Helmholtz equation (shifted Laplacian) on an `M x N` grid:
/// `B = tridiag(-1, 4 - k2, -1)`, `A = C = -I`. For `k2 = 0` this is
/// [`Poisson2D`]; for `k2 > 0` the operator is symmetric but
/// **indefinite** — the classic hard case for factorization-based
/// solvers. Used by the failure-path tests: the SPD solver must reject
/// it, and pivot breakdowns must surface as errors, not wrong answers.
#[derive(Debug, Clone)]
pub struct Helmholtz2D {
    n: usize,
    m: usize,
    k2: f64,
}

impl Helmholtz2D {
    /// Grid with `n` block columns of height `m` and shift `k2 >= 0`.
    pub fn new(n: usize, m: usize, k2: f64) -> Self {
        assert!(n > 0 && m > 0, "empty grid");
        assert!(k2 >= 0.0, "negative shift");
        Self { n, m, k2 }
    }
}

impl BlockRowSource for Helmholtz2D {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.m
    }

    fn row(&self, i: usize) -> BlockRow {
        assert!(i < self.n);
        let m = self.m;
        let diag = 4.0 - self.k2;
        let b = Mat::from_fn(m, m, |r, c| {
            if r == c {
                diag
            } else if r.abs_diff(c) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let coupling = Mat::identity(m).scaled(-1.0);
        let a = if i == 0 {
            Mat::zeros(m, m)
        } else {
            coupling.clone()
        };
        let c = if i + 1 == self.n {
            Mat::zeros(m, m)
        } else {
            coupling
        };
        BlockRow::new(a, b, c)
    }
}

/// Block Toeplitz system: the same `(A, B, C)` triple on every interior
/// row. Useful for controlled conditioning studies.
#[derive(Debug, Clone)]
pub struct BlockToeplitz {
    n: usize,
    a: Mat,
    b: Mat,
    c: Mat,
}

impl BlockToeplitz {
    /// Creates the generator from the repeating blocks.
    ///
    /// # Panics
    ///
    /// Panics if the blocks are not square and identically sized.
    pub fn new(n: usize, a: Mat, b: Mat, c: Mat) -> Self {
        assert!(n > 0, "empty system");
        let m = b.rows();
        assert!(
            b.is_square() && a.shape() == (m, m) && c.shape() == (m, m),
            "block shape mismatch"
        );
        Self { n, a, b, c }
    }

    /// Diagonally dominant Toeplitz instance: `B = d*I + U`, `A = C = -I`
    /// with a small random perturbation `U` (seeded).
    pub fn dominant(n: usize, m: usize, d: f64, seed: u64) -> Self {
        let mut rg = rng(seed);
        let mut b = diag_dominant(m, 1.2, &mut rg);
        for k in 0..m {
            let v = b.get(k, k);
            b.set(k, k, v + d.copysign(v));
        }
        let a = Mat::identity(m).scaled(-1.0);
        let c = Mat::identity(m).scaled(-1.0);
        Self::new(n, a, b, c)
    }
}

impl BlockRowSource for BlockToeplitz {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.b.rows()
    }

    fn row(&self, i: usize) -> BlockRow {
        assert!(i < self.n);
        let m = self.m();
        let a = if i == 0 {
            Mat::zeros(m, m)
        } else {
            self.a.clone()
        };
        let c = if i + 1 == self.n {
            Mat::zeros(m, m)
        } else {
            self.c.clone()
        };
        BlockRow::new(a, self.b.clone(), c)
    }
}

/// Block Toeplitz system with tightly *clustered* block spectra:
/// `B = d*I + eps*U0`, `A = -I + eps*U1`, `C = -I + eps*U2` with fixed
/// seeded perturbations `U*` (entries in `[-1, 1]`).
///
/// Why it exists: prefix-computation solvers (recursive doubling)
/// propagate products of transfer matrices whose conditioning grows like
/// `spread^N`, where `spread` is the per-row singular-value spread of the
/// block iteration map — `1 + O(eps/d)` here. With small `eps/d` this
/// generator stays in the method's accurate envelope for very large `N`,
/// which mirrors the tightly clustered physics matrices of the paper's
/// application domain. See DESIGN.md §7 and Table III.
#[derive(Debug, Clone)]
pub struct ClusteredToeplitz {
    n: usize,
    a: Mat,
    b: Mat,
    c: Mat,
}

impl ClusteredToeplitz {
    /// Creates the generator. `d` is the diagonal weight (must exceed 2 so
    /// the system is dominated by the diagonal), `eps` the perturbation
    /// scale.
    ///
    /// # Panics
    ///
    /// Panics if `d <= 2.0 + 2.0 * eps` (dominance would be lost) or
    /// `eps < 0`.
    pub fn new(n: usize, m: usize, d: f64, eps: f64, seed: u64) -> Self {
        assert!(n > 0 && m > 0, "empty system");
        assert!(eps >= 0.0, "negative perturbation");
        assert!(
            d > 2.0 + 2.0 * eps,
            "diagonal weight {d} too small for dominance"
        );
        let mut rg = rng(seed);
        let mut b = uniform(m, m, &mut rg);
        b.scale(eps);
        for k in 0..m {
            let v = b.get(k, k);
            b.set(k, k, v + d);
        }
        let mut a = uniform(m, m, &mut rg);
        a.scale(eps);
        for k in 0..m {
            let v = a.get(k, k);
            a.set(k, k, v - 1.0);
        }
        let mut c = uniform(m, m, &mut rg);
        c.scale(eps);
        for k in 0..m {
            let v = c.get(k, k);
            c.set(k, k, v - 1.0);
        }
        Self { n, a, b, c }
    }

    /// A standard well-conditioned instance: `d = 8` with the
    /// perturbation scaled as `1e-3 / M`, keeping the per-row spectral
    /// spread (~`1 + 2 eps M / d`) small enough that prefix products stay
    /// well conditioned for `N` in the tens of thousands at any block
    /// order used by the experiment suite.
    pub fn standard(n: usize, m: usize, seed: u64) -> Self {
        Self::new(n, m, 8.0, 1.0e-3 / m as f64, seed)
    }
}

impl BlockRowSource for ClusteredToeplitz {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.b.rows()
    }

    fn row(&self, i: usize) -> BlockRow {
        assert!(i < self.n);
        let m = self.m();
        let a = if i == 0 {
            Mat::zeros(m, m)
        } else {
            self.a.clone()
        };
        let c = if i + 1 == self.n {
            Mat::zeros(m, m)
        } else {
            self.c.clone()
        };
        BlockRow::new(a, self.b.clone(), c)
    }
}

/// Deterministic random `M x R` right-hand-side panel for block row `i`.
/// Any rank can generate its local panels without communication.
pub fn rhs_panel(m: usize, r: usize, seed: u64, row: usize) -> Mat {
    let mut rg = rng(row_seed(seed ^ 0xABCD_EF01_2345_6789, row as u64));
    uniform(m, r, &mut rg)
}

/// Full random right-hand-side block vector with `R` columns.
pub fn random_rhs(n: usize, m: usize, r: usize, seed: u64) -> BlockVec {
    BlockVec::from_blocks((0..n).map(|i| rhs_panel(m, r, seed, i)).collect())
}

/// Materializes a full [`BlockTridiag`] from any source (convenience).
pub fn materialize(src: &dyn BlockRowSource) -> BlockTridiag {
    BlockTridiag::from_source(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_seed_decorrelates() {
        assert_ne!(row_seed(1, 0), row_seed(1, 1));
        assert_ne!(row_seed(1, 0), row_seed(2, 0));
        assert_eq!(row_seed(7, 3), row_seed(7, 3));
    }

    #[test]
    fn random_dominant_rows_deterministic_and_bounded() {
        let g = RandomDominant::new(10, 4, 1.5, 42);
        assert_eq!(g.row(3), g.row(3));
        let t = materialize(&g);
        assert_eq!(t.n(), 10);
        assert_eq!(t.m(), 4);
        assert_eq!(t.row(0).a.max_abs(), 0.0);
        assert_eq!(t.row(9).c.max_abs(), 0.0);
    }

    #[test]
    fn random_dominant_is_scalar_row_dominant() {
        let g = RandomDominant::new(6, 5, 1.1, 9);
        for i in 0..6 {
            let row = g.row(i);
            for k in 0..5 {
                let mut off = 0.0;
                for j in 0..5 {
                    off += row.a.get(k, j).abs() + row.c.get(k, j).abs();
                    if j != k {
                        off += row.b.get(k, j).abs();
                    }
                }
                assert!(row.b.get(k, k).abs() > off, "row {i} scalar row {k}");
            }
        }
    }

    #[test]
    fn poisson_block_structure() {
        let g = Poisson2D::new(3, 4);
        let r1 = g.row(1);
        assert_eq!(r1.b[(0, 0)], 4.0);
        assert_eq!(r1.b[(0, 1)], -1.0);
        assert_eq!(r1.b[(0, 2)], 0.0);
        assert_eq!(r1.a, Mat::identity(4).scaled(-1.0));
        // Dense expansion is symmetric.
        let t = materialize(&g);
        let d = t.to_dense();
        assert!(d.sub(&d.transpose()).max_abs() == 0.0);
    }

    #[test]
    fn convection_diffusion_nonsymmetric() {
        let g = ConvectionDiffusion::new(3, 3, 0.5);
        let d = materialize(&g).to_dense();
        assert!(d.sub(&d.transpose()).max_abs() > 0.1);
        // peclet = 0 recovers Poisson.
        let g0 = ConvectionDiffusion::new(3, 3, 0.0);
        let p = materialize(&Poisson2D::new(3, 3)).to_dense();
        assert!(materialize(&g0).to_dense().sub(&p).max_abs() < 1e-15);
    }

    #[test]
    fn toeplitz_repeats_blocks() {
        let g = BlockToeplitz::dominant(5, 3, 2.0, 1);
        let t = materialize(&g);
        assert_eq!(t.row(1).b, t.row(3).b);
        assert_eq!(t.row(1).a, t.row(2).a);
    }

    #[test]
    fn rhs_panels_deterministic_per_row() {
        let p1 = rhs_panel(4, 3, 5, 2);
        let p2 = rhs_panel(4, 3, 5, 2);
        assert_eq!(p1, p2);
        assert_ne!(p1, rhs_panel(4, 3, 5, 3));
        let bv = random_rhs(6, 4, 3, 5);
        assert_eq!(bv.blocks[2], p1);
        assert_eq!(bv.r(), 3);
    }

    #[test]
    fn clustered_toeplitz_properties() {
        let g = ClusteredToeplitz::standard(100, 4, 7);
        let t = materialize(&g);
        assert!(t.is_block_diag_dominant());
        assert_eq!(t.row(5).b, t.row(50).b);
        // Perturbation present but small.
        let b = &t.row(1).b;
        assert!((b[(0, 0)] - 8.0).abs() < 0.01 && b[(0, 0)] != 8.0);
    }

    #[test]
    #[should_panic(expected = "too small for dominance")]
    fn clustered_toeplitz_rejects_weak_diagonal() {
        let _ = ClusteredToeplitz::new(4, 2, 2.0, 0.1, 0);
    }

    #[test]
    fn helmholtz_reduces_to_poisson_at_zero_shift() {
        let h = materialize(&Helmholtz2D::new(4, 3, 0.0));
        let p = materialize(&Poisson2D::new(4, 3));
        assert!(h.to_dense().sub(&p.to_dense()).max_abs() == 0.0);
        // Shifted: still symmetric, diagonal reduced.
        let h2 = materialize(&Helmholtz2D::new(4, 3, 1.5));
        let d = h2.to_dense();
        assert!(d.sub(&d.transpose()).max_abs() == 0.0);
        assert_eq!(h2.row(1).b[(0, 0)], 2.5);
    }

    #[test]
    fn generators_produce_dominant_systems() {
        assert!(materialize(&RandomDominant::new(8, 3, 1.5, 0)).is_block_diag_dominant());
        assert!(materialize(&BlockToeplitz::dominant(8, 3, 3.0, 0)).is_block_diag_dominant());
        // Poisson is not strictly block-dominant in this measure but is SPD;
        // the solvers handle it, tested in the solver suites.
    }
}
