//! # bt-blocktri: block tridiagonal systems
//!
//! Storage, generators and sequential baselines for block tridiagonal
//! linear systems `T x = y` with `N` block rows of order `M` and `R`
//! simultaneous right-hand sides:
//!
//! * [`BlockTridiag`] / [`BlockVec`] — the matrix and multi-RHS panel
//!   types ([`matrix`]);
//! * [`gen`] — deterministic per-row system generators (Poisson,
//!   convection-diffusion, random dominant, Toeplitz), so distributed
//!   ranks materialize only their own rows;
//! * [`ThomasFactors`] — the `O(N M^3)` sequential block LU baseline with
//!   a factor-once / solve-many API ([`thomas`]);
//! * [`cyclic_reduction_solve`] — sequential block cyclic reduction, the
//!   BCYCLIC-style related-work baseline ([`cyclic_reduction`]);
//! * [`SpdThomasFactors`] — Cholesky-based variant for SPD systems, with
//!   `log det` support ([`thomas_spd`]);
//! * [`RowPartition`] — contiguous block-row distribution over ranks
//!   ([`partition`]).
//!
//! ## Quick example
//!
//! ```
//! use bt_blocktri::gen::{materialize, random_rhs, Poisson2D};
//! use bt_blocktri::thomas::thomas_solve;
//!
//! let t = materialize(&Poisson2D::new(32, 8)); // 32 block rows, 8x8 blocks
//! let y = random_rhs(32, 8, 4, 0);             // 4 right-hand sides
//! let x = thomas_solve(&t, &y).unwrap();
//! assert!(t.rel_residual(&x, &y) < 1e-12);
//! ```

pub mod cyclic_reduction;
pub mod gen;
pub mod matrix;
pub mod partition;
pub mod thomas;
pub mod thomas_spd;

pub use cyclic_reduction::cyclic_reduction_solve;
pub use matrix::{BlockRow, BlockRowSource, BlockTridiag, BlockVec};
pub use partition::RowPartition;
pub use thomas::{
    thomas_factor_flops, thomas_solve, thomas_solve_flops, FactorError, ThomasFactors,
};
pub use thomas_spd::{is_symmetric, SpdThomasFactors};
