//! Block Thomas algorithm: the sequential block LU baseline.
//!
//! This is the `O(N M^3)` sweep every parallel solver is measured
//! against, exposed with the factor-once / solve-many split so the
//! sequential comparator for multi-RHS workloads is fair:
//!
//! * [`ThomasFactors::factor`] — `O(N M^3)`, matrix only;
//! * [`ThomasFactors::solve`] — `O(N M^2 R)` per `R`-column panel.

use crate::matrix::{BlockTridiag, BlockVec};
use bt_dense::{gemm, LuFactors, Mat, SingularError, Trans};
use std::fmt;

/// Error from factoring a block tridiagonal matrix: a pivot block `D_i`
/// was singular.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorError {
    /// Block row at which factorization broke down.
    pub row: usize,
    /// The underlying dense-LU failure.
    pub source: SingularError,
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block LU breakdown at block row {}: {}",
            self.row, self.source
        )
    }
}

impl std::error::Error for FactorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Block LU factorization `T = L U` (no inter-block pivoting):
/// `D_0 = B_0`, `D_i = B_i - L_i C_{i-1}` with `L_i = A_i D_{i-1}^{-1}`.
#[derive(Debug, Clone)]
pub struct ThomasFactors {
    n: usize,
    m: usize,
    /// LU of each block diagonal `D_i`.
    d_lu: Vec<LuFactors>,
    /// `L_i = A_i D_{i-1}^{-1}` for `i >= 1` (index 0 unused, zero-sized).
    l: Vec<Mat>,
    /// Copies of the superdiagonal blocks for back substitution.
    c: Vec<Mat>,
}

impl ThomasFactors {
    /// Factors `t`. Fails with [`FactorError`] if any `D_i` is singular —
    /// which cannot happen for block diagonally dominant or symmetric
    /// positive definite systems.
    pub fn factor(t: &BlockTridiag) -> Result<Self, FactorError> {
        let n = t.n();
        let m = t.m();
        let mut d_lu: Vec<LuFactors> = Vec::with_capacity(n);
        let mut l: Vec<Mat> = Vec::with_capacity(n);
        let mut c: Vec<Mat> = Vec::with_capacity(n);

        for i in 0..n {
            let row = t.row(i);
            c.push(row.c.clone());
            let d = if i == 0 {
                l.push(Mat::empty());
                row.b.clone()
            } else {
                // L_i solves L_i * D_{i-1} = A_i  (right division).
                let li = d_lu[i - 1].solve_transposed_system(&row.a);
                // D_i = B_i - L_i C_{i-1}
                let mut d = row.b.clone();
                gemm(-1.0, &li, Trans::No, &c[i - 1], Trans::No, 1.0, &mut d);
                l.push(li);
                d
            };
            let lu = LuFactors::factor(&d).map_err(|source| FactorError { row: i, source })?;
            d_lu.push(lu);
        }
        Ok(Self { n, m, d_lu, l, c })
    }

    /// Number of block rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block order.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Access to the factored block diagonals (used by diagnostics and by
    /// tests cross-checking the parallel solvers' Phase 1).
    pub fn d_factor(&self, i: usize) -> &LuFactors {
        &self.d_lu[i]
    }

    /// Solves `T X = Y` for a panel of `R` right-hand sides.
    ///
    /// # Panics
    ///
    /// Panics if `y`'s shape does not match the factored matrix.
    pub fn solve(&self, y: &BlockVec) -> BlockVec {
        assert_eq!(y.n(), self.n, "rhs block count mismatch");
        assert_eq!(y.m(), self.m, "rhs block order mismatch");
        let r = y.r();

        // Forward sweep: z_i = y_i - L_i z_{i-1}.
        let mut z: Vec<Mat> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let mut zi = y.blocks[i].clone();
            if i > 0 {
                gemm(
                    -1.0,
                    &self.l[i],
                    Trans::No,
                    &z[i - 1],
                    Trans::No,
                    1.0,
                    &mut zi,
                );
            }
            z.push(zi);
        }

        // Backward sweep: x_i = D_i^{-1} (z_i - C_i x_{i+1}).
        let mut x = BlockVec::zeros(self.n, self.m, r);
        for i in (0..self.n).rev() {
            let mut rhs = z[i].clone();
            if i + 1 < self.n {
                gemm(
                    -1.0,
                    &self.c[i],
                    Trans::No,
                    &x.blocks[i + 1],
                    Trans::No,
                    1.0,
                    &mut rhs,
                );
            }
            self.d_lu[i].solve_in_place(&mut rhs);
            x.blocks[i] = rhs;
        }
        x
    }
}

/// One-shot convenience: factor and solve in a single call.
pub fn thomas_solve(t: &BlockTridiag, y: &BlockVec) -> Result<BlockVec, FactorError> {
    Ok(ThomasFactors::factor(t)?.solve(y))
}

/// Leading-order flop count of [`ThomasFactors::factor`]:
/// per interior row, one `M x M` LU (2/3 M^3), one `M`-RHS triangular
/// solve (2 M^3) and one GEMM (2 M^3).
pub fn thomas_factor_flops(n: usize, m: usize) -> u64 {
    let (n, m) = (n as u64, m as u64);
    n * (2 * m * m * m / 3 + 4 * m * m * m)
}

/// Leading-order flop count of [`ThomasFactors::solve`] for `R` columns:
/// per row, two `M x M * M x R` GEMMs and one factored solve.
pub fn thomas_solve_flops(n: usize, m: usize, r: usize) -> u64 {
    let (n, m, r) = (n as u64, m as u64, r as u64);
    n * (6 * m * m * r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{materialize, random_rhs, Poisson2D, RandomDominant};
    use bt_dense::solve as dense_solve;

    #[test]
    fn matches_dense_solver_small() {
        let t = materialize(&RandomDominant::new(6, 3, 1.2, 7));
        let y = random_rhs(6, 3, 2, 9);
        let x = thomas_solve(&t, &y).unwrap();
        let xd = dense_solve(&t.to_dense(), &y.to_dense()).unwrap();
        assert!(x.to_dense().sub(&xd).max_abs() < 1e-10);
    }

    #[test]
    fn residual_small_on_poisson() {
        let t = materialize(&Poisson2D::new(50, 8));
        let y = random_rhs(50, 8, 4, 3);
        let x = thomas_solve(&t, &y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-12);
    }

    #[test]
    fn factor_once_solve_many() {
        let t = materialize(&RandomDominant::new(20, 4, 1.5, 1));
        let f = ThomasFactors::factor(&t).unwrap();
        for seed in 0..3 {
            let y = random_rhs(20, 4, 5, seed);
            let x = f.solve(&y);
            assert!(t.rel_residual(&x, &y) < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn single_block_row_system() {
        let t = materialize(&RandomDominant::new(1, 5, 1.5, 2));
        let y = random_rhs(1, 5, 3, 0);
        let x = thomas_solve(&t, &y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-13);
    }

    #[test]
    fn scalar_blocks_reduce_to_scalar_thomas() {
        // M = 1: ordinary tridiagonal system.
        let t = materialize(&RandomDominant::new(30, 1, 2.0, 11));
        let y = random_rhs(30, 1, 1, 4);
        let x = thomas_solve(&t, &y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-13);
    }

    #[test]
    fn singular_diagonal_reported_with_row() {
        use crate::matrix::{BlockRow, BlockTridiag};
        let z = Mat::zeros(2, 2);
        // B_1 singular (zero) and decoupled so D_1 = 0.
        let t = BlockTridiag::new(vec![
            BlockRow::new(z.clone(), Mat::identity(2), z.clone()),
            BlockRow::new(z.clone(), Mat::zeros(2, 2), z.clone()),
            BlockRow::new(z.clone(), Mat::identity(2), z),
        ]);
        let err = ThomasFactors::factor(&t).unwrap_err();
        assert_eq!(err.row, 1);
        let msg = err.to_string();
        assert!(msg.contains("block row 1"), "{msg}");
    }

    #[test]
    fn flop_formulas_scale() {
        assert!(thomas_factor_flops(10, 4) > thomas_factor_flops(10, 2));
        assert_eq!(
            thomas_solve_flops(10, 4, 2) * 2,
            thomas_solve_flops(10, 4, 4)
        );
    }
}
