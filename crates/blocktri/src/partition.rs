//! Contiguous row partitioning of `N` block rows over `P` ranks.
//!
//! The distributed solvers assign each rank a contiguous range of block
//! rows; earlier ranks get the extra rows when `N % P != 0`, matching the
//! standard MPI block distribution.

use std::ops::Range;

/// A contiguous partition of `n` rows over `p` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPartition {
    n: usize,
    p: usize,
}

impl RowPartition {
    /// Creates the partition.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "partition over zero ranks");
        Self { n, p }
    }

    /// Total row count.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rank count.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Row range owned by `rank`. Ranges are contiguous, ordered by rank,
    /// and their lengths differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= p`.
    pub fn range(&self, rank: usize) -> Range<usize> {
        assert!(rank < self.p, "rank {rank} out of {}", self.p);
        let base = self.n / self.p;
        let rem = self.n % self.p;
        let start = rank * base + rank.min(rem);
        let len = base + usize::from(rank < rem);
        start..start + len
    }

    /// Number of rows owned by `rank`.
    pub fn len(&self, rank: usize) -> usize {
        self.range(rank).len()
    }

    /// True if `rank` owns no rows (only possible when `p > n`).
    pub fn is_empty(&self, rank: usize) -> bool {
        self.len(rank) == 0
    }

    /// The rank owning global row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "row {i} out of {}", self.n);
        let base = self.n / self.p;
        let rem = self.n % self.p;
        let big = (base + 1) * rem; // rows held by the first `rem` ranks
        if i < big {
            i / (base + 1)
        } else {
            rem + (i - big) / base.max(1)
        }
    }

    /// Largest number of rows owned by any rank (`ceil(n / p)`).
    pub fn max_len(&self) -> usize {
        self.n.div_ceil(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_and_are_disjoint() {
        for (n, p) in [(10, 3), (7, 7), (16, 4), (5, 8), (1, 1), (100, 13), (0, 4)] {
            let part = RowPartition::new(n, p);
            let mut covered = 0;
            for r in 0..p {
                let range = part.range(r);
                assert_eq!(range.start, covered, "n={n} p={p} rank={r}");
                covered = range.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn balanced_within_one() {
        let part = RowPartition::new(10, 3);
        let lens: Vec<_> = (0..3).map(|r| part.len(r)).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        assert_eq!(part.max_len(), 4);
    }

    #[test]
    fn owner_inverts_range() {
        for (n, p) in [(10, 3), (16, 4), (5, 8), (23, 6), (64, 64)] {
            let part = RowPartition::new(n, p);
            for i in 0..n {
                let o = part.owner(i);
                assert!(part.range(o).contains(&i), "n={n} p={p} row={i} owner={o}");
            }
        }
    }

    #[test]
    fn empty_ranks_when_p_exceeds_n() {
        let part = RowPartition::new(3, 5);
        assert_eq!(part.len(0), 1);
        assert_eq!(part.len(3), 0);
        assert!(part.is_empty(4));
    }

    #[test]
    #[should_panic(expected = "rank 3 out of 3")]
    fn rank_out_of_range_panics() {
        let _ = RowPartition::new(10, 3).range(3);
    }
}
