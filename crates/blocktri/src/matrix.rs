//! Block tridiagonal matrix and block vector types.
//!
//! A [`BlockTridiag`] with `N` block rows of order `M` represents
//!
//! ```text
//! | B_0  C_0                     |
//! | A_1  B_1  C_1                |
//! |      A_2  B_2  C_2           |
//! |            ...               |
//! |            A_{N-1}  B_{N-1}  |
//! ```
//!
//! Right-hand sides and solutions are [`BlockVec`]s: `N` stacked `M x R`
//! panels, where `R` is the number of simultaneous right-hand sides — the
//! quantity the accelerated recursive doubling algorithm amortizes over.

use bt_dense::{gemm, Mat, Trans};

/// One block row `(A_i, B_i, C_i)`. `A_0` and `C_{N-1}` are zero blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRow {
    /// Subdiagonal block (couples to row `i - 1`).
    pub a: Mat,
    /// Diagonal block.
    pub b: Mat,
    /// Superdiagonal block (couples to row `i + 1`).
    pub c: Mat,
}

impl BlockRow {
    /// Builds a row, checking all three blocks are `m x m`.
    pub fn new(a: Mat, b: Mat, c: Mat) -> Self {
        let m = b.rows();
        assert!(b.is_square(), "diagonal block must be square");
        assert_eq!(a.shape(), (m, m), "subdiagonal block shape mismatch");
        assert_eq!(c.shape(), (m, m), "superdiagonal block shape mismatch");
        Self { a, b, c }
    }

    /// Block order `M`.
    pub fn order(&self) -> usize {
        self.b.rows()
    }
}

/// A source of block rows that any rank can sample independently.
///
/// Generators implement this so distributed solvers materialize only
/// their local row range; `row(i)` must be deterministic in `i`.
pub trait BlockRowSource {
    /// Number of block rows `N`.
    fn n(&self) -> usize;
    /// Block order `M`.
    fn m(&self) -> usize;
    /// The `i`-th block row. Implementations must return zero `a` for
    /// `i == 0` and zero `c` for `i == n() - 1`.
    fn row(&self, i: usize) -> BlockRow;
}

impl<S: BlockRowSource + ?Sized> BlockRowSource for Box<S> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn m(&self) -> usize {
        (**self).m()
    }
    fn row(&self, i: usize) -> BlockRow {
        (**self).row(i)
    }
}

impl<S: BlockRowSource + ?Sized> BlockRowSource for &S {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn m(&self) -> usize {
        (**self).m()
    }
    fn row(&self, i: usize) -> BlockRow {
        (**self).row(i)
    }
}

/// Owned block tridiagonal matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTridiag {
    n: usize,
    m: usize,
    rows: Vec<BlockRow>,
}

impl BlockTridiag {
    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, block orders are inconsistent, or the
    /// boundary blocks (`A_0`, `C_{N-1}`) are not zero.
    pub fn new(rows: Vec<BlockRow>) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one block row");
        let m = rows[0].order();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.order(), m, "row {i} has inconsistent block order");
        }
        assert_eq!(rows[0].a.max_abs(), 0.0, "A_0 must be zero");
        assert_eq!(
            rows[rows.len() - 1].c.max_abs(),
            0.0,
            "C_{{N-1}} must be zero"
        );
        Self {
            n: rows.len(),
            m,
            rows,
        }
    }

    /// Materializes all rows of `src`.
    pub fn from_source(src: &dyn BlockRowSource) -> Self {
        let rows = (0..src.n()).map(|i| src.row(i)).collect();
        Self::new(rows)
    }

    /// Number of block rows `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block order `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total scalar dimension `N * M`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n * self.m
    }

    /// The `i`-th block row.
    #[inline]
    pub fn row(&self, i: usize) -> &BlockRow {
        &self.rows[i]
    }

    /// Iterator over block rows in order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BlockRow> {
        self.rows.iter()
    }

    /// Matrix-panel product `Y = T X` where `X` has one `M x R` panel per
    /// block row.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply(&self, x: &BlockVec) -> BlockVec {
        assert_eq!(x.n(), self.n, "apply: block count mismatch");
        assert_eq!(x.m(), self.m, "apply: block order mismatch");
        let r = x.r();
        let mut out = BlockVec::zeros(self.n, self.m, r);
        for i in 0..self.n {
            let yi = &mut out.blocks[i];
            gemm(
                1.0,
                &self.rows[i].b,
                Trans::No,
                &x.blocks[i],
                Trans::No,
                0.0,
                &mut *yi,
            );
            if i > 0 {
                gemm(
                    1.0,
                    &self.rows[i].a,
                    Trans::No,
                    &x.blocks[i - 1],
                    Trans::No,
                    1.0,
                    &mut *yi,
                );
            }
            if i + 1 < self.n {
                gemm(
                    1.0,
                    &self.rows[i].c,
                    Trans::No,
                    &x.blocks[i + 1],
                    Trans::No,
                    1.0,
                    &mut *yi,
                );
            }
        }
        out
    }

    /// Relative residual `||T x - y||_F / ||y||_F`.
    pub fn rel_residual(&self, x: &BlockVec, y: &BlockVec) -> f64 {
        let mut r = self.apply(x);
        r.sub_assign(y);
        let denom = y.fro_norm().max(f64::MIN_POSITIVE.sqrt());
        r.fro_norm() / denom
    }

    /// Expands to a dense `(N*M) x (N*M)` matrix. Only sensible for small
    /// systems (tests, examples).
    pub fn to_dense(&self) -> Mat {
        let d = self.dim();
        let m = self.m;
        let mut out = Mat::zeros(d, d);
        for i in 0..self.n {
            out.set_block(i * m, i * m, &self.rows[i].b);
            if i > 0 {
                out.set_block(i * m, (i - 1) * m, &self.rows[i].a);
            }
            if i + 1 < self.n {
                out.set_block(i * m, (i + 1) * m, &self.rows[i].c);
            }
        }
        out
    }

    /// True if every row is *block row diagonally dominant*:
    /// `||B_i^{-1}||^{-1} > ||A_i|| + ||C_i||` in the infinity norm
    /// (a sufficient condition for the block LU recurrences of all the
    /// solvers in this suite to be well defined).
    pub fn is_block_diag_dominant(&self) -> bool {
        use bt_dense::{inf_norm, invert};
        self.rows.iter().all(|row| {
            let binv = match invert(&row.b) {
                Ok(v) => v,
                Err(_) => return false,
            };
            let lower = 1.0 / inf_norm(&binv);
            lower > inf_norm(&row.a) + inf_norm(&row.c)
        })
    }
}

/// `N` stacked `M x R` panels: a block vector with `R` simultaneous
/// columns (right-hand sides or solutions).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockVec {
    m: usize,
    r: usize,
    /// One `M x R` panel per block row.
    pub blocks: Vec<Mat>,
}

impl BlockVec {
    /// All-zero block vector with `n` panels of shape `m x r`.
    pub fn zeros(n: usize, m: usize, r: usize) -> Self {
        Self {
            m,
            r,
            blocks: (0..n).map(|_| Mat::zeros(m, r)).collect(),
        }
    }

    /// Builds from explicit panels.
    ///
    /// # Panics
    ///
    /// Panics if panels are empty or inconsistently shaped.
    pub fn from_blocks(blocks: Vec<Mat>) -> Self {
        assert!(
            !blocks.is_empty(),
            "block vector must have at least one panel"
        );
        let (m, r) = blocks[0].shape();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.shape(), (m, r), "panel {i} shape mismatch");
        }
        Self { m, r, blocks }
    }

    /// Builds from a dense `(N*M) x R` matrix by slicing into panels.
    ///
    /// # Panics
    ///
    /// Panics if `dense.rows()` is not a multiple of `m`.
    pub fn from_dense(dense: &Mat, m: usize) -> Self {
        assert_eq!(
            dense.rows() % m,
            0,
            "dense rows not a multiple of block order"
        );
        let n = dense.rows() / m;
        let blocks = (0..n)
            .map(|i| dense.block(i * m, 0, m, dense.cols()))
            .collect();
        Self {
            m,
            r: dense.cols(),
            blocks,
        }
    }

    /// Flattens to a dense `(N*M) x R` matrix.
    pub fn to_dense(&self) -> Mat {
        let mut out = Mat::zeros(self.n() * self.m, self.r);
        for (i, b) in self.blocks.iter().enumerate() {
            out.set_block(i * self.m, 0, b);
        }
        out
    }

    /// Number of panels `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.blocks.len()
    }

    /// Panel row count `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of columns `R` (right-hand sides).
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Extracts column `j` as a new single-column block vector.
    pub fn column(&self, j: usize) -> BlockVec {
        assert!(j < self.r, "column {j} out of range {}", self.r);
        BlockVec {
            m: self.m,
            r: 1,
            blocks: self.blocks.iter().map(|b| b.columns(j, 1)).collect(),
        }
    }

    /// In-place element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub_assign(&mut self, other: &BlockVec) {
        assert_eq!(self.n(), other.n(), "block count mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            a.sub_assign(b);
        }
    }

    /// Frobenius norm over all panels.
    pub fn fro_norm(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.as_slice().iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.blocks.iter().map(Mat::max_abs).fold(0.0, f64::max)
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.blocks.iter().all(Mat::all_finite)
    }

    /// `||self - other||_F / max(||other||_F, floor)`.
    pub fn rel_diff(&self, other: &BlockVec) -> f64 {
        let mut d = self.clone();
        d.sub_assign(other);
        d.fro_norm() / other.fro_norm().max(f64::MIN_POSITIVE.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_dense::matmul;

    fn tiny_system() -> BlockTridiag {
        let z = Mat::zeros(2, 2);
        let b0 = Mat::from_rows(&[&[4.0, 1.0], &[0.0, 5.0]]);
        let c0 = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let a1 = Mat::from_rows(&[&[0.5, 0.0], &[0.0, 0.5]]);
        let b1 = Mat::from_rows(&[&[6.0, 1.0], &[1.0, 6.0]]);
        BlockTridiag::new(vec![
            BlockRow::new(z.clone(), b0, c0),
            BlockRow::new(a1, b1, z),
        ])
    }

    #[test]
    fn shape_accessors() {
        let t = tiny_system();
        assert_eq!(t.n(), 2);
        assert_eq!(t.m(), 2);
        assert_eq!(t.dim(), 4);
    }

    #[test]
    #[should_panic(expected = "A_0 must be zero")]
    fn nonzero_a0_rejected() {
        let one = Mat::identity(2);
        let _ = BlockTridiag::new(vec![BlockRow::new(
            one.clone(),
            one.clone(),
            Mat::zeros(2, 2),
        )]);
    }

    #[test]
    fn apply_matches_dense() {
        let t = tiny_system();
        let x = BlockVec::from_blocks(vec![
            Mat::from_rows(&[&[1.0], &[2.0]]),
            Mat::from_rows(&[&[3.0], &[4.0]]),
        ]);
        let y = t.apply(&x);
        let dense_y = matmul(&t.to_dense(), &x.to_dense());
        assert!(y.to_dense().sub(&dense_y).max_abs() < 1e-14);
    }

    #[test]
    fn apply_multi_rhs_panels() {
        let t = tiny_system();
        let x = BlockVec::from_dense(&Mat::from_fn(4, 3, |i, j| (i + j) as f64), 2);
        let y = t.apply(&x);
        assert_eq!(y.r(), 3);
        let dense_y = matmul(&t.to_dense(), &x.to_dense());
        assert!(y.to_dense().sub(&dense_y).max_abs() < 1e-13);
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        let t = tiny_system();
        let x = BlockVec::from_dense(&Mat::from_fn(4, 1, |i, _| i as f64 + 1.0), 2);
        let y = t.apply(&x);
        assert!(t.rel_residual(&x, &y) < 1e-15);
    }

    #[test]
    fn block_vec_dense_roundtrip() {
        let d = Mat::from_fn(6, 2, |i, j| (10 * i + j) as f64);
        let bv = BlockVec::from_dense(&d, 3);
        assert_eq!(bv.n(), 2);
        assert_eq!(bv.m(), 3);
        assert_eq!(bv.to_dense(), d);
    }

    #[test]
    fn block_vec_column_extract() {
        let d = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let bv = BlockVec::from_dense(&d, 2);
        let c1 = bv.column(1);
        assert_eq!(c1.r(), 1);
        assert_eq!(c1.to_dense(), d.columns(1, 1));
    }

    #[test]
    fn block_vec_norms() {
        let bv = BlockVec::from_blocks(vec![Mat::from_rows(&[&[3.0]]), Mat::from_rows(&[&[4.0]])]);
        assert!((bv.fro_norm() - 5.0).abs() < 1e-15);
        assert_eq!(bv.max_abs(), 4.0);
        assert!(bv.all_finite());
    }

    #[test]
    fn dominance_check() {
        let t = tiny_system();
        assert!(t.is_block_diag_dominant());
        // A clearly non-dominant system: huge off-diagonal.
        let z = Mat::zeros(1, 1);
        let t2 = BlockTridiag::new(vec![
            BlockRow::new(
                z.clone(),
                Mat::from_rows(&[&[1.0]]),
                Mat::from_rows(&[&[100.0]]),
            ),
            BlockRow::new(Mat::from_rows(&[&[100.0]]), Mat::from_rows(&[&[1.0]]), z),
        ]);
        assert!(!t2.is_block_diag_dominant());
    }
}
