//! Symmetric positive definite block Thomas: the Cholesky-based variant.
//!
//! For SPD block tridiagonal systems (`B_i` symmetric, `C_i = A_{i+1}^T`,
//! positive definite overall), every block LU diagonal
//! `D_i = B_i - A_i D_{i-1}^{-1} A_i^T` is itself SPD (a Schur
//! complement), so Cholesky replaces LU throughout — half the
//! factorization flops and guaranteed breakdown-free for genuinely SPD
//! input. Poisson-class discretizations (the [`crate::gen::Poisson2D`]
//! generator) are the canonical use.

use crate::matrix::{BlockTridiag, BlockVec};
use crate::thomas::FactorError;
use bt_dense::{gemm, CholFactors, Mat, Trans};

/// Checks the structural symmetry `C_i = A_{i+1}^T` and `B_i = B_i^T`
/// up to a relative tolerance.
pub fn is_symmetric(t: &BlockTridiag, rel_tol: f64) -> bool {
    let scale = (0..t.n())
        .map(|i| t.row(i).b.max_abs())
        .fold(0.0, f64::max)
        .max(1e-300);
    for i in 0..t.n() {
        let row = t.row(i);
        if row.b.sub(&row.b.transpose()).max_abs() > rel_tol * scale {
            return false;
        }
        if i + 1 < t.n() {
            let next_a = &t.row(i + 1).a;
            if row.c.sub(&next_a.transpose()).max_abs() > rel_tol * scale {
                return false;
            }
        }
    }
    true
}

/// Cholesky-based block LU factorization of an SPD block tridiagonal
/// matrix, with the same factor-once / solve-many API as
/// [`crate::thomas::ThomasFactors`].
#[derive(Debug, Clone)]
pub struct SpdThomasFactors {
    n: usize,
    m: usize,
    d_chol: Vec<CholFactors>,
    /// `L_i = A_i D_{i-1}^{-1}` for `i >= 1` (index 0 unused).
    l: Vec<Mat>,
    /// Superdiagonal blocks for back substitution.
    c: Vec<Mat>,
}

impl SpdThomasFactors {
    /// Factors an SPD block tridiagonal matrix.
    ///
    /// # Errors
    ///
    /// [`FactorError`] if a Schur complement is not positive definite —
    /// either the matrix is not SPD or it is numerically indefinite.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not structurally symmetric
    /// (`C_i != A_{i+1}^T` or `B_i` nonsymmetric).
    pub fn factor(t: &BlockTridiag) -> Result<Self, FactorError> {
        assert!(
            is_symmetric(t, 1e-12),
            "SPD factorization requires a symmetric block tridiagonal matrix"
        );
        let n = t.n();
        let m = t.m();
        let mut d_chol: Vec<CholFactors> = Vec::with_capacity(n);
        let mut l: Vec<Mat> = Vec::with_capacity(n);
        let mut c: Vec<Mat> = Vec::with_capacity(n);

        for i in 0..n {
            let row = t.row(i);
            c.push(row.c.clone());
            let d = if i == 0 {
                l.push(Mat::empty());
                row.b.clone()
            } else {
                let li = d_chol[i - 1].solve_transposed_system(&row.a);
                let mut d = row.b.clone();
                gemm(-1.0, &li, Trans::No, &c[i - 1], Trans::No, 1.0, &mut d);
                l.push(li);
                d
            };
            let ch = CholFactors::factor(&d).map_err(|source| FactorError { row: i, source })?;
            d_chol.push(ch);
        }
        Ok(Self { n, m, d_chol, l, c })
    }

    /// Number of block rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block order.
    pub fn m(&self) -> usize {
        self.m
    }

    /// `log(det T)` — the sum of the Schur complement log-determinants.
    /// Useful for Gaussian process / determinant computations on SPD
    /// block tridiagonal precision matrices.
    pub fn log_det(&self) -> f64 {
        self.d_chol.iter().map(CholFactors::log_det).sum()
    }

    /// Solves `T X = Y` for a panel of right-hand sides.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn solve(&self, y: &BlockVec) -> BlockVec {
        assert_eq!(y.n(), self.n, "rhs block count mismatch");
        assert_eq!(y.m(), self.m, "rhs block order mismatch");
        let r = y.r();

        let mut z: Vec<Mat> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let mut zi = y.blocks[i].clone();
            if i > 0 {
                gemm(
                    -1.0,
                    &self.l[i],
                    Trans::No,
                    &z[i - 1],
                    Trans::No,
                    1.0,
                    &mut zi,
                );
            }
            z.push(zi);
        }
        let mut x = BlockVec::zeros(self.n, self.m, r);
        for i in (0..self.n).rev() {
            let mut rhs = z[i].clone();
            if i + 1 < self.n {
                gemm(
                    -1.0,
                    &self.c[i],
                    Trans::No,
                    &x.blocks[i + 1],
                    Trans::No,
                    1.0,
                    &mut rhs,
                );
            }
            self.d_chol[i].solve_in_place(&mut rhs);
            x.blocks[i] = rhs;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{materialize, random_rhs, ConvectionDiffusion, Poisson2D};
    use crate::thomas::ThomasFactors;

    #[test]
    fn poisson_is_symmetric() {
        let t = materialize(&Poisson2D::new(12, 5));
        assert!(is_symmetric(&t, 1e-14));
    }

    #[test]
    fn convection_diffusion_is_not() {
        let t = materialize(&ConvectionDiffusion::new(8, 4, 0.5));
        assert!(!is_symmetric(&t, 1e-12));
    }

    #[test]
    fn matches_lu_thomas_on_poisson() {
        let t = materialize(&Poisson2D::new(40, 6));
        let y = random_rhs(40, 6, 3, 2);
        let x_spd = SpdThomasFactors::factor(&t).unwrap().solve(&y);
        let x_lu = ThomasFactors::factor(&t).unwrap().solve(&y);
        assert!(x_spd.rel_diff(&x_lu) < 1e-12);
        assert!(t.rel_residual(&x_spd, &y) < 1e-13);
    }

    #[test]
    fn factor_once_solve_many() {
        let t = materialize(&Poisson2D::new(24, 4));
        let f = SpdThomasFactors::factor(&t).unwrap();
        for seed in 0..3 {
            let y = random_rhs(24, 4, 2, seed);
            assert!(t.rel_residual(&f.solve(&y), &y) < 1e-13);
        }
    }

    #[test]
    fn log_det_matches_dense() {
        let t = materialize(&Poisson2D::new(6, 3));
        let f = SpdThomasFactors::factor(&t).unwrap();
        let dense_det = bt_dense::LuFactors::factor(&t.to_dense()).unwrap().det();
        assert!((f.log_det() - dense_det.ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires a symmetric")]
    fn rejects_nonsymmetric() {
        let t = materialize(&ConvectionDiffusion::new(6, 3, 0.5));
        let _ = SpdThomasFactors::factor(&t);
    }

    #[test]
    fn rejects_indefinite_symmetric() {
        use crate::matrix::BlockRow;
        // Symmetric but indefinite: B = [[0,1],[1,0]].
        let z = Mat::zeros(2, 2);
        let b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let t = BlockTridiag::new(vec![BlockRow::new(z.clone(), b, z)]);
        let err = SpdThomasFactors::factor(&t).unwrap_err();
        assert_eq!(err.row, 0);
    }
}

#[cfg(test)]
mod indefinite_tests {
    use super::*;
    use crate::gen::{materialize, random_rhs, Helmholtz2D};
    use crate::thomas::thomas_solve;

    #[test]
    fn spd_solver_rejects_indefinite_helmholtz() {
        // Symmetric but indefinite (shift pushes eigenvalues negative):
        // Cholesky must fail with a clear error, not return garbage.
        let t = materialize(&Helmholtz2D::new(24, 6, 3.2));
        let err = SpdThomasFactors::factor(&t).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("block row"), "{msg}");
    }

    #[test]
    fn lu_thomas_still_solves_mildly_indefinite() {
        // The general (LU) path handles indefiniteness as long as no D_i
        // is exactly singular.
        let t = materialize(&Helmholtz2D::new(24, 6, 3.2));
        let y = random_rhs(24, 6, 2, 1);
        let x = thomas_solve(&t, &y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-9);
    }
}
