//! Sequential block cyclic reduction (BCR).
//!
//! The odd/even elimination scheme of the BCYCLIC solver family — the
//! related-work baseline the paper's lineage compares against. At each
//! level the odd-indexed rows of the current reduced system are
//! eliminated, halving the system until one block row remains; back
//! substitution then recovers the eliminated rows level by level.
//!
//! Work is `O(N M^3)` like Thomas (with a ~2.7x constant), but the
//! elimination tree has depth `log2 N`, which is what makes the scheme
//! parallelizable; here we provide the sequential form for accuracy
//! cross-checks and baseline comparisons (Table III).

use crate::matrix::{BlockTridiag, BlockVec};
use crate::thomas::FactorError;
use bt_dense::{gemm, LuFactors, Mat, Trans};

/// Solves `T X = Y` by block cyclic reduction.
///
/// Requires the diagonal blocks of every reduced level to be invertible
/// (guaranteed for block diagonally dominant and SPD systems). `Y` may
/// carry any number of columns.
///
/// # Errors
///
/// [`FactorError`] if a diagonal block of some reduced level is singular;
/// the reported row is the index in the *original* numbering.
pub fn cyclic_reduction_solve(t: &BlockTridiag, y: &BlockVec) -> Result<BlockVec, FactorError> {
    assert_eq!(y.n(), t.n(), "rhs block count mismatch");
    assert_eq!(y.m(), t.m(), "rhs block order mismatch");
    let n = t.n();
    let m = t.m();
    let r = y.r();

    // Working copies of the coefficients and RHS; `idx[k]` maps position k
    // of the current reduced system to the original row index.
    let mut a: Vec<Mat> = (0..n).map(|i| t.row(i).a.clone()).collect();
    let mut b: Vec<Mat> = (0..n).map(|i| t.row(i).b.clone()).collect();
    let mut c: Vec<Mat> = (0..n).map(|i| t.row(i).c.clone()).collect();
    let mut rhs: Vec<Mat> = y.blocks.clone();
    let mut idx: Vec<usize> = (0..n).collect();

    // Stack of eliminated levels for back substitution. Each record keeps,
    // for every odd position of that level: the original row index, its
    // factored diagonal, its a/c blocks and its RHS at elimination time,
    // plus the original indices of its even neighbours.
    struct Eliminated {
        orig: usize,
        d: LuFactors,
        a: Mat,
        c: Mat,
        rhs: Mat,
        left: Option<usize>,
        right: Option<usize>,
    }
    let mut levels: Vec<Vec<Eliminated>> = Vec::new();

    while idx.len() > 1 {
        let len = idx.len();
        let mut elim = Vec::with_capacity(len / 2);

        // Factor the diagonals of the odd positions (the ones eliminated).
        let odd_factors: Vec<LuFactors> = (1..len)
            .step_by(2)
            .map(|k| {
                LuFactors::factor(&b[k]).map_err(|source| FactorError {
                    row: idx[k],
                    source,
                })
            })
            .collect::<Result<_, _>>()?;

        // Fold each odd row into its even neighbours.
        let mut new_a = Vec::with_capacity(len / 2 + 1);
        let mut new_b = Vec::with_capacity(len / 2 + 1);
        let mut new_c = Vec::with_capacity(len / 2 + 1);
        let mut new_rhs = Vec::with_capacity(len / 2 + 1);
        let mut new_idx = Vec::with_capacity(len / 2 + 1);

        for k in (0..len).step_by(2) {
            let mut bb = b[k].clone();
            let mut aa = if k == 0 {
                Mat::zeros(m, m)
            } else {
                a[k].clone()
            };
            let mut cc = if k + 1 >= len {
                Mat::zeros(m, m)
            } else {
                c[k].clone()
            };
            let mut yy = rhs[k].clone();

            // Left odd neighbour k-1: row k gains  -C_{k-1}-elimination.
            if k >= 1 {
                let d = &odd_factors[(k - 1) / 2];
                // E = A_k * B_{k-1}^{-1}  (right division)
                let e = d.solve_transposed_system(&a[k]);
                // B_k -= E * C_{k-1}; A_k = -E * A_{k-1}; y_k -= E * y_{k-1}
                gemm(-1.0, &e, Trans::No, &c[k - 1], Trans::No, 1.0, &mut bb);
                let mut ea = Mat::zeros(m, m);
                gemm(-1.0, &e, Trans::No, &a[k - 1], Trans::No, 0.0, &mut ea);
                aa = ea;
                gemm(-1.0, &e, Trans::No, &rhs[k - 1], Trans::No, 1.0, &mut yy);
            }
            // Right odd neighbour k+1 (odd position k+1 is the (k/2)-th
            // odd row of this level).
            if k + 1 < len {
                let d = &odd_factors[k / 2];
                // F = C_k * B_{k+1}^{-1}
                let fmat = d.solve_transposed_system(&c[k]);
                gemm(-1.0, &fmat, Trans::No, &a[k + 1], Trans::No, 1.0, &mut bb);
                let mut fc = Mat::zeros(m, m);
                if k + 2 < len {
                    gemm(-1.0, &fmat, Trans::No, &c[k + 1], Trans::No, 0.0, &mut fc);
                }
                cc = fc;
                gemm(-1.0, &fmat, Trans::No, &rhs[k + 1], Trans::No, 1.0, &mut yy);
            }

            new_a.push(aa);
            new_b.push(bb);
            new_c.push(cc);
            new_rhs.push(yy);
            new_idx.push(idx[k]);
        }

        // Record the eliminated odd rows for back substitution.
        for (j, k) in (1..len).step_by(2).enumerate() {
            elim.push(Eliminated {
                orig: idx[k],
                d: odd_factors[j].clone(),
                a: a[k].clone(),
                c: c[k].clone(),
                rhs: rhs[k].clone(),
                left: Some(idx[k - 1]),
                right: if k + 1 < len { Some(idx[k + 1]) } else { None },
            });
        }

        a = new_a;
        b = new_b;
        c = new_c;
        rhs = new_rhs;
        idx = new_idx;
        levels.push(elim);
    }

    // Solve the final 1x1 block system.
    let mut x = BlockVec::zeros(n, m, r);
    let d = LuFactors::factor(&b[0]).map_err(|source| FactorError {
        row: idx[0],
        source,
    })?;
    x.blocks[idx[0]] = d.solve(&rhs[0]);

    // Back substitution, reversing the elimination order.
    for elim in levels.into_iter().rev() {
        for e in elim {
            let mut rr = e.rhs.clone();
            if let Some(l) = e.left {
                gemm(-1.0, &e.a, Trans::No, &x.blocks[l], Trans::No, 1.0, &mut rr);
            }
            if let Some(rt) = e.right {
                gemm(
                    -1.0,
                    &e.c,
                    Trans::No,
                    &x.blocks[rt],
                    Trans::No,
                    1.0,
                    &mut rr,
                );
            }
            e.d.solve_in_place(&mut rr);
            x.blocks[e.orig] = rr;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{materialize, random_rhs, ConvectionDiffusion, Poisson2D, RandomDominant};
    use crate::thomas::thomas_solve;

    #[test]
    fn matches_thomas_on_random_dominant() {
        for n in [1, 2, 3, 4, 5, 8, 13, 16, 31] {
            let t = materialize(&RandomDominant::new(n, 3, 1.3, n as u64));
            let y = random_rhs(n, 3, 2, 5);
            let x_cr = cyclic_reduction_solve(&t, &y).unwrap();
            let x_th = thomas_solve(&t, &y).unwrap();
            assert!(
                x_cr.rel_diff(&x_th) < 1e-9,
                "n={n}: diff {}",
                x_cr.rel_diff(&x_th)
            );
        }
    }

    #[test]
    fn residual_small_on_poisson() {
        let t = materialize(&Poisson2D::new(64, 6));
        let y = random_rhs(64, 6, 3, 8);
        let x = cyclic_reduction_solve(&t, &y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-11);
    }

    #[test]
    fn handles_nonsymmetric_systems() {
        let t = materialize(&ConvectionDiffusion::new(33, 4, 0.6));
        let y = random_rhs(33, 4, 2, 2);
        let x = cyclic_reduction_solve(&t, &y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-11);
    }

    #[test]
    fn multi_rhs_panel() {
        let t = materialize(&RandomDominant::new(17, 2, 1.5, 3));
        let y = random_rhs(17, 2, 7, 1);
        let x = cyclic_reduction_solve(&t, &y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-12);
    }
}
