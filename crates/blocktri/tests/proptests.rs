//! Property-based tests for the block tridiagonal types, generators and
//! sequential solvers.

use bt_blocktri::cyclic_reduction::cyclic_reduction_solve;
use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz, RandomDominant};
use bt_blocktri::thomas::{thomas_solve, ThomasFactors};
use bt_blocktri::{BlockRowSource, BlockVec, RowPartition};
use bt_dense::{matmul, solve as dense_solve};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn thomas_matches_dense(
        (n, m, seed) in (1usize..12, 1usize..5, 0u64..500),
        r in 1usize..4,
    ) {
        let t = materialize(&RandomDominant::new(n, m, 1.5, seed));
        let y = random_rhs(n, m, r, seed + 1);
        let x = thomas_solve(&t, &y).unwrap();
        let xd = dense_solve(&t.to_dense(), &y.to_dense()).unwrap();
        let diff = x.to_dense().sub(&xd).max_abs();
        prop_assert!(diff < 1e-8, "diff {diff} (n={n} m={m})");
    }

    #[test]
    fn cyclic_reduction_matches_thomas(
        (n, m, seed) in (1usize..24, 1usize..5, 0u64..500),
    ) {
        let t = materialize(&ClusteredToeplitz::standard(n, m, seed));
        let y = random_rhs(n, m, 2, seed + 2);
        let x_cr = cyclic_reduction_solve(&t, &y).unwrap();
        let x_th = thomas_solve(&t, &y).unwrap();
        prop_assert!(x_cr.rel_diff(&x_th) < 1e-10);
    }

    #[test]
    fn apply_matches_dense_multiply(
        (n, m, seed) in (1usize..10, 1usize..5, 0u64..500),
    ) {
        let t = materialize(&RandomDominant::new(n, m, 1.2, seed));
        let x = random_rhs(n, m, 3, seed + 3);
        let y = t.apply(&x);
        let yd = matmul(&t.to_dense(), &x.to_dense());
        prop_assert!(y.to_dense().sub(&yd).max_abs() < 1e-11);
    }

    #[test]
    fn solve_then_apply_roundtrips(
        (n, m, seed) in (2usize..20, 1usize..4, 0u64..500),
    ) {
        let t = materialize(&ClusteredToeplitz::standard(n, m, seed));
        let y = random_rhs(n, m, 2, seed + 4);
        let f = ThomasFactors::factor(&t).unwrap();
        let x = f.solve(&y);
        prop_assert!(t.rel_residual(&x, &y) < 1e-11);
        // And the reverse: apply then solve recovers the input.
        let z = t.apply(&x);
        let x2 = f.solve(&z);
        prop_assert!(x2.rel_diff(&x) < 1e-10);
    }

    #[test]
    fn generators_row_determinism(
        (n, m, seed, i) in (2usize..50, 1usize..6, 0u64..1000, 0usize..50),
    ) {
        let i = i % n;
        let g = RandomDominant::new(n, m, 1.3, seed);
        prop_assert_eq!(g.row(i), g.row(i));
        let g2 = ClusteredToeplitz::standard(n, m, seed);
        prop_assert_eq!(g2.row(i), g2.row(i));
    }

    #[test]
    fn partition_covers_exactly((n, p) in (0usize..200, 1usize..40)) {
        let part = RowPartition::new(n, p);
        let mut seen = vec![false; n];
        for rank in 0..p {
            for i in part.range(rank) {
                prop_assert!(!seen[i], "row {i} owned twice");
                seen[i] = true;
                prop_assert_eq!(part.owner(i), rank);
            }
        }
        prop_assert!(seen.into_iter().all(|v| v));
    }

    #[test]
    fn block_vec_dense_roundtrip(
        (n, m, r, seed) in (1usize..12, 1usize..6, 1usize..5, 0u64..500),
    ) {
        let bv = random_rhs(n, m, r, seed);
        let rebuilt = BlockVec::from_dense(&bv.to_dense(), m);
        prop_assert_eq!(&rebuilt, &bv);
        // Norms agree with the dense view.
        prop_assert!((bv.fro_norm() - bt_dense::fro_norm(&bv.to_dense())).abs() < 1e-12);
    }
}
