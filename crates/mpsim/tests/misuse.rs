//! Failure-injection tests: programming errors in SPMD programs must
//! produce clear panics, not hangs or silent corruption.

use bt_mpsim::{run_spmd, CommBackend, CostModel, USER_TAG_LIMIT};

const M: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

#[test]
#[should_panic(expected = "send to rank 5 in a world of size 2")]
fn send_to_invalid_rank() {
    run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            comm.send(5, 0, 1u64);
        }
    });
}

#[test]
#[should_panic(expected = "recv from rank 9")]
fn recv_from_invalid_rank() {
    run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            let _: u64 = comm.recv(9, 0);
        }
    });
}

#[test]
#[should_panic(expected = "reserved for collectives")]
fn reserved_tag_rejected() {
    run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            comm.send(1, USER_TAG_LIMIT + 3, 1u64);
        } else {
            let _: u64 = comm.recv(0, USER_TAG_LIMIT + 3);
        }
    });
}

#[test]
#[should_panic(expected = "type mismatch")]
fn type_mismatch_detected() {
    run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, 1.5f64);
        } else {
            let _: u64 = comm.recv(0, 1); // wrong type
        }
    });
}

#[test]
#[should_panic(expected = "terminated before sending")]
fn peer_exit_without_message_panics_not_hangs() {
    run_spmd(2, M, |comm| {
        if comm.rank() == 1 {
            // Rank 0 exits immediately; rank 1 must get a clear panic
            // when the channel disconnects, not block forever.
            let _: u64 = comm.recv(0, 7);
        }
    });
}

#[test]
#[should_panic(expected = "broadcast root must supply a value")]
fn broadcast_root_without_value() {
    run_spmd(2, M, |comm| {
        let _: u64 = comm.broadcast(0, None);
    });
}

#[test]
#[should_panic(expected = "world size must be at least 1")]
fn zero_ranks_rejected() {
    run_spmd(0, M, |_comm| ());
}

#[test]
#[should_panic(expected = "exceeds MAX_RANKS")]
fn oversized_world_rejected() {
    run_spmd(1 << 20, M, |_comm| ());
}

#[test]
#[should_panic(expected = "cannot rewind the clock")]
fn negative_time_advance_rejected() {
    run_spmd(1, M, |comm| comm.advance_time(-1.0));
}

#[test]
fn rank_panic_is_propagated_with_rank_id() {
    let result = std::panic::catch_unwind(|| {
        run_spmd(3, M, |comm| {
            if comm.rank() == 2 {
                panic!("deliberate failure");
            }
            // Other ranks finish fine (no dependence on rank 2).
        });
    });
    let err = result.expect_err("must propagate");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is the formatted rank message");
    assert!(msg.contains("rank 2 panicked"), "{msg}");
    assert!(msg.contains("deliberate failure"), "{msg}");
}
