//! Integration tests for the SPMD runtime: point-to-point semantics,
//! every collective, counters, and the virtual-time model.

use bt_dense::Mat;
use bt_mpsim::{run_spmd, CommBackend, CostModel, RankStats};

const M: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

#[test]
fn rank_threads_stamped_from_model() {
    // run_spmd must hand the model's intra-rank thread budget to
    // bt_dense::threading on every rank thread.
    let out = run_spmd(3, M.with_threads_per_rank(4), |_comm| {
        bt_dense::current_threads()
    });
    assert_eq!(out.results, vec![4, 4, 4]);
    // Budget 0 is clamped to 1, never inherited from the environment.
    let out = run_spmd(2, M.with_threads_per_rank(0), |_comm| {
        bt_dense::current_threads()
    });
    assert_eq!(out.results, vec![1, 1]);
}

#[test]
fn single_rank_world() {
    let out = run_spmd(1, M, |comm| {
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.size(), 1);
        comm.barrier();
        comm.allreduce(5u64, |a, b| a + b)
    });
    assert_eq!(out.results, vec![5]);
}

#[test]
fn ring_send_recv() {
    for p in [2, 3, 5, 8] {
        let out = run_spmd(p, M, move |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank() as u64);
            comm.recv::<u64>(prev, 7)
        });
        for (r, v) in out.results.iter().enumerate() {
            assert_eq!(*v as usize, (r + p - 1) % p);
        }
        assert!(out.stats.is_balanced());
        assert_eq!(out.stats.total().msgs_sent, p as u64);
    }
}

#[test]
fn out_of_order_tags_are_buffered() {
    let out = run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, 10.0f64);
            comm.send(1, 2, 20.0f64);
            comm.send(1, 3, 30.0f64);
            0.0
        } else {
            // Receive in reverse order of sending.
            let a = comm.recv::<f64>(0, 3);
            let b = comm.recv::<f64>(0, 2);
            let c = comm.recv::<f64>(0, 1);
            a * 100.0 + b * 10.0 + c
        }
    });
    assert_eq!(out.results[1], 30.0 * 100.0 + 20.0 * 10.0 + 10.0);
}

#[test]
fn self_send_works() {
    let out = run_spmd(3, M, |comm| {
        comm.send(comm.rank(), 4, comm.rank() as u64 * 2);
        comm.recv::<u64>(comm.rank(), 4)
    });
    assert_eq!(out.results, vec![0, 2, 4]);
}

#[test]
fn sendrecv_exchanges_with_peer() {
    let out = run_spmd(4, M, |comm| {
        let peer = comm.rank() ^ 1;
        comm.sendrecv(peer, 9, comm.rank() as u64)
    });
    assert_eq!(out.results, vec![1, 0, 3, 2]);
}

#[test]
fn matrices_travel_between_ranks() {
    let out = run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, Mat::<f64>::identity(4));
            Mat::zeros(1, 1)
        } else {
            comm.recv::<Mat>(0, 5)
        }
    });
    assert_eq!(out.results[1], Mat::identity(4));
    // 4x4 f64 = 128 bytes on the wire.
    assert_eq!(out.stats.per_rank[0].bytes_sent, 128);
}

#[test]
fn broadcast_from_every_root() {
    for p in [1, 2, 3, 4, 7, 8, 13] {
        for root in [0, p / 2, p - 1] {
            let out = run_spmd(p, M, move |comm| {
                let v = if comm.rank() == root {
                    Some(42u64 + root as u64)
                } else {
                    None
                };
                comm.broadcast(root, v)
            });
            assert!(
                out.results.iter().all(|&v| v == 42 + root as u64),
                "p={p} root={root}"
            );
        }
    }
}

#[test]
fn reduce_noncommutative_rank_order() {
    // Combine with string concatenation: order-sensitive.
    for p in [1, 2, 3, 5, 8, 9] {
        let out = run_spmd(p, M, move |comm| {
            comm.reduce(0, format!("{}.", comm.rank()), |a, b| format!("{a}{b}"))
        });
        let expect: String = (0..p).map(|r| format!("{r}.")).collect();
        assert_eq!(out.results[0].as_deref(), Some(expect.as_str()), "p={p}");
        for r in 1..p {
            assert!(out.results[r].is_none());
        }
    }
}

#[test]
fn allreduce_sum_and_max() {
    let out = run_spmd(6, M, |comm| {
        let s = comm.allreduce(comm.rank() as u64, |a, b| a + b);
        let m = comm.allreduce(comm.rank() as f64, |a, b| a.max(*b));
        (s, m)
    });
    for (s, m) in out.results {
        assert_eq!(s, 15);
        assert_eq!(m, 5.0);
    }
}

#[test]
fn gather_in_rank_order() {
    let out = run_spmd(5, M, |comm| comm.gather(2, comm.rank() as u64 * 10));
    assert_eq!(out.results[2], Some(vec![0, 10, 20, 30, 40]));
    for r in [0, 1, 3, 4] {
        assert!(out.results[r].is_none());
    }
}

#[test]
fn allgather_everyone_sees_everything() {
    let out = run_spmd(4, M, |comm| comm.allgather(comm.rank() as u64 + 100));
    for r in out.results {
        assert_eq!(r, vec![100, 101, 102, 103]);
    }
}

#[test]
fn scan_inclusive_noncommutative() {
    // Matrix products are non-commutative: verify the scan preserves
    // rank order using 2x2 shear matrices.
    for p in [1, 2, 3, 4, 6, 8, 11] {
        let out = run_spmd(p, M, move |comm| {
            let r = comm.rank();
            let m = Mat::from_rows(&[&[1.0, r as f64 + 1.0], &[0.0, 1.0]]);
            // Combine = matrix product of LATER * EARLIER (application order):
            // scan gives op(x0, op(x1, ..)) in rank order; we define
            // op(earlier, later) = later * earlier so the result is
            // x_{r} * ... * x_0.
            comm.scan_inclusive(m, |earlier, later| bt_dense::matmul(later, earlier))
        });
        for (r, m) in out.results.iter().enumerate() {
            // Product of shears: upper entry = sum of (1..=r+1).
            let expect = ((r + 1) * (r + 2) / 2) as f64;
            assert!((m[(0, 1)] - expect).abs() < 1e-12, "p={p} r={r}");
        }
    }
}

#[test]
fn scan_exclusive_shifts() {
    let out = run_spmd(6, M, |comm| {
        comm.scan_exclusive(comm.rank() as u64 + 1, |a, b| a + b)
    });
    assert_eq!(out.results[0], None);
    for r in 1..6 {
        let expect: u64 = (1..=r as u64).sum();
        assert_eq!(out.results[r], Some(expect));
    }
}

#[test]
fn barrier_then_traffic_does_not_cross_talk() {
    // Interleave barriers with tagged traffic; collectives must not steal
    // user messages and vice versa.
    let out = run_spmd(4, M, |comm| {
        let peer = comm.rank() ^ 1;
        comm.send(peer, 3, comm.rank() as u64);
        comm.barrier();
        let v = comm.recv::<u64>(peer, 3);
        comm.barrier();
        v
    });
    assert_eq!(out.results, vec![1, 0, 3, 2]);
}

#[test]
fn consecutive_collectives_use_distinct_tags() {
    let out = run_spmd(3, M, |comm| {
        let a = comm.allreduce(1u64, |x, y| x + y);
        let b = comm.allreduce(2u64, |x, y| x + y);
        let c = comm.allgather(comm.rank() as u64);
        (a, b, c)
    });
    for (a, b, c) in out.results {
        assert_eq!(a, 3);
        assert_eq!(b, 6);
        assert_eq!(c, vec![0, 1, 2]);
    }
}

#[test]
fn stats_count_bytes_and_flops() {
    let out = run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, vec![0.0f64; 100]); // 800 bytes
            comm.compute(12345);
        } else {
            let _ = comm.recv::<Vec<f64>>(0, 1);
        }
    });
    assert_eq!(
        out.stats.per_rank[0],
        RankStats {
            msgs_sent: 1,
            bytes_sent: 800,
            msgs_recv: 0,
            bytes_recv: 0,
            flops: 12345,
            nb_recvs: 0,
            overlap_ns: 0,
        }
    );
    assert_eq!(out.stats.per_rank[1].bytes_recv, 800);
    assert!(out.stats.is_balanced());
}

#[test]
fn virtual_time_serial_chain() {
    // A chain of dependent messages: rank 0 -> 1 -> 2 -> 3, each hop
    // costs latency 1s + 8 bytes * 0.125 s/B = 2s. Total modeled: 6s.
    let model = CostModel {
        latency_s: 1.0,
        per_byte_s: 0.125,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };
    let out = run_spmd(4, model, |comm| {
        let r = comm.rank();
        if r > 0 {
            let _ = comm.recv::<u64>(r - 1, 1);
        }
        if r + 1 < comm.size() {
            comm.send(r + 1, 1, 0u64);
        }
        comm.virtual_time()
    });
    assert_eq!(out.modeled_seconds, 6.0);
    assert_eq!(out.results[3], 6.0);
    assert_eq!(out.results[0], 0.0); // rank 0 never waits
}

#[test]
fn virtual_time_compute_adds_up() {
    let model = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: 100.0,
        threads_per_rank: 1,
    };
    let out = run_spmd(2, model, |comm| {
        comm.compute(50); // 0.5 s
        comm.compute(150); // 1.5 s
        comm.virtual_time()
    });
    assert_eq!(out.results, vec![2.0, 2.0]);
    assert_eq!(out.modeled_seconds, 2.0);
}

#[test]
fn virtual_time_parallel_vs_serial() {
    // P independent workers: modeled time = one worker's time, not the sum.
    let model = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: 1000.0,
        threads_per_rank: 1,
    };
    let out = run_spmd(8, model, |comm| {
        comm.compute(1000);
        comm.virtual_time()
    });
    assert_eq!(out.modeled_seconds, 1.0);
}

#[test]
fn virtual_time_scan_grows_logarithmically() {
    // The Kogge-Stone scan should cost ~ceil(log2 P) message latencies on
    // the critical path, not P.
    let model = CostModel {
        latency_s: 1.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };
    let t = |p: usize| {
        run_spmd(p, model, |comm| {
            comm.scan_inclusive(1u64, |a, b| a + b);
        })
        .modeled_seconds
    };
    let t16 = t(16);
    let t64 = t(64);
    assert!(t16 <= 5.0, "scan P=16 modeled {t16}");
    assert!(t64 <= 7.0, "scan P=64 modeled {t64}");
    assert!(t64 > t16, "scan must grow with P");
}

#[test]
fn larger_worlds_than_cores() {
    // 128 ranks on a small host: must still complete and be correct.
    let out = run_spmd(128, M, |comm| comm.allreduce(1u64, |a, b| a + b));
    assert!(out.results.iter().all(|&v| v == 128));
}

#[test]
fn advance_time_manual() {
    let out = run_spmd(1, M, |comm| {
        comm.advance_time(2.5);
        comm.virtual_time()
    });
    assert_eq!(out.results[0], 2.5);
}

#[test]
fn traced_run_records_all_event_kinds() {
    use bt_mpsim::{run_spmd_traced, TraceEvent};
    let model = CostModel {
        latency_s: 1e-3,
        per_byte_s: 0.0,
        flop_rate: 1e6,
        threads_per_rank: 1,
    };
    let (out, trace) = run_spmd_traced(2, model, |comm| {
        comm.compute(1000);
        if comm.rank() == 0 {
            comm.send(1, 1, vec![0.0f64; 4]);
        } else {
            let _: Vec<f64> = comm.recv(0, 1);
        }
        comm.rank()
    });
    assert_eq!(out.results, vec![0, 1]);
    assert_eq!(trace.events.len(), 2);
    // Rank 0: compute + send.
    assert!(matches!(
        trace.events[0][0],
        TraceEvent::Compute { flops: 1000, .. }
    ));
    assert!(matches!(
        trace.events[0][1],
        TraceEvent::Send {
            dst: 1,
            bytes: 32,
            ..
        }
    ));
    // Rank 1: compute + recv (with nonzero wait only if it posted early —
    // both computed 1ms first, message adds 1ms latency, so wait ~1ms).
    match trace.events[1][1] {
        TraceEvent::Recv {
            wait,
            src: 0,
            bytes: 32,
            ..
        } => {
            assert!((wait - 1e-3).abs() < 1e-9, "wait {wait}");
        }
        ref other => panic!("unexpected event {other:?}"),
    }
    // JSON serialization holds the four events plus metadata (process
    // name, two rank thread names) and one send->recv flow pair, all
    // valid under the Chrome trace schema.
    let json = trace.to_chrome_json();
    let doc = bt_obs::json::parse(&json).expect("trace JSON parses");
    let summary = bt_obs::json::validate_chrome_trace(&doc).expect("trace validates");
    assert_eq!(summary.events, 4 + 3 + 2);
    assert_eq!(summary.flow_starts, 1);
    assert_eq!(summary.flow_finishes, 1);
}

#[test]
fn untraced_run_records_nothing_and_behaves_identically() {
    use bt_mpsim::run_spmd_traced;
    let model = CostModel {
        latency_s: 1e-6,
        per_byte_s: 1e-9,
        flop_rate: 1e9,
        threads_per_rank: 1,
    };
    let plain = run_spmd(4, model, |comm| {
        comm.allreduce(comm.rank() as u64, |a, b| a + b)
    });
    let (traced, trace) = run_spmd_traced(4, model, |comm| {
        comm.allreduce(comm.rank() as u64, |a, b| a + b)
    });
    assert_eq!(plain.results, traced.results);
    assert_eq!(plain.stats, traced.stats);
    assert_eq!(plain.modeled_seconds, traced.modeled_seconds);
    assert!(!trace.is_empty());
}

#[test]
fn scatter_delivers_per_rank_values() {
    for root in [0, 2] {
        let out = run_spmd(4, M, move |comm| {
            let values = (comm.rank() == root).then(|| vec![10u64, 11, 12, 13]);
            comm.scatter(root, values)
        });
        assert_eq!(out.results, vec![10, 11, 12, 13], "root={root}");
    }
}

#[test]
fn alltoall_transposes_contributions() {
    let out = run_spmd(3, M, |comm| {
        // values[dst] = rank * 10 + dst
        let values: Vec<u64> = (0..3)
            .map(|dst| comm.rank() as u64 * 10 + dst as u64)
            .collect();
        comm.alltoall(values)
    });
    // received[src] on rank r == src * 10 + r
    for (r, received) in out.results.iter().enumerate() {
        let expect: Vec<u64> = (0..3).map(|src| src as u64 * 10 + r as u64).collect();
        assert_eq!(received, &expect, "rank {r}");
    }
}

#[test]
#[should_panic(expected = "scatter length mismatch")]
fn scatter_length_checked() {
    run_spmd(3, M, |comm| {
        let values = (comm.rank() == 0).then(|| vec![1u64, 2]);
        comm.scatter(0, values)
    });
}

// ---------------------------------------------------------------------
// Nonblocking point-to-point
// ---------------------------------------------------------------------

#[test]
fn irecv_delivers_panel_and_counts_nb_stats() {
    let out = run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            let p = Mat::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
            let req = comm.isend_panel(1, 4, p.as_ref());
            comm.send_wait(req);
            Mat::empty()
        } else {
            let buf = Mat::<f64>::zeros(3, 5);
            let req = comm.irecv_panel_into(0, 4, buf);
            comm.recv_wait(req)
        }
    });
    assert_eq!(
        out.results[1],
        Mat::from_fn(3, 5, |i, j| (i * 10 + j) as f64)
    );
    assert_eq!(out.stats.per_rank[1].nb_recvs, 1);
    assert_eq!(out.stats.per_rank[1].msgs_recv, 1);
    assert_eq!(out.stats.per_rank[1].bytes_recv, 3 * 5 * 8);
    assert!(out.stats.is_balanced());
}

#[test]
fn crossed_isends_do_not_deadlock() {
    // Both ranks post their sends before either receives — the pattern
    // that deadlocks under synchronous MPI sends. Buffered-eager isend
    // must complete it regardless of ordering.
    let out = run_spmd(2, M, |comm| {
        let peer = 1 - comm.rank();
        let mine = Mat::from_fn(4, 4, |i, j| (comm.rank() * 100 + i * 4 + j) as f64);
        let s = comm.isend_panel(peer, 2, mine.as_ref());
        let r = comm.irecv_panel_into(peer, 2, Mat::<f64>::zeros(4, 4));
        comm.send_wait(s);
        comm.recv_wait(r)
    });
    for rank in 0..2 {
        let from = 1 - rank;
        assert_eq!(
            out.results[rank],
            Mat::from_fn(4, 4, |i, j| (from * 100 + i * 4 + j) as f64),
            "rank {rank}"
        );
    }
    assert!(out.stats.is_balanced());
}

#[test]
fn irecv_overlap_charges_max_of_compute_and_comm() {
    // Message costs 1.8s on the wire (latency 1 + 800 B * 1e-3); the
    // receiver's compute costs 3s. Blocking order (recv, then compute)
    // serializes: ~1.8 + 3. Pipelined order (post, compute, wait)
    // charges max(3, 1.8) = 3 and reports the hidden 1.8s as overlap.
    let model = CostModel {
        latency_s: 1.0,
        per_byte_s: 1e-3,
        flop_rate: 100.0,
        threads_per_rank: 1,
    };
    let body = |pipelined: bool| {
        move |comm: &mut bt_mpsim::Comm| {
            if comm.rank() == 0 {
                let s = comm.isend_panel(1, 1, Mat::<f64>::zeros(10, 10).as_ref());
                comm.send_wait(s);
                comm.virtual_time()
            } else if pipelined {
                let req = comm.irecv_panel_into(0, 1, Mat::<f64>::zeros(10, 10));
                comm.compute(300); // 3 s
                let _: Mat = comm.recv_wait(req);
                comm.virtual_time()
            } else {
                let mut buf: Mat = Mat::zeros(10, 10);
                comm.recv_panel_into(0, 1, buf.as_mut());
                comm.compute(300);
                comm.virtual_time()
            }
        }
    };
    let serial = run_spmd(2, model, body(false));
    let piped = run_spmd(2, model, body(true));
    assert_eq!(serial.results[1], 1.8 + 3.0);
    assert_eq!(piped.results[1], 3.0);
    // The 1.8s in flight was fully hidden behind the 3s of compute.
    let ns = piped.stats.per_rank[1].overlap_ns;
    assert!(
        (1_700_000_000..=1_900_000_000).contains(&ns),
        "overlap_ns = {ns}"
    );
    assert_eq!(serial.stats.per_rank[1].overlap_ns, 0);
    assert_eq!(serial.stats.per_rank[1].nb_recvs, 0);
}

#[test]
fn tiled_sends_cost_no_more_than_one_big_message() {
    // Link serialization with pipelined-rendezvous latency overlap: T
    // back-to-back tile sends to one destination deliver the last byte
    // at the same virtual time as a single message of the combined
    // size (latency hides under the predecessor's transfer).
    let model = CostModel {
        latency_s: 1.0,
        per_byte_s: 1e-3,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };
    let whole = run_spmd(2, model, |comm| {
        if comm.rank() == 0 {
            comm.send_panel(1, 1, Mat::<f64>::zeros(10, 40).as_ref());
        } else {
            let mut buf: Mat = Mat::zeros(10, 40);
            comm.recv_panel_into(0, 1, buf.as_mut());
        }
        comm.virtual_time()
    });
    let tiled = run_spmd(2, model, |comm| {
        if comm.rank() == 0 {
            for _ in 0..4 {
                comm.send_panel(1, 1, Mat::<f64>::zeros(10, 10).as_ref());
            }
        } else {
            let mut buf: Mat = Mat::zeros(10, 10);
            for _ in 0..4 {
                comm.recv_panel_into(0, 1, buf.as_mut());
            }
        }
        comm.virtual_time()
    });
    // whole: 1 + 3200 B * 1e-3 = 4.2 s; tiled last tile: injections
    // serialize at 0.8 s spacing, last avail = 3*0.8 + 1 + 0.8 = 4.2 s.
    assert_eq!(whole.results[1], 4.2);
    assert_eq!(tiled.results[1], 4.2);
    assert_eq!(
        whole.stats.total().bytes_sent,
        tiled.stats.total().bytes_sent
    );
}

#[test]
fn request_test_reports_arrival() {
    let out = run_spmd(2, M, |comm| {
        if comm.rank() == 0 {
            comm.send_panel(1, 3, Mat::<f64>::identity(2).as_ref());
            comm.barrier();
            true
        } else {
            let req = comm.irecv_panel_into(0, 3, Mat::<f64>::zeros(2, 2));
            // After the barrier the message has physically arrived and
            // (zero-cost model) is virtually available.
            comm.barrier();
            let ready = comm.recv_test(&req);
            let _: Mat = comm.recv_wait(req);
            ready
        }
    });
    assert!(out.results[1]);
}

#[test]
fn exchange_panel_swaps_between_peers() {
    let out = run_spmd(4, M, |comm| {
        let peer = comm.rank() ^ 1;
        let mine = Mat::from_fn(2, 3, |i, j| (comm.rank() * 10 + i * 3 + j) as f64);
        let mut theirs = Mat::zeros(2, 3);
        comm.exchange_panel(
            6,
            Some((peer, mine.as_ref())),
            Some((peer, theirs.as_mut())),
        );
        theirs
    });
    for rank in 0..4 {
        let peer = rank ^ 1;
        assert_eq!(
            out.results[rank],
            Mat::from_fn(2, 3, |i, j| (peer * 10 + i * 3 + j) as f64),
            "rank {rank}"
        );
    }
    assert!(out.stats.is_balanced());
}

#[test]
fn persistent_world_matches_fresh_world() {
    use bt_mpsim::SpmdWorld;
    let mut world = SpmdWorld::new(4, M.with_threads_per_rank(2));
    assert_eq!(world.ranks(), 4);
    for round in 0..3u64 {
        let reused = world.run(move |comm| {
            // Mix point-to-point, a collective and compute so clock,
            // counters and collective tags all exercise the reset path.
            let peer = comm.rank() ^ 1;
            let got: u64 = comm.sendrecv(peer, 7, comm.rank() as u64 + round);
            comm.compute(100);
            got + comm.allreduce(comm.rank() as u64, |a, b| a + b)
        });
        let fresh = run_spmd(4, M.with_threads_per_rank(2), |comm| {
            let peer = comm.rank() ^ 1;
            let got: u64 = comm.sendrecv(peer, 7, comm.rank() as u64 + round);
            comm.compute(100);
            got + comm.allreduce(comm.rank() as u64, |a, b| a + b)
        });
        assert_eq!(reused.results, fresh.results, "round {round}");
        assert_eq!(reused.modeled_seconds, fresh.modeled_seconds);
        // Per-job stats must not accumulate across jobs.
        assert_eq!(
            reused.stats.total().msgs_sent,
            fresh.stats.total().msgs_sent,
            "round {round}: stats leaked across jobs"
        );
    }
}

#[test]
fn traced_persistent_world_merges_jobs_without_flow_collisions() {
    // Two back-to-back jobs with *identical* send/recv tag patterns on a
    // traced persistent world: the merged Chrome trace must keep per-tid
    // timestamps monotone (job 2 shifted past job 1 on the virtual
    // timeline) and pair every send→recv flow arrow with its own job's
    // counterpart — the regression was reused worlds restarting clocks
    // and flow occurrences at zero, colliding arrows across jobs.
    let job = |comm: &mut bt_mpsim::Comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, 42u64);
        } else {
            let _: u64 = comm.recv(0, 7);
        }
        comm.compute(1_000);
        comm.virtual_time()
    };
    let mut world = bt_mpsim::SpmdWorld::new_traced(2, M);
    let first = world.run(job);
    let second = world.run(job);
    assert_eq!(first.results, second.results, "jobs are identical");

    let trace = world.take_trace();
    let json = trace.to_chrome_json();
    let doc = bt_obs::json::parse(&json).expect("merged trace parses");
    let summary = bt_obs::json::validate_chrome_trace(&doc)
        .expect("merged trace is a valid Chrome trace (monotone ts, matched flows)");
    // One message per job, two jobs: two distinct flow arrows.
    assert_eq!(summary.flow_starts, 2, "one flow start per job's send");
    assert_eq!(summary.flow_finishes, 2, "one flow finish per job's recv");

    // After take_trace the buffer is empty but the timeline keeps
    // advancing: a third job still lands after the first two.
    let third = world.run(job);
    assert_eq!(third.results, first.results);
    let tail = world.take_trace();
    let tail_doc = bt_obs::json::parse(&tail.to_chrome_json()).expect("tail parses");
    let tail_summary = bt_obs::json::validate_chrome_trace(&tail_doc).expect("tail valid");
    assert_eq!(tail_summary.flow_starts, 1);
}

#[test]
fn persistent_world_rank_threads_stamped_from_model() {
    let mut world = bt_mpsim::SpmdWorld::new(3, M.with_threads_per_rank(4));
    let out = world.run(|_comm| bt_dense::current_threads());
    assert_eq!(out.results, vec![4, 4, 4]);
}

#[test]
fn persistent_world_panic_is_catchable_and_kills_world() {
    let mut world = bt_mpsim::SpmdWorld::new(2, M);
    let ok = world.run(|comm| comm.rank());
    assert_eq!(ok.results, vec![0, 1]);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        world.run(|comm| {
            if comm.rank() == 1 {
                panic!("job blew up");
            }
            let _: u64 = comm.recv(1, 3); // blocks until rank 1's death unblocks it
        })
    }));
    let msg = err.expect_err("panic must propagate");
    let msg = msg.downcast_ref::<String>().expect("string payload");
    assert!(msg.contains("panicked"), "got: {msg}");
    assert!(world.is_dead());
    let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        world.run(|comm| comm.rank())
    }));
    assert!(again.is_err(), "dead world must refuse jobs");
}

#[test]
fn midsolve_panic_with_inflight_irecv_is_catchable() {
    // A rank that panics while holding a posted-but-unwaited RecvRequest
    // must surface as one catchable panic, not a double-panic abort:
    // RecvRequest::drop suppresses its own panic during unwind.
    let caught = std::panic::catch_unwind(|| {
        run_spmd(2, M, |comm| {
            if comm.rank() == 0 {
                comm.send_panel(1, 2, Mat::<f64>::identity(3).as_ref());
                // Stay alive until peer death cuts the channel.
                let _: u64 = comm.recv(1, 9);
            } else {
                let _req = comm.irecv_panel_into(0, 2, Mat::<f64>::zeros(3, 3));
                panic!("mid-solve failure with a request in flight");
            }
        })
    });
    let msg = caught.expect_err("panic must propagate, not abort");
    let msg = msg.downcast_ref::<String>().expect("string payload");
    assert!(
        msg.contains("mid-solve failure") || msg.contains("terminated"),
        "got: {msg}"
    );
}
