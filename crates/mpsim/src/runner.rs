//! SPMD launcher: runs the same closure on `P` ranks (one OS thread each)
//! and collects results, counters, wall-clock time and modeled time.

use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;

use crate::comm::{Comm, Envelope};
use crate::model::CostModel;
use crate::stats::WorldStats;
use crate::trace::{Trace, TraceEvent};

/// Hard cap on world size: ranks are OS threads that mostly block on
/// channels, so thousands are fine, but an unbounded request is almost
/// certainly a bug.
pub const MAX_RANKS: usize = 4096;

/// Everything produced by one SPMD run.
#[derive(Debug)]
pub struct SpmdOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank communication/computation counters.
    pub stats: WorldStats,
    /// Real elapsed wall-clock time of the whole run.
    pub wall: Duration,
    /// Modeled parallel runtime: the maximum final virtual clock over all
    /// ranks, per the run's [`CostModel`].
    pub modeled_seconds: f64,
}

impl<T> SpmdOutput<T> {
    /// Total virtual seconds of nonblocking-receive transfer time hidden
    /// behind compute, summed over ranks (from
    /// `RankStats::overlap_ns`). Zero for programs using only blocking
    /// receives; the numerator of a pipeline's overlap ratio.
    pub fn overlap_seconds(&self) -> f64 {
        self.stats
            .per_rank
            .iter()
            .map(|r| r.overlap_ns as f64 * 1e-9)
            .sum()
    }

    /// Maximum overlap seconds achieved by any single rank — the
    /// critical-path counterpart of [`SpmdOutput::overlap_seconds`].
    pub fn max_rank_overlap_seconds(&self) -> f64 {
        self.stats
            .per_rank
            .iter()
            .map(|r| r.overlap_ns as f64 * 1e-9)
            .fold(0.0, f64::max)
    }
}

/// Runs `f` as an SPMD program on `p` ranks under `model`.
///
/// Each rank gets its own [`Comm`]; `f(&mut comm)` is executed once per
/// rank on its own thread. Returns when every rank has finished.
///
/// # Panics
///
/// Panics if `p == 0` or `p > MAX_RANKS`, or if any rank panics (the
/// panic is propagated; ranks blocked on the dead rank's messages panic
/// with a "terminated" message of their own).
///
/// # Examples
///
/// ```
/// use bt_mpsim::{run_spmd, CostModel};
///
/// let out = run_spmd(4, CostModel::default(), |comm| {
///     comm.allreduce(comm.rank() as u64, |a, b| a + b)
/// });
/// assert_eq!(out.results, vec![6, 6, 6, 6]);
/// ```
pub fn run_spmd<T, F>(p: usize, model: CostModel, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_spmd_impl(p, model, false, f).0
}

/// Like [`run_spmd`], but every rank records its virtual-time events;
/// the returned [`Trace`] serializes to Chrome trace JSON
/// ([`Trace::write_chrome_json`]).
pub fn run_spmd_traced<T, F>(p: usize, model: CostModel, f: F) -> (SpmdOutput<T>, Trace)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let (out, trace) = run_spmd_impl(p, model, true, f);
    (out, trace.expect("tracing enabled"))
}

fn run_spmd_impl<T, F>(
    p: usize,
    model: CostModel,
    traced: bool,
    f: F,
) -> (SpmdOutput<T>, Option<Trace>)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(p >= 1, "world size must be at least 1");
    assert!(
        p <= MAX_RANKS,
        "world size {p} exceeds MAX_RANKS ({MAX_RANKS})"
    );

    // chans[src][dst]
    let mut txs: Vec<Vec<Option<crossbeam::channel::Sender<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut rxs: Vec<Vec<Option<crossbeam::channel::Receiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, row) in txs.iter_mut().enumerate() {
        for (dst, slot) in row.iter_mut().enumerate() {
            let (tx, rx) = unbounded();
            *slot = Some(tx);
            rxs[src][dst] = Some(rx);
        }
    }

    // Build each rank's communicator: it owns senders to every dst and
    // receivers from every src.
    let mut comms: Vec<Comm> = Vec::with_capacity(p);
    // Transpose receivers: rank r receives on rxs[src][r] for all src.
    let mut recv_rows: Vec<Vec<Option<crossbeam::channel::Receiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, row) in rxs.into_iter().enumerate() {
        for (dst, rx) in row.into_iter().enumerate() {
            recv_rows[dst][src] = rx;
        }
    }
    for (rank, (send_row, recv_row)) in txs.into_iter().zip(recv_rows).enumerate() {
        let senders = send_row
            .into_iter()
            .map(|s| s.expect("sender built"))
            .collect();
        let receivers = recv_row
            .into_iter()
            .map(|r| r.expect("receiver built"))
            .collect();
        let mut comm = Comm::new(rank, p, senders, receivers, model);
        if traced {
            comm.tracer = Some(Vec::new());
        }
        comms.push(comm);
    }

    let start = Instant::now();
    let f = &f;
    let rank_outputs: Vec<(T, crate::stats::RankStats, f64, Option<Vec<TraceEvent>>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| {
                    scope.spawn(move || {
                        // Hand the model's intra-rank thread budget to the
                        // dense kernels running on this rank thread, so the
                        // real kernels parallelize exactly as the cost
                        // model assumes.
                        bt_dense::threading::set_thread_budget(model.threads_per_rank.max(1));
                        if bt_obs::enabled() {
                            bt_obs::set_thread_label(format!("rank {}", comm.rank()));
                        }
                        let _span = bt_obs::span_with("mpsim", "rank", || {
                            format!("{{\"rank\":{}}}", comm.rank())
                        });
                        let result = f(&mut comm);
                        let events = comm.tracer.take();
                        (result, comm.stats(), comm.virtual_time(), events)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(out) => out,
                    Err(e) => std::panic::panic_any(e_with_rank(rank, e)),
                })
                .collect()
        });
    let wall = start.elapsed();

    let mut results = Vec::with_capacity(p);
    let mut per_rank = Vec::with_capacity(p);
    let mut modeled = 0.0f64;
    let mut trace_events = Vec::with_capacity(p);
    for (result, stats, clock, events) in rank_outputs {
        results.push(result);
        per_rank.push(stats);
        modeled = modeled.max(clock);
        trace_events.push(events.unwrap_or_default());
    }

    let trace = traced.then_some(Trace {
        events: trace_events,
    });
    (
        SpmdOutput {
            results,
            stats: WorldStats { per_rank },
            wall,
            modeled_seconds: modeled,
        },
        trace,
    )
}

/// Convenience wrapper with the default cluster cost model.
pub fn run_spmd_default<T, F>(p: usize, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_spmd(p, CostModel::default(), f)
}

fn e_with_rank(rank: usize, e: Box<dyn std::any::Any + Send>) -> String {
    let msg = if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    format!("rank {rank} panicked: {msg}")
}
