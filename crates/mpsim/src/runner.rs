//! SPMD launcher: runs the same closure on `P` ranks (one OS thread each)
//! and collects results, counters, wall-clock time and modeled time.

use std::time::Instant;

use bt_comm::{CostModel, PersistentWorld, SpmdBackend, SpmdOutput, WorldStats, MAX_RANKS};
use crossbeam::channel::unbounded;

use crate::comm::{Comm, Envelope};
use crate::trace::{Trace, TraceEvent};

/// Runs `f` as an SPMD program on `p` ranks under `model`.
///
/// Each rank gets its own [`Comm`]; `f(&mut comm)` is executed once per
/// rank on its own thread. Returns when every rank has finished.
///
/// # Panics
///
/// Panics if `p == 0` or `p > MAX_RANKS`, or if any rank panics (the
/// panic is propagated; ranks blocked on the dead rank's messages panic
/// with a "terminated" message of their own).
///
/// # Examples
///
/// ```
/// use bt_mpsim::{run_spmd, CommBackend, CostModel};
///
/// let out = run_spmd(4, CostModel::default(), |comm| {
///     comm.allreduce(comm.rank() as u64, |a, b| a + b)
/// });
/// assert_eq!(out.results, vec![6, 6, 6, 6]);
/// ```
pub fn run_spmd<T, F>(p: usize, model: CostModel, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_spmd_impl(p, model, false, f).0
}

/// Like [`run_spmd`], but every rank records its virtual-time events;
/// the returned [`Trace`] serializes to Chrome trace JSON
/// ([`Trace::write_chrome_json`]).
pub fn run_spmd_traced<T, F>(p: usize, model: CostModel, f: F) -> (SpmdOutput<T>, Trace)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let (out, trace) = run_spmd_impl(p, model, true, f);
    (out, trace.expect("tracing enabled"))
}

/// Builds the all-to-all channel mesh and one [`Comm`] per rank.
fn build_comms(p: usize, model: CostModel, traced: bool) -> Vec<Comm> {
    assert!(p >= 1, "world size must be at least 1");
    assert!(
        p <= MAX_RANKS,
        "world size {p} exceeds MAX_RANKS ({MAX_RANKS})"
    );

    // chans[src][dst]
    let mut txs: Vec<Vec<Option<crossbeam::channel::Sender<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut rxs: Vec<Vec<Option<crossbeam::channel::Receiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, row) in txs.iter_mut().enumerate() {
        for (dst, slot) in row.iter_mut().enumerate() {
            let (tx, rx) = unbounded();
            *slot = Some(tx);
            rxs[src][dst] = Some(rx);
        }
    }

    // Build each rank's communicator: it owns senders to every dst and
    // receivers from every src.
    let mut comms: Vec<Comm> = Vec::with_capacity(p);
    // Transpose receivers: rank r receives on rxs[src][r] for all src.
    let mut recv_rows: Vec<Vec<Option<crossbeam::channel::Receiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, row) in rxs.into_iter().enumerate() {
        for (dst, rx) in row.into_iter().enumerate() {
            recv_rows[dst][src] = rx;
        }
    }
    for (rank, (send_row, recv_row)) in txs.into_iter().zip(recv_rows).enumerate() {
        let senders = send_row
            .into_iter()
            .map(|s| s.expect("sender built"))
            .collect();
        let receivers = recv_row
            .into_iter()
            .map(|r| r.expect("receiver built"))
            .collect();
        let mut comm = Comm::new(rank, p, senders, receivers, model);
        if traced {
            comm.tracer = Some(Vec::new());
            comm.traced = true;
        }
        comms.push(comm);
    }
    comms
}

fn run_spmd_impl<T, F>(
    p: usize,
    model: CostModel,
    traced: bool,
    f: F,
) -> (SpmdOutput<T>, Option<Trace>)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let comms = build_comms(p, model, traced);

    let start = Instant::now();
    let f = &f;
    let rank_outputs: Vec<(T, bt_comm::RankStats, f64, Option<Vec<TraceEvent>>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| {
                    scope.spawn(move || {
                        // Hand the model's intra-rank thread budget to the
                        // dense kernels running on this rank thread, so the
                        // real kernels parallelize exactly as the cost
                        // model assumes.
                        bt_dense::threading::set_thread_budget(model.threads_per_rank.max(1));
                        if bt_obs::enabled() {
                            bt_obs::set_thread_label(format!("rank {}", comm.rank()));
                        }
                        let _span = bt_obs::span_with("mpsim", "rank", || {
                            format!("{{\"rank\":{}}}", comm.rank())
                        });
                        let result = f(&mut comm);
                        let events = comm.tracer.take();
                        (result, comm.stats(), comm.virtual_time(), events)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(out) => out,
                    Err(e) => std::panic::panic_any(e_with_rank(rank, e)),
                })
                .collect()
        });
    let wall = start.elapsed();

    let mut results = Vec::with_capacity(p);
    let mut per_rank = Vec::with_capacity(p);
    let mut modeled = 0.0f64;
    let mut trace_events = Vec::with_capacity(p);
    for (result, stats, clock, events) in rank_outputs {
        results.push(result);
        per_rank.push(stats);
        modeled = modeled.max(clock);
        trace_events.push(events.unwrap_or_default());
    }

    let trace = traced.then_some(Trace {
        events: trace_events,
    });
    (
        SpmdOutput {
            results,
            stats: WorldStats { per_rank },
            wall,
            modeled_seconds: modeled,
        },
        trace,
    )
}

/// Convenience wrapper with the default cluster cost model.
pub fn run_spmd_default<T, F>(p: usize, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_spmd(p, CostModel::default(), f)
}

fn e_with_rank(rank: usize, e: Box<dyn std::any::Any + Send>) -> String {
    format!("rank {rank} panicked: {}", panic_msg(&*e))
}

/// One dispatched unit of work for a persistent rank thread.
type Job = Box<dyn FnOnce(&mut Comm) -> Box<dyn std::any::Any + Send> + Send>;

/// What a persistent rank reports back after a job.
enum RankDone {
    Ok {
        result: Box<dyn std::any::Any + Send>,
        stats: bt_comm::RankStats,
        clock: f64,
        /// This job's trace events (Some only on traced worlds).
        events: Option<Vec<TraceEvent>>,
    },
    Panicked(String),
}

/// A **reusable** SPMD world: `P` rank threads spawned once, each running
/// jobs dispatched through [`SpmdWorld::run`].
///
/// [`run_spmd`] pays one thread spawn + channel-mesh build per call —
/// tens of microseconds per rank, irrelevant for a benchmark sweep but a
/// real tax on a solve *service* dispatching thousands of small replay
/// solves per second. A `SpmdWorld` keeps the rank threads and their
/// channel mesh alive between calls; [`SpmdWorld::run`] has the same
/// semantics as [`run_spmd`] (per-rank [`Comm`] state — clock, counters,
/// link occupancy, collective sequence — is reset before every job, so
/// virtual-time results are identical to a fresh world).
///
/// Constraints inherited from reuse:
///
/// * Jobs must be `'static` (they are boxed and shipped to long-lived
///   threads) — capture shared state via `Arc`, not borrows.
/// * A program must receive every message it is sent; leftovers would
///   corrupt the next job (the per-job reset `debug_assert`s the
///   out-of-order buffers are empty).
/// * A panicking job kills the world: the panic is propagated to the
///   [`SpmdWorld::run`] caller (catchable, as with [`run_spmd`]) and the
///   world refuses further jobs ([`SpmdWorld::is_dead`]) — peers may
///   have been left mid-protocol, so the only safe move is to rebuild.
/// * Tracing is opt-in at construction ([`SpmdWorld::new_traced`]):
///   every job's events accumulate — offset onto one shared virtual
///   timeline — and [`SpmdWorld::take_trace`] yields the merged
///   [`Trace`]. Worlds built with [`SpmdWorld::new`] are untraced (use
///   [`run_spmd_traced`] for one-shot Chrome traces).
pub struct SpmdWorld {
    p: usize,
    model: CostModel,
    job_txs: Vec<crossbeam::channel::Sender<Job>>,
    done_rx: crossbeam::channel::Receiver<(usize, RankDone)>,
    handles: Vec<std::thread::JoinHandle<()>>,
    dead: bool,
    traced: bool,
    /// Merged trace of every completed job (traced worlds only).
    trace: Trace,
    /// Cumulative modeled seconds of completed jobs: each per-rank clock
    /// restarts at zero per job ([`Comm::reset_for_reuse`]), so job
    /// `k`'s events are shifted by the summed modeled time of jobs
    /// `0..k` when merged. This keeps per-rank timestamps monotone in
    /// the merged Chrome JSON and — because occurrence counting in
    /// [`Trace::to_chrome_json`] walks events in merged order — gives
    /// every send→recv flow arrow a distinct pairing instead of
    /// colliding with the equivalent message of an earlier job.
    trace_base_s: f64,
}

impl SpmdWorld {
    /// Spawns the `p` persistent rank threads.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `p > MAX_RANKS`.
    pub fn new(p: usize, model: CostModel) -> Self {
        Self::new_impl(p, model, false)
    }

    /// Like [`SpmdWorld::new`], but every job records virtual-time trace
    /// events; [`SpmdWorld::take_trace`] returns the merged timeline.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `p > MAX_RANKS`.
    pub fn new_traced(p: usize, model: CostModel) -> Self {
        Self::new_impl(p, model, true)
    }

    fn new_impl(p: usize, model: CostModel, traced: bool) -> Self {
        let comms = build_comms(p, model, traced);
        let (done_tx, done_rx) = unbounded::<(usize, RankDone)>();
        let mut job_txs = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for mut comm in comms {
            let (job_tx, job_rx) = unbounded::<Job>();
            job_txs.push(job_tx);
            let done_tx = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                bt_dense::threading::set_thread_budget(model.threads_per_rank.max(1));
                if bt_obs::enabled() {
                    bt_obs::set_thread_label(format!("world rank {}", comm.rank()));
                }
                while let Ok(job) = job_rx.recv() {
                    comm.reset_for_reuse();
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&mut comm)));
                    let rank = comm.rank();
                    match outcome {
                        Ok(result) => {
                            let done = RankDone::Ok {
                                result,
                                stats: comm.stats(),
                                clock: comm.virtual_time(),
                                events: comm.tracer.take(),
                            };
                            if done_tx.send((rank, done)).is_err() {
                                return; // world dropped mid-job
                            }
                        }
                        Err(e) => {
                            // Report, then die: dropping this rank's Comm
                            // unblocks peers (their recvs panic with
                            // "terminated"), so every rank reports and
                            // `run` can propagate a catchable panic.
                            let _ = done_tx.send((rank, RankDone::Panicked(panic_msg(&e))));
                            std::panic::resume_unwind(e);
                        }
                    }
                }
            }));
        }
        Self {
            p,
            model,
            job_txs,
            done_rx,
            handles,
            dead: false,
            traced,
            trace: Trace {
                events: (0..p).map(|_| Vec::new()).collect(),
            },
            trace_base_s: 0.0,
        }
    }

    /// World size.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// The cost model jobs run under.
    #[inline]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// True once a job has panicked; the world no longer accepts jobs.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Runs `f` on every rank, exactly like [`run_spmd`] but on the
    /// persistent threads. Blocks until all ranks finish.
    ///
    /// # Panics
    ///
    /// Panics if the world is dead, or if any rank's job panics (the
    /// panic is propagated to this caller and the world is marked dead).
    pub fn run<T, F>(&mut self, f: F) -> SpmdOutput<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        assert!(!self.dead, "SpmdWorld is dead after a panicked job");
        let f = std::sync::Arc::new(f);
        let start = Instant::now();
        for tx in &self.job_txs {
            let f = std::sync::Arc::clone(&f);
            let job: Job = Box::new(move |comm| Box::new(f(comm)));
            if tx.send(job).is_err() {
                self.dead = true;
                panic!("SpmdWorld rank thread is gone (earlier panic?)");
            }
        }
        let mut slots: Vec<Option<RankDone>> = (0..self.p).map(|_| None).collect();
        let mut first_panic: Option<(usize, String)> = None;
        for _ in 0..self.p {
            match self.done_rx.recv() {
                Ok((rank, done)) => {
                    if let RankDone::Panicked(msg) = &done {
                        if first_panic.is_none() {
                            first_panic = Some((rank, msg.clone()));
                        }
                    }
                    slots[rank] = Some(done);
                }
                Err(_) => {
                    // A rank died without reporting — only possible if its
                    // thread was torn down outside the job protocol.
                    self.dead = true;
                    panic!("SpmdWorld rank thread died without reporting");
                }
            }
        }
        let wall = start.elapsed();
        if let Some((rank, msg)) = first_panic {
            self.dead = true;
            std::panic::panic_any(format!("rank {rank} panicked: {msg}"));
        }

        let mut results = Vec::with_capacity(self.p);
        let mut per_rank = Vec::with_capacity(self.p);
        let mut modeled = 0.0f64;
        for (rank, done) in slots.into_iter().enumerate() {
            match done.expect("all ranks reported") {
                RankDone::Ok {
                    result,
                    stats,
                    clock,
                    events,
                } => {
                    results.push(
                        *result
                            .downcast::<T>()
                            .expect("job result type fixed by run's signature"),
                    );
                    per_rank.push(stats);
                    modeled = modeled.max(clock);
                    if self.traced {
                        let base = self.trace_base_s;
                        self.trace.events[rank]
                            .extend(events.unwrap_or_default().iter().map(|e| e.shifted(base)));
                    }
                }
                RankDone::Panicked(_) => unreachable!("panics returned above"),
            }
        }
        if self.traced {
            // Lay the next job after this one on the shared timeline.
            self.trace_base_s += modeled;
        }
        SpmdOutput {
            results,
            stats: WorldStats { per_rank },
            wall,
            modeled_seconds: modeled,
        }
    }

    /// Takes the merged trace accumulated so far (traced worlds only),
    /// leaving an empty trace behind; the virtual-time offset keeps
    /// running, so later jobs still land after earlier ones if traces
    /// are concatenated externally.
    ///
    /// Returns an empty per-rank trace for untraced worlds.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::replace(
            &mut self.trace,
            Trace {
                events: (0..self.p).map(|_| Vec::new()).collect(),
            },
        )
    }
}

impl Drop for SpmdWorld {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's loop; dead threads
        // (panicked jobs) report join errors we deliberately swallow —
        // their panic was already propagated by `run`.
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn panic_msg(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The virtual-clock simulator as an [`SpmdBackend`]: the zero-sized
/// selector that session/service layers use to run their rank programs
/// on [`run_spmd`] / [`SpmdWorld`].
pub struct SimBackend;

impl SpmdBackend for SimBackend {
    type Comm = Comm;
    type World = SpmdWorld;

    fn name() -> &'static str {
        "sim"
    }

    fn run<T, F>(p: usize, model: CostModel, f: F) -> SpmdOutput<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        run_spmd(p, model, f)
    }

    fn world(p: usize, model: CostModel) -> SpmdWorld {
        SpmdWorld::new(p, model)
    }
}

impl PersistentWorld for SpmdWorld {
    type Comm = Comm;

    fn ranks(&self) -> usize {
        self.p
    }

    fn model(&self) -> CostModel {
        self.model
    }

    fn is_dead(&self) -> bool {
        self.dead
    }

    fn run<T, F>(&mut self, f: F) -> SpmdOutput<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        SpmdWorld::run(self, f)
    }
}
