//! Collective operations, all implemented over the point-to-point layer so
//! the byte/message counters and the virtual-time model automatically
//! account for them.
//!
//! Every collective must be called by **all ranks in the same order**
//! (the usual SPMD contract). A per-communicator sequence number keyed
//! into a reserved tag space keeps successive collectives from
//! interfering, even when user point-to-point traffic is in flight.
//!
//! Non-commutative operators are supported everywhere they make sense:
//! reductions and scans always combine partial results in rank order
//! (`op(lower_ranks_result, higher_ranks_result)`), which is what the
//! matrix-product scans of recursive doubling require.

use crate::comm::{Comm, USER_TAG_LIMIT};
use crate::payload::Payload;

impl Comm {
    /// Allocates a fresh collective tag (same value on every rank because
    /// collectives are called in the same order on every rank).
    fn next_collective_tag(&mut self) -> u64 {
        let tag = USER_TAG_LIMIT + self.collective_seq;
        self.collective_seq += 1;
        tag
    }

    /// Synchronizes all ranks (dissemination barrier, `ceil(log2 P)`
    /// rounds).
    pub fn barrier(&mut self) {
        let tag = self.next_collective_tag();
        let p = self.size();
        let r = self.rank();
        let mut k = 1;
        while k < p {
            let to = (r + k) % p;
            let from = (r + p - k) % p;
            self.send_internal(to, tag + (k as u64) * (1 << 56), ());
            let () = self.recv_internal(from, tag + (k as u64) * (1 << 56));
            k <<= 1;
        }
    }

    /// Broadcasts `value` from `root` to all ranks (binomial tree).
    ///
    /// On the root, pass `Some(value)`; on other ranks pass `None`.
    /// Returns the broadcast value on every rank.
    ///
    /// # Panics
    ///
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast<T: Payload + Clone>(&mut self, root: usize, value: Option<T>) -> T {
        let tag = self.next_collective_tag();
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        if vr == 0 {
            assert!(value.is_some(), "broadcast root must supply a value");
        } else {
            assert!(
                value.is_none(),
                "non-root rank {} passed a broadcast value",
                self.rank()
            );
        }

        let mut current = value;
        // Receive from the parent: the rank that differs in the lowest set
        // bit of our virtual rank.
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = ((vr - mask) + root) % p;
                current = Some(self.recv_internal(parent, tag));
                break;
            }
            mask <<= 1;
        }
        // Forward to children under decreasing masks.
        mask >>= 1;
        let val = current.expect("broadcast value must exist after receive phase");
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let child = ((vr + mask) + root) % p;
                self.send_internal(child, tag, val.clone());
            }
            mask >>= 1;
        }
        val
    }

    /// Reduces values from all ranks onto `root` with an associative (not
    /// necessarily commutative) `op`; partial results are combined in rank
    /// order. Returns `Some(total)` on root, `None` elsewhere.
    pub fn reduce<T: Payload + Clone>(
        &mut self,
        root: usize,
        value: T,
        op: impl Fn(&T, &T) -> T,
    ) -> Option<T> {
        let tag = self.next_collective_tag();
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if vr & mask == 0 {
                let peer_vr = vr | mask;
                if peer_vr < p {
                    let peer = (peer_vr + root) % p;
                    let other: T = self.recv_internal(peer, tag);
                    // `acc` covers virtual ranks [vr, vr+mask), `other`
                    // covers [vr+mask, ...): combine in rank order.
                    acc = op(&acc, &other);
                }
            } else {
                let peer = ((vr & !mask) + root) % p;
                self.send_internal(peer, tag, acc.clone());
                return None;
            }
            mask <<= 1;
        }
        debug_assert_eq!(vr, 0);
        Some(acc)
    }

    /// Reduce-to-all: every rank gets the rank-ordered combination of all
    /// contributions (reduce to rank 0, then broadcast).
    pub fn allreduce<T: Payload + Clone>(&mut self, value: T, op: impl Fn(&T, &T) -> T) -> T {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced)
    }

    /// Gathers one value from each rank onto `root`, in rank order.
    /// Returns `Some(vec)` (indexed by rank) on root, `None` elsewhere.
    pub fn gather<T: Payload>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        let tag = self.next_collective_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for src in (0..self.size()).filter(|&s| s != root) {
                let received = self.recv_internal(src, tag);
                out[src] = Some(received);
            }
            Some(
                out.into_iter()
                    .map(|v| v.expect("gather slot filled"))
                    .collect(),
            )
        } else {
            self.send_internal(root, tag, value);
            None
        }
    }

    /// All-gather: every rank receives the vector of all contributions in
    /// rank order (gather to rank 0 + broadcast).
    pub fn allgather<T: Payload + Clone>(&mut self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered)
    }

    /// Scatters `values` (indexed by rank) from `root`: rank `i` receives
    /// `values[i]`. On the root pass `Some(values)` (length `P`); on
    /// other ranks pass `None`.
    ///
    /// # Panics
    ///
    /// Panics if the root's vector length differs from the world size, if
    /// the root passes `None`, or a non-root passes `Some`.
    pub fn scatter<T: Payload>(&mut self, root: usize, values: Option<Vec<T>>) -> T {
        let tag = self.next_collective_tag();
        if self.rank() == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(values.len(), self.size(), "scatter length mismatch");
            let mut mine = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == root {
                    mine = Some(v);
                } else {
                    self.send_internal(dst, tag, v);
                }
            }
            mine.expect("root keeps its own slot")
        } else {
            assert!(
                values.is_none(),
                "non-root rank {} passed scatter values",
                self.rank()
            );
            self.recv_internal(root, tag)
        }
    }

    /// All-to-all personalized exchange: `values[dst]` goes to rank
    /// `dst`; returns the vector of contributions received, indexed by
    /// source rank.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != size()`.
    pub fn alltoall<T: Payload>(&mut self, values: Vec<T>) -> Vec<T> {
        let tag = self.next_collective_tag();
        assert_eq!(values.len(), self.size(), "alltoall length mismatch");
        let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
        for (dst, v) in values.into_iter().enumerate() {
            if dst == self.rank() {
                slots[dst] = Some(v);
            } else {
                self.send_internal(dst, tag, v);
            }
        }
        let (p, me) = (self.size(), self.rank());
        for src in (0..p).filter(|&s| s != me) {
            let received = self.recv_internal(src, tag);
            slots[src] = Some(received);
        }
        slots.into_iter().map(|v| v.expect("slot filled")).collect()
    }

    /// Inclusive scan (Kogge-Stone recursive doubling, `ceil(log2 P)`
    /// rounds): rank `r` obtains `op(x_0, op(x_1, ... x_r))` combined in
    /// rank order. This is the communication pattern whose cost is the
    /// `log P` term in the paper's `O(M^3 (N/P + log P))` bound.
    pub fn scan_inclusive<T: Payload + Clone>(&mut self, value: T, op: impl Fn(&T, &T) -> T) -> T {
        let tag = self.next_collective_tag();
        let p = self.size();
        let r = self.rank();
        let mut acc = value;
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < p {
            let round_tag = tag + round * (1 << 56);
            if r + dist < p {
                self.send_internal(r + dist, round_tag, acc.clone());
            }
            if r >= dist {
                let other: T = self.recv_internal(r - dist, round_tag);
                // `other` covers ranks [r - 2*dist + 1 .. r - dist], all
                // earlier than `acc`'s window: combine with it on the left.
                acc = op(&other, &acc);
            }
            dist <<= 1;
            round += 1;
        }
        acc
    }

    /// Exclusive scan: rank `r > 0` obtains the combination of ranks
    /// `0..r`; rank 0 obtains `None`. One shift round after an inclusive
    /// scan.
    pub fn scan_exclusive<T: Payload + Clone>(
        &mut self,
        value: T,
        op: impl Fn(&T, &T) -> T,
    ) -> Option<T> {
        let inclusive = self.scan_inclusive(value, op);
        let tag = self.next_collective_tag();
        let p = self.size();
        let r = self.rank();
        if r + 1 < p {
            self.send_internal(r + 1, tag, inclusive);
        }
        if r > 0 {
            Some(self.recv_internal(r - 1, tag))
        } else {
            None
        }
    }
}
