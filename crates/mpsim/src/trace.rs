//! Execution tracing: per-rank timelines in Chrome trace format.
//!
//! When enabled (see [`crate::runner::run_spmd_traced`]), every rank
//! records its computation spans, sends, and receive waits on the
//! *virtual* clock. The combined [`Trace`] serializes to the Chrome
//! trace-event JSON format — open `chrome://tracing` (or Perfetto) and
//! load the file to see the parallel schedule: local scan work, the
//! `log P` recursive-doubling rounds, and who waits for whom.

use std::fmt::Write as _;

/// One recorded event on a rank's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Local computation of `flops`, occupying `[start, start + dur]`.
    Compute {
        /// Virtual start time (seconds).
        start: f64,
        /// Duration (seconds).
        dur: f64,
        /// Flops performed.
        flops: u64,
    },
    /// A message send (instantaneous on the sender's timeline).
    Send {
        /// Virtual time of the send.
        at: f64,
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A receive: the rank blocked from `start` until the message's
    /// availability time `start + wait` (zero wait if it was already
    /// there).
    Recv {
        /// Virtual time the receive was posted.
        start: f64,
        /// Time spent waiting for the message.
        wait: f64,
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
}

/// All ranks' recorded events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// `events[rank]` is that rank's timeline in recording order.
    pub events: Vec<Vec<TraceEvent>>,
}

impl Trace {
    /// Total number of events across ranks.
    pub fn len(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes to Chrome trace-event JSON (the "JSON array" flavour).
    /// Times are microseconds of virtual time; `tid` is the rank.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        let emit = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&s);
        };
        for (rank, events) in self.events.iter().enumerate() {
            for ev in events {
                let json = match ev {
                    TraceEvent::Compute { start, dur, flops } => format!(
                        r#"  {{"name":"compute","ph":"X","ts":{:.3},"dur":{:.3},"pid":0,"tid":{rank},"args":{{"flops":{flops}}}}}"#,
                        start * 1e6,
                        dur * 1e6
                    ),
                    TraceEvent::Send {
                        at,
                        dst,
                        tag,
                        bytes,
                    } => format!(
                        r#"  {{"name":"send","ph":"i","ts":{:.3},"pid":0,"tid":{rank},"s":"t","args":{{"dst":{dst},"tag":{tag},"bytes":{bytes}}}}}"#,
                        at * 1e6
                    ),
                    TraceEvent::Recv {
                        start,
                        wait,
                        src,
                        tag,
                        bytes,
                    } => format!(
                        r#"  {{"name":"recv-wait","ph":"X","ts":{:.3},"dur":{:.3},"pid":0,"tid":{rank},"args":{{"src":{src},"tag":{tag},"bytes":{bytes}}}}}"#,
                        start * 1e6,
                        wait * 1e6
                    ),
                };
                emit(json, &mut out, &mut first);
            }
        }
        let _ = write!(out, "\n]\n");
        out
    }

    /// Writes the Chrome JSON to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_json())
    }

    /// Fraction of a rank's final virtual time spent blocked in receives
    /// (a load-imbalance / critical-path indicator).
    pub fn wait_fraction(&self, rank: usize) -> f64 {
        let events = &self.events[rank];
        let waited: f64 = events
            .iter()
            .map(|e| match e {
                TraceEvent::Recv { wait, .. } => *wait,
                _ => 0.0,
            })
            .sum();
        let end = events
            .iter()
            .map(|e| match e {
                TraceEvent::Compute { start, dur, .. } => start + dur,
                TraceEvent::Send { at, .. } => *at,
                TraceEvent::Recv { start, wait, .. } => start + wait,
            })
            .fold(0.0, f64::max);
        if end > 0.0 {
            waited / end
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                vec![
                    TraceEvent::Compute {
                        start: 0.0,
                        dur: 1.0,
                        flops: 100,
                    },
                    TraceEvent::Send {
                        at: 1.0,
                        dst: 1,
                        tag: 7,
                        bytes: 64,
                    },
                ],
                vec![TraceEvent::Recv {
                    start: 0.0,
                    wait: 1.5,
                    src: 0,
                    tag: 7,
                    bytes: 64,
                }],
            ],
        }
    }

    #[test]
    fn counting() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(Trace::default().is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let json = sample().to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""name":"compute""#));
        assert!(json.contains(r#""name":"send""#));
        assert!(json.contains(r#""name":"recv-wait""#));
        assert!(json.contains(r#""tid":1"#));
        // Valid-ish: same number of opening and closing braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Events separated by commas: 3 events -> 2 separators.
        assert_eq!(json.matches("},\n").count(), 2);
    }

    #[test]
    fn wait_fraction_computed() {
        let t = sample();
        assert_eq!(t.wait_fraction(0), 0.0);
        assert!((t.wait_fraction(1) - 1.0).abs() < 1e-12);
    }
}
