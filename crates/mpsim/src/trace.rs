//! Execution tracing: per-rank timelines in Chrome trace format.
//!
//! When enabled (see [`crate::runner::run_spmd_traced`]), every rank
//! records its computation spans, sends, and receive waits on the
//! *virtual* clock. The combined [`Trace`] serializes to the Chrome
//! trace-event JSON format — open `chrome://tracing` (or Perfetto) and
//! load the file to see the parallel schedule: local scan work, the
//! `log P` recursive-doubling rounds, and who waits for whom.

use std::fmt::Write as _;

/// One recorded event on a rank's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Local computation of `flops`, occupying `[start, start + dur]`.
    Compute {
        /// Virtual start time (seconds).
        start: f64,
        /// Duration (seconds).
        dur: f64,
        /// Flops performed.
        flops: u64,
    },
    /// A message send (instantaneous on the sender's timeline).
    Send {
        /// Virtual time of the send.
        at: f64,
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A receive: the rank blocked from `start` until the message's
    /// availability time `start + wait` (zero wait if it was already
    /// there).
    Recv {
        /// Virtual time the receive was posted.
        start: f64,
        /// Time spent waiting for the message.
        wait: f64,
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A nonblocking receive was posted (instantaneous, no clock cost).
    /// Completion is a separate [`TraceEvent::IrecvWait`]; keeping two
    /// events preserves per-rank timestamp monotonicity when compute
    /// spans land between post and wait.
    IrecvPost {
        /// Virtual time of the post.
        at: f64,
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
    },
    /// Completion of a nonblocking receive: blocked in `wait` from
    /// `start` to `start + wait`; the overlapped in-flight span ran from
    /// `posted` (`posted <= start`). The flow arrow from the matching
    /// send lands on this event, so overlapped messages render as arrows
    /// crossing the compute spans that hid them.
    IrecvWait {
        /// Virtual time the irecv was posted.
        posted: f64,
        /// Virtual time `wait` was called.
        start: f64,
        /// Time spent blocked in `wait`.
        wait: f64,
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
}

impl TraceEvent {
    /// The same event with every virtual timestamp advanced by `dt`
    /// seconds. Used by traced persistent worlds
    /// ([`crate::runner::SpmdWorld::new_traced`]) to place each job's
    /// events (whose clocks restart at zero) back-to-back on one merged
    /// timeline, keeping per-rank timestamps monotone across jobs.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> Self {
        let mut ev = self.clone();
        match &mut ev {
            Self::Compute { start, .. } | Self::Recv { start, .. } => *start += dt,
            Self::Send { at, .. } | Self::IrecvPost { at, .. } => *at += dt,
            Self::IrecvWait { posted, start, .. } => {
                *posted += dt;
                *start += dt;
            }
        }
        ev
    }
}

/// All ranks' recorded events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// `events[rank]` is that rank's timeline in recording order.
    pub events: Vec<Vec<TraceEvent>>,
}

impl Trace {
    /// Total number of events across ranks.
    pub fn len(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes to Chrome trace-event JSON (the "JSON array" flavour).
    /// Times are microseconds of virtual time; `tid` is the rank.
    ///
    /// The output leads with metadata events (`ph:"M"`) naming the
    /// process and each rank's thread, and pairs every Send with its
    /// matching Recv through flow events (`ph:"s"` on the sender,
    /// `ph:"f"` with `bp:"e"` on the receiver), so Perfetto draws
    /// message arrows across rank timelines instead of disconnected
    /// spans. Matching relies on the runtime's per-`(src, dst, tag)`
    /// FIFO delivery: the `n`-th send of a triple pairs with the `n`-th
    /// receive of the same triple.
    pub fn to_chrome_json(&self) -> String {
        use std::collections::HashMap;

        // Assign one flow id per (src, dst, tag, occurrence) in send order.
        let mut flow_ids: HashMap<(usize, usize, u64, u64), u64> = HashMap::new();
        {
            let mut send_seq: HashMap<(usize, usize, u64), u64> = HashMap::new();
            let mut next_id = 0u64;
            for (rank, events) in self.events.iter().enumerate() {
                for ev in events {
                    if let TraceEvent::Send { dst, tag, .. } = ev {
                        let seq = send_seq.entry((rank, *dst, *tag)).or_insert(0);
                        flow_ids.insert((rank, *dst, *tag, *seq), next_id);
                        *seq += 1;
                        next_id += 1;
                    }
                }
            }
        }

        let mut out = String::from("[\n");
        let _ = write!(
            out,
            r#"  {{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{{"name":"mpsim virtual clock"}}}}"#
        );
        for rank in 0..self.events.len() {
            let _ = write!(
                out,
                ",\n  {{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":{rank},\"args\":{{\"name\":\"rank {rank}\"}}}}"
            );
        }
        let mut recv_seq: HashMap<(usize, usize, u64), u64> = HashMap::new();
        // Emission traverses sends in the same order ids were assigned,
        // so the sender side is a plain counter.
        let mut next_send_id = 0u64;
        for (rank, events) in self.events.iter().enumerate() {
            for ev in events {
                match ev {
                    TraceEvent::Compute { start, dur, flops } => {
                        let _ = write!(
                            out,
                            ",\n  {{\"name\":\"compute\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{rank},\"args\":{{\"flops\":{flops}}}}}",
                            start * 1e6,
                            dur * 1e6
                        );
                    }
                    TraceEvent::Send {
                        at,
                        dst,
                        tag,
                        bytes,
                    } => {
                        let ts = at * 1e6;
                        let _ = write!(
                            out,
                            ",\n  {{\"name\":\"send\",\"ph\":\"i\",\"ts\":{ts:.3},\"pid\":0,\"tid\":{rank},\"s\":\"t\",\"args\":{{\"dst\":{dst},\"tag\":{tag},\"bytes\":{bytes}}}}}"
                        );
                        let id = next_send_id;
                        next_send_id += 1;
                        let _ = write!(
                            out,
                            ",\n  {{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{id},\"ts\":{ts:.3},\"pid\":0,\"tid\":{rank}}}"
                        );
                    }
                    TraceEvent::Recv {
                        start,
                        wait,
                        src,
                        tag,
                        bytes,
                    } => {
                        let ts = start * 1e6;
                        let end = (start + wait) * 1e6;
                        let _ = write!(
                            out,
                            ",\n  {{\"name\":\"recv-wait\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{rank},\"args\":{{\"src\":{src},\"tag\":{tag},\"bytes\":{bytes}}}}}",
                            wait * 1e6
                        );
                        let seq = recv_seq.entry((*src, rank, *tag)).or_insert(0);
                        if let Some(id) = flow_ids.get(&(*src, rank, *tag, *seq)) {
                            *seq += 1;
                            let _ = write!(
                                out,
                                ",\n  {{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{end:.3},\"pid\":0,\"tid\":{rank}}}"
                            );
                        }
                    }
                    TraceEvent::IrecvPost { at, src, tag } => {
                        let _ = write!(
                            out,
                            ",\n  {{\"name\":\"irecv-post\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":{rank},\"s\":\"t\",\"args\":{{\"src\":{src},\"tag\":{tag}}}}}",
                            at * 1e6
                        );
                    }
                    TraceEvent::IrecvWait {
                        posted,
                        start,
                        wait,
                        src,
                        tag,
                        bytes,
                    } => {
                        let ts = start * 1e6;
                        let end = (start + wait) * 1e6;
                        let _ = write!(
                            out,
                            ",\n  {{\"name\":\"irecv-wait\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{rank},\"args\":{{\"src\":{src},\"tag\":{tag},\"bytes\":{bytes},\"posted_us\":{:.3}}}}}",
                            wait * 1e6,
                            posted * 1e6
                        );
                        // Nonblocking receives consume the same per-triple
                        // FIFO sequence as blocking ones: the n-th receive
                        // of (src, dst, tag) — of either kind — pairs with
                        // the n-th send.
                        let seq = recv_seq.entry((*src, rank, *tag)).or_insert(0);
                        if let Some(id) = flow_ids.get(&(*src, rank, *tag, *seq)) {
                            *seq += 1;
                            let _ = write!(
                                out,
                                ",\n  {{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{end:.3},\"pid\":0,\"tid\":{rank}}}"
                            );
                        }
                    }
                };
            }
        }
        let _ = write!(out, "\n]\n");
        out
    }

    /// Writes the Chrome JSON to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_json())
    }

    /// Fraction of a rank's final virtual time spent blocked in receives
    /// (a load-imbalance / critical-path indicator).
    pub fn wait_fraction(&self, rank: usize) -> f64 {
        let events = &self.events[rank];
        let waited: f64 = events
            .iter()
            .map(|e| match e {
                TraceEvent::Recv { wait, .. } | TraceEvent::IrecvWait { wait, .. } => *wait,
                _ => 0.0,
            })
            .sum();
        let end = events
            .iter()
            .map(|e| match e {
                TraceEvent::Compute { start, dur, .. } => start + dur,
                TraceEvent::Send { at, .. } | TraceEvent::IrecvPost { at, .. } => *at,
                TraceEvent::Recv { start, wait, .. }
                | TraceEvent::IrecvWait { start, wait, .. } => start + wait,
            })
            .fold(0.0, f64::max);
        if end > 0.0 {
            waited / end
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                vec![
                    TraceEvent::Compute {
                        start: 0.0,
                        dur: 1.0,
                        flops: 100,
                    },
                    TraceEvent::Send {
                        at: 1.0,
                        dst: 1,
                        tag: 7,
                        bytes: 64,
                    },
                ],
                vec![TraceEvent::Recv {
                    start: 0.0,
                    wait: 1.5,
                    src: 0,
                    tag: 7,
                    bytes: 64,
                }],
            ],
        }
    }

    #[test]
    fn counting() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(Trace::default().is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let json = sample().to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""name":"compute""#));
        assert!(json.contains(r#""name":"send""#));
        assert!(json.contains(r#""name":"recv-wait""#));
        assert!(json.contains(r#""tid":1"#));
        // Round-trip through the in-tree parser and schema validator.
        let doc = bt_obs::json::parse(&json).expect("trace must be valid JSON");
        let summary = bt_obs::json::validate_chrome_trace(&doc).expect("trace must validate");
        // 3 events + process_name + 2 thread_name + 1 flow pair.
        assert_eq!(summary.events, 8);
        assert_eq!(summary.flow_starts, 1);
        assert_eq!(summary.flow_finishes, 1);
    }

    #[test]
    fn thread_metadata_names_ranks() {
        let json = sample().to_chrome_json();
        assert!(json.contains(r#""name":"process_name""#));
        assert!(json.contains(r#""args":{"name":"rank 0"}"#));
        assert!(json.contains(r#""args":{"name":"rank 1"}"#));
    }

    #[test]
    fn flow_events_pair_send_with_recv() {
        // Two sends on the same (src, dst, tag) triple: FIFO order must
        // give the first send id 0 and the second id 1, with both recvs
        // matched in the same order.
        let t = Trace {
            events: vec![
                vec![
                    TraceEvent::Send {
                        at: 1.0,
                        dst: 1,
                        tag: 3,
                        bytes: 8,
                    },
                    TraceEvent::Send {
                        at: 2.0,
                        dst: 1,
                        tag: 3,
                        bytes: 8,
                    },
                ],
                vec![
                    TraceEvent::Recv {
                        start: 0.0,
                        wait: 1.5,
                        src: 0,
                        tag: 3,
                        bytes: 8,
                    },
                    TraceEvent::Recv {
                        start: 1.5,
                        wait: 1.0,
                        src: 0,
                        tag: 3,
                        bytes: 8,
                    },
                ],
            ],
        };
        let json = t.to_chrome_json();
        let doc = bt_obs::json::parse(&json).expect("valid JSON");
        let summary = bt_obs::json::validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(summary.flow_starts, 2);
        assert_eq!(summary.flow_finishes, 2);
        // The validator checks every finish has a matching start id;
        // additionally pin the ids to FIFO order.
        assert!(json.contains(r#""ph":"s","id":0"#));
        assert!(json.contains(r#""ph":"s","id":1"#));
        assert!(json.contains(r#""ph":"f","bp":"e","id":0"#));
        assert!(json.contains(r#""ph":"f","bp":"e","id":1"#));
    }

    #[test]
    fn unmatched_recv_gets_no_flow_finish() {
        // A recv with no corresponding send (e.g. truncated trace) must
        // not emit a dangling flow finish.
        let t = Trace {
            events: vec![
                vec![],
                vec![TraceEvent::Recv {
                    start: 0.0,
                    wait: 0.5,
                    src: 0,
                    tag: 9,
                    bytes: 4,
                }],
            ],
        };
        let json = t.to_chrome_json();
        let doc = bt_obs::json::parse(&json).expect("valid JSON");
        let summary = bt_obs::json::validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(summary.flow_starts, 0);
        assert_eq!(summary.flow_finishes, 0);
    }

    #[test]
    fn wait_fraction_computed() {
        let t = sample();
        assert_eq!(t.wait_fraction(0), 0.0);
        assert!((t.wait_fraction(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn irecv_events_validate_and_pair_flows() {
        // Post at t=0, compute until t=2, wait completes at t=2 with no
        // blocking (message arrived at t=1.5 under the compute span).
        // Timestamps stay non-decreasing per tid and the flow finish
        // lands on the irecv-wait completion.
        let t = Trace {
            events: vec![
                vec![TraceEvent::Send {
                    at: 0.5,
                    dst: 1,
                    tag: 11,
                    bytes: 128,
                }],
                vec![
                    TraceEvent::IrecvPost {
                        at: 0.0,
                        src: 0,
                        tag: 11,
                    },
                    TraceEvent::Compute {
                        start: 0.0,
                        dur: 2.0,
                        flops: 500,
                    },
                    TraceEvent::IrecvWait {
                        posted: 0.0,
                        start: 2.0,
                        wait: 0.0,
                        src: 0,
                        tag: 11,
                        bytes: 128,
                    },
                ],
            ],
        };
        let json = t.to_chrome_json();
        assert!(json.contains(r#""name":"irecv-post""#));
        assert!(json.contains(r#""name":"irecv-wait""#));
        assert!(json.contains(r#""posted_us":0.000"#));
        let doc = bt_obs::json::parse(&json).expect("valid JSON");
        let summary = bt_obs::json::validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(summary.flow_starts, 1);
        assert_eq!(summary.flow_finishes, 1);
        // Fully-hidden wait: rank 1 never blocked.
        assert_eq!(t.wait_fraction(1), 0.0);
    }

    #[test]
    fn mixed_recv_and_irecv_share_fifo_sequence() {
        // Blocking recv then nonblocking wait on the same (src, tag):
        // ids must follow send order 0 then 1.
        let t = Trace {
            events: vec![
                vec![
                    TraceEvent::Send {
                        at: 0.0,
                        dst: 1,
                        tag: 5,
                        bytes: 8,
                    },
                    TraceEvent::Send {
                        at: 1.0,
                        dst: 1,
                        tag: 5,
                        bytes: 8,
                    },
                ],
                vec![
                    TraceEvent::Recv {
                        start: 0.0,
                        wait: 0.5,
                        src: 0,
                        tag: 5,
                        bytes: 8,
                    },
                    TraceEvent::IrecvPost {
                        at: 0.5,
                        src: 0,
                        tag: 5,
                    },
                    TraceEvent::IrecvWait {
                        posted: 0.5,
                        start: 1.0,
                        wait: 0.5,
                        src: 0,
                        tag: 5,
                        bytes: 8,
                    },
                ],
            ],
        };
        let json = t.to_chrome_json();
        let doc = bt_obs::json::parse(&json).expect("valid JSON");
        let summary = bt_obs::json::validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(summary.flow_starts, 2);
        assert_eq!(summary.flow_finishes, 2);
    }
}
