//! The [`Payload`] trait: what can travel through the runtime.
//!
//! A payload is any `Send + 'static` value that can report its wire size.
//! Sizes feed the communication-volume counters (Figure 6) and the
//! virtual-time model; they approximate what an MPI implementation would
//! put on the wire (raw element bytes, ignoring header overhead — headers
//! are modeled by the per-message `alpha` term instead).

use bt_dense::Mat;

/// A value that can be sent between ranks.
pub trait Payload: Send + 'static {
    /// Approximate number of bytes this value occupies on the wire.
    fn byte_size(&self) -> u64;
}

macro_rules! scalar_payload {
    ($($t:ty),*) => {
        $(impl Payload for $t {
            fn byte_size(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        })*
    };
}

scalar_payload!(f64, f32, u64, i64, u32, i32, usize, u8, bool);

impl Payload for () {
    fn byte_size(&self) -> u64 {
        // Empty payloads still occupy a (modeled) header's worth of wire;
        // we report 0 and let the alpha term account for the message.
        0
    }
}

impl<T> Payload for Vec<T>
where
    T: Send + 'static,
{
    fn byte_size(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>()) as u64
    }
}

impl Payload for Mat {
    fn byte_size(&self) -> u64 {
        (self.rows() * self.cols() * std::mem::size_of::<f64>()) as u64
    }
}

impl Payload for String {
    fn byte_size(&self) -> u64 {
        self.len() as u64
    }
}

impl<T: Payload> Payload for Option<T> {
    fn byte_size(&self) -> u64 {
        match self {
            Some(v) => 1 + v.byte_size(),
            None => 1,
        }
    }
}

impl<T: Payload> Payload for Box<T> {
    fn byte_size(&self) -> u64 {
        (**self).byte_size()
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<A: Payload, B: Payload, C: Payload, D: Payload> Payload for (A, B, C, D) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size() + self.3.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(1.0f64.byte_size(), 8);
        assert_eq!(1u32.byte_size(), 4);
        assert_eq!(true.byte_size(), 1);
        assert_eq!(().byte_size(), 0);
    }

    #[test]
    fn vec_size_counts_elements() {
        let v = vec![0.0f64; 10];
        assert_eq!(v.byte_size(), 80);
        let empty: Vec<f64> = vec![];
        assert_eq!(empty.byte_size(), 0);
    }

    #[test]
    fn mat_size_counts_entries() {
        let m = Mat::zeros(3, 5);
        assert_eq!(m.byte_size(), 15 * 8);
    }

    #[test]
    fn composite_sizes_add_up() {
        let pair = (Mat::zeros(2, 2), vec![0.0f64; 3]);
        assert_eq!(pair.byte_size(), 32 + 24);
        assert_eq!(Some(1.0f64).byte_size(), 9);
        assert_eq!((None as Option<f64>).byte_size(), 1);
        assert_eq!("abc".to_string().byte_size(), 3);
    }
}
