//! Host calibration for the virtual-time cost model.
//!
//! The [`CostModel`] presets are nominal cluster numbers. For modeled
//! times that track *this* host, [`calibrate`] measures:
//!
//! * the sustained flop rate of the dense GEMM kernel (the dominant
//!   kernel of every solver in the suite), and
//! * the per-message latency and per-byte time of the channel transport,
//!   via a rank-pair ping-pong at two message sizes.
//!
//! Calibration takes ~100 ms and is deterministic enough for the scaling
//! *shapes* the experiments report; it is not a rigorous benchmark.

use std::time::Instant;

use bt_dense::{gemm, gemm_flops, random::rng, random::uniform, Mat, Trans};

use crate::runner::run_spmd;
use bt_comm::{CommBackend, CostModel};

/// Measures the host's GEMM flop rate (flop/s) using `m x m` operands.
pub fn measure_flop_rate(m: usize) -> f64 {
    let a = uniform(m, m, &mut rng(1));
    let b = uniform(m, m, &mut rng(2));
    let mut c = Mat::zeros(m, m);
    // Warm up.
    gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
    let reps = (200_000_000 / gemm_flops(m, m, m).max(1)).clamp(3, 2000);
    let t0 = Instant::now();
    for _ in 0..reps {
        gemm(1.0, &a, Trans::No, &b, Trans::No, 1.0, &mut c);
    }
    let secs = t0.elapsed().as_secs_f64();
    // Keep the accumulation observable.
    std::hint::black_box(c.max_abs());
    (reps * gemm_flops(m, m, m)) as f64 / secs.max(1e-9)
}

/// Measures channel transport costs with a two-rank ping-pong: returns
/// `(latency_s, per_byte_s)` from small- and large-message round trips.
pub fn measure_transport() -> (f64, f64) {
    const SMALL: usize = 8; // one f64
    const LARGE: usize = 1 << 16; // 64 KiB of f64s

    let time_pingpong = |words: usize, iters: usize| -> f64 {
        let out = run_spmd(2, CostModel::zero(), move |comm| {
            let payload = vec![0.0f64; words];
            comm.barrier();
            let t0 = Instant::now();
            for _ in 0..iters {
                if comm.rank() == 0 {
                    comm.send(1, 1, payload.clone());
                    let _: Vec<f64> = comm.recv(1, 2);
                } else {
                    let got: Vec<f64> = comm.recv(0, 1);
                    comm.send(0, 2, got);
                }
            }
            t0.elapsed().as_secs_f64()
        });
        // One-way time per message.
        out.results[0] / (2 * iters) as f64
    };

    let t_small = time_pingpong(SMALL / 8, 400);
    let t_large = time_pingpong(LARGE / 8, 100);
    let latency = t_small.max(1e-9);
    let per_byte = ((t_large - t_small) / (LARGE - SMALL) as f64).max(0.0);
    (latency, per_byte)
}

/// Builds a [`CostModel`] calibrated to this host.
pub fn calibrate() -> CostModel {
    let (latency_s, per_byte_s) = measure_transport();
    CostModel {
        latency_s,
        per_byte_s,
        flop_rate: measure_flop_rate(64),
        threads_per_rank: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_rate_is_plausible() {
        let rate = measure_flop_rate(48);
        // Anything from an embedded core to a vector monster.
        assert!(rate > 1e7 && rate < 1e13, "measured {rate} flop/s");
    }

    #[test]
    fn transport_is_plausible() {
        let (latency, per_byte) = measure_transport();
        assert!(latency > 0.0 && latency < 1e-2, "latency {latency}");
        assert!((0.0..1e-5).contains(&per_byte), "per_byte {per_byte}");
    }

    #[test]
    fn calibrated_model_is_usable() {
        let m = calibrate();
        assert!(m.compute_time(1_000_000) > 0.0);
        assert!(m.msg_time(1024) > 0.0);
    }
}
