//! Rank-local communicator: point-to-point messaging, counters, clock.
//!
//! A [`Comm`] is handed to each rank of an SPMD program (see
//! [`crate::runner::run_spmd`]). It is the virtual-clock implementation
//! of [`CommBackend`]; semantics mirror a minimal MPI subset:
//!
//! * [`CommBackend::send`] is non-blocking (buffered, like `MPI_Isend` +
//!   eager protocol): it never waits for the receiver.
//! * [`CommBackend::recv`] blocks until a message with the requested
//!   `(source, tag)` arrives; messages with other tags from the same
//!   source are buffered and delivered to later matching `recv`s, so
//!   out-of-order tag matching behaves like MPI.
//! * Every send/recv updates the rank's [`RankStats`] and its virtual
//!   clock per the [`CostModel`].
//!
//! Misuse (type mismatch between `send` and `recv`, rank out of range,
//! receiving from a rank that panicked) panics with a descriptive
//! message — these are programming errors in the SPMD program, not
//! recoverable conditions.

use std::any::Any;
use std::collections::VecDeque;

use bt_comm::{CommBackend, CostModel, PanelBuf, Payload, RankStats, USER_TAG_LIMIT};
use crossbeam::channel::{Receiver, Sender};

use crate::trace::TraceEvent;

/// Depth of this rank's nonblocking-receive queue at each
/// [`CommBackend::irecv_panel_into`] post (no-op unless `BT_OBS` is on).
static OBS_INFLIGHT_DEPTH: bt_obs::Histogram =
    bt_obs::Histogram::new("bt_mpsim.comm.inflight_depth");

/// Handle for a posted [`CommBackend::isend_panel`]. Sends in this
/// runtime are buffered-eager (the payload is fully packed into a pooled
/// [`PanelBuf`] at post time), so the request is complete the moment it
/// exists; the handle keeps MPI-style call symmetry so SPMD programs
/// read like their MPI counterparts. Complete it with
/// [`CommBackend::send_wait`].
#[derive(Debug)]
#[must_use = "MPI-style requests should be completed with send_wait()"]
pub struct SendRequest {
    pub(crate) _private: (),
}

/// Handle for a posted [`CommBackend::irecv_panel_into`].
///
/// The request owns the destination buffer; [`CommBackend::recv_wait`]
/// blocks for the matching message, unpacks it into the buffer and
/// returns it. Requests posted on the same `(source, tag)` pair
/// complete in post order (the runtime delivers per-`(src, dst, tag)`
/// FIFO), which is what lets a software pipeline share one tag across
/// all tiles of a scan round.
///
/// Dropping a request without waiting panics — an outstanding receive
/// at rank exit is a lost message and almost certainly a pipeline bug.
#[derive(Debug)]
#[must_use = "an irecv must be completed with recv_wait() (dropping panics)"]
pub struct RecvRequest {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    /// Virtual time the receive was posted.
    pub(crate) posted_at: f64,
    /// Destination buffer (at either precision); `None` once waited.
    pub(crate) out: Option<bt_dense::AnyMat>,
}

impl RecvRequest {
    /// Virtual time at which this receive was posted.
    #[inline]
    pub fn posted_at(&self) -> f64 {
        self.posted_at
    }
}

impl Drop for RecvRequest {
    fn drop(&mut self) {
        if self.out.is_some() && !std::thread::panicking() {
            panic!(
                "RecvRequest (src {}, tag {}) dropped without recv_wait()",
                self.src, self.tag
            );
        }
    }
}

/// A message in flight.
pub(crate) struct Envelope {
    pub tag: u64,
    pub bytes: u64,
    /// Virtual time at which the payload is available at the receiver.
    pub avail_at: f64,
    pub payload: Box<dyn Any + Send>,
}

/// Per-rank communicator for an SPMD program (the simulator backend).
pub struct Comm {
    rank: usize,
    size: usize,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) receivers: Vec<Receiver<Envelope>>,
    /// Out-of-order buffer, per source rank.
    pending: Vec<VecDeque<Envelope>>,
    pub(crate) stats: RankStats,
    /// Virtual clock (seconds since program start).
    pub(crate) clock: f64,
    /// Per-destination virtual time until which this rank's outgoing
    /// link is occupied by earlier messages (the serialization term of
    /// the overlap model — see [`CostModel`]).
    link_busy: Vec<f64>,
    /// Outstanding nonblocking receives (posted, not yet waited).
    inflight_recvs: usize,
    /// Virtual seconds nonblocking receives spent in flight after their
    /// post (denominator of the overlap ratio).
    inflight_s: f64,
    /// Virtual seconds of that in-flight time hidden behind compute
    /// (numerator of the overlap ratio).
    overlap_s: f64,
    model: CostModel,
    /// Sequence number ensuring successive collectives use distinct tags.
    pub(crate) collective_seq: u64,
    /// Event recorder (None unless the world was launched traced).
    pub(crate) tracer: Option<Vec<TraceEvent>>,
    /// Whether this world records trace events: [`Comm::reset_for_reuse`]
    /// re-arms `tracer` from this, so every job on a traced persistent
    /// world gets a fresh event buffer instead of silently going dark.
    pub(crate) traced: bool,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Envelope>>,
        receivers: Vec<Receiver<Envelope>>,
        model: CostModel,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            receivers,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            stats: RankStats::default(),
            clock: 0.0,
            link_busy: vec![0.0; size],
            inflight_recvs: 0,
            inflight_s: 0.0,
            overlap_s: 0.0,
            model,
            collective_seq: 0,
            tracer: None,
            traced: false,
        }
    }

    /// This rank's id, `0 <= rank() < size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model this world runs under.
    #[inline]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// This rank's counters so far.
    #[inline]
    pub fn stats(&self) -> RankStats {
        self.stats
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn virtual_time(&self) -> f64 {
        self.clock
    }

    /// Number of posted-but-not-yet-waited nonblocking receives.
    #[inline]
    pub fn inflight_recvs(&self) -> usize {
        self.inflight_recvs
    }

    /// Virtual seconds nonblocking receives spent in flight between
    /// post and completion (the overlap ratio's denominator).
    #[inline]
    pub fn inflight_seconds(&self) -> f64 {
        self.inflight_s
    }

    /// Virtual seconds of in-flight communication hidden behind compute
    /// — in-flight time this rank did **not** spend blocked in `wait`.
    #[inline]
    pub fn overlap_seconds(&self) -> f64 {
        self.overlap_s
    }

    pub(crate) fn send_internal<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        assert!(
            dest < self.size,
            "send to rank {dest} in a world of size {}",
            self.size
        );
        let bytes = value.byte_size();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Send {
                at: self.clock,
                dst: dest,
                tag,
                bytes,
            });
        }
        // Link serialization: back-to-back messages to the same
        // destination queue behind each other's *transfer* (beta) term,
        // so splitting a panel into T tiles cannot buy wire-level
        // parallelism — the last tile of a tiled burst becomes available
        // no earlier than one monolithic message would have (the alpha
        // terms of consecutive tiles do overlap, as they would under
        // MPI's pipelined rendezvous).
        let inject = self.clock.max(self.link_busy[dest]);
        let env = Envelope {
            tag,
            bytes,
            avail_at: inject + self.model.msg_time(bytes),
            payload: Box::new(value),
        };
        self.link_busy[dest] = inject + self.model.per_byte_s * bytes as f64;
        self.senders[dest]
            .send(env)
            .unwrap_or_else(|_| panic!("rank {}: send to terminated rank {dest}", self.rank));
    }

    /// Shared completion path for [`CommBackend::recv_wait`].
    pub(crate) fn complete_irecv<E: bt_dense::Element>(
        &mut self,
        req: &RecvRequest,
        out: bt_dense::MatMut<'_, E>,
    ) {
        let start = self.clock;
        let env = self.wait_for(req.src, req.tag);
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.bytes;
        self.stats.nb_recvs += 1;
        self.clock = self.clock.max(env.avail_at);
        let blocked = self.clock - start;
        // Time the message spent in flight after the post; the part not
        // spent blocked here was hidden behind compute.
        let in_flight = (env.avail_at - req.posted_at).max(0.0);
        let hidden = (in_flight - blocked).max(0.0);
        self.inflight_s += in_flight;
        self.overlap_s += hidden;
        self.stats.overlap_ns += (hidden * 1e9).round() as u64;
        self.inflight_recvs = self.inflight_recvs.saturating_sub(1);
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::IrecvWait {
                posted: req.posted_at,
                start,
                wait: blocked,
                src: req.src,
                tag: req.tag,
                bytes: env.bytes,
            });
        }
        let buf: PanelBuf = *env.payload.downcast::<PanelBuf>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {} from rank {}: expected PanelBuf",
                self.rank, req.tag, req.src
            )
        });
        buf.unpack_into(out);
    }

    /// True when a message matching `(src, tag)` has physically arrived
    /// and is virtually available at the current clock. Drains the
    /// channel into the pending buffer; never blocks, never consumes.
    pub(crate) fn probe(&mut self, src: usize, tag: u64) -> bool {
        let avail = |e: &Envelope, now: f64| e.tag == tag && e.avail_at <= now;
        if self.pending[src].iter().any(|e| avail(e, self.clock)) {
            return true;
        }
        while let Ok(env) = self.receivers[src].try_recv() {
            let hit = avail(&env, self.clock);
            self.pending[src].push_back(env);
            if hit {
                return true;
            }
        }
        false
    }

    pub(crate) fn recv_internal<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        assert!(
            src < self.size,
            "recv from rank {src} in a world of size {}",
            self.size
        );
        let posted_at = self.clock;
        let env = self.wait_for(src, tag);
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.bytes;
        // Receiver cannot proceed before the message is (virtually) there.
        self.clock = self.clock.max(env.avail_at);
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Recv {
                start: posted_at,
                wait: self.clock - posted_at,
                src,
                tag,
                bytes: env.bytes,
            });
        }
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from rank {src}: expected {}",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    fn wait_for(&mut self, src: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.pending[src].iter().position(|e| e.tag == tag) {
            return self.pending[src].remove(pos).expect("position just found");
        }
        loop {
            let env = self.receivers[src].recv().unwrap_or_else(|_| {
                panic!(
                    "rank {}: rank {src} terminated before sending tag {tag}",
                    self.rank
                )
            });
            if env.tag == tag {
                return env;
            }
            self.pending[src].push_back(env);
        }
    }

    /// Resets per-run state (clock, counters, link occupancy, collective
    /// sequence) so a persistent rank can serve a fresh SPMD program with
    /// the same semantics as a newly built world. The message channels
    /// and the out-of-order buffer are kept: a well-formed program
    /// receives every message it is sent, so both are empty at the
    /// barrier between jobs (see [`crate::runner::SpmdWorld`]).
    pub(crate) fn reset_for_reuse(&mut self) {
        debug_assert!(
            self.pending.iter().all(VecDeque::is_empty),
            "rank {}: undelivered messages left over from the previous job",
            self.rank
        );
        self.stats = RankStats::default();
        self.clock = 0.0;
        self.link_busy.iter_mut().for_each(|t| *t = 0.0);
        self.inflight_recvs = 0;
        self.inflight_s = 0.0;
        self.overlap_s = 0.0;
        self.collective_seq = 0;
        // Traced worlds get a fresh event buffer per job; the runner has
        // already drained the previous job's events. Re-arming from the
        // `traced` flag (rather than clearing to None) is what keeps
        // back-to-back jobs on a persistent world traceable — and the
        // per-job buffer handoff is what lets the runner offset each
        // job's virtual times onto one merged timeline without colliding
        // send->recv flow pairings.
        self.tracer = self.traced.then(Vec::new);
    }
}

impl CommBackend for Comm {
    type SendReq = SendRequest;
    type RecvReq = RecvRequest;

    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn model(&self) -> CostModel {
        self.model
    }

    #[inline]
    fn stats(&self) -> RankStats {
        self.stats
    }

    #[inline]
    fn virtual_time(&self) -> f64 {
        self.clock
    }

    #[inline]
    fn inflight_seconds(&self) -> f64 {
        self.inflight_s
    }

    #[inline]
    fn overlap_seconds(&self) -> f64 {
        self.overlap_s
    }

    /// Records `flops` floating point operations of local computation,
    /// advancing the virtual clock accordingly.
    fn compute(&mut self, flops: u64) {
        self.stats.flops += flops;
        let dur = self.model.compute_time(flops);
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Compute {
                start: self.clock,
                dur,
                flops,
            });
        }
        self.clock += dur;
    }

    /// Advances the virtual clock by `seconds` without counting flops.
    fn advance_time(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot rewind the clock");
        self.clock += seconds;
    }

    fn send_raw<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        self.send_internal(dest, tag, value);
    }

    fn recv_raw<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        self.recv_internal(src, tag)
    }

    fn next_collective_tag(&mut self) -> u64 {
        let tag = USER_TAG_LIMIT + self.collective_seq;
        self.collective_seq += 1;
        tag
    }

    /// Nonblocking panel send. Identical wire behaviour to
    /// [`CommBackend::send_panel`] — sends are buffered-eager, so the
    /// payload is packed (into a pooled [`PanelBuf`]) and queued
    /// immediately and the returned request is already complete. The
    /// handle exists for MPI-call symmetry; the crossed-isend deadlock
    /// freedom MPI only *allows* is guaranteed here.
    fn isend_panel<E: bt_dense::Element>(
        &mut self,
        dest: usize,
        tag: u64,
        panel: bt_dense::MatRef<'_, E>,
    ) -> SendRequest {
        self.send_panel(dest, tag, panel);
        SendRequest { _private: () }
    }

    /// Posting does not advance the clock; the virtual-time charge at
    /// completion is `max(now, avail_at)`, so message transfer time that
    /// elapsed under compute issued between post and wait is charged as
    /// `max(compute, comm)` rather than `compute + comm`.
    fn irecv_panel_into<E: bt_dense::Element>(
        &mut self,
        src: usize,
        tag: u64,
        out: bt_dense::Mat<E>,
    ) -> RecvRequest {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        assert!(
            src < self.size,
            "irecv from rank {src} in a world of size {}",
            self.size
        );
        self.inflight_recvs += 1;
        if bt_obs::enabled() {
            OBS_INFLIGHT_DEPTH.record(self.inflight_recvs as u64);
        }
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::IrecvPost {
                at: self.clock,
                src,
                tag,
            });
        }
        RecvRequest {
            src,
            tag,
            posted_at: self.clock,
            out: Some(E::mat_into_any(out)),
        }
    }

    /// Always true: buffered sends complete at post time.
    fn send_test(&mut self, _req: &SendRequest) -> bool {
        true
    }

    /// Completes the (already complete) send.
    fn send_wait(&mut self, _req: SendRequest) {}

    /// True when the matching message has physically arrived **and** is
    /// virtually available (`avail_at <= virtual_time()`). Does not
    /// advance the clock or consume the message.
    ///
    /// Note the physical-arrival half makes a bare `while !test {}` spin
    /// nondeterministic (and, under virtual time, potentially endless:
    /// the clock only advances through compute/wait). Use it to
    /// opportunistically drain, not to synchronize.
    fn recv_test(&mut self, req: &RecvRequest) -> bool {
        self.probe(req.src, req.tag)
    }

    fn recv_wait<E: bt_dense::Element>(&mut self, mut req: RecvRequest) -> bt_dense::Mat<E> {
        let out = req.out.take().expect("request not yet waited");
        let mut out = E::mat_from_any(out).unwrap_or_else(|| {
            panic!(
                "rank {}: recv_wait precision mismatch: posted buffer is not {}",
                self.rank,
                E::NAME
            )
        });
        self.complete_irecv(&req, out.as_mut());
        out
    }
}
