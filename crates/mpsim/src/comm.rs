//! Rank-local communicator: point-to-point messaging, counters, clock.
//!
//! A [`Comm`] is handed to each rank of an SPMD program (see
//! [`crate::runner::run_spmd`]). Semantics mirror a minimal MPI subset:
//!
//! * [`Comm::send`] is non-blocking (buffered, like `MPI_Isend` + eager
//!   protocol): it never waits for the receiver.
//! * [`Comm::recv`] blocks until a message with the requested
//!   `(source, tag)` arrives; messages with other tags from the same
//!   source are buffered and delivered to later matching `recv`s, so
//!   out-of-order tag matching behaves like MPI.
//! * Every send/recv updates the rank's [`RankStats`] and its virtual
//!   clock per the [`CostModel`].
//!
//! Misuse (type mismatch between `send` and `recv`, rank out of range,
//! receiving from a rank that panicked) panics with a descriptive
//! message — these are programming errors in the SPMD program, not
//! recoverable conditions.

use std::any::Any;
use std::collections::VecDeque;

use crossbeam::channel::{Receiver, Sender};

use crate::model::CostModel;
use crate::payload::{PanelBuf, Payload};
use crate::stats::RankStats;
use crate::trace::TraceEvent;

/// First tag value reserved for collectives; user tags must be below this.
pub const USER_TAG_LIMIT: u64 = 1 << 48;

/// A message in flight.
pub(crate) struct Envelope {
    pub tag: u64,
    pub bytes: u64,
    /// Virtual time at which the payload is available at the receiver.
    pub avail_at: f64,
    pub payload: Box<dyn Any + Send>,
}

/// Per-rank communicator for an SPMD program.
pub struct Comm {
    rank: usize,
    size: usize,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) receivers: Vec<Receiver<Envelope>>,
    /// Out-of-order buffer, per source rank.
    pending: Vec<VecDeque<Envelope>>,
    pub(crate) stats: RankStats,
    /// Virtual clock (seconds since program start).
    pub(crate) clock: f64,
    model: CostModel,
    /// Sequence number ensuring successive collectives use distinct tags.
    pub(crate) collective_seq: u64,
    /// Event recorder (None unless the world was launched traced).
    pub(crate) tracer: Option<Vec<TraceEvent>>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Envelope>>,
        receivers: Vec<Receiver<Envelope>>,
        model: CostModel,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            receivers,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            stats: RankStats::default(),
            clock: 0.0,
            model,
            collective_seq: 0,
            tracer: None,
        }
    }

    /// This rank's id, `0 <= rank() < size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model this world runs under.
    #[inline]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// This rank's counters so far.
    #[inline]
    pub fn stats(&self) -> RankStats {
        self.stats
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn virtual_time(&self) -> f64 {
        self.clock
    }

    /// Sends `value` to `dest` with `tag`. Non-blocking.
    ///
    /// # Panics
    ///
    /// Panics if `dest >= size()`, if `tag >= USER_TAG_LIMIT` (reserved
    /// for collectives), or if the destination rank has terminated.
    pub fn send<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        self.send_internal(dest, tag, value);
    }

    pub(crate) fn send_internal<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        assert!(
            dest < self.size,
            "send to rank {dest} in a world of size {}",
            self.size
        );
        let bytes = value.byte_size();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Send {
                at: self.clock,
                dst: dest,
                tag,
                bytes,
            });
        }
        let env = Envelope {
            tag,
            bytes,
            avail_at: self.clock + self.model.msg_time(bytes),
            payload: Box::new(value),
        };
        self.senders[dest]
            .send(env)
            .unwrap_or_else(|_| panic!("rank {}: send to terminated rank {dest}", self.rank));
    }

    /// Sends a (possibly strided) matrix view to `dest` with `tag` as a
    /// pooled [`PanelBuf`] — no per-message allocation once the pool is
    /// warm. Pairs with [`Comm::recv_panel_into`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Comm::send`].
    pub fn send_panel(&mut self, dest: usize, tag: u64, panel: bt_dense::MatRef<'_>) {
        self.send(dest, tag, PanelBuf::pack(panel));
    }

    /// Receives a panel from `src` with matching `tag` directly into
    /// caller-provided scratch, returning the backing buffer to the
    /// [`PanelBuf`] pool. Pairs with [`Comm::send_panel`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Comm::recv`], plus a shape mismatch between
    /// the sent panel and `out`.
    pub fn recv_panel_into(&mut self, src: usize, tag: u64, out: bt_dense::MatMut<'_>) {
        self.recv::<PanelBuf>(src, tag).unpack_into(out);
    }

    /// Receives a `T` from `src` with matching `tag`, blocking until it
    /// arrives.
    ///
    /// # Panics
    ///
    /// Panics if `src >= size()`, if the matching message's payload is not
    /// a `T`, or if `src` terminated without sending a matching message.
    pub fn recv<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        assert!(
            src < self.size,
            "recv from rank {src} in a world of size {}",
            self.size
        );
        let posted_at = self.clock;
        let env = self.wait_for(src, tag);
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.bytes;
        // Receiver cannot proceed before the message is (virtually) there.
        self.clock = self.clock.max(env.avail_at);
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Recv {
                start: posted_at,
                wait: self.clock - posted_at,
                src,
                tag,
                bytes: env.bytes,
            });
        }
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from rank {src}: expected {}",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    fn wait_for(&mut self, src: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.pending[src].iter().position(|e| e.tag == tag) {
            return self.pending[src].remove(pos).expect("position just found");
        }
        loop {
            let env = self.receivers[src].recv().unwrap_or_else(|_| {
                panic!(
                    "rank {}: rank {src} terminated before sending tag {tag}",
                    self.rank
                )
            });
            if env.tag == tag {
                return env;
            }
            self.pending[src].push_back(env);
        }
    }

    /// Combined send-then-receive with the same peer (safe because sends
    /// never block). The standard building block of doubling exchanges.
    pub fn sendrecv<T: Payload>(&mut self, peer: usize, tag: u64, value: T) -> T {
        self.send(peer, tag, value);
        self.recv(peer, tag)
    }

    /// Records `flops` floating point operations of local computation,
    /// advancing the virtual clock accordingly.
    pub fn compute(&mut self, flops: u64) {
        self.stats.flops += flops;
        let dur = self.model.compute_time(flops);
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Compute {
                start: self.clock,
                dur,
                flops,
            });
        }
        self.clock += dur;
    }

    /// Advances the virtual clock by `seconds` without counting flops
    /// (for modeling non-flop work such as data movement).
    pub fn advance_time(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot rewind the clock");
        self.clock += seconds;
    }

    /// True on rank 0 — convenient for one-rank-only side effects.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }
}
