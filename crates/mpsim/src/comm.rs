//! Rank-local communicator: point-to-point messaging, counters, clock.
//!
//! A [`Comm`] is handed to each rank of an SPMD program (see
//! [`crate::runner::run_spmd`]). Semantics mirror a minimal MPI subset:
//!
//! * [`Comm::send`] is non-blocking (buffered, like `MPI_Isend` + eager
//!   protocol): it never waits for the receiver.
//! * [`Comm::recv`] blocks until a message with the requested
//!   `(source, tag)` arrives; messages with other tags from the same
//!   source are buffered and delivered to later matching `recv`s, so
//!   out-of-order tag matching behaves like MPI.
//! * Every send/recv updates the rank's [`RankStats`] and its virtual
//!   clock per the [`CostModel`].
//!
//! Misuse (type mismatch between `send` and `recv`, rank out of range,
//! receiving from a rank that panicked) panics with a descriptive
//! message — these are programming errors in the SPMD program, not
//! recoverable conditions.

use std::any::Any;
use std::collections::VecDeque;

use crossbeam::channel::{Receiver, Sender};

use crate::model::CostModel;
use crate::payload::{PanelBuf, Payload};
use crate::stats::RankStats;
use crate::trace::TraceEvent;

/// First tag value reserved for collectives; user tags must be below this.
pub const USER_TAG_LIMIT: u64 = 1 << 48;

/// Depth of this rank's nonblocking-receive queue at each
/// [`Comm::irecv_panel_into`] post (no-op unless `BT_OBS` is on).
static OBS_INFLIGHT_DEPTH: bt_obs::Histogram =
    bt_obs::Histogram::new("bt_mpsim.comm.inflight_depth");

/// Handle for a posted [`Comm::isend_panel`]. Sends in this runtime are
/// buffered-eager (the payload is fully packed into a pooled
/// [`PanelBuf`] at post time), so the request is complete the moment it
/// exists; the handle keeps MPI-style call symmetry so SPMD programs
/// read like their MPI counterparts.
#[derive(Debug)]
#[must_use = "MPI-style requests should be completed with wait()"]
pub struct SendRequest {
    _private: (),
}

impl SendRequest {
    /// Always true: buffered sends complete at post time.
    pub fn test(&self, _comm: &mut Comm) -> bool {
        true
    }

    /// Completes the (already complete) send.
    pub fn wait(self, _comm: &mut Comm) {}
}

/// Handle for a posted [`Comm::irecv_panel_into`].
///
/// The request owns the destination buffer; [`RecvRequest::wait`]
/// blocks for the matching message, unpacks it into the buffer and
/// returns it. Requests posted on the same `(source, tag)` pair
/// complete in post order (the runtime delivers per-`(src, dst, tag)`
/// FIFO), which is what lets a software pipeline share one tag across
/// all tiles of a scan round.
///
/// Dropping a request without waiting panics — an outstanding receive
/// at rank exit is a lost message and almost certainly a pipeline bug.
#[derive(Debug)]
#[must_use = "an irecv must be completed with wait() (dropping panics)"]
pub struct RecvRequest {
    src: usize,
    tag: u64,
    /// Virtual time the receive was posted.
    posted_at: f64,
    /// Destination buffer; `None` once waited.
    out: Option<bt_dense::Mat>,
}

impl RecvRequest {
    /// Virtual time at which this receive was posted.
    #[inline]
    pub fn posted_at(&self) -> f64 {
        self.posted_at
    }

    /// True when the matching message has physically arrived **and** is
    /// virtually available (`avail_at <= comm.virtual_time()`). Does not
    /// advance the clock or consume the message.
    ///
    /// Note the physical-arrival half makes a bare `while !test {}` spin
    /// nondeterministic (and, under virtual time, potentially endless:
    /// the clock only advances through compute/wait). Use it to
    /// opportunistically drain, not to synchronize — that is
    /// [`RecvRequest::wait`]'s job.
    pub fn test(&self, comm: &mut Comm) -> bool {
        comm.probe(self.src, self.tag)
    }

    /// Completes the receive: blocks until the matching message arrives,
    /// charges the virtual clock `max(now, avail_at)` (communication
    /// time that elapsed behind compute since the post is *not* re-paid
    /// — this is the overlap accounting), unpacks the panel into the
    /// owned buffer and returns it.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Comm::recv`], plus a shape
    /// mismatch between the sent panel and the posted buffer.
    pub fn wait(mut self, comm: &mut Comm) -> bt_dense::Mat {
        let mut out = self.out.take().expect("request not yet waited");
        comm.complete_irecv(&self, out.as_mut());
        out
    }
}

impl Drop for RecvRequest {
    fn drop(&mut self) {
        if self.out.is_some() && !std::thread::panicking() {
            panic!(
                "RecvRequest (src {}, tag {}) dropped without wait()",
                self.src, self.tag
            );
        }
    }
}

/// A message in flight.
pub(crate) struct Envelope {
    pub tag: u64,
    pub bytes: u64,
    /// Virtual time at which the payload is available at the receiver.
    pub avail_at: f64,
    pub payload: Box<dyn Any + Send>,
}

/// Per-rank communicator for an SPMD program.
pub struct Comm {
    rank: usize,
    size: usize,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) receivers: Vec<Receiver<Envelope>>,
    /// Out-of-order buffer, per source rank.
    pending: Vec<VecDeque<Envelope>>,
    pub(crate) stats: RankStats,
    /// Virtual clock (seconds since program start).
    pub(crate) clock: f64,
    /// Per-destination virtual time until which this rank's outgoing
    /// link is occupied by earlier messages (the serialization term of
    /// the overlap model — see [`CostModel`]).
    link_busy: Vec<f64>,
    /// Outstanding nonblocking receives (posted, not yet waited).
    inflight_recvs: usize,
    /// Virtual seconds nonblocking receives spent in flight after their
    /// post (denominator of the overlap ratio).
    inflight_s: f64,
    /// Virtual seconds of that in-flight time hidden behind compute
    /// (numerator of the overlap ratio).
    overlap_s: f64,
    model: CostModel,
    /// Sequence number ensuring successive collectives use distinct tags.
    pub(crate) collective_seq: u64,
    /// Event recorder (None unless the world was launched traced).
    pub(crate) tracer: Option<Vec<TraceEvent>>,
    /// Whether this world records trace events: [`Comm::reset_for_reuse`]
    /// re-arms `tracer` from this, so every job on a traced persistent
    /// world gets a fresh event buffer instead of silently going dark.
    pub(crate) traced: bool,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Envelope>>,
        receivers: Vec<Receiver<Envelope>>,
        model: CostModel,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            receivers,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            stats: RankStats::default(),
            clock: 0.0,
            link_busy: vec![0.0; size],
            inflight_recvs: 0,
            inflight_s: 0.0,
            overlap_s: 0.0,
            model,
            collective_seq: 0,
            tracer: None,
            traced: false,
        }
    }

    /// This rank's id, `0 <= rank() < size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model this world runs under.
    #[inline]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// This rank's counters so far.
    #[inline]
    pub fn stats(&self) -> RankStats {
        self.stats
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn virtual_time(&self) -> f64 {
        self.clock
    }

    /// Sends `value` to `dest` with `tag`. Non-blocking.
    ///
    /// # Panics
    ///
    /// Panics if `dest >= size()`, if `tag >= USER_TAG_LIMIT` (reserved
    /// for collectives), or if the destination rank has terminated.
    pub fn send<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        self.send_internal(dest, tag, value);
    }

    pub(crate) fn send_internal<T: Payload>(&mut self, dest: usize, tag: u64, value: T) {
        assert!(
            dest < self.size,
            "send to rank {dest} in a world of size {}",
            self.size
        );
        let bytes = value.byte_size();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Send {
                at: self.clock,
                dst: dest,
                tag,
                bytes,
            });
        }
        // Link serialization: back-to-back messages to the same
        // destination queue behind each other's *transfer* (beta) term,
        // so splitting a panel into T tiles cannot buy wire-level
        // parallelism — the last tile of a tiled burst becomes available
        // no earlier than one monolithic message would have (the alpha
        // terms of consecutive tiles do overlap, as they would under
        // MPI's pipelined rendezvous).
        let inject = self.clock.max(self.link_busy[dest]);
        let env = Envelope {
            tag,
            bytes,
            avail_at: inject + self.model.msg_time(bytes),
            payload: Box::new(value),
        };
        self.link_busy[dest] = inject + self.model.per_byte_s * bytes as f64;
        self.senders[dest]
            .send(env)
            .unwrap_or_else(|_| panic!("rank {}: send to terminated rank {dest}", self.rank));
    }

    /// Sends a (possibly strided) matrix view to `dest` with `tag` as a
    /// pooled [`PanelBuf`] — no per-message allocation once the pool is
    /// warm. Pairs with [`Comm::recv_panel_into`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Comm::send`].
    pub fn send_panel(&mut self, dest: usize, tag: u64, panel: bt_dense::MatRef<'_>) {
        self.send(dest, tag, PanelBuf::pack(panel));
    }

    /// Receives a panel from `src` with matching `tag` directly into
    /// caller-provided scratch, returning the backing buffer to the
    /// [`PanelBuf`] pool. Pairs with [`Comm::send_panel`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Comm::recv`], plus a shape mismatch between
    /// the sent panel and `out`.
    pub fn recv_panel_into(&mut self, src: usize, tag: u64, out: bt_dense::MatMut<'_>) {
        self.recv::<PanelBuf>(src, tag).unpack_into(out);
    }

    /// Nonblocking panel send. Identical wire behaviour to
    /// [`Comm::send_panel`] — sends are buffered-eager, so the payload
    /// is packed (into a pooled [`PanelBuf`]) and queued immediately and
    /// the returned request is already complete. The handle exists for
    /// MPI-call symmetry; the crossed-isend deadlock freedom MPI only
    /// *allows* is guaranteed here.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Comm::send`].
    pub fn isend_panel(
        &mut self,
        dest: usize,
        tag: u64,
        panel: bt_dense::MatRef<'_>,
    ) -> SendRequest {
        self.send_panel(dest, tag, panel);
        SendRequest { _private: () }
    }

    /// Posts a nonblocking receive of a panel from `src` with `tag`,
    /// taking ownership of the destination buffer `out` (typically a
    /// [`bt_dense::Workspace`] checkout). Completion —
    /// [`RecvRequest::wait`] — blocks for the message, unpacks it into
    /// the buffer and hands the buffer back.
    ///
    /// Posting does not advance the clock; the virtual-time charge at
    /// completion is `max(now, avail_at)`, so message transfer time that
    /// elapsed under compute issued between post and wait is charged as
    /// `max(compute, comm)` rather than `compute + comm`. Requests on
    /// the same `(src, tag)` complete in post order.
    ///
    /// # Panics
    ///
    /// Panics if `src >= size()` or `tag` is in the collective-reserved
    /// range.
    pub fn irecv_panel_into(&mut self, src: usize, tag: u64, out: bt_dense::Mat) -> RecvRequest {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        assert!(
            src < self.size,
            "irecv from rank {src} in a world of size {}",
            self.size
        );
        self.inflight_recvs += 1;
        if bt_obs::enabled() {
            OBS_INFLIGHT_DEPTH.record(self.inflight_recvs as u64);
        }
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::IrecvPost {
                at: self.clock,
                src,
                tag,
            });
        }
        RecvRequest {
            src,
            tag,
            posted_at: self.clock,
            out: Some(out),
        }
    }

    /// Number of posted-but-not-yet-waited nonblocking receives.
    #[inline]
    pub fn inflight_recvs(&self) -> usize {
        self.inflight_recvs
    }

    /// Virtual seconds nonblocking receives spent in flight between
    /// post and completion (the overlap ratio's denominator).
    #[inline]
    pub fn inflight_seconds(&self) -> f64 {
        self.inflight_s
    }

    /// Virtual seconds of in-flight communication hidden behind compute
    /// — in-flight time this rank did **not** spend blocked in `wait`.
    /// `overlap_seconds() / inflight_seconds()` is the run's overlap
    /// ratio: 0 for a post-then-immediately-wait pattern, approaching 1
    /// for a perfectly hidden pipeline.
    #[inline]
    pub fn overlap_seconds(&self) -> f64 {
        self.overlap_s
    }

    /// Shared completion path for [`RecvRequest::wait`].
    fn complete_irecv(&mut self, req: &RecvRequest, out: bt_dense::MatMut<'_>) {
        let start = self.clock;
        let env = self.wait_for(req.src, req.tag);
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.bytes;
        self.stats.nb_recvs += 1;
        self.clock = self.clock.max(env.avail_at);
        let blocked = self.clock - start;
        // Time the message spent in flight after the post; the part not
        // spent blocked here was hidden behind compute.
        let in_flight = (env.avail_at - req.posted_at).max(0.0);
        let hidden = (in_flight - blocked).max(0.0);
        self.inflight_s += in_flight;
        self.overlap_s += hidden;
        self.stats.overlap_ns += (hidden * 1e9).round() as u64;
        self.inflight_recvs = self.inflight_recvs.saturating_sub(1);
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::IrecvWait {
                posted: req.posted_at,
                start,
                wait: blocked,
                src: req.src,
                tag: req.tag,
                bytes: env.bytes,
            });
        }
        let buf: PanelBuf = *env.payload.downcast::<PanelBuf>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {} from rank {}: expected PanelBuf",
                self.rank, req.tag, req.src
            )
        });
        buf.unpack_into(out);
    }

    /// True when a message matching `(src, tag)` has physically arrived
    /// and is virtually available at the current clock. Drains the
    /// channel into the pending buffer; never blocks, never consumes.
    pub(crate) fn probe(&mut self, src: usize, tag: u64) -> bool {
        let avail = |e: &Envelope, now: f64| e.tag == tag && e.avail_at <= now;
        if self.pending[src].iter().any(|e| avail(e, self.clock)) {
            return true;
        }
        while let Ok(env) = self.receivers[src].try_recv() {
            let hit = avail(&env, self.clock);
            self.pending[src].push_back(env);
            if hit {
                return true;
            }
        }
        false
    }

    /// MPI_Sendrecv-style paired exchange of panels under one tag:
    /// optionally sends to `send_to` and optionally receives from
    /// `recv_from`, in the send-first order that is unconditionally
    /// deadlock-free under this runtime's buffered sends. The building
    /// block of doubling rounds and halo exchanges, replacing
    /// hand-rolled rank-parity orderings.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Comm::send_panel`] / [`Comm::recv_panel_into`].
    pub fn exchange_panel(
        &mut self,
        tag: u64,
        send_to: Option<(usize, bt_dense::MatRef<'_>)>,
        recv_from: Option<(usize, bt_dense::MatMut<'_>)>,
    ) {
        if let Some((dst, panel)) = send_to {
            self.send_panel(dst, tag, panel);
        }
        if let Some((src, out)) = recv_from {
            self.recv_panel_into(src, tag, out);
        }
    }

    /// Receives a `T` from `src` with matching `tag`, blocking until it
    /// arrives.
    ///
    /// # Panics
    ///
    /// Panics if `src >= size()`, if the matching message's payload is not
    /// a `T`, or if `src` terminated without sending a matching message.
    pub fn recv<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} is reserved for collectives"
        );
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        assert!(
            src < self.size,
            "recv from rank {src} in a world of size {}",
            self.size
        );
        let posted_at = self.clock;
        let env = self.wait_for(src, tag);
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.bytes;
        // Receiver cannot proceed before the message is (virtually) there.
        self.clock = self.clock.max(env.avail_at);
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Recv {
                start: posted_at,
                wait: self.clock - posted_at,
                src,
                tag,
                bytes: env.bytes,
            });
        }
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from rank {src}: expected {}",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    fn wait_for(&mut self, src: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.pending[src].iter().position(|e| e.tag == tag) {
            return self.pending[src].remove(pos).expect("position just found");
        }
        loop {
            let env = self.receivers[src].recv().unwrap_or_else(|_| {
                panic!(
                    "rank {}: rank {src} terminated before sending tag {tag}",
                    self.rank
                )
            });
            if env.tag == tag {
                return env;
            }
            self.pending[src].push_back(env);
        }
    }

    /// Combined send-then-receive with the same peer (safe because sends
    /// never block). The standard building block of doubling exchanges.
    pub fn sendrecv<T: Payload>(&mut self, peer: usize, tag: u64, value: T) -> T {
        self.send(peer, tag, value);
        self.recv(peer, tag)
    }

    /// Records `flops` floating point operations of local computation,
    /// advancing the virtual clock accordingly.
    pub fn compute(&mut self, flops: u64) {
        self.stats.flops += flops;
        let dur = self.model.compute_time(flops);
        if let Some(tr) = &mut self.tracer {
            tr.push(TraceEvent::Compute {
                start: self.clock,
                dur,
                flops,
            });
        }
        self.clock += dur;
    }

    /// Advances the virtual clock by `seconds` without counting flops
    /// (for modeling non-flop work such as data movement).
    pub fn advance_time(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot rewind the clock");
        self.clock += seconds;
    }

    /// True on rank 0 — convenient for one-rank-only side effects.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Resets per-run state (clock, counters, link occupancy, collective
    /// sequence) so a persistent rank can serve a fresh SPMD program with
    /// the same semantics as a newly built world. The message channels
    /// and the out-of-order buffer are kept: a well-formed program
    /// receives every message it is sent, so both are empty at the
    /// barrier between jobs (see [`crate::runner::SpmdWorld`]).
    pub(crate) fn reset_for_reuse(&mut self) {
        debug_assert!(
            self.pending.iter().all(VecDeque::is_empty),
            "rank {}: undelivered messages left over from the previous job",
            self.rank
        );
        self.stats = RankStats::default();
        self.clock = 0.0;
        self.link_busy.iter_mut().for_each(|t| *t = 0.0);
        self.inflight_recvs = 0;
        self.inflight_s = 0.0;
        self.overlap_s = 0.0;
        self.collective_seq = 0;
        // Traced worlds get a fresh event buffer per job; the runner has
        // already drained the previous job's events. Re-arming from the
        // `traced` flag (rather than clearing to None) is what keeps
        // back-to-back jobs on a persistent world traceable — and the
        // per-job buffer handoff is what lets the runner offset each
        // job's virtual times onto one merged timeline without colliding
        // send->recv flow pairings.
        self.tracer = self.traced.then(Vec::new);
    }
}
