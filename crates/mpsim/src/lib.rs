//! # bt-mpsim: SPMD message-passing runtime (the simulator backend)
//!
//! The MPI substitute for this reproduction (DESIGN.md §3): the paper ran
//! on a Cray XK7 under MPI; this crate provides the same programming model
//! — rank-based SPMD with point-to-point messages and collectives — with
//! ranks mapped to OS threads and messages to typed channels. It is the
//! virtual-clock implementation of the backend-neutral
//! [`bt_comm::CommBackend`] trait; the shared-memory `bt-shm` crate is
//! the wall-clock one.
//!
//! Three things make it a *measurement* substrate rather than a toy:
//!
//! 1. **Counters** ([`RankStats`]/[`WorldStats`]): every payload byte,
//!    message and reported flop is counted per rank, so analytic
//!    communication-volume and work bounds can be validated exactly.
//! 2. **Virtual time** ([`CostModel`]): each rank carries a clock advanced
//!    by an alpha-beta communication model and a flop-rate computation
//!    model; the modeled parallel runtime (max final clock) reproduces
//!    scaling behaviour for rank counts far beyond the host's cores.
//! 3. **Real parallelism**: ranks are genuine threads, so wall-clock
//!    timings on a multicore host are also meaningful.
//!
//! ## Example: recursive-doubling scan
//!
//! ```
//! use bt_mpsim::{run_spmd, CommBackend, CostModel};
//!
//! // Inclusive prefix sum across 8 ranks in ceil(log2 8) = 3 rounds.
//! let out = run_spmd(8, CostModel::default(), |comm| {
//!     comm.scan_inclusive(comm.rank() as u64 + 1, |a, b| a + b)
//! });
//! assert_eq!(out.results, vec![1, 3, 6, 10, 15, 21, 28, 36]);
//! assert!(out.stats.is_balanced());
//! ```

pub mod calibrate;
pub mod comm;
pub mod runner;
pub mod trace;

pub use bt_comm::{
    panel_pool_drain, CommBackend, CostModel, PanelBuf, Payload, PersistentWorld, RankStats,
    SpmdBackend, SpmdOutput, WorldStats, MAX_RANKS, USER_TAG_LIMIT,
};
pub use calibrate::calibrate;
pub use comm::{Comm, RecvRequest, SendRequest};
pub use runner::{run_spmd, run_spmd_default, run_spmd_traced, SimBackend, SpmdWorld};
pub use trace::{Trace, TraceEvent};
