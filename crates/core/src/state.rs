//! Rank-level solver state: the setup/solve split at the heart of the
//! accelerated recursive doubling algorithm.
//!
//! [`RankSystem`] holds a rank's contiguous slice of the block
//! tridiagonal matrix. [`ArdRankFactors::setup`] runs all
//! matrix-dependent work — Phase 1 (block diagonals via the companion
//! scan) plus the matrix components of the Phase 2/3 affine scans — in
//! `O(M^3 (N/P + log P))` time. Each subsequent
//! [`ArdRankFactors::solve_replay`] handles an `R`-column right-hand-side
//! batch in `O(M^2 R (N/P + log P))` time, exchanging only `M x R`
//! panels.
//!
//! Classic recursive doubling is the same machinery without reuse:
//! [`rd_solve_rank`] rebuilds the factors and runs the fresh-scan solve
//! for every call, which is what makes it `O(R)` slower over `R`
//! right-hand sides.

use std::cell::RefCell;

use bt_blocktri::{BlockRow, BlockRowSource, FactorError, RowPartition};
use bt_comm::CommBackend;
use bt_dense::{
    gemm, gemm_flops, lu_flops, lu_solve_flops, Element, LuFactors, Mat, Trans, Workspace,
    WorkspaceStats,
};

use crate::companion::{CompanionProduct, CompanionState, CompanionW};
use crate::pairs::AffinePair;
use crate::scans::{
    affine_exscan_fresh, affine_exscan_replay_tiled, auto_rhs_tile_for, companion_exscan,
    Direction, ScanTrace,
};

/// Tag bases for the point-to-point scans (each scan uses `base + step`).
mod tags {
    pub const PHASE1: u64 = 0;
    pub const FWD_SETUP: u64 = 64;
    pub const BWD_SETUP: u64 = 128;
    pub const FWD_SOLVE: u64 = 192;
    pub const BWD_SOLVE: u64 = 256;
}

/// How a rank recovers its boundary block diagonal `D_{lo-1}` in Phase 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryMode {
    /// The paper's algorithm: a cross-rank recursive-doubling scan of
    /// companion-matrix products, exact in `O(M^3 log P)` communication.
    /// Accuracy depends on the conditioning of the accumulated products,
    /// which grows with the per-row spectral spread of the transfer
    /// matrices (DESIGN.md §7).
    ExactScan,
    /// Windowed recovery (extension, not in the paper): run the plain
    /// block-LU diagonal recurrence over the `w` rows preceding `lo`,
    /// warm-started from `D = B_{lo-w}`. For contracting systems
    /// (diagonally dominant / SPD), the warm-start error decays
    /// geometrically, so a window of a few dozen rows reproduces
    /// `D_{lo-1}` to machine precision — with **zero** Phase 1
    /// communication and `O(M^3 (N/P + w))` work. The rank system must be
    /// built with [`RankSystem::from_source_windowed`].
    Windowed(usize),
}

/// A rank's slice of the global system.
#[derive(Debug, Clone)]
pub struct RankSystem {
    /// Global block-row count.
    pub n: usize,
    /// Block order.
    pub m: usize,
    /// Owned global row range start (inclusive).
    pub lo: usize,
    /// Owned global row range end (exclusive).
    pub hi: usize,
    /// Owned rows, `rows[k]` = global row `lo + k`.
    pub rows: Vec<BlockRow>,
    /// `C_{lo-1}` — the left neighbour's superdiagonal block (zeros when
    /// `lo == 0`), needed by the boundary-diagonal extraction and the
    /// first local `D` update.
    pub c_prev: Mat,
    /// Global row 0, seeding the companion state
    /// `S_0 = [C_0^{-1} B_0; I]` on every rank.
    pub row0: BlockRow,
    /// Rows `lo - w .. lo` for [`BoundaryMode::Windowed`] (empty unless
    /// built by [`RankSystem::from_source_windowed`]).
    pub window_rows: Vec<BlockRow>,
}

impl RankSystem {
    /// Materializes rank `rank`-of-`p`'s slice of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `n < p` (every rank must own at least one block row) or
    /// `rank >= p`.
    pub fn from_source(src: &dyn BlockRowSource, p: usize, rank: usize) -> Self {
        let n = src.n();
        let m = src.m();
        assert!(
            n >= p,
            "need at least one block row per rank (N={n}, P={p})"
        );
        let part = RowPartition::new(n, p);
        let range = part.range(rank);
        let (lo, hi) = (range.start, range.end);
        let rows: Vec<BlockRow> = (lo..hi).map(|i| src.row(i)).collect();
        let c_prev = if lo == 0 {
            Mat::zeros(m, m)
        } else {
            src.row(lo - 1).c.clone()
        };
        let row0 = if lo == 0 { rows[0].clone() } else { src.row(0) };
        Self {
            n,
            m,
            lo,
            hi,
            rows,
            c_prev,
            row0,
            window_rows: Vec::new(),
        }
    }

    /// Like [`RankSystem::from_source`], additionally materializing the
    /// `min(w, lo)` rows preceding the owned range for
    /// [`BoundaryMode::Windowed`] boundary recovery.
    pub fn from_source_windowed(src: &dyn BlockRowSource, p: usize, rank: usize, w: usize) -> Self {
        let mut sys = Self::from_source(src, p, rank);
        let w = w.min(sys.lo);
        sys.window_rows = (sys.lo - w..sys.lo).map(|i| src.row(i)).collect();
        sys
    }

    /// Number of owned rows.
    pub fn local_len(&self) -> usize {
        self.hi - self.lo
    }

    /// The superdiagonal block of global row `i - 1`, for owned `i`.
    fn c_before(&self, i: usize) -> &Mat {
        debug_assert!(i >= self.lo && i < self.hi);
        if i == self.lo {
            &self.c_prev
        } else {
            &self.rows[i - self.lo - 1].c
        }
    }
}

/// Matrix-dependent state produced by setup and reused across solves.
///
/// Generic over the factor element type `E` (default `f64`): the source
/// system stays `f64`, Phase 1's companion scan and boundary extraction
/// run in `f64` (they set the accuracy envelope), and the per-row
/// factors, prefixes and recorded scan traces are stored — and every
/// replay runs — at `E`. `ArdRankFactors<f32>` is the mixed-precision
/// factorization underneath [`crate::mixed`]: half the factor bytes,
/// half the wire bytes per scan panel, and the wide-SIMD `f32` kernels,
/// with accuracy restored by `f64` iterative refinement.
#[derive(Debug)]
pub struct ArdRankFactors<E: Element = f64> {
    /// Owned range and sizes (copied from the [`RankSystem`]).
    pub n: usize,
    /// Block order.
    pub m: usize,
    /// First owned global row.
    pub lo: usize,
    /// One past the last owned global row.
    pub hi: usize,
    /// LU of `D_i` for each owned row.
    d_lu: Vec<LuFactors<E>>,
    /// `F_i = -A_i D_{i-1}^{-1}` for each owned row (`F_0 = 0`).
    f: Vec<Mat<E>>,
    /// `G_i = -D_i^{-1} C_i` for each owned row (`G_{N-1} = 0`).
    g: Vec<Mat<E>>,
    /// Forward local prefix matrices `F_i F_{i-1} ... F_lo`.
    fwd_prefix: Vec<Mat<E>>,
    /// Backward local prefix matrices `G_i G_{i+1} ... G_{hi-1}`.
    bwd_prefix: Vec<Mat<E>>,
    /// Recorded cross-rank scan matrices (empty when built for classic
    /// recursive doubling, which re-scans fresh every solve).
    fwd_trace: ScanTrace<E>,
    /// Backward counterpart of `fwd_trace`.
    bwd_trace: ScanTrace<E>,
    /// Whether traces were recorded (accelerated mode).
    recorded: bool,
    /// Worst boundary-extraction 1-norm condition estimate across ranks
    /// (1.0 for windowed mode / single-rank worlds).
    boundary_cond: f64,
    /// Rank-owned buffer pool: every per-step temporary of the solve
    /// paths is checked out of here, so a warm replay allocates nothing
    /// (see DESIGN.md "Memory model"). `RefCell` keeps the `&self` solve
    /// signatures; factors are owned by one rank thread, never shared.
    ws: RefCell<Workspace<E>>,
}

impl<E: Element> ArdRankFactors<E> {
    /// Runs the full matrix-dependent setup: Phase 1 and the matrix
    /// components of the Phase 2/3 scans. Collective: every rank must
    /// call it together.
    ///
    /// `record_traces = true` (the accelerated algorithm) additionally
    /// records the cross-rank scan matrices so later solves can replay
    /// them; `false` builds the transient state classic recursive
    /// doubling computes per solve.
    ///
    /// # Errors
    ///
    /// [`FactorError`] — on **every** rank (failure is agreed upon
    /// collectively, so no rank deadlocks) — if some block diagonal `D_i`
    /// is singular.
    pub fn setup<C: CommBackend>(
        comm: &mut C,
        sys: &RankSystem,
        record_traces: bool,
    ) -> Result<Self, FactorError> {
        Self::setup_with(comm, sys, record_traces, BoundaryMode::ExactScan)
    }

    /// [`ArdRankFactors::setup`] with an explicit Phase 1 boundary mode.
    /// All ranks must pass the same `mode`.
    pub fn setup_with<C: CommBackend>(
        comm: &mut C,
        sys: &RankSystem,
        record_traces: bool,
        mode: BoundaryMode,
    ) -> Result<Self, FactorError> {
        let m = sys.m;
        let nl = sys.local_len();

        // ---- Phase 1a: local companion product total. -------------------
        // Rank p contributes the product of W_i over i in
        // [max(lo, 1), hi - 1]; the last rank's contribution is never
        // consumed by the exclusive scan (and would need the undefined
        // C_{N-1}^{-1}), so it stays the identity. Failures here (singular
        // C_i) are deferred until after the collective phases so no peer
        // deadlocks mid-scan.
        let mut pending_err: Option<FactorError> = None;
        let mut total = CompanionProduct::identity(m);
        let scanning = mode == BoundaryMode::ExactScan;
        // Phase 1 buffer pool: the companion scan always runs in `f64`
        // (it sets the boundary accuracy envelope), so its temporaries
        // cannot share the element-typed solve workspace below.
        let mut ws_p1: Workspace = Workspace::new();
        let span_companion = bt_obs::span("solver", "phase1.local_companion");
        if scanning && comm.rank() + 1 < comm.size() {
            for i in sys.lo.max(1)..sys.hi {
                let row = &sys.rows[i - sys.lo];
                match CompanionW::from_row(row) {
                    Ok(w) => {
                        comm.compute(CompanionW::build_flops(m));
                        total.apply_left_ws(&w, &mut ws_p1);
                        comm.compute(CompanionProduct::apply_left_flops(m));
                    }
                    Err(source) => {
                        pending_err = Some(FactorError { row: i, source });
                        total = CompanionProduct::identity(m);
                        break;
                    }
                }
            }
        }

        drop(span_companion);

        // ---- Phase 1b: cross-rank exclusive scan of the products. -------
        // Windowed mode needs no Phase 1 communication at all.
        let excl = {
            let _span = bt_obs::span("solver", "phase1.exscan");
            if scanning {
                companion_exscan(comm, tags::PHASE1, total)
            } else {
                None
            }
        };

        // ---- Phase 1c/1d: boundary diagonal and local factor pass. ------
        let span_factor = bt_obs::span("solver", "phase1.local_factor");
        let local = match pending_err {
            Some(e) => Err(e),
            None => Self::local_factor_pass(comm, sys, excl.as_ref(), mode, &mut ws_p1),
        };
        drop(span_factor);

        // ---- Coordinated error check: all ranks agree before the next
        // collective phase, so a singular diagonal cannot deadlock peers
        // blocked in a scan. -------------------------------------------
        let my_err: u64 = match &local {
            Ok(_) => u64::MAX,
            Err(e) => e.row as u64,
        };
        let first_err = comm.allreduce(my_err, |a, b| (*a).min(*b));
        if first_err != u64::MAX {
            return Err(match local {
                Err(e) if e.row as u64 == first_err => e,
                _ => FactorError {
                    row: first_err as usize,
                    source: bt_dense::SingularError {
                        step: 0,
                        pivot: 0.0,
                    },
                },
            });
        }
        let (d_lu, f, g, my_cond) = local.expect("checked above");
        // Agree on the worst boundary-extraction conditioning: the suite's
        // self-diagnostic for the prefix method's accuracy envelope.
        let boundary_cond = comm.allreduce(
            if my_cond.is_finite() {
                my_cond
            } else {
                f64::MAX
            },
            |a, b| a.max(*b),
        );

        // ---- Phase 2/3 matrix components: local prefixes + scans. -------
        let span_prefixes = bt_obs::span("solver", "setup.local_prefixes");
        let mut fwd_prefix: Vec<Mat<E>> = Vec::with_capacity(nl);
        for k in 0..nl {
            let pfx = if k == 0 {
                f[0].clone()
            } else {
                let mut p = Mat::zeros(m, m);
                gemm(
                    E::ONE,
                    &f[k],
                    Trans::No,
                    &fwd_prefix[k - 1],
                    Trans::No,
                    E::ZERO,
                    &mut p,
                );
                comm.compute(gemm_flops(m, m, m));
                p
            };
            fwd_prefix.push(pfx);
        }
        // Built back-to-front by pushing in reverse, then reversed — no
        // placeholder sentinels.
        let mut bwd_prefix: Vec<Mat<E>> = Vec::with_capacity(nl);
        for k in (0..nl).rev() {
            let pfx = if k == nl - 1 {
                g[nl - 1].clone()
            } else {
                let mut p = Mat::zeros(m, m);
                gemm(
                    E::ONE,
                    &g[k],
                    Trans::No,
                    bwd_prefix.last().expect("pushed above"),
                    Trans::No,
                    E::ZERO,
                    &mut p,
                );
                comm.compute(gemm_flops(m, m, m));
                p
            };
            bwd_prefix.push(pfx);
        }
        bwd_prefix.reverse();

        drop(span_prefixes);

        let mut fwd_trace: ScanTrace<E> = ScanTrace::default();
        let mut bwd_trace: ScanTrace<E> = ScanTrace::default();
        let _span_record = record_traces.then(|| bt_obs::span("solver", "setup.record_scans"));
        if record_traces {
            // Zero-width vectors: the scans run their full matrix work and
            // message pattern while carrying no right-hand-side data.
            let fwd_total = AffinePair {
                mat: fwd_prefix[nl - 1].clone(),
                vec: Mat::zero_width(m),
            };
            let _ = affine_exscan_fresh(
                comm,
                Direction::Forward,
                tags::FWD_SETUP,
                fwd_total,
                Some(&mut fwd_trace),
            );
            let bwd_total = AffinePair {
                mat: bwd_prefix[0].clone(),
                vec: Mat::zero_width(m),
            };
            let _ = affine_exscan_fresh(
                comm,
                Direction::Backward,
                tags::BWD_SETUP,
                bwd_total,
                Some(&mut bwd_trace),
            );
        }

        Ok(Self {
            n: sys.n,
            m,
            lo: sys.lo,
            hi: sys.hi,
            d_lu,
            f,
            g,
            fwd_prefix,
            bwd_prefix,
            fwd_trace,
            bwd_trace,
            recorded: record_traces,
            boundary_cond,
            ws: RefCell::new(Workspace::new()),
        })
    }

    /// Worst 1-norm condition estimate of the Phase 1 boundary
    /// extraction across all ranks (identical on every rank).
    ///
    /// The extraction's relative error is roughly
    /// `machine_eps * boundary_condition()`, so values approaching
    /// `1/eps ~ 1e16` predict the accuracy degradation (and eventual
    /// breakdown) quantified in Table III; values near 1 mean the exact
    /// scan is operating at full precision. Windowed-mode factors report
    /// 1.0 (no extraction).
    pub fn boundary_condition(&self) -> f64 {
        self.boundary_cond
    }

    /// Phase 1c/1d: recover the boundary diagonal `D_{lo-1}` from the
    /// scanned companion product, then run the local Thomas-style pass.
    /// Produces, per owned row, `LU(D_i)`, `F_i` and `G_i`, plus a
    /// conditioning estimate of the boundary extraction (1.0 where no
    /// extraction happened).
    #[allow(clippy::type_complexity)]
    fn local_factor_pass<C: CommBackend>(
        comm: &mut C,
        sys: &RankSystem,
        excl: Option<&CompanionProduct>,
        mode: BoundaryMode,
        ws: &mut Workspace,
    ) -> Result<(Vec<LuFactors<E>>, Vec<Mat<E>>, Vec<Mat<E>>, f64), FactorError> {
        let m = sys.m;
        let nl = sys.local_len();
        let mut d_lu: Vec<LuFactors<E>> = Vec::with_capacity(nl);
        let mut f: Vec<Mat<E>> = Vec::with_capacity(nl);
        let mut g: Vec<Mat<E>> = Vec::with_capacity(nl);
        let mut boundary_cond = 1.0f64;

        // Rank 0 owns row 0: D_0 = B_0 directly, no companion needed.
        // Other ranks reconstruct D_{lo-1}: from the scanned companion
        // product (exact), or by the windowed warm-started recurrence.
        let boundary_diag = if sys.lo == 0 {
            sys.rows[0].b.clone()
        } else {
            match mode {
                BoundaryMode::ExactScan => {
                    let mut state = CompanionState::initial(&sys.row0)
                        .map_err(|source| FactorError { row: 0, source })?;
                    comm.compute(CompanionState::initial_flops(m));
                    if let Some(g_excl) = excl {
                        state.apply_product_ws(g_excl, ws);
                        comm.compute(CompanionState::apply_product_flops(m));
                    }
                    // Extraction error amplifies by cond(V): record it so
                    // callers can predict the accuracy envelope
                    // (DESIGN.md §7) before ever solving.
                    boundary_cond = bt_dense::cond_1(&state.v);
                    let d = state
                        .extract_diag(&sys.c_prev)
                        .map_err(|source| FactorError {
                            row: sys.lo - 1,
                            source,
                        })?;
                    comm.compute(CompanionState::extract_flops(m));
                    d
                }
                BoundaryMode::Windowed(_) => Self::windowed_boundary(comm, sys)?,
            }
        };
        // The boundary diagonal is recovered in `f64` above (the
        // extraction sets the accuracy envelope); the local recurrence
        // below runs at the factor element type. For `E = f64` the
        // conversion is a bit-exact copy; for `E = f32` this is the
        // single rounding step of the mixed-precision factorization.
        let boundary_diag: Mat<E> = boundary_diag.convert::<E>();

        // The LU used to form F for the first owned row.
        let mut prev_lu: LuFactors<E>;
        let start_k;
        if sys.lo == 0 {
            // boundary_diag IS D_0 = B_0.
            let lu = LuFactors::factor(&boundary_diag)
                .map_err(|source| FactorError { row: 0, source })?;
            comm.compute(lu_flops(m));
            d_lu.push(lu.clone());
            f.push(Mat::zeros(m, m)); // F_0 = 0 (A_0 = 0)
            prev_lu = lu;
            start_k = 1;
        } else {
            // boundary_diag is D_{lo-1}, owned by the left neighbour; we
            // only need its LU to start the recurrence.
            prev_lu = LuFactors::factor(&boundary_diag).map_err(|source| FactorError {
                row: sys.lo - 1,
                source,
            })?;
            comm.compute(lu_flops(m));
            start_k = 0;
        }

        for k in start_k..nl {
            let i = sys.lo + k;
            let row = &sys.rows[k];
            // F_i = -A_i D_{i-1}^{-1}  (right division).
            let mut f_i = prev_lu.solve_transposed_system(&row.a.convert::<E>());
            f_i.negate();
            comm.compute(lu_solve_flops(m, m));
            // D_i = B_i + F_i C_{i-1}.
            let mut d_i = row.b.convert::<E>();
            gemm(
                E::ONE,
                &f_i,
                Trans::No,
                &sys.c_before(i).convert::<E>(),
                Trans::No,
                E::ONE,
                &mut d_i,
            );
            comm.compute(gemm_flops(m, m, m));
            let lu = LuFactors::factor(&d_i).map_err(|source| FactorError { row: i, source })?;
            comm.compute(lu_flops(m));
            d_lu.push(lu.clone());
            f.push(f_i);
            prev_lu = lu;
        }

        // G_i = -D_i^{-1} C_i (automatically zero at i = N-1).
        for (lu, row) in d_lu.iter().zip(&sys.rows) {
            let mut g_i = lu.solve(&row.c.convert::<E>());
            g_i.negate();
            comm.compute(lu_solve_flops(m, m));
            g.push(g_i);
        }

        Ok((d_lu, f, g, boundary_cond))
    }

    /// Windowed boundary recovery: runs the plain block-LU diagonal
    /// recurrence over `sys.window_rows`, warm-started from the window's
    /// first diagonal block. Returns `D_{lo-1}` up to the geometrically
    /// small warm-start residue.
    fn windowed_boundary<C: CommBackend>(
        comm: &mut C,
        sys: &RankSystem,
    ) -> Result<Mat, FactorError> {
        assert!(
            !sys.window_rows.is_empty(),
            "BoundaryMode::Windowed requires RankSystem::from_source_windowed"
        );
        let m = sys.m;
        let w = sys.window_rows.len();
        let first_row = sys.lo - w;
        let mut d = sys.window_rows[0].b.clone();
        for j in 1..w {
            let lu = LuFactors::factor(&d).map_err(|source| FactorError {
                row: first_row + j - 1,
                source,
            })?;
            comm.compute(lu_flops(m));
            let row = &sys.window_rows[j];
            // L = A_j D_{j-1}^{-1}; D_j = B_j - L C_{j-1}.
            let l = lu.solve_transposed_system(&row.a);
            comm.compute(lu_solve_flops(m, m));
            let mut next = row.b.clone();
            gemm(
                -1.0,
                &l,
                Trans::No,
                &sys.window_rows[j - 1].c,
                Trans::No,
                1.0,
                &mut next,
            );
            comm.compute(gemm_flops(m, m, m));
            d = next;
        }
        // The window ends at row lo - 1, so `d` is D_{lo-1}.
        Ok(d)
    }

    /// Number of owned rows.
    pub fn local_len(&self) -> usize {
        self.hi - self.lo
    }

    /// Bytes of matrix-dependent state stored per this rank (the memory
    /// price of acceleration; Table II).
    pub fn storage_bytes(&self) -> u64 {
        let mat_bytes = (self.m * self.m * std::mem::size_of::<E>()) as u64;
        // d_lu (packed LU) + f + g per row, plus the prefix matrices if
        // they have not been shed (see `shed_prefixes`).
        let prefixes = (self.fwd_prefix.len() + self.bwd_prefix.len()) as u64;
        (3 * self.local_len() as u64 + prefixes) * mat_bytes
            + self.fwd_trace.storage_bytes()
            + self.bwd_trace.storage_bytes()
    }

    /// Frees the per-row local prefix matrices (40% of the stored factor
    /// bytes), keeping only what [`ArdRankFactors::solve_replay_lean`]
    /// needs. After shedding, [`ArdRankFactors::solve_replay`] and
    /// [`ArdRankFactors::solve_fresh`] must not be called.
    pub fn shed_prefixes(&mut self) {
        assert!(self.recorded, "classic-RD factors need their prefixes");
        self.fwd_prefix = Vec::new();
        self.bwd_prefix = Vec::new();
    }

    /// Cumulative counters of the rank-owned solve workspace. The
    /// checkouts delta across a warm [`ArdRankFactors::solve_replay_into`]
    /// call is the zero-allocation invariant `tests/workspace.rs` pins.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.ws.borrow().stats()
    }

    /// Drops every pooled workspace buffer (cumulative stats are kept;
    /// released bytes count into [`WorkspaceStats::trimmed_bytes`]), so
    /// the next solve pays cold-allocation cost again. For benchmarks
    /// that want a cold baseline.
    pub fn reset_workspace(&self) {
        self.ws.borrow_mut().reset();
    }

    /// Shrinks the pooled solve workspace to at most `max_pooled_bytes`
    /// of idle capacity (largest buffers dropped first), returning the
    /// bytes released. Bounds the memory a single oversized batch pins
    /// for the session's lifetime — see [`Workspace::trim_to`].
    pub fn trim_workspace(&self, max_pooled_bytes: u64) -> u64 {
        self.ws.borrow_mut().trim_to(max_pooled_bytes)
    }

    /// Replay-pipeline RHS tile width for an `M x R` batch: the
    /// `BT_ARD_RHS_TILE` override when set (`0`/unset means auto), else
    /// the cost-model calibration in [`auto_rhs_tile`].
    fn resolve_rhs_tile<C: CommBackend>(comm: &C, m: usize, r: usize) -> usize {
        static ENV_TILE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        let env = *ENV_TILE.get_or_init(|| {
            std::env::var("BT_ARD_RHS_TILE")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&t| t > 0)
        });
        env.unwrap_or_else(|| auto_rhs_tile_for::<E>(&comm.model(), m, r))
    }

    /// Fresh `M x R` output panels matching a right-hand-side batch.
    fn alloc_out(y_local: &[Mat<E>]) -> Vec<Mat<E>> {
        y_local
            .iter()
            .map(|p| Mat::zeros(p.rows(), p.cols()))
            .collect()
    }

    /// Solves one right-hand-side batch by **replaying** the recorded
    /// scans — the accelerated path, `O(M^2 R (N/P + log P))`.
    ///
    /// `y_local[k]` is the `M x R` panel of global row `lo + k`. Returns
    /// the solution panels in the same layout. Collective.
    ///
    /// # Panics
    ///
    /// Panics if setup was run with `record_traces = false`, or on panel
    /// shape mismatch.
    pub fn solve_replay<C: CommBackend>(&self, comm: &mut C, y_local: &[Mat<E>]) -> Vec<Mat<E>> {
        let mut out = Self::alloc_out(y_local);
        self.solve_replay_into(comm, y_local, &mut out);
        out
    }

    /// [`ArdRankFactors::solve_replay`] writing into caller-provided
    /// panels: `out[k]` must be shaped like `y_local[k]`. With reused
    /// `out` buffers and a warm workspace, a call performs **zero** heap
    /// allocations — every temporary (including scan receive buffers)
    /// recycles through the rank-owned [`Workspace`] and the
    /// [`bt_mpsim::PanelBuf`] pool.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ArdRankFactors::solve_replay`], plus `out`
    /// shape mismatch.
    pub fn solve_replay_into<C: CommBackend>(
        &self,
        comm: &mut C,
        y_local: &[Mat<E>],
        out: &mut [Mat<E>],
    ) {
        let r = y_local.first().map_or(0, |p| p.cols());
        let tile = Self::resolve_rhs_tile(comm, self.m, r);
        self.solve_replay_into_tiled(comm, y_local, out, tile);
    }

    /// [`ArdRankFactors::solve_replay_into`] with an explicit RHS tile
    /// width for the scan pipeline (see
    /// [`affine_exscan_replay_tiled`]); output is bitwise identical for
    /// every `tile`. Exposed for benches and tile-sweep tests — normal
    /// callers should use [`ArdRankFactors::solve_replay_into`], which
    /// resolves the tile from `BT_ARD_RHS_TILE` or the cost model.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ArdRankFactors::solve_replay_into`].
    pub fn solve_replay_into_tiled<C: CommBackend>(
        &self,
        comm: &mut C,
        y_local: &[Mat<E>],
        out: &mut [Mat<E>],
        tile: usize,
    ) {
        assert!(
            self.recorded,
            "solve_replay requires setup(record_traces = true)"
        );
        self.solve_into_impl(comm, y_local, out, true, tile);
    }

    /// Solves one batch with **fresh** scans (classic recursive
    /// doubling's per-solve Phase 2/3): full pairs travel and every scan
    /// combine pays the `O(M^3)` product. Collective.
    pub fn solve_fresh<C: CommBackend>(&self, comm: &mut C, y_local: &[Mat<E>]) -> Vec<Mat<E>> {
        let mut out = Self::alloc_out(y_local);
        let r = y_local.first().map_or(0, |p| p.cols());
        self.solve_into_impl(comm, y_local, &mut out, false, r.max(1));
        out
    }

    /// Memory-lean replay: identical flop count and message pattern to
    /// [`ArdRankFactors::solve_replay`], but instead of fixing each row up
    /// with a stored prefix matrix (`z_i = M_i v_excl + v_i`), it exploits
    /// the fact that the scan's exclusive vector *is* the boundary value
    /// (`v_excl = z_{lo-1}`) and re-runs the plain first-order recurrence
    /// from it. The per-row prefix matrices are therefore never touched
    /// and can be freed with [`ArdRankFactors::shed_prefixes`].
    ///
    /// # Panics
    ///
    /// Panics if setup was run with `record_traces = false`, or on panel
    /// shape mismatch.
    pub fn solve_replay_lean<C: CommBackend>(
        &self,
        comm: &mut C,
        y_local: &[Mat<E>],
    ) -> Vec<Mat<E>> {
        let mut out = Self::alloc_out(y_local);
        self.solve_replay_lean_into(comm, y_local, &mut out);
        out
    }

    /// [`ArdRankFactors::solve_replay_lean`] writing into caller-provided
    /// panels; allocation-free once warm, like
    /// [`ArdRankFactors::solve_replay_into`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`ArdRankFactors::solve_replay_lean`], plus
    /// `out` shape mismatch.
    pub fn solve_replay_lean_into<C: CommBackend>(
        &self,
        comm: &mut C,
        y_local: &[Mat<E>],
        out: &mut [Mat<E>],
    ) {
        let r = y_local.first().map_or(0, |p| p.cols());
        let tile = Self::resolve_rhs_tile(comm, self.m, r);
        self.solve_replay_lean_into_tiled(comm, y_local, out, tile);
    }

    /// [`ArdRankFactors::solve_replay_lean_into`] with an explicit RHS
    /// tile width for the scan pipeline; output is bitwise identical
    /// for every `tile`. See
    /// [`ArdRankFactors::solve_replay_into_tiled`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`ArdRankFactors::solve_replay_lean_into`].
    pub fn solve_replay_lean_into_tiled<C: CommBackend>(
        &self,
        comm: &mut C,
        y_local: &[Mat<E>],
        out: &mut [Mat<E>],
        tile: usize,
    ) {
        assert!(
            self.recorded,
            "solve_replay_lean requires setup(record_traces = true)"
        );
        let m = self.m;
        let nl = self.local_len();
        let r = Self::check_panels(m, nl, y_local, out);
        let mut ws = self.ws.borrow_mut();

        // ---- Phase 2. On the logical-first rank the exclusive value is
        // empty, so z is computable before the scan and doubles as the
        // scan total; elsewhere, fold a total, scan, then run the
        // recurrence from the boundary value z_{lo-1} = v_excl. `out`
        // carries z (then h, then x) in place.
        let fwd_first = comm.rank() == 0;
        let span_fwd = bt_obs::span("solver", "solve.forward");
        if fwd_first {
            out[0].as_mut().copy_from(y_local[0].as_ref());
            for k in 1..nl {
                let (done, rest) = out.split_at_mut(k);
                let zk = &mut rest[0];
                zk.as_mut().copy_from(y_local[k].as_ref());
                gemm(
                    E::ONE,
                    &self.f[k],
                    Trans::No,
                    &done[k - 1],
                    Trans::No,
                    E::ONE,
                    zk,
                );
                comm.compute(gemm_flops(m, m, r));
            }
            let total = ws.take_copy(out[nl - 1].as_ref());
            let none = affine_exscan_replay_tiled(
                comm,
                Direction::Forward,
                tags::FWD_SOLVE,
                total,
                &self.fwd_trace,
                &mut ws,
                tile,
            );
            debug_assert!(none.is_none());
        } else {
            let mut total = ws.take_copy(y_local[0].as_ref());
            for (yk, fk) in y_local.iter().zip(&self.f).skip(1) {
                let mut v = ws.take_copy(yk.as_ref());
                gemm(E::ONE, fk, Trans::No, &total, Trans::No, E::ONE, &mut v);
                comm.compute(gemm_flops(m, m, r));
                ws.put(std::mem::replace(&mut total, v));
            }
            let v_excl = affine_exscan_replay_tiled(
                comm,
                Direction::Forward,
                tags::FWD_SOLVE,
                total,
                &self.fwd_trace,
                &mut ws,
                tile,
            )
            .expect("non-first rank always has an exclusive value");
            for k in 0..nl {
                let (done, rest) = out.split_at_mut(k);
                let zk = &mut rest[0];
                let prev = if k == 0 { &v_excl } else { &done[k - 1] };
                zk.as_mut().copy_from(y_local[k].as_ref());
                gemm(E::ONE, &self.f[k], Trans::No, prev, Trans::No, E::ONE, zk);
                comm.compute(gemm_flops(m, m, r));
            }
            ws.put(v_excl);
        }

        drop(span_fwd);

        // ---- h_i = D_i^{-1} z_i, in place.
        {
            let _span = bt_obs::span("solver", "solve.diag");
            for (k, zk) in out.iter_mut().enumerate() {
                self.d_lu[k].solve_in_place(&mut *zk);
                comm.compute(lu_solve_flops(m, r));
            }
        }

        // ---- Phase 3: mirror image of Phase 2.
        let _span_bwd = bt_obs::span("solver", "solve.backward");
        let bwd_first = comm.rank() == comm.size() - 1;
        if bwd_first {
            for k in (0..nl - 1).rev() {
                let (head, tail) = out.split_at_mut(k + 1);
                gemm(
                    E::ONE,
                    &self.g[k],
                    Trans::No,
                    &tail[0],
                    Trans::No,
                    E::ONE,
                    &mut head[k],
                );
                comm.compute(gemm_flops(m, m, r));
            }
            let total = ws.take_copy(out[0].as_ref());
            let none = affine_exscan_replay_tiled(
                comm,
                Direction::Backward,
                tags::BWD_SOLVE,
                total,
                &self.bwd_trace,
                &mut ws,
                tile,
            );
            debug_assert!(none.is_none());
        } else {
            let mut total = ws.take_copy(out[nl - 1].as_ref());
            for k in (0..nl - 1).rev() {
                let mut v = ws.take_copy(out[k].as_ref());
                gemm(
                    E::ONE,
                    &self.g[k],
                    Trans::No,
                    &total,
                    Trans::No,
                    E::ONE,
                    &mut v,
                );
                comm.compute(gemm_flops(m, m, r));
                ws.put(std::mem::replace(&mut total, v));
            }
            let w_excl = affine_exscan_replay_tiled(
                comm,
                Direction::Backward,
                tags::BWD_SOLVE,
                total,
                &self.bwd_trace,
                &mut ws,
                tile,
            )
            .expect("non-last rank always has a backward exclusive value");
            for k in (0..nl).rev() {
                if k == nl - 1 {
                    gemm(
                        E::ONE,
                        &self.g[k],
                        Trans::No,
                        &w_excl,
                        Trans::No,
                        E::ONE,
                        &mut out[k],
                    );
                } else {
                    let (head, tail) = out.split_at_mut(k + 1);
                    gemm(
                        E::ONE,
                        &self.g[k],
                        Trans::No,
                        &tail[0],
                        Trans::No,
                        E::ONE,
                        &mut head[k],
                    );
                }
                comm.compute(gemm_flops(m, m, r));
            }
            ws.put(w_excl);
        }
    }

    /// Shared shape validation for the `_into` solves; returns `R`.
    fn check_panels(m: usize, nl: usize, y_local: &[Mat<E>], out: &[Mat<E>]) -> usize {
        assert_eq!(y_local.len(), nl, "rhs panel count mismatch");
        assert_eq!(out.len(), nl, "output panel count mismatch");
        let r = y_local[0].cols();
        for (k, p) in y_local.iter().enumerate() {
            assert_eq!(p.shape(), (m, r), "rhs panel {k} shape mismatch");
        }
        for (k, p) in out.iter().enumerate() {
            assert_eq!(p.shape(), (m, r), "output panel {k} shape mismatch");
        }
        r
    }

    /// Shared body of [`ArdRankFactors::solve_replay_into`] and
    /// [`ArdRankFactors::solve_fresh`]. `out` carries the working panels
    /// through every stage (v_hat -> z -> h -> w_hat -> x in place); all
    /// other temporaries cycle through the rank workspace.
    fn solve_into_impl<C: CommBackend>(
        &self,
        comm: &mut C,
        y_local: &[Mat<E>],
        out: &mut [Mat<E>],
        replay: bool,
        tile: usize,
    ) {
        let m = self.m;
        let nl = self.local_len();
        let r = Self::check_panels(m, nl, y_local, out);
        let fwd_first = comm.rank() == 0;
        let bwd_first = comm.rank() == comm.size() - 1;
        let mut ws = self.ws.borrow_mut();

        // ---- Phase 2: forward substitution z_i = F_i z_{i-1} + y_i. -----
        let span_fwd = bt_obs::span("solver", "solve.forward");
        // Local vector recurrence, v_hat built in `out`.
        out[0].as_mut().copy_from(y_local[0].as_ref());
        for k in 1..nl {
            let (done, rest) = out.split_at_mut(k);
            let vk = &mut rest[0];
            vk.as_mut().copy_from(y_local[k].as_ref());
            gemm(
                E::ONE,
                &self.f[k],
                Trans::No,
                &done[k - 1],
                Trans::No,
                E::ONE,
                vk,
            );
            comm.compute(gemm_flops(m, m, r));
        }
        // Cross-rank scan.
        let v_excl = if replay {
            let total = ws.take_copy(out[nl - 1].as_ref());
            affine_exscan_replay_tiled(
                comm,
                Direction::Forward,
                tags::FWD_SOLVE,
                total,
                &self.fwd_trace,
                &mut ws,
                tile,
            )
        } else {
            let total = AffinePair {
                mat: self.fwd_prefix[nl - 1].clone(),
                vec: out[nl - 1].clone(),
            };
            affine_exscan_fresh(comm, Direction::Forward, tags::FWD_SOLVE, total, None)
        };
        // Fixup: z_i = fwd_prefix_i * v_excl + v_hat_i, in place.
        match v_excl {
            None => debug_assert!(fwd_first),
            Some(vin) => {
                for (k, zk) in out.iter_mut().enumerate() {
                    gemm(
                        E::ONE,
                        &self.fwd_prefix[k],
                        Trans::No,
                        &vin,
                        Trans::No,
                        E::ONE,
                        zk,
                    );
                    comm.compute(gemm_flops(m, m, r));
                }
                if replay {
                    ws.put(vin);
                }
            }
        }

        drop(span_fwd);

        // ---- h_i = D_i^{-1} z_i, in place. ------------------------------
        let span_diag = bt_obs::span("solver", "solve.diag");
        for (k, zk) in out.iter_mut().enumerate() {
            self.d_lu[k].solve_in_place(&mut *zk);
            comm.compute(lu_solve_flops(m, r));
        }
        drop(span_diag);

        // ---- Phase 3: backward substitution x_i = G_i x_{i+1} + h_i. ----
        let _span_bwd = bt_obs::span("solver", "solve.backward");
        for k in (0..nl - 1).rev() {
            let (head, tail) = out.split_at_mut(k + 1);
            gemm(
                E::ONE,
                &self.g[k],
                Trans::No,
                &tail[0],
                Trans::No,
                E::ONE,
                &mut head[k],
            );
            comm.compute(gemm_flops(m, m, r));
        }
        let w_excl = if replay {
            let total = ws.take_copy(out[0].as_ref());
            affine_exscan_replay_tiled(
                comm,
                Direction::Backward,
                tags::BWD_SOLVE,
                total,
                &self.bwd_trace,
                &mut ws,
                tile,
            )
        } else {
            let total = AffinePair {
                mat: self.bwd_prefix[0].clone(),
                vec: out[0].clone(),
            };
            affine_exscan_fresh(comm, Direction::Backward, tags::BWD_SOLVE, total, None)
        };
        match w_excl {
            None => debug_assert!(bwd_first),
            Some(win) => {
                for (k, xk) in out.iter_mut().enumerate() {
                    gemm(
                        E::ONE,
                        &self.bwd_prefix[k],
                        Trans::No,
                        &win,
                        Trans::No,
                        E::ONE,
                        xk,
                    );
                    comm.compute(gemm_flops(m, m, r));
                }
                if replay {
                    ws.put(win);
                }
            }
        }
    }
}

/// Classic recursive doubling: rebuilds all matrix-dependent state and
/// runs a fresh-scan solve, every call. `O(M^3 (N/P + log P))` per batch
/// regardless of `R` (for `R <= M`). Collective.
///
/// # Errors
///
/// [`FactorError`] (on every rank) if a block diagonal is singular.
pub fn rd_solve_rank<C: CommBackend, E: Element>(
    comm: &mut C,
    sys: &RankSystem,
    y_local: &[Mat<E>],
) -> Result<Vec<Mat<E>>, FactorError> {
    let factors = ArdRankFactors::<E>::setup(comm, sys, false)?;
    Ok(factors.solve_fresh(comm, y_local))
}
