//! Iterative refinement on top of the accelerated replay path.
//!
//! Refinement is the classic production technique: with any factorization
//! `T ≈ F`, iterate `x <- x + F^{-1}(y - T x)`. Each sweep costs one
//! distributed residual (a halo exchange plus three GEMMs per row) and
//! one replay solve — both `O(M^2 R)` per row — and contracts the error
//! by the factorization's relative accuracy.
//!
//! For this suite it has a special role (Figure A5): the exact-scan
//! boundary recovery degrades gracefully before it breaks down
//! (DESIGN.md §7), and inside that gray zone its factors are still a
//! *contraction* — a few refinement sweeps push residuals from ~1e-3
//! back to machine precision, extending the paper's algorithm's usable
//! range at pure `O(M^2 R)` per-solve cost.

use bt_blocktri::FactorError;
use bt_comm::CommBackend;
use bt_dense::{gemm, gemm_flops, Mat, MatMut, MatRef, Trans};

use crate::state::{ArdRankFactors, BoundaryMode, RankSystem};

/// Tags for the residual halo exchange.
mod tags {
    pub const HALO_RIGHT: u64 = 520; // panel travelling to rank+1
    pub const HALO_LEFT: u64 = 521; // panel travelling to rank-1
}

/// Accepted refinement sweeps per refined solve (`history.len() - 1`),
/// across both the pure-`f64` and the mixed-precision paths. Exported
/// as `bt_ard.refine.iters` by the Prometheus endpoint; `BT_OBS`-gated.
pub(crate) static REFINE_ITERS: bt_obs::Histogram = bt_obs::Histogram::new("bt_ard.refine.iters");

/// Exchanges boundary panels with both neighbours: sends this rank's
/// first/last panels, returns `(x_{lo-1}, x_{hi})` (zero panels at the
/// domain boundaries). Collective.
pub fn halo_exchange<C: CommBackend>(comm: &mut C, first: &Mat, last: &Mat) -> (Mat, Mat) {
    let (m, r) = first.shape();
    let mut left_in = Mat::zeros(m, r);
    let mut right_in = Mat::zeros(m, r);
    halo_exchange_into(
        comm,
        first.as_ref(),
        last.as_ref(),
        left_in.as_mut(),
        right_in.as_mut(),
    );
    (left_in, right_in)
}

/// [`halo_exchange`] into caller-provided panels (zero-filled at the
/// domain boundaries): panels travel as pooled [`bt_mpsim::PanelBuf`]s,
/// so a warm exchange performs no heap allocation. Collective.
pub fn halo_exchange_into<C: CommBackend>(
    comm: &mut C,
    first: MatRef<'_>,
    last: MatRef<'_>,
    mut left_out: MatMut<'_>,
    mut right_out: MatMut<'_>,
) {
    let rank = comm.rank();
    let p = comm.size();
    if rank + 1 < p {
        comm.send_panel(rank + 1, tags::HALO_RIGHT, last);
    }
    if rank > 0 {
        comm.send_panel(rank - 1, tags::HALO_LEFT, first);
    }
    if rank > 0 {
        comm.recv_panel_into(rank - 1, tags::HALO_RIGHT, left_out.rb_mut());
    } else {
        left_out.fill_zero();
    }
    if rank + 1 < p {
        comm.recv_panel_into(rank + 1, tags::HALO_LEFT, right_out.rb_mut());
    } else {
        right_out.fill_zero();
    }
}

/// Local part of the residual `r = y - T x`, given the halo panels.
/// Costs ~`6 M^2 R` flops per row.
pub fn local_residual<C: CommBackend>(
    comm: &mut C,
    sys: &RankSystem,
    x_local: &[Mat],
    halo: (&Mat, &Mat),
    y_local: &[Mat],
) -> Vec<Mat> {
    let mut out: Vec<Mat> = y_local
        .iter()
        .map(|p| Mat::zeros(p.rows(), p.cols()))
        .collect();
    local_residual_into(
        comm,
        sys,
        x_local,
        (halo.0.as_ref(), halo.1.as_ref()),
        y_local,
        &mut out,
    );
    out
}

/// [`local_residual`] into caller-provided panels — the allocation-free
/// body of the refinement sweep.
pub fn local_residual_into<C: CommBackend>(
    comm: &mut C,
    sys: &RankSystem,
    x_local: &[Mat],
    halo: (MatRef<'_>, MatRef<'_>),
    y_local: &[Mat],
    out: &mut [Mat],
) {
    let m = sys.m;
    let nl = sys.local_len();
    let r = y_local[0].cols();
    assert_eq!(out.len(), nl, "residual panel count mismatch");
    let (left_in, right_in) = halo;
    for k in 0..nl {
        let row = &sys.rows[k];
        let res = &mut out[k];
        res.as_mut().copy_from(y_local[k].as_ref());
        gemm(
            -1.0,
            &row.b,
            Trans::No,
            &x_local[k],
            Trans::No,
            1.0,
            &mut *res,
        );
        let x_prev = if k == 0 {
            left_in
        } else {
            x_local[k - 1].as_ref()
        };
        gemm(-1.0, &row.a, Trans::No, x_prev, Trans::No, 1.0, &mut *res);
        let x_next = if k + 1 == nl {
            right_in
        } else {
            x_local[k + 1].as_ref()
        };
        gemm(-1.0, &row.c, Trans::No, x_next, Trans::No, 1.0, &mut *res);
        comm.compute(3 * gemm_flops(m, m, r));
    }
}

/// Squared Frobenius norm of a panel list (local part).
pub(crate) fn sq_norm(panels: &[Mat]) -> f64 {
    panels
        .iter()
        .map(|p| p.as_slice().iter().map(|v| v * v).sum::<f64>())
        .sum()
}

/// Result of a refined solve.
#[derive(Debug, Clone)]
pub struct RefinedSolve {
    /// The refined local solution panels.
    pub x_local: Vec<Mat>,
    /// Global relative residual after each sweep, starting with the
    /// unrefined solve's residual (`history[0]`) — identical on every
    /// rank.
    pub history: Vec<f64>,
}

impl ArdRankFactors {
    /// Replay solve followed by up to `max_sweeps` iterative-refinement
    /// sweeps. Stops early once the global relative residual drops below
    /// `tol` or stops improving. Collective; all ranks receive the same
    /// `history`.
    ///
    /// # Panics
    ///
    /// Panics if setup was run without trace recording or the prefix
    /// matrices were shed (refinement reuses the standard replay), or on
    /// shape mismatch.
    pub fn solve_replay_refined<C: CommBackend>(
        &self,
        comm: &mut C,
        sys: &RankSystem,
        y_local: &[Mat],
        max_sweeps: usize,
        tol: f64,
    ) -> RefinedSolve {
        let mut x = self.solve_replay(comm, y_local);
        let y_norm2 = comm
            .allreduce(sq_norm(y_local), |a, b| a + b)
            .max(f64::MIN_POSITIVE);

        // One set of sweep buffers, reused every iteration: residual and
        // correction panels plus the two halo panels. After the first
        // sweep the refinement loop allocates nothing.
        let nl = x.len();
        let (m, r) = x[0].shape();
        let mut res: Vec<Mat> = (0..nl).map(|_| Mat::zeros(m, r)).collect();
        let mut dx: Vec<Mat> = (0..nl).map(|_| Mat::zeros(m, r)).collect();
        let mut halo_l = Mat::zeros(m, r);
        let mut halo_r = Mat::zeros(m, r);
        let mut history = Vec::with_capacity(max_sweeps + 1);

        let mut residual = |comm: &mut C, x: &[Mat], res: &mut [Mat]| -> f64 {
            halo_exchange_into(
                comm,
                x[0].as_ref(),
                x[nl - 1].as_ref(),
                halo_l.as_mut(),
                halo_r.as_mut(),
            );
            local_residual_into(
                comm,
                sys,
                x,
                (halo_l.as_ref(), halo_r.as_ref()),
                y_local,
                res,
            );
            (comm.allreduce(sq_norm(res), |a, b| a + b) / y_norm2).sqrt()
        };

        let mut rel = residual(comm, &x, &mut res);
        history.push(rel);

        for sweep in 0..max_sweeps {
            if rel <= tol {
                break;
            }
            let _span = bt_obs::span_with("solver", "refine.sweep", || {
                format!("{{\"sweep\":{sweep},\"rel_residual\":{rel:e}}}")
            });
            // Correction: dx = F^{-1} res; x += dx.
            self.solve_replay_into(comm, &res, &mut dx);
            for (xk, dk) in x.iter_mut().zip(&dx) {
                xk.add_assign(dk);
            }
            let new_rel = residual(comm, &x, &mut res);
            if !new_rel.is_finite() || new_rel >= rel {
                // Diverging or stagnant: undo the last correction and stop.
                for (xk, dk) in x.iter_mut().zip(&dx) {
                    xk.sub_assign(dk);
                }
                break;
            }
            rel = new_rel;
            history.push(rel);
        }
        REFINE_ITERS.record((history.len() - 1) as u64);
        RefinedSolve {
            x_local: x,
            history,
        }
    }
}

/// Convenience driver: accelerated solve with refinement over one batch,
/// returning the assembled solution and the residual history.
///
/// # Errors
///
/// [`FactorError`] if setup breaks down.
///
/// # Panics
///
/// Panics if `n < p` or on shape mismatch.
pub fn ard_solve_refined<S: bt_blocktri::BlockRowSource + Sync>(
    p: usize,
    model: bt_mpsim::CostModel,
    boundary: BoundaryMode,
    src: &S,
    y: &bt_blocktri::BlockVec,
    max_sweeps: usize,
    tol: f64,
) -> Result<(bt_blocktri::BlockVec, Vec<f64>), FactorError> {
    let n = src.n();
    let m = src.m();
    assert!(n >= p, "need at least one block row per rank");
    let part = bt_blocktri::RowPartition::new(n, p);
    let out = bt_mpsim::run_spmd(p, model, |comm| -> Result<_, FactorError> {
        let sys = match boundary {
            BoundaryMode::ExactScan => RankSystem::from_source(src, p, comm.rank()),
            BoundaryMode::Windowed(w) => RankSystem::from_source_windowed(src, p, comm.rank(), w),
        };
        let factors = ArdRankFactors::setup_with(comm, &sys, true, boundary)?;
        let y_local: Vec<Mat> = part
            .range(comm.rank())
            .map(|i| y.blocks[i].clone())
            .collect();
        let refined = factors.solve_replay_refined(comm, &sys, &y_local, max_sweeps, tol);
        Ok((sys.lo, refined))
    });
    let mut x = bt_blocktri::BlockVec::zeros(n, m, y.r());
    let mut history = Vec::new();
    for res in out.results {
        let (lo, refined) = res?;
        for (k, panel) in refined.x_local.into_iter().enumerate() {
            x.blocks[lo + k] = panel;
        }
        history = refined.history;
    }
    Ok((x, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz, Poisson2D};
    use bt_mpsim::CostModel;

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    #[test]
    fn refinement_keeps_good_solutions_good() {
        let src = ClusteredToeplitz::standard(64, 4, 3);
        let t = materialize(&src);
        let y = random_rhs(64, 4, 3, 1);
        let (x, history) =
            ard_solve_refined(4, ZERO, BoundaryMode::ExactScan, &src, &y, 3, 1e-14).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-12);
        // Already at machine precision: at most one sweep recorded.
        assert!(history[0] < 1e-12, "history {history:?}");
    }

    #[test]
    fn refinement_rescues_the_gray_zone() {
        // Poisson N=32, M=6: the exact scan's boundary is degraded
        // (residual ~1e-3, Table III) but still a contraction — a few
        // sweeps recover machine precision. This extends the paper's
        // algorithm's usable envelope at O(M^2 R) per sweep. The sweep
        // budget leaves headroom over the ~13x-per-sweep contraction:
        // the exact count to cross 1e-12 shifts by one with kernel
        // rounding (FMA vs scalar dispatch), and the loop stops early
        // at `tol` anyway.
        let src = Poisson2D::new(32, 6);
        let t = materialize(&src);
        let y = random_rhs(32, 6, 2, 5);
        let (x, history) =
            ard_solve_refined(8, ZERO, BoundaryMode::ExactScan, &src, &y, 11, 1e-13).unwrap();
        assert!(
            history[0] > 1e-8,
            "premise: unrefined solve is degraded, got {:.1e}",
            history[0]
        );
        let final_res = t.rel_residual(&x, &y);
        assert!(
            final_res < 1e-12,
            "refined residual {final_res:.1e}, history {history:?}"
        );
        // Contraction: each sweep improves by orders of magnitude.
        assert!(history.len() >= 2 && history[1] < history[0] * 1e-1);
    }

    #[test]
    fn halo_exchange_moves_boundary_panels() {
        let out = bt_mpsim::run_spmd(3, ZERO, |comm| {
            let first = Mat::filled(2, 1, comm.rank() as f64 * 10.0);
            let last = Mat::filled(2, 1, comm.rank() as f64 * 10.0 + 1.0);
            let (l, r) = halo_exchange(comm, &first, &last);
            (l[(0, 0)], r[(0, 0)])
        });
        // rank 0: left = 0 (boundary), right = rank1.first = 10
        assert_eq!(out.results[0], (0.0, 10.0));
        // rank 1: left = rank0.last = 1, right = rank2.first = 20
        assert_eq!(out.results[1], (1.0, 20.0));
        // rank 2: left = rank1.last = 11, right = 0 (boundary)
        assert_eq!(out.results[2], (11.0, 0.0));
    }

    #[test]
    fn residual_history_is_monotone() {
        let src = Poisson2D::new(24, 4);
        let y = random_rhs(24, 4, 2, 7);
        let (_, history) =
            ard_solve_refined(4, ZERO, BoundaryMode::ExactScan, &src, &y, 6, 0.0).unwrap();
        for w in history.windows(2) {
            assert!(w[1] <= w[0], "history not monotone: {history:?}");
        }
    }
}
