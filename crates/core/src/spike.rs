//! SPIKE-style partitioned solver: a stability-oriented parallel
//! baseline (extension; not part of the paper).
//!
//! Each rank factors its *local* block tridiagonal diagonal block
//! `T_p` with the plain (stable) block Thomas algorithm and computes two
//! "spikes" — the columns of `T_p^{-1}` hit by the inter-rank coupling
//! blocks:
//!
//! ```text
//! global rows of rank p:   T_p x_p + e_first A_lo x_{lo-1}
//!                                  + e_last  C_{hi-1} x_{hi} = y_p
//! =>  x_p = T_p^{-1} y_p - W_p x_{lo-1} - V_p x_{hi}
//!     W_p = T_p^{-1} e_first A_lo      V_p = T_p^{-1} e_last C_{hi-1}
//! ```
//!
//! Restricting this relation to each partition's first and last block
//! rows ("tips") yields a *reduced* block tridiagonal system of `P` rows
//! with blocks of order `2M` in the tip unknowns `[x_lo; x_{hi-1}]`,
//! which rank 0 gathers, factors once and solves per batch.
//!
//! Relative to (accelerated) recursive doubling:
//!
//! * **Stability** — no transfer-matrix products, so no conditioning
//!   envelope: residuals are at Thomas level for *any* `N` and spectrum
//!   (Table III's gap does not exist here).
//! * **Scalability** — the reduced stage is `O(P M^3)` work serialized on
//!   rank 0 (vs the scans' `O(M^3 log P)` critical path), so SPIKE loses
//!   at large `P`; measured in `figa4_spike_comparison`.
//! * **Amortization** — like ARD, all matrix work (local factors, spikes,
//!   reduced factor) is right-hand-side independent: setup once, solve
//!   many, at `O(M^2 R N/P)` per batch.

use bt_blocktri::{BlockRow, BlockTridiag, BlockVec, FactorError, ThomasFactors};
use bt_comm::CommBackend;
use bt_dense::{gemm, gemm_flops, Mat, Trans};

use crate::state::RankSystem;

/// Tag for the per-solve tip scatter (below `USER_TAG_LIMIT`).
mod tags {
    pub const TIPS_DOWN: u64 = 513;
}

/// Matrix-dependent SPIKE state: local factors, spikes, and (on rank 0)
/// the factored reduced system.
#[derive(Debug)]
pub struct SpikeRankFactors {
    /// Block order.
    pub m: usize,
    /// First owned global row.
    pub lo: usize,
    /// One past the last owned global row.
    pub hi: usize,
    /// Factored local diagonal block `T_p`.
    local: ThomasFactors,
    /// Left spike `W_p` (`nl` blocks of `M x M`); empty on rank 0.
    w_spike: Vec<Mat>,
    /// Right spike `V_p`; empty on the last rank.
    v_spike: Vec<Mat>,
    /// Rank 0 only: factored reduced system (block order `2M`, `P` rows)
    /// plus its matrix.
    reduced: Option<(ThomasFactors, BlockTridiag)>,
}

impl SpikeRankFactors {
    /// Collective setup: local factorization, spike solves, and the
    /// gathered+factored reduced system on rank 0.
    ///
    /// # Errors
    ///
    /// [`FactorError`] (coordinated on every rank) if a local diagonal
    /// pivot block or the reduced system is singular.
    pub fn setup<C: CommBackend>(comm: &mut C, sys: &RankSystem) -> Result<Self, FactorError> {
        let m = sys.m;
        let nl = sys.local_len();
        let p = comm.size();
        let rank = comm.rank();

        // Local block tridiagonal with the coupling blocks zeroed out.
        let local_rows: Vec<BlockRow> = (0..nl)
            .map(|k| {
                let row = &sys.rows[k];
                let a = if k == 0 {
                    Mat::zeros(m, m)
                } else {
                    row.a.clone()
                };
                let c = if k == nl - 1 {
                    Mat::zeros(m, m)
                } else {
                    row.c.clone()
                };
                BlockRow::new(a, row.b.clone(), c)
            })
            .collect();
        let local_t = BlockTridiag::new(local_rows);
        let local = match ThomasFactors::factor(&local_t) {
            Ok(f) => Some(f),
            Err(mut e) => {
                e.row += sys.lo; // report in global numbering
                comm.allreduce(e.row as u64, |a, b| (*a).min(*b));
                return Err(e);
            }
        };
        // Coordinated success signal (peers may have failed).
        let first_err = comm.allreduce(u64::MAX, |a, b| (*a).min(*b));
        if first_err != u64::MAX {
            return Err(FactorError {
                row: first_err as usize,
                source: bt_dense::SingularError {
                    step: 0,
                    pivot: 0.0,
                },
            });
        }
        let local = local.expect("set above");
        comm.compute(bt_blocktri::thomas_factor_flops(nl, m));

        // Spikes: W = T^{-1} e_first A_lo, V = T^{-1} e_last C_{hi-1}.
        let coupling_a = &sys.rows[0].a; // zero on rank 0
        let coupling_c = &sys.rows[nl - 1].c; // zero on the last rank
        let w_spike = if rank == 0 {
            Vec::new()
        } else {
            let mut rhs = BlockVec::zeros(nl, m, m);
            rhs.blocks[0] = coupling_a.clone();
            let sol = local.solve(&rhs);
            comm.compute(bt_blocktri::thomas_solve_flops(nl, m, m));
            sol.blocks
        };
        let v_spike = if rank == p - 1 {
            Vec::new()
        } else {
            let mut rhs = BlockVec::zeros(nl, m, m);
            rhs.blocks[nl - 1] = coupling_c.clone();
            let sol = local.solve(&rhs);
            comm.compute(bt_blocktri::thomas_solve_flops(nl, m, m));
            sol.blocks
        };

        // Gather tip blocks of the spikes to rank 0 and assemble the
        // reduced system: unknown u_p = [x_lo; x_{hi-1}] (order 2M),
        //   u_p + Atil_p u_{p-1} + Ctil_p u_{p+1} = g_p
        // with Atil_p = [0 W_top; 0 W_bot], Ctil_p = [V_top 0; V_bot 0].
        let zero = Mat::zeros(m, m);
        let w_top = w_spike.first().unwrap_or(&zero).clone();
        let w_bot = w_spike.last().unwrap_or(&zero).clone();
        let v_top = v_spike.first().unwrap_or(&zero).clone();
        let v_bot = v_spike.last().unwrap_or(&zero).clone();
        let gathered = comm.gather(0, (w_top, w_bot, v_top, v_bot));

        let reduced_result: Result<Option<(ThomasFactors, BlockTridiag)>, FactorError> =
            if rank == 0 {
                let tips = gathered.expect("root gathers");
                let rows: Vec<BlockRow> = tips
                    .iter()
                    .enumerate()
                    .map(|(q, (wt, wb, vt, vb))| {
                        let mut a_til = Mat::zeros(2 * m, 2 * m);
                        if q > 0 {
                            a_til.set_block(0, m, wt);
                            a_til.set_block(m, m, wb);
                        }
                        let mut c_til = Mat::zeros(2 * m, 2 * m);
                        if q + 1 < p {
                            c_til.set_block(0, 0, vt);
                            c_til.set_block(m, 0, vb);
                        }
                        BlockRow::new(a_til, Mat::identity(2 * m), c_til)
                    })
                    .collect();
                let reduced_t = BlockTridiag::new(rows);
                match ThomasFactors::factor(&reduced_t) {
                    Ok(f) => {
                        comm.compute(bt_blocktri::thomas_factor_flops(p, 2 * m));
                        Ok(Some((f, reduced_t)))
                    }
                    Err(e) => Err(e),
                }
            } else {
                Ok(None)
            };
        // Reduced-factor failure coordination: root broadcasts the failing
        // reduced row (or MAX on success) so no rank blocks.
        let err_row = comm.broadcast(
            0,
            (rank == 0).then_some(match &reduced_result {
                Ok(_) => u64::MAX,
                Err(e) => e.row as u64,
            }),
        );
        if err_row != u64::MAX {
            return Err(match reduced_result {
                Err(e) => e,
                Ok(_) => FactorError {
                    row: err_row as usize,
                    source: bt_dense::SingularError {
                        step: 0,
                        pivot: 0.0,
                    },
                },
            });
        }
        let reduced = reduced_result.expect("checked above");

        Ok(Self {
            m,
            lo: sys.lo,
            hi: sys.hi,
            local,
            w_spike,
            v_spike,
            reduced,
        })
    }

    /// Number of owned rows.
    pub fn local_len(&self) -> usize {
        self.hi - self.lo
    }

    /// Bytes of matrix-dependent state stored by this rank.
    pub fn storage_bytes(&self) -> u64 {
        let mat_bytes = (self.m * self.m * 8) as u64;
        // Local LU diagonals + L factors + spikes.
        let local = 2 * self.local_len() as u64 * mat_bytes;
        let spikes = (self.w_spike.len() + self.v_spike.len()) as u64 * mat_bytes;
        let reduced = self
            .reduced
            .as_ref()
            .map_or(0, |(_, t)| 2 * t.n() as u64 * (4 * mat_bytes));
        local + spikes + reduced
    }

    /// Solves one right-hand-side batch (collective).
    ///
    /// `y_local[k]` is the `M x R` panel of global row `lo + k`.
    ///
    /// # Panics
    ///
    /// Panics on panel shape mismatch.
    pub fn solve<C: CommBackend>(&self, comm: &mut C, y_local: &[Mat]) -> Vec<Mat> {
        let m = self.m;
        let nl = self.local_len();
        let p = comm.size();
        let rank = comm.rank();
        assert_eq!(y_local.len(), nl, "rhs panel count mismatch");
        let r = y_local[0].cols();

        // Local solve x_hat = T_p^{-1} y_p.
        let x_hat = self.local.solve(&BlockVec::from_blocks(y_local.to_vec()));
        comm.compute(bt_blocktri::thomas_solve_flops(nl, m, r));

        // Send tips to rank 0; receive back the neighbour tips.
        let tips = (x_hat.blocks[0].clone(), x_hat.blocks[nl - 1].clone());
        let gathered = comm.gather(0, tips);

        let (bot_prev, top_next) = if rank == 0 {
            let tips = gathered.expect("root gathers");
            let (reduced_f, reduced_t) = self.reduced.as_ref().expect("root holds reduced");
            // Reduced RHS: g_q = [top_q; bot_q].
            let g = BlockVec::from_blocks(
                tips.iter()
                    .map(|(top, bot)| Mat::vstack(top, bot))
                    .collect(),
            );
            let u = reduced_f.solve(&g);
            comm.compute(bt_blocktri::thomas_solve_flops(p, 2 * m, r));
            debug_assert!(reduced_t.n() == p);
            // Scatter to each rank q its neighbours' tips:
            // bot_{q-1} (rows m..2m of u_{q-1}) and top_{q+1} (rows 0..m
            // of u_{q+1}).
            let mut mine = (Mat::zeros(m, r), Mat::zeros(m, r));
            for q in 0..p {
                let bot_prev = if q == 0 {
                    Mat::zeros(m, r)
                } else {
                    u.blocks[q - 1].block(m, 0, m, r)
                };
                let top_next = if q + 1 == p {
                    Mat::zeros(m, r)
                } else {
                    u.blocks[q + 1].block(0, 0, m, r)
                };
                if q == 0 {
                    mine = (bot_prev, top_next);
                } else {
                    comm.send(q, tags::TIPS_DOWN, (bot_prev, top_next));
                }
            }
            mine
        } else {
            comm.recv::<(Mat, Mat)>(0, tags::TIPS_DOWN)
        };

        // Correction: x = x_hat - W * bot_prev - V * top_next.
        let mut x = x_hat.blocks;
        if !self.w_spike.is_empty() {
            for (xk, wk) in x.iter_mut().zip(&self.w_spike) {
                gemm(-1.0, wk, Trans::No, &bot_prev, Trans::No, 1.0, xk);
                comm.compute(gemm_flops(m, m, r));
            }
        }
        if !self.v_spike.is_empty() {
            for (xk, vk) in x.iter_mut().zip(&self.v_spike) {
                gemm(-1.0, vk, Trans::No, &top_next, Trans::No, 1.0, xk);
                comm.compute(gemm_flops(m, m, r));
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RankSystem;
    use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz, Poisson2D, RandomDominant};
    use bt_blocktri::thomas::thomas_solve;
    use bt_blocktri::BlockRowSource;
    use bt_mpsim::{run_spmd, CostModel};

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    fn spike_solve_global(src: &(impl BlockRowSource + Sync), p: usize, y: &BlockVec) -> BlockVec {
        let n = src.n();
        let m = src.m();
        let part = bt_blocktri::RowPartition::new(n, p);
        let out = run_spmd(p, ZERO, |comm| {
            let sys = RankSystem::from_source(src, p, comm.rank());
            let factors = SpikeRankFactors::setup(comm, &sys).expect("setup");
            let y_local: Vec<Mat> = part
                .range(comm.rank())
                .map(|i| y.blocks[i].clone())
                .collect();
            (sys.lo, factors.solve(comm, &y_local))
        });
        let mut x = BlockVec::zeros(n, m, y.r());
        for (lo, panels) in out.results {
            for (k, panel) in panels.into_iter().enumerate() {
                x.blocks[lo + k] = panel;
            }
        }
        x
    }

    #[test]
    fn matches_thomas_on_clustered() {
        let src = ClusteredToeplitz::standard(64, 4, 3);
        let t = materialize(&src);
        let y = random_rhs(64, 4, 3, 5);
        let x_th = thomas_solve(&t, &y).unwrap();
        for p in [1, 2, 3, 4, 8] {
            let x = spike_solve_global(&src, p, &y);
            assert!(x.rel_diff(&x_th) < 1e-11, "p={p}: {}", x.rel_diff(&x_th));
        }
    }

    #[test]
    fn stable_on_large_poisson() {
        // Where the exact-scan prefix method breaks down (Table III),
        // SPIKE stays at Thomas-level accuracy.
        let src = Poisson2D::new(512, 6);
        let t = materialize(&src);
        let y = random_rhs(512, 6, 2, 1);
        let x = spike_solve_global(&src, 8, &y);
        assert!(
            t.rel_residual(&x, &y) < 1e-12,
            "residual {}",
            t.rel_residual(&x, &y)
        );
    }

    #[test]
    fn stable_on_large_random_dominant() {
        let src = RandomDominant::new(256, 4, 1.5, 7);
        let t = materialize(&src);
        let y = random_rhs(256, 4, 2, 2);
        let x = spike_solve_global(&src, 8, &y);
        assert!(t.rel_residual(&x, &y) < 1e-12);
    }

    #[test]
    fn multi_rhs_and_uneven_partitions() {
        let src = ClusteredToeplitz::standard(37, 3, 9);
        let t = materialize(&src);
        let y = random_rhs(37, 3, 7, 4);
        for p in [3, 5, 7] {
            let x = spike_solve_global(&src, p, &y);
            assert!(t.rel_residual(&x, &y) < 1e-12, "p={p}");
        }
    }

    #[test]
    fn setup_once_solve_many() {
        let src = ClusteredToeplitz::standard(48, 4, 11);
        let t = materialize(&src);
        let p = 4;
        let part = bt_blocktri::RowPartition::new(48, p);
        let ys: Vec<BlockVec> = (0..3).map(|s| random_rhs(48, 4, 2, s)).collect();
        let ys_ref = &ys;
        let part_ref = &part;
        let out = run_spmd(p, ZERO, |comm| {
            let sys = RankSystem::from_source(&src, p, comm.rank());
            let factors = SpikeRankFactors::setup(comm, &sys).expect("setup");
            assert!(factors.storage_bytes() > 0);
            ys_ref
                .iter()
                .map(|y| {
                    let y_local: Vec<Mat> = part_ref
                        .range(comm.rank())
                        .map(|i| y.blocks[i].clone())
                        .collect();
                    (sys.lo, factors.solve(comm, &y_local))
                })
                .collect::<Vec<_>>()
        });
        for (b, y) in ys.iter().enumerate() {
            let mut x = BlockVec::zeros(48, 4, 2);
            for rank_out in &out.results {
                let (lo, panels) = &rank_out[b];
                for (k, panel) in panels.iter().enumerate() {
                    x.blocks[lo + k] = panel.clone();
                }
            }
            assert!(t.rel_residual(&x, y) < 1e-12, "batch {b}");
        }
    }

    #[test]
    fn single_rank_degenerates_to_thomas() {
        let src = ClusteredToeplitz::standard(20, 3, 1);
        let t = materialize(&src);
        let y = random_rhs(20, 3, 2, 3);
        let x = spike_solve_global(&src, 1, &y);
        let x_th = thomas_solve(&t, &y).unwrap();
        assert!(x.rel_diff(&x_th) < 1e-14);
    }
}
