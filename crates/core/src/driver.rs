//! Whole-run drivers: launch an SPMD world, scatter the system, run the
//! solvers, gather solutions and per-phase timings.
//!
//! These are the entry points the examples, tests and the experiment
//! harness use. For embedding in an existing SPMD program, use the
//! rank-level API ([`crate::state`]) directly.

use std::time::{Duration, Instant};

use bt_blocktri::{BlockRowSource, BlockVec, FactorError, RowPartition};
use bt_comm::{CommBackend, CostModel, SpmdBackend, WorldStats};
use bt_dense::Mat;
use bt_mpsim::SimBackend;
use bt_shm::ShmBackend;

use crate::pcr::PcrRankFactors;
use crate::spike::SpikeRankFactors;
use crate::state::{ArdRankFactors, BoundaryMode, RankSystem};

/// Per-phase timing of one run, aggregated over ranks (maximum).
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    /// Wall-clock time of setup (zero for classic RD, which has none).
    pub setup_wall: Duration,
    /// Modeled (virtual) time of setup.
    pub setup_modeled: f64,
    /// Wall-clock time of each solve batch.
    pub solve_wall: Vec<Duration>,
    /// Modeled time of each solve batch.
    pub solve_modeled: Vec<f64>,
}

impl PhaseTimings {
    /// Total wall time (setup plus all solves).
    pub fn total_wall(&self) -> Duration {
        self.setup_wall + self.solve_wall.iter().sum::<Duration>()
    }

    /// Total modeled time (setup plus all solves).
    pub fn total_modeled(&self) -> f64 {
        self.setup_modeled + self.solve_modeled.iter().sum::<f64>()
    }
}

/// Result of a distributed solve over one or more right-hand-side batches.
#[derive(Debug)]
pub struct DistOutcome {
    /// One solution block vector per input batch.
    pub x: Vec<BlockVec>,
    /// Communication/computation counters, per rank.
    pub stats: WorldStats,
    /// Max-over-ranks per-phase timings.
    pub timings: PhaseTimings,
    /// Peak per-rank stored factor bytes (0 for classic RD).
    pub factor_bytes: u64,
    /// Worst boundary-extraction condition estimate (ARD exact-scan runs
    /// only; 1.0 otherwise). See `ArdRankFactors::boundary_condition`.
    pub boundary_condition: f64,
    /// Kernel/solver counter deltas attributable to this run (counter
    /// name -> increment), captured from the `bt-obs` metrics registry.
    /// `None` when observability is off (`BT_OBS` unset); zero-delta
    /// counters are omitted.
    pub obs_counters: Option<std::collections::BTreeMap<String, u64>>,
}

/// Per-rank raw output carried back from the SPMD closure.
struct RankOutput {
    lo: usize,
    boundary_condition: f64,
    x_local: Vec<Vec<Mat>>, // [batch][local row]
    setup_wall: Duration,
    setup_vt: f64,
    solve_wall: Vec<Duration>,
    solve_vt: Vec<f64>,
    factor_bytes: u64,
}

fn assemble(
    n: usize,
    m: usize,
    batches: usize,
    outputs: &[Result<RankOutput, FactorError>],
) -> Result<(Vec<BlockVec>, PhaseTimings, u64, f64), FactorError> {
    // Surface the first error (all ranks agree on it).
    for out in outputs {
        if let Err(e) = out {
            return Err(e.clone());
        }
    }
    let outputs: Vec<&RankOutput> = outputs
        .iter()
        .map(|o| o.as_ref().expect("checked above"))
        .collect();

    let r = outputs[0]
        .x_local
        .first()
        .and_then(|b| b.first())
        .map_or(0, Mat::cols);
    let mut xs = vec![BlockVec::zeros(n, m, r); batches];
    for out in &outputs {
        for (bi, panels) in out.x_local.iter().enumerate() {
            for (k, panel) in panels.iter().enumerate() {
                xs[bi].blocks[out.lo + k] = panel.clone();
            }
        }
    }

    let mut t = PhaseTimings {
        setup_wall: Duration::ZERO,
        setup_modeled: 0.0,
        solve_wall: vec![Duration::ZERO; batches],
        solve_modeled: vec![0.0; batches],
    };
    let mut factor_bytes = 0u64;
    let mut boundary_condition = 1.0f64;
    for out in &outputs {
        t.setup_wall = t.setup_wall.max(out.setup_wall);
        t.setup_modeled = t.setup_modeled.max(out.setup_vt);
        for bi in 0..batches {
            t.solve_wall[bi] = t.solve_wall[bi].max(out.solve_wall[bi]);
            t.solve_modeled[bi] = t.solve_modeled[bi].max(out.solve_vt[bi]);
        }
        factor_bytes = factor_bytes.max(out.factor_bytes);
        boundary_condition = boundary_condition.max(out.boundary_condition);
    }
    Ok((xs, t, factor_bytes, boundary_condition))
}

/// Extracts rank `rank`'s local panels of a global block vector.
fn local_panels(part: &RowPartition, rank: usize, y: &BlockVec) -> Vec<Mat> {
    part.range(rank).map(|i| y.blocks[i].clone()).collect()
}

/// Solves every batch with **classic recursive doubling**: all
/// matrix-dependent work is redone per batch —
/// `O(M^3 (N/P + log P))` each.
///
/// # Errors
///
/// [`FactorError`] if a block diagonal is singular.
///
/// # Panics
///
/// Panics if `batches` is empty, shapes are inconsistent, or `N < P`.
pub fn rd_solve_dist<S: BlockRowSource + Sync>(
    p: usize,
    model: CostModel,
    src: &S,
    batches: &[BlockVec],
) -> Result<DistOutcome, FactorError> {
    run_driver(p, model, src, batches, Mode::ClassicRd)
}

/// Solves every batch with the **accelerated recursive doubling**
/// algorithm: one `O(M^3 (N/P + log P))` setup, then
/// `O(M^2 R (N/P + log P))` per batch.
///
/// # Errors
///
/// [`FactorError`] if a block diagonal is singular.
///
/// # Panics
///
/// Panics if `batches` is empty, shapes are inconsistent, or `N < P`.
pub fn ard_solve_dist<S: BlockRowSource + Sync>(
    p: usize,
    model: CostModel,
    src: &S,
    batches: &[BlockVec],
) -> Result<DistOutcome, FactorError> {
    run_driver(p, model, src, batches, Mode::Accelerated)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    ClassicRd,
    Accelerated,
    Spike,
    Pcr,
}

impl Mode {
    /// Short algorithm label used in trace span arguments.
    fn name(self) -> &'static str {
        match self {
            Mode::ClassicRd => "rd",
            Mode::Accelerated => "ard",
            Mode::Spike => "spike",
            Mode::Pcr => "pcr",
        }
    }
}

/// Full driver configuration; the `*_solve_dist` helpers use
/// [`BoundaryMode::ExactScan`] (the paper's algorithm).
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// World size (ranks).
    pub p: usize,
    /// Cost model for the virtual-time engine.
    pub model: CostModel,
    /// Phase 1 boundary recovery mode.
    pub boundary: BoundaryMode,
    /// Memory-lean accelerated solves: shed the per-row prefix matrices
    /// after setup and use the boundary-recurrence replay
    /// ([`ArdRankFactors::solve_replay_lean`]). Same flop count and
    /// message pattern, ~40% less stored factor memory. Ignored by the
    /// classic-RD driver.
    pub lean: bool,
    /// Intra-rank threads for the dense kernels on each simulated rank.
    /// Overrides the cost model's `threads_per_rank` for the run:
    /// `run_spmd` stamps every rank thread with this budget and the
    /// modeled compute time divides by it, while the exact flop/byte
    /// counters are unaffected. Defaults to the `BT_DENSE_THREADS`
    /// environment variable, or 1 when unset.
    pub threads_per_rank: usize,
}

impl DriverConfig {
    /// Default configuration: cluster cost model, exact-scan boundary,
    /// `BT_DENSE_THREADS` (default 1) intra-rank threads.
    pub fn new(p: usize) -> Self {
        Self {
            p,
            model: CostModel::cluster(),
            boundary: BoundaryMode::ExactScan,
            lean: false,
            threads_per_rank: bt_dense::threading::default_threads(),
        }
    }

    /// Sets the cost model. The model's own `threads_per_rank` is
    /// superseded by the config's (see [`Self::with_threads_per_rank`]).
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the intra-rank thread budget (clamped to >= 1 at run time).
    pub fn with_threads_per_rank(mut self, threads: usize) -> Self {
        self.threads_per_rank = threads;
        self
    }

    /// Sets the boundary mode.
    pub fn with_boundary(mut self, boundary: BoundaryMode) -> Self {
        self.boundary = boundary;
        self
    }

    /// Enables memory-lean accelerated solves.
    pub fn with_lean(mut self) -> Self {
        self.lean = true;
        self
    }
}

/// SPIKE-style partitioned solver under an explicit [`DriverConfig`]
/// (the stability-oriented parallel baseline; `boundary`/`lean` are
/// ignored).
///
/// # Errors
///
/// [`FactorError`] if a local pivot block or the reduced system is
/// singular.
pub fn spike_solve_cfg<S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
) -> Result<DistOutcome, FactorError> {
    run_driver_cfg(cfg, src, batches, Mode::Spike)
}

/// Amortized parallel cyclic reduction under an explicit
/// [`DriverConfig`] (the BCYCLIC-style comparator; `boundary`/`lean` are
/// ignored).
///
/// # Errors
///
/// [`FactorError`] if a diagonal block is singular at some elimination
/// level.
pub fn pcr_solve_cfg<S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
) -> Result<DistOutcome, FactorError> {
    run_driver_cfg(cfg, src, batches, Mode::Pcr)
}

/// Classic recursive doubling under an explicit [`DriverConfig`].
///
/// # Errors
///
/// [`FactorError`] if a block diagonal (or, in exact-scan mode, a
/// superdiagonal block) is singular.
pub fn rd_solve_cfg<S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
) -> Result<DistOutcome, FactorError> {
    run_driver_cfg(cfg, src, batches, Mode::ClassicRd)
}

/// Accelerated recursive doubling under an explicit [`DriverConfig`].
///
/// # Errors
///
/// [`FactorError`] if a block diagonal (or, in exact-scan mode, a
/// superdiagonal block) is singular.
pub fn ard_solve_cfg<S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
) -> Result<DistOutcome, FactorError> {
    run_driver_cfg(cfg, src, batches, Mode::Accelerated)
}

/// Which [`SpmdBackend`] the environment selects for driver-level entry
/// points (`BT_BACKEND`): the virtual-clock simulator (`sim`, default)
/// or the real shared-memory runtime (`shm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// `bt-mpsim`: modeled clocks, exact counters, deterministic.
    Sim,
    /// `bt-shm`: real rank threads, wall-clock timings.
    Shm,
}

impl BackendKind {
    /// Reads `BT_BACKEND` (`sim`/`shm`, unset means `sim`). Re-read on
    /// every call so tests can flip the variable per-process-phase.
    ///
    /// # Panics
    ///
    /// Panics on an unknown value — a misspelled backend silently
    /// falling back to the simulator would invalidate measurements.
    pub fn from_env() -> Self {
        match std::env::var("BT_BACKEND").as_deref() {
            Err(_) | Ok("") | Ok("sim") => BackendKind::Sim,
            Ok("shm") => BackendKind::Shm,
            Ok(other) => panic!("BT_BACKEND={other:?}: expected \"sim\" or \"shm\""),
        }
    }

    /// The backend's display name (matches [`SpmdBackend::name`]).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sim => SimBackend::name(),
            BackendKind::Shm => ShmBackend::name(),
        }
    }
}

/// [`ard_solve_cfg`] on an explicitly chosen backend `B`, bypassing the
/// `BT_BACKEND` environment dispatch (benchmarks and cross-backend
/// agreement tests pick both backends in one process this way).
///
/// # Errors
///
/// [`FactorError`] if a block diagonal (or, in exact-scan mode, a
/// superdiagonal block) is singular.
pub fn ard_solve_cfg_on<B: SpmdBackend, S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
) -> Result<DistOutcome, FactorError> {
    run_driver_cfg_on::<B, S>(cfg, src, batches, Mode::Accelerated)
}

/// [`pcr_solve_cfg`] on an explicitly chosen backend `B` (see
/// [`ard_solve_cfg_on`]).
///
/// # Errors
///
/// [`FactorError`] if a diagonal block is singular at some elimination
/// level.
pub fn pcr_solve_cfg_on<B: SpmdBackend, S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
) -> Result<DistOutcome, FactorError> {
    run_driver_cfg_on::<B, S>(cfg, src, batches, Mode::Pcr)
}

fn run_driver<S: BlockRowSource + Sync>(
    p: usize,
    model: CostModel,
    src: &S,
    batches: &[BlockVec],
    mode: Mode,
) -> Result<DistOutcome, FactorError> {
    let cfg = DriverConfig::new(p).with_model(model);
    run_driver_cfg(&cfg, src, batches, mode)
}

/// Dispatches to the `BT_BACKEND`-selected backend (monomorphized per
/// backend; no dynamic dispatch on the rank hot path).
fn run_driver_cfg<S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
    mode: Mode,
) -> Result<DistOutcome, FactorError> {
    match BackendKind::from_env() {
        BackendKind::Sim => run_driver_cfg_on::<SimBackend, S>(cfg, src, batches, mode),
        BackendKind::Shm => run_driver_cfg_on::<ShmBackend, S>(cfg, src, batches, mode),
    }
}

fn run_driver_cfg_on<B: SpmdBackend, S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
    mode: Mode,
) -> Result<DistOutcome, FactorError> {
    let p = cfg.p;
    let model = cfg.model.with_threads_per_rank(cfg.threads_per_rank.max(1));
    let n = src.n();
    let m = src.m();
    assert!(
        !batches.is_empty(),
        "need at least one right-hand-side batch"
    );
    assert!(
        n >= p,
        "need at least one block row per rank (N={n}, P={p})"
    );
    for (bi, y) in batches.iter().enumerate() {
        assert_eq!(y.n(), n, "batch {bi}: block count mismatch");
        assert_eq!(y.m(), m, "batch {bi}: block order mismatch");
        assert!(
            y.r() >= 1,
            "batch {bi}: needs at least one right-hand-side column"
        );
    }
    let part = RowPartition::new(n, p);

    // Counter baseline: the delta across the SPMD run is what this solve
    // (all ranks, all batches) actually did in the instrumented kernels.
    let counters_before = bt_obs::enabled().then(bt_obs::counters_snapshot);

    let spmd = B::run(
        p,
        model,
        |comm: &mut B::Comm| -> Result<RankOutput, FactorError> {
            let rank = comm.rank();
            let sys = match cfg.boundary {
                BoundaryMode::ExactScan => RankSystem::from_source(src, p, rank),
                BoundaryMode::Windowed(w) => RankSystem::from_source_windowed(src, p, rank, w),
            };
            let y_locals: Vec<Vec<Mat>> = batches
                .iter()
                .map(|y| local_panels(&part, rank, y))
                .collect();

            let mut out = RankOutput {
                lo: sys.lo,
                boundary_condition: 1.0,
                x_local: Vec::with_capacity(batches.len()),
                setup_wall: Duration::ZERO,
                setup_vt: 0.0,
                solve_wall: Vec::with_capacity(batches.len()),
                solve_vt: Vec::with_capacity(batches.len()),
                factor_bytes: 0,
            };

            match mode {
                Mode::Accelerated => {
                    comm.barrier();
                    let vt0 = comm.virtual_time();
                    let t0 = Instant::now();
                    let span_setup =
                        bt_obs::span_with("solver", "setup", || r#"{"algo":"ard"}"#.to_string());
                    let mut factors = ArdRankFactors::setup_with(comm, &sys, true, cfg.boundary)?;
                    if cfg.lean {
                        factors.shed_prefixes();
                    }
                    comm.barrier();
                    drop(span_setup);
                    out.setup_wall = t0.elapsed();
                    out.setup_vt = comm.virtual_time() - vt0;
                    out.factor_bytes = factors.storage_bytes();
                    out.boundary_condition = factors.boundary_condition();
                    for (bi, y_local) in y_locals.iter().enumerate() {
                        let vt0 = comm.virtual_time();
                        let t0 = Instant::now();
                        let _span = bt_obs::span_with("solver", "solve_batch", || {
                            format!("{{\"algo\":\"ard\",\"batch\":{bi}}}")
                        });
                        let x = if cfg.lean {
                            factors.solve_replay_lean(comm, y_local)
                        } else {
                            factors.solve_replay(comm, y_local)
                        };
                        comm.barrier();
                        out.solve_wall.push(t0.elapsed());
                        out.solve_vt.push(comm.virtual_time() - vt0);
                        out.x_local.push(x);
                    }
                }
                Mode::Pcr | Mode::Spike => {
                    comm.barrier();
                    let vt0 = comm.virtual_time();
                    let t0 = Instant::now();
                    let algo = mode.name();
                    let span_setup =
                        bt_obs::span_with("solver", "setup", || format!("{{\"algo\":\"{algo}\"}}"));
                    enum Either {
                        Pcr(PcrRankFactors),
                        Spike(SpikeRankFactors),
                    }
                    let factors = if mode == Mode::Pcr {
                        Either::Pcr(PcrRankFactors::setup(comm, &sys)?)
                    } else {
                        Either::Spike(SpikeRankFactors::setup(comm, &sys)?)
                    };
                    comm.barrier();
                    drop(span_setup);
                    out.setup_wall = t0.elapsed();
                    out.setup_vt = comm.virtual_time() - vt0;
                    out.factor_bytes = match &factors {
                        Either::Pcr(f) => f.storage_bytes(),
                        Either::Spike(f) => f.storage_bytes(),
                    };
                    for (bi, y_local) in y_locals.iter().enumerate() {
                        let vt0 = comm.virtual_time();
                        let t0 = Instant::now();
                        let _span = bt_obs::span_with("solver", "solve_batch", || {
                            format!("{{\"algo\":\"{algo}\",\"batch\":{bi}}}")
                        });
                        let x = match &factors {
                            Either::Pcr(f) => f.solve(comm, y_local),
                            Either::Spike(f) => f.solve(comm, y_local),
                        };
                        comm.barrier();
                        out.solve_wall.push(t0.elapsed());
                        out.solve_vt.push(comm.virtual_time() - vt0);
                        out.x_local.push(x);
                    }
                }
                Mode::ClassicRd => {
                    comm.barrier();
                    for (bi, y_local) in y_locals.iter().enumerate() {
                        let vt0 = comm.virtual_time();
                        let t0 = Instant::now();
                        let _span = bt_obs::span_with("solver", "solve_batch", || {
                            format!("{{\"algo\":\"rd\",\"batch\":{bi}}}")
                        });
                        let factors = ArdRankFactors::setup_with(comm, &sys, false, cfg.boundary)?;
                        let x = factors.solve_fresh(comm, y_local);
                        comm.barrier();
                        out.solve_wall.push(t0.elapsed());
                        out.solve_vt.push(comm.virtual_time() - vt0);
                        out.x_local.push(x);
                    }
                }
            }
            Ok(out)
        },
    );

    let obs_counters = counters_before.map(|before| bt_obs::counters_diff(&before));
    let (x, timings, factor_bytes, boundary_condition) =
        assemble(n, m, batches.len(), &spmd.results)?;
    Ok(DistOutcome {
        x,
        stats: spmd.stats,
        timings,
        factor_bytes,
        boundary_condition,
        obs_counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_blocktri::gen::{random_rhs, RandomDominant};

    #[test]
    fn timings_total_adds_phases() {
        let t = PhaseTimings {
            setup_wall: Duration::from_millis(5),
            setup_modeled: 1.0,
            solve_wall: vec![Duration::from_millis(2), Duration::from_millis(3)],
            solve_modeled: vec![0.25, 0.5],
        };
        assert_eq!(t.total_wall(), Duration::from_millis(10));
        assert!((t.total_modeled() - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one block row per rank")]
    fn too_many_ranks_rejected() {
        let src = RandomDominant::new(2, 2, 1.5, 0);
        let y = random_rhs(2, 2, 1, 0);
        let _ = ard_solve_dist(4, CostModel::zero(), &src, &[y]);
    }

    #[test]
    #[should_panic(expected = "at least one right-hand-side batch")]
    fn empty_batches_rejected() {
        let src = RandomDominant::new(4, 2, 1.5, 0);
        let _ = ard_solve_dist(2, CostModel::zero(), &src, &[]);
    }
}
