//! Analytic cost model: the paper's complexity expressions with explicit
//! constants matching this implementation's kernels.
//!
//! These formulas are validated against the runtime's measured flop and
//! byte counters in Table I (`table1_complexity`) and in the integration
//! tests. All counts are **per rank** along the critical path (the most
//! loaded rank), with `nl = ceil(N/P)` local rows and
//! `L = ceil(log2 P)` scan rounds.
//!
//! | quantity | classic RD (per solve) | ARD setup | ARD solve |
//! |---|---|---|---|
//! | flops | `O(M^3 (N/P + log P))` | `O(M^3 (N/P + log P))` | `O(M^2 R (N/P + log P))` |
//! | words | `O(M^2 log P)` | `O(M^2 log P)` | `O(M R log P)` |
//!
//! The predicted `R`-RHS speedup of ARD over RD,
//! `R M^3 / (M^3 + R M^2) = R / (1 + R/M)`, is linear in `R` until it
//! saturates at `~M` — the abstract's "O(R) improvement" with
//! `R ~ 10^2..10^4`.

/// Ceil of log2 (0 for worlds of size 1).
pub fn log2_ceil(p: usize) -> u32 {
    assert!(p > 0, "log2 of zero");
    usize::BITS - (p - 1).leading_zeros()
}

/// Problem-size parameters of one experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Block rows.
    pub n: usize,
    /// Block order.
    pub m: usize,
    /// Ranks.
    pub p: usize,
    /// Right-hand sides per batch.
    pub r: usize,
}

impl Config {
    /// Local rows on the most loaded rank.
    pub fn nl(&self) -> usize {
        self.n.div_ceil(self.p)
    }

    /// Scan rounds.
    pub fn rounds(&self) -> u32 {
        log2_ceil(self.p)
    }
}

const fn cube(m: usize) -> f64 {
    (m * m * m) as f64
}

/// Flops of the matrix-dependent work (ARD setup; also performed by every
/// classic-RD solve).
///
/// Leading terms per local row: companion `W_i` construction (LU + two
/// solves, ~4.7M^3) + companion total update (8M^3) + Thomas pass
/// (LU 2/3 M^3 + two triangular stages 2M^3 each + GEMM 2M^3) + `G`
/// (2M^3) + two prefix products (2M^3 each). Per scan round: one
/// companion compose (16M^3) + two affine matrix composes (2M^3 each).
pub fn setup_flops(c: &Config) -> f64 {
    let m = c.m;
    let per_row = (2.0 / 3.0 + 4.0) * cube(m) // building W_i (LU(C) + 2 solves)
        + 8.0 * cube(m)                  // companion total apply_left
        + (2.0 / 3.0) * cube(m)          // LU(D_i)
        + 2.0 * cube(m)                  // F_i right division
        + 2.0 * cube(m)                  // D_i update GEMM
        + 2.0 * cube(m)                  // G_i solve
        + 4.0 * cube(m); // two local prefix products
    let per_round = 16.0 * cube(m)       // companion compose
        + 2.0 * 2.0 * cube(m); // two affine matrix composes
    per_row * c.nl() as f64 + per_round * c.rounds() as f64
}

/// Flops of one accelerated solve (vector work only). Per local row:
/// forward recurrence (2M^2 R) + forward fixup (2M^2 R) + `h` solve
/// (2M^2 R) + backward recurrence (2M^2 R) + backward fixup (2M^2 R);
/// per scan round: two panel combines (2M^2 R each).
pub fn ard_solve_flops(c: &Config) -> f64 {
    let m2r = (c.m * c.m * c.r) as f64;
    let per_row = 10.0 * m2r;
    let per_round = 2.0 * 2.0 * m2r;
    per_row * c.nl() as f64 + per_round * c.rounds() as f64
}

/// Flops of one classic recursive doubling solve: the full setup plus the
/// vector work, with the affine scans paying matrix composes per round.
pub fn rd_solve_flops(c: &Config) -> f64 {
    setup_flops(c) + ard_solve_flops(c)
}

/// Payload bytes sent per rank during setup / one classic RD solve's
/// matrix scans: per round, one companion product (`4 M^2` doubles) and
/// two affine matrices (`M^2` each), plus the exclusive-shift messages.
pub fn setup_bytes_per_rank(c: &Config) -> f64 {
    let m2 = (c.m * c.m * 8) as f64;
    let rounds = c.rounds() as f64;
    // companion scan: (top,bot) = 4 M^2 doubles per message; one shift.
    // affine scans: M^2 (+ zero-width vec) per message; one shift each.
    (rounds + 1.0) * (4.0 * m2) + 2.0 * (rounds + 1.0) * m2
}

/// Payload bytes sent per rank during one accelerated solve: per round,
/// two `M x R` panels (forward + backward scans), plus shifts.
pub fn ard_solve_bytes_per_rank(c: &Config) -> f64 {
    let mr = (c.m * c.r * 8) as f64;
    2.0 * (c.rounds() as f64 + 1.0) * mr
}

/// Payload bytes sent per rank during one classic RD solve: matrix scans
/// plus panels.
pub fn rd_solve_bytes_per_rank(c: &Config) -> f64 {
    setup_bytes_per_rank(c) + ard_solve_bytes_per_rank(c)
}

/// Bytes of stored factors per rank (ARD's memory price): five `M x M`
/// matrices per local row plus the recorded scan traces.
pub fn ard_storage_bytes(c: &Config) -> f64 {
    let m2 = (c.m * c.m * 8) as f64;
    5.0 * m2 * c.nl() as f64 + 2.0 * m2 * c.rounds() as f64
}

/// Predicted modeled time of ARD setup under an alpha-beta/flop-rate
/// cost model: critical-path flops plus per-round message costs of the
/// three scans (companion products of `4 M^2` doubles, two affine
/// matrices of `M^2` doubles each, plus the exclusive shifts).
///
/// The compute term goes through [`bt_mpsim::CostModel::compute_time`],
/// so it divides by the model's `threads_per_rank`; the flop/byte
/// *counts* from [`setup_flops`] and friends are exact and
/// thread-count independent (Table I validation).
pub fn predicted_setup_seconds(c: &Config, model: &bt_mpsim::CostModel) -> f64 {
    let m2b = (c.m * c.m * 8) as u64;
    let rounds = c.rounds() as f64 + 1.0; // + exclusive shift
    let msg = rounds * (model.msg_time(4 * m2b) + 2.0 * model.msg_time(m2b));
    model.compute_time(setup_flops(c) as u64) + msg
}

/// Predicted modeled time of one accelerated solve: critical-path flops
/// plus two `M x R` panels per round.
pub fn predicted_ard_solve_seconds(c: &Config, model: &bt_mpsim::CostModel) -> f64 {
    let mrb = (c.m * c.r * 8) as u64;
    let rounds = c.rounds() as f64 + 1.0;
    model.compute_time(ard_solve_flops(c) as u64) + rounds * 2.0 * model.msg_time(mrb)
}

/// Predicted speedup of ARD over classic RD for solving `r` right-hand
/// sides (in `ceil(r / batch)` batches of `batch` columns each), by the
/// flop model.
pub fn predicted_speedup(c: &Config, total_rhs: usize, batch: usize) -> f64 {
    let batches = total_rhs.div_ceil(batch);
    let per_batch = Config { r: batch, ..*c };
    let rd = rd_solve_flops(&per_batch) * batches as f64;
    let ard = setup_flops(&per_batch) + ard_solve_flops(&per_batch) * batches as f64;
    rd / ard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_divide_compute_by_threads_but_counters_do_not() {
        let c = Config {
            n: 4096,
            m: 8,
            p: 16,
            r: 4,
        };
        let m1 = bt_mpsim::CostModel::cluster();
        let m4 = m1.with_threads_per_rank(4);
        // Pure-compute part shrinks 4x; the message part is unchanged, so
        // the total sits strictly between t1/4 and t1.
        let t1 = predicted_setup_seconds(&c, &m1);
        let t4 = predicted_setup_seconds(&c, &m4);
        assert!(t4 < t1 && t4 > t1 / 4.0, "t1={t1} t4={t4}");
        let s1 = predicted_ard_solve_seconds(&c, &m1);
        let s4 = predicted_ard_solve_seconds(&c, &m4);
        assert!(s4 < s1 && s4 > s1 / 4.0, "s1={s1} s4={s4}");
        // The flop *counts* feeding Table I never see the thread knob:
        // setup_flops & co. are pure functions of the problem Config, and
        // predicted_speedup is a ratio of them, so both stay exact.
        assert!(setup_flops(&c) > 0.0);
        assert!(predicted_speedup(&c, 64, 4) > 1.0);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
    }

    #[test]
    fn config_derived_quantities() {
        let c = Config {
            n: 100,
            m: 8,
            p: 8,
            r: 4,
        };
        assert_eq!(c.nl(), 13);
        assert_eq!(c.rounds(), 3);
    }

    #[test]
    fn setup_dominates_ard_solve_for_small_r() {
        let c = Config {
            n: 512,
            m: 32,
            p: 8,
            r: 1,
        };
        assert!(setup_flops(&c) > 10.0 * ard_solve_flops(&c));
    }

    #[test]
    fn rd_cost_flat_in_r_ard_linear_in_r() {
        let base = Config {
            n: 256,
            m: 16,
            p: 4,
            r: 1,
        };
        let big = Config { r: 16, ..base };
        // RD per-solve barely grows with R (matrix work dominates)...
        assert!(rd_solve_flops(&big) < 1.6 * rd_solve_flops(&base));
        // ...while ARD's per-solve cost is proportional to R.
        let ratio = ard_solve_flops(&big) / ard_solve_flops(&base);
        assert!((ratio - 16.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_grows_linearly_then_saturates() {
        let c = Config {
            n: 1024,
            m: 64,
            p: 16,
            r: 1,
        };
        let s1 = predicted_speedup(&c, 1, 1);
        let s8 = predicted_speedup(&c, 8, 1);
        let s64 = predicted_speedup(&c, 64, 1);
        let s4096 = predicted_speedup(&c, 4096, 1);
        assert!(s1 < 1.05, "single RHS: no speedup, got {s1}");
        assert!(s8 > 4.0 && s8 < 9.0, "R=8 speedup ~R, got {s8}");
        assert!(s64 > 20.0, "R=64 speedup substantial, got {s64}");
        // Saturation: bounded by an O(M) constant (ratio of the setup and
        // per-RHS flop constants is ~2.3).
        assert!(s4096 < 3.0 * c.m as f64, "saturates near O(M), got {s4096}");
        assert!(s4096 > s64);
    }

    #[test]
    fn bytes_scale_as_documented() {
        let c1 = Config {
            n: 256,
            m: 8,
            p: 16,
            r: 4,
        };
        let c2 = Config { m: 16, ..c1 };
        // Setup bytes ~ M^2: doubling M quadruples them.
        let ratio = setup_bytes_per_rank(&c2) / setup_bytes_per_rank(&c1);
        assert!((ratio - 4.0).abs() < 1e-9);
        // Solve bytes ~ M R: doubling M doubles them.
        let ratio = ard_solve_bytes_per_rank(&c2) / ard_solve_bytes_per_rank(&c1);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn storage_linear_in_local_rows() {
        let c1 = Config {
            n: 256,
            m: 8,
            p: 4,
            r: 1,
        };
        let c2 = Config { n: 512, ..c1 };
        assert!(ard_storage_bytes(&c2) / ard_storage_bytes(&c1) > 1.9);
    }
}
