//! Mixed-precision solve path: `f32` factorization and replay wrapped
//! in `f64` iterative refinement.
//!
//! The replay solve is bandwidth- and GEMM-bound in `O(M^2 R)` per row,
//! so halving the element width roughly doubles both the effective SIMD
//! width (16-lane AVX2 `f32` FMA tiles vs 8-lane `f64`) and the wire
//! budget (scan panels ship as `M x R x 4` bytes). The accuracy lost to
//! `f32` factors is restored by the standard refinement iteration
//! `x <- x + F^{-1}(y - T x)` evaluated in `f64`: each sweep contracts
//! the error by `O(eps_f32 * kappa)`, so a couple of sweeps reach the
//! same final residual as the pure-`f64` replay whenever
//! `kappa << 1/eps_f32`.
//!
//! That proviso is the **gray zone** gate: when the Phase 1 boundary
//! extraction reports a condition estimate above
//! [`MIXED_COND_MAX`] — or the `f32` factorization itself breaks down
//! on a diagonal that is singular at half precision — refinement can no
//! longer be trusted to contract and [`MixedRankFactors::setup_with`]
//! falls back to the pure-`f64` factors. The fallback is recorded on
//! the flight recorder (`precision.fallback`) and counted in
//! `bt_ard.precision.fallbacks`, so serving dashboards can see when a
//! workload stops benefiting from the half-width path.

use bt_blocktri::FactorError;
use bt_comm::CommBackend;
use bt_dense::Mat;

use crate::refine::{halo_exchange_into, local_residual_into, sq_norm, RefinedSolve, REFINE_ITERS};
use crate::state::{ArdRankFactors, BoundaryMode, RankSystem};

/// Gray-zone gate for the `f32` factorization: above this boundary
/// condition estimate, `eps_f32 * kappa` approaches 1 and the
/// refinement iteration is no longer a reliable contraction
/// (`eps_f32 ~ 1.2e-7`, so 1e6 leaves an order of magnitude of
/// contraction headroom per sweep).
pub const MIXED_COND_MAX: f64 = 1e6;

/// Times the mixed path fell back to pure `f64` (gray zone or `f32`
/// breakdown). Unconditional, like the service counters.
static FALLBACKS: bt_obs::Counter = bt_obs::Counter::new("bt_ard.precision.fallbacks");

/// Default refinement sweep cap for mixed solves when the caller does
/// not ask for refinement explicitly. Inside the gray-zone gate each
/// sweep contracts by `eps_f32 * kappa <= 1.2e-1`, so two sweeps
/// already land at `f64` replay accuracy; four leaves slack for
/// unlucky right-hand sides without ever costing more than a fraction
/// of the half-width savings (the tolerance check exits early).
pub const MIXED_DEFAULT_SWEEPS: usize = 4;

/// Default relative-residual target paired with
/// [`MIXED_DEFAULT_SWEEPS`] — the pure-`f64` replay's typical landing
/// zone, so mixed answers are indistinguishable from classic ones.
pub const MIXED_DEFAULT_TOL: f64 = 1e-12;

/// Which element type a [`MixedRankFactors`] ended up factoring at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Half-width factors + refinement (the fast path).
    F32,
    /// Full-width factors (the safe path / gray-zone fallback).
    F64,
}

impl Precision {
    /// Stable lowercase name (`"f32"` / `"f64"`), used in cache keys,
    /// flight events and bench records.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F64 => "f64",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

enum Inner {
    F32(ArdRankFactors<f32>),
    F64(ArdRankFactors<f64>),
}

/// Precision-adaptive rank factors: `f32` factorization with `f64`
/// refinement when the conditioning allows it, transparent pure-`f64`
/// factors when it does not.
pub struct MixedRankFactors {
    inner: Inner,
    fell_back: bool,
}

impl MixedRankFactors {
    /// [`MixedRankFactors::setup_with`] with [`BoundaryMode::ExactScan`].
    pub fn setup<C: CommBackend>(comm: &mut C, sys: &RankSystem) -> Result<Self, FactorError> {
        Self::setup_with(comm, sys, BoundaryMode::ExactScan)
    }

    /// Attempts the `f32` factorization, falling back to `f64` when the
    /// gray-zone gate trips. Collective; the fallback decision is
    /// derived from allreduced quantities (the boundary condition
    /// estimate and the coordinated factorization error), so every rank
    /// takes the same branch without extra communication.
    ///
    /// # Errors
    ///
    /// [`FactorError`] (on every rank) if even the `f64` factorization
    /// breaks down.
    pub fn setup_with<C: CommBackend>(
        comm: &mut C,
        sys: &RankSystem,
        mode: BoundaryMode,
    ) -> Result<Self, FactorError> {
        let reason = match ArdRankFactors::<f32>::setup_with(comm, sys, true, mode) {
            Ok(factors) if factors.boundary_condition() <= MIXED_COND_MAX => {
                return Ok(Self {
                    inner: Inner::F32(factors),
                    fell_back: false,
                });
            }
            Ok(factors) => format!(
                "{{\"reason\":\"gray_zone\",\"boundary_cond\":{:e},\"gate\":{MIXED_COND_MAX:e}}}",
                factors.boundary_condition()
            ),
            Err(e) => format!("{{\"reason\":\"f32_breakdown\",\"row\":{}}}", e.row),
        };
        if comm.rank() == 0 {
            FALLBACKS.incr();
            bt_obs::flight::record("precision.fallback", 0, 0, 0, reason);
        }
        let factors = ArdRankFactors::<f64>::setup_with(comm, sys, true, mode)?;
        Ok(Self {
            inner: Inner::F64(factors),
            fell_back: true,
        })
    }

    /// The element type this instance factors and replays at.
    pub fn precision(&self) -> Precision {
        match self.inner {
            Inner::F32(_) => Precision::F32,
            Inner::F64(_) => Precision::F64,
        }
    }

    /// True when setup wanted `f32` but the gray-zone gate (or an `f32`
    /// breakdown) forced the `f64` path.
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Worst boundary-extraction condition estimate across ranks (see
    /// [`ArdRankFactors::boundary_condition`]).
    pub fn boundary_condition(&self) -> f64 {
        match &self.inner {
            Inner::F32(f) => f.boundary_condition(),
            Inner::F64(f) => f.boundary_condition(),
        }
    }

    /// Bytes of stored factor state — half the `f64` figure on the
    /// `f32` path (modulo the fixed-size trace bookkeeping).
    pub fn storage_bytes(&self) -> u64 {
        match &self.inner {
            Inner::F32(f) => f.storage_bytes(),
            Inner::F64(f) => f.storage_bytes(),
        }
    }

    /// Releases pooled solve-workspace buffers beyond `max_pooled_bytes`
    /// (see [`ArdRankFactors::trim_workspace`]); returns bytes freed.
    pub fn trim_workspace(&self, max_pooled_bytes: u64) -> u64 {
        match &self.inner {
            Inner::F32(f) => f.trim_workspace(max_pooled_bytes),
            Inner::F64(f) => f.trim_workspace(max_pooled_bytes),
        }
    }

    /// Refined replay solve at the selected precision: on the `f32`
    /// path the initial solve and every correction replay run at half
    /// width (converting `M x R` panels at the boundary), while
    /// residuals and the solution accumulate in `f64`; on the fallback
    /// path this is exactly [`ArdRankFactors::solve_replay_refined`].
    /// Collective. `y_local` panels are `f64` either way.
    pub fn solve_refined<C: CommBackend>(
        &self,
        comm: &mut C,
        sys: &RankSystem,
        y_local: &[Mat],
        max_sweeps: usize,
        tol: f64,
    ) -> RefinedSolve {
        match &self.inner {
            Inner::F64(f) => f.solve_replay_refined(comm, sys, y_local, max_sweeps, tol),
            Inner::F32(f) => solve_refined_f32(f, comm, sys, y_local, max_sweeps, tol),
        }
    }
}

/// The `f32` leg of [`MixedRankFactors::solve_refined`]: structure of
/// [`ArdRankFactors::solve_replay_refined`], with every replay running
/// at `f32` behind panel conversions.
fn solve_refined_f32<C: CommBackend>(
    factors: &ArdRankFactors<f32>,
    comm: &mut C,
    sys: &RankSystem,
    y_local: &[Mat],
    max_sweeps: usize,
    tol: f64,
) -> RefinedSolve {
    let nl = y_local.len();
    let (m, r) = y_local[0].shape();

    // Initial solve at f32.
    let y32: Vec<Mat<f32>> = y_local.iter().map(|p| p.convert::<f32>()).collect();
    let mut lo32: Vec<Mat<f32>> = (0..nl).map(|_| Mat::zeros(m, r)).collect();
    factors.solve_replay_into(comm, &y32, &mut lo32);
    let mut x: Vec<Mat> = lo32.iter().map(|p| p.convert::<f64>()).collect();

    let y_norm2 = comm
        .allreduce(sq_norm(y_local), |a, b| a + b)
        .max(f64::MIN_POSITIVE);

    // Reused sweep buffers: f64 residual/correction panels, their f32
    // mirrors, and the halo panels. Warm sweeps allocate only inside
    // the conversions' fixed buffers.
    let mut res: Vec<Mat> = (0..nl).map(|_| Mat::zeros(m, r)).collect();
    let mut res32: Vec<Mat<f32>> = (0..nl).map(|_| Mat::zeros(m, r)).collect();
    let mut halo_l = Mat::zeros(m, r);
    let mut halo_r = Mat::zeros(m, r);
    let mut history = Vec::with_capacity(max_sweeps + 1);

    let mut residual = |comm: &mut C, x: &[Mat], res: &mut [Mat]| -> f64 {
        halo_exchange_into(
            comm,
            x[0].as_ref(),
            x[nl - 1].as_ref(),
            halo_l.as_mut(),
            halo_r.as_mut(),
        );
        local_residual_into(
            comm,
            sys,
            x,
            (halo_l.as_ref(), halo_r.as_ref()),
            y_local,
            res,
        );
        (comm.allreduce(sq_norm(res), |a, b| a + b) / y_norm2).sqrt()
    };

    let mut rel = residual(comm, &x, &mut res);
    history.push(rel);

    for sweep in 0..max_sweeps {
        if rel <= tol {
            break;
        }
        let _span = bt_obs::span_with("solver", "refine.sweep", || {
            format!("{{\"sweep\":{sweep},\"rel_residual\":{rel:e},\"precision\":\"f32\"}}")
        });
        // Correction at f32: dx = F^{-1} res.
        for (dst, src) in res32.iter_mut().zip(&res) {
            src.convert_into(dst);
        }
        factors.solve_replay_into(comm, &res32, &mut lo32);
        for (xk, dk) in x.iter_mut().zip(&lo32) {
            xk.add_assign_converted(dk);
        }
        let new_rel = residual(comm, &x, &mut res);
        if !new_rel.is_finite() || new_rel >= rel {
            // Diverging or stagnant: undo the last correction and stop.
            for (xk, dk) in x.iter_mut().zip(&lo32) {
                xk.sub_assign_converted(dk);
            }
            break;
        }
        rel = new_rel;
        history.push(rel);
    }
    REFINE_ITERS.record((history.len() - 1) as u64);
    RefinedSolve {
        x_local: x,
        history,
    }
}
